"""Wall-clock microbenchmarks of the NumPy compute kernels themselves.

These measure the *simulator's* real execution speed (useful when working
on the library); the paper-shape results come from the model-time benches
in the other files.
"""

import numpy as np
import pytest

from repro.core import blas
from repro.gpu import (
    DeviceGaugeField,
    DeviceSpinorField,
    Precision,
    VirtualGPU,
)
from repro.gpu.kernels import dslash_kernel, dslash_tables
from repro.lattice import (
    LatticeGeometry,
    WilsonCloverOperator,
    make_clover,
    random_spinor,
    weak_field_gauge,
)
from repro.lattice.evenodd import EVEN, full_to_parity

DIMS = (8, 8, 8, 8)


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(1)
    geo = LatticeGeometry(DIMS)
    gauge = weak_field_gauge(geo, rng, 0.1)
    clover = make_clover(gauge)
    psi = random_spinor(geo, rng)
    return geo, gauge, clover, psi


def test_host_wilson_clover_apply(benchmark, setup):
    geo, gauge, clover, psi = setup
    op = WilsonCloverOperator(gauge, 0.1, clover)
    benchmark(op.apply, psi)


def test_device_dslash_single(benchmark, setup):
    geo, gauge, clover, psi = setup
    gpu = VirtualGPU(enforce_memory=False)
    dg = DeviceGaugeField(gpu, sites=geo.volume, precision=Precision.SINGLE)
    dg.set(gauge.data)
    src = DeviceSpinorField(gpu, sites=geo.half_volume, precision=Precision.SINGLE)
    src.set(full_to_parity(geo, psi.data, 1))
    dst = DeviceSpinorField(
        gpu, sites=geo.half_volume, precision=Precision.SINGLE, label="dst"
    )
    tables = dslash_tables(geo, EVEN)
    benchmark(dslash_kernel, gpu, tables, dg, src, dst)


def test_device_dslash_half(benchmark, setup):
    geo, gauge, clover, psi = setup
    gpu = VirtualGPU(enforce_memory=False)
    dg = DeviceGaugeField(gpu, sites=geo.volume, precision=Precision.HALF)
    dg.set(gauge.data)
    src = DeviceSpinorField(gpu, sites=geo.half_volume, precision=Precision.HALF)
    src.set(full_to_parity(geo, psi.data, 1))
    dst = DeviceSpinorField(
        gpu, sites=geo.half_volume, precision=Precision.HALF, label="dst"
    )
    tables = dslash_tables(geo, EVEN)
    benchmark(dslash_kernel, gpu, tables, dg, src, dst)


def test_clover_construction(benchmark, setup):
    geo, gauge, clover, psi = setup
    benchmark(make_clover, gauge)


def test_blas_axpy_norm(benchmark, setup):
    geo, *_ = setup
    gpu = VirtualGPU(enforce_memory=False)
    rng = np.random.default_rng(2)
    x = DeviceSpinorField(gpu, sites=geo.half_volume, precision=Precision.SINGLE)
    y = DeviceSpinorField(
        gpu, sites=geo.half_volume, precision=Precision.SINGLE, label="y"
    )
    data = rng.standard_normal((geo.half_volume, 4, 3)) + 0j
    x.set(data)
    y.set(data)
    benchmark(blas.axpy_norm, gpu, 0.5, x, y)


def test_half_precision_roundtrip(benchmark, setup):
    geo, *_ = setup
    gpu = VirtualGPU(enforce_memory=False)
    f = DeviceSpinorField(gpu, sites=geo.volume, precision=Precision.HALF)
    rng = np.random.default_rng(3)
    data = rng.standard_normal((geo.volume, 4, 3)) + 0j

    def roundtrip():
        f.set(data)
        return f.get()

    benchmark(roundtrip)


def test_clover_field_pack(benchmark, setup):
    geo, gauge, clover, psi = setup
    from repro.lattice.clover import pack_clover

    benchmark(pack_clover, clover)
