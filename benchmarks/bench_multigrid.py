"""Future-work bench: adaptive multigrid vs Krylov at light quark mass.

"Unfortunately, physical quark masses correspond to nearly indefinite
matrices" (Section II) — the Krylov iteration count explodes as the mass
approaches its critical value, which is why the paper's future work
points at the adaptive multigrid of [24].  This bench sweeps the mass
toward critical and tabulates the iteration growth of plain BiCGstab
against MG-preconditioned FGMRES.
"""

import numpy as np

from repro.bench.report import format_table
from repro.lattice import (
    LatticeGeometry,
    WilsonCloverOperator,
    bicgstab,
    make_clover,
    random_spinor,
    weak_field_gauge,
)
from repro.lattice.multigrid import AdaptiveMultigrid

MASSES = (0.0, -0.5, -0.75)


def test_multigrid_tames_critical_slowing_down(run_once):
    def measure():
        rng = np.random.default_rng(5)
        geo = LatticeGeometry((4, 4, 4, 4))
        gauge = weak_field_gauge(geo, rng, noise=0.2)
        clover = make_clover(gauge)
        rows = []
        counts = {"bicgstab": [], "mg": []}
        for mass in MASSES:
            op = WilsonCloverOperator(gauge, mass, clover)
            b = random_spinor(geo, np.random.default_rng(9))
            res_k = bicgstab(
                op.as_linear_operator(), b.data.reshape(-1),
                tol=1e-8, maxiter=20_000, raise_on_fail=False,
            )
            mg = AdaptiveMultigrid(
                op, block_dims=(2, 2, 2, 2), n_nullvecs=4, setup_iters=30
            )
            res_m = mg.solve(b, tol=1e-8)
            assert res_k.converged and res_m.converged
            counts["bicgstab"].append(res_k.iterations)
            counts["mg"].append(res_m.iterations)
            rows.append([f"{mass:+.2f}", res_k.iterations, res_m.iterations])
        return rows, counts

    rows, counts = run_once(measure)
    print("\n" + format_table(
        ["mass", "BiCGstab iters", "MG-FGMRES iters"], rows
    ))
    growth_k = counts["bicgstab"][-1] / counts["bicgstab"][0]
    growth_m = counts["mg"][-1] / counts["mg"][0]
    print(f"\niteration growth toward critical mass: BiCGstab {growth_k:.1f}x, "
          f"MG {growth_m:.1f}x")
    # The [24] claim, qualitatively: MG's growth is far flatter.
    assert growth_m < 0.6 * growth_k
    # And at the lightest mass MG needs far fewer outer iterations.
    assert counts["mg"][-1] < 0.3 * counts["bicgstab"][-1]
