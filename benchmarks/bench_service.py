"""Closed-loop load benchmark for the solve service.

The paper's production pattern — "32768 calls to the solver for each
configuration" (Section VIII) — arrives at a shared cluster as a request
stream, not a single job.  This bench serves one synthetic campaign
twice, with multi-RHS batching on and off, and checks the economics the
service exists for: batching amortizes the per-batch device setup (gauge
upload, ghost-zone allocation, operator construction) across right-hand
sides, so the batched schedule must finish the same campaign in less
model time (higher throughput) by a measured margin.
"""

import json
import pathlib

from repro.bench.harness import (
    daemon_benchmark,
    residency_benchmark,
    service_benchmark,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

N_REQUESTS = 64
DIMS = (16, 16, 16, 64)
ITERATIONS = 10


def test_batched_service_beats_unbatched(run_once):
    result = run_once(
        lambda: service_benchmark(
            N_REQUESTS, dims=DIMS, iterations=ITERATIONS
        )
    )
    batched = result["batched"]
    unbatched = result["unbatched"]
    speedup = result["batched_vs_unbatched_throughput"]
    print(
        f"\nbatched:   {batched['throughput_rps']:.1f} req/s over "
        f"{batched['makespan_us'] / 1e3:.1f} ms "
        f"({batched['batches']} batches, occupancy "
        f"{batched['batch_occupancy'] * 100:.0f}%)"
        f"\nunbatched: {unbatched['throughput_rps']:.1f} req/s over "
        f"{unbatched['makespan_us'] / 1e3:.1f} ms "
        f"({unbatched['batches']} batches)"
        f"\nspeedup:   {speedup:.3f}x"
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "service_campaign.json").write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n"
    )
    # No request may be dropped either way.
    for report in (batched, unbatched):
        assert report["completed"] == N_REQUESTS
        assert report["failed"] == 0
        assert report["rejected"] == 0
    # Batching pays one device setup per batch instead of per request:
    # the margin at this volume is ~1.15x through the full service
    # (scheduling overheads included); 1.05 is the guard floor.
    assert speedup > 1.05
    # The batcher must actually be batching (not degenerating to
    # singles): mean batch size well above 1.
    assert batched["mean_batch_size"] > 2.0
    assert unbatched["mean_batch_size"] == 1.0


def test_warm_pool_beats_cold_pool(run_once):
    """Gauge-residency ablation: a two-configuration campaign over two
    workers settles into one-config-per-worker affinity when residency
    routing is on, so most batches skip the host→device gauge upload and
    the whole campaign finishes strictly sooner than the cold run."""
    result = run_once(lambda: residency_benchmark(iterations=ITERATIONS))
    warm = result["warm"]
    cold = result["cold"]
    print(
        f"\nwarm: {warm['makespan_us'] / 1e3:.1f} ms "
        f"({warm['placement']['residency_hits']} residency hits, "
        f"gauge saved {warm['placement']['gauge_saved_us']:.0f} us)"
        f"\ncold: {cold['makespan_us'] / 1e3:.1f} ms "
        f"({cold['placement']['residency_hits']} residency hits)"
        f"\ncold/warm makespan: {result['cold_vs_warm_makespan']:.4f}x"
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "service_residency.json").write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n"
    )
    for report in (warm, cold):
        assert report["failed"] == 0
        assert report["rejected"] == 0
    # The warm pool must actually get warm — and the cold pool must not.
    assert warm["placement"]["residency_hits"] > 0
    assert warm["placement"]["gauge_saved_us"] > 0
    assert cold["placement"]["residency_hits"] == 0
    # The acceptance bar: strictly lower total campaign latency warm.
    assert warm["makespan_us"] < cold["makespan_us"]


def test_preemption_improves_high_p99_on_elastic_pool(run_once):
    """Daemon-era benchmark: one seeded bursty campaign streamed through
    the elastic pool twice, preemption on vs off.  The burst must drive
    at least one scale-up and the quiet tail at least one scale-down,
    and letting HIGH arrivals claim a worker at a refresh boundary must
    beat queueing behind a full LOW batch at the HIGH p99."""
    result = run_once(lambda: daemon_benchmark(iterations=ITERATIONS))
    on = result["preempt_on"]
    off = result["preempt_off"]
    print(
        f"\npreempt on:  HIGH p99 {on['priority_latency']['high']['p99_us'] / 1e3:.1f} ms, "
        f"{on['preemptions']} yield(s), {on['resumed_batches']} resume(s)"
        f"\npreempt off: HIGH p99 {off['priority_latency']['high']['p99_us'] / 1e3:.1f} ms"
        f"\nscale events: {on['scale_ups']} up / {on['scale_downs']} down"
        f"\nHIGH p99 off/on: {result['high_p99_off_vs_on']:.4f}x"
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "service_daemon.json").write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n"
    )
    for report in (on, off):
        assert report["completed"] + report["failed"] + report["rejected"] \
            == report["requests"]
        assert report["failed"] == 0
        # The elastic pool must flex both ways under the burst.
        assert report["scale_ups"] >= 1
        assert report["scale_downs"] >= 1
    # Preemption must actually fire and resume (not restart).
    assert on["preemptions"] >= 1
    assert on["resumed_batches"] >= 1
    assert off["preemptions"] == 0
    # The point of yielding: HIGH tail latency improves.
    assert (
        on["priority_latency"]["high"]["p99_us"]
        < off["priority_latency"]["high"]["p99_us"]
    )


def test_resilience_beats_undefended_run(run_once):
    """Resilience-era benchmark (PR 7): the acceptance campaign — one
    seeded overloaded bursty stream against a pool with one flaky worker
    and one 3x straggler, served with the breaker/hedging/brownout stack
    on vs off.  The defended run must quarantine and reinstate the flaky
    worker, shed LOW under the burst, keep every admitted request
    terminal in both runs, and win the HIGH tail outright."""
    from repro.bench.harness import resilience_benchmark

    result = run_once(lambda: resilience_benchmark(iterations=ITERATIONS))
    on = result["resilience_on"]
    off = result["resilience_off"]
    print(
        f"\nresilience on:  HIGH p99 "
        f"{on['priority_latency']['high']['p99_us'] / 1e3:.1f} ms, "
        f"{on['quarantines']} quarantine(s), {on['reinstated']} "
        f"reinstated, {on['shed_low']} LOW shed, "
        f"{on['degraded_served']} served degraded"
        f"\nresilience off: HIGH p99 "
        f"{off['priority_latency']['high']['p99_us'] / 1e3:.1f} ms"
        f"\nHIGH p99 off/on: {result['high_p99_off_vs_on']:.4f}x"
        f"\nSLO attainment: {on['slo_attainment']:.4f} on vs "
        f"{off['slo_attainment']:.4f} off"
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "service_resilience.json").write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n"
    )
    # Zero lost requests in both runs: every admitted request terminal.
    for report in (on, off):
        assert report["completed"] + report["failed"] + report["rejected"] \
            == report["requests"]
        assert report["failed"] == 0
    # The breaker did its full loop on the flaky worker.
    assert on["quarantines"] >= 1
    assert on["reinstated"] >= 1
    assert off["quarantines"] == 0
    # The brownout shed LOW (with honest retry-afters) instead of
    # letting the burst blow every deadline.
    assert on["shed_low"] >= 1
    assert on["degraded_served"] >= 1
    # The acceptance bar: HIGH p99 strictly better, SLO no worse.
    assert (
        on["priority_latency"]["high"]["p99_us"]
        < off["priority_latency"]["high"]["p99_us"]
    )
    assert on["slo_attainment"] >= off["slo_attainment"]


def test_domain_aware_isolation_beats_ledger_at_a_time(run_once):
    """Failure-domain benchmark (PR 8): one seeded bursty stream against
    a 3-node/3-rack topology where node 1 dies *silently* and rack 2
    partitions, served with the domain layer (k-of-n quarantine,
    anti-affinity) on vs off — both runs carrying the full per-worker
    resilience stack, so the ablation isolates exactly the domain
    features.  ON must isolate the dead node strictly sooner than the
    one-ledger-at-a-time OFF run with HIGH p99 no worse and zero lost
    requests either way, and the mirror mini-run must resume from the
    cross-domain checkpoint replica after losing the primary's node."""
    from repro.bench.harness import domain_resilience_benchmark

    result = run_once(
        lambda: domain_resilience_benchmark(iterations=ITERATIONS)
    )
    on = result["domain_on"]
    off = result["domain_off"]
    print(
        f"\ndomains on:  node isolated in "
        f"{result['time_to_isolate_ms_on']:.3f} ms, HIGH p99 "
        f"{on['priority_latency']['high']['p99_us'] / 1e3:.1f} ms, "
        f"{on['domains']['domain_quarantines']} domain quarantine(s)"
        f"\ndomains off: node isolated in "
        f"{result['time_to_isolate_ms_off']:.3f} ms, HIGH p99 "
        f"{off['priority_latency']['high']['p99_us'] / 1e3:.1f} ms"
        f"\ntime-to-isolate off/on: {result['isolate_off_vs_on']:.4f}x, "
        f"HIGH p99 off/on: {result['high_p99_off_vs_on']:.4f}x"
        f"\nmirror resume: {result['mirror_resume']['mirror_restores']} "
        f"restore(s), {result['mirror_resume']['failed']} lost"
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "service_domains.json").write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n"
    )
    # Zero lost requests in both runs: every admitted request terminal.
    for report in (on, off):
        assert report["completed"] + report["failed"] + report["rejected"] \
            == report["requests"]
        assert report["failed"] == 0
    # The correlated faults actually fired in both runs.
    for report in (on, off):
        assert report["domains"]["nodes_killed"] == 1
        assert report["domains"]["partition_heals"] == 1
    # The domain board escalated (and only the ON run has one).
    assert on["domains"]["domain_quarantines"] >= 1
    assert "domain_quarantines" not in off["domains"]
    # The acceptance bar: strictly faster isolation, HIGH p99 no worse.
    assert result["time_to_isolate_ms_on"] < result["time_to_isolate_ms_off"]
    assert result["high_p99_off_vs_on"] >= 1.0
    # The mirror leg: losing the primary's node must not lose requests.
    assert result["mirror_resume"]["mirror_restores"] >= 1
    assert result["mirror_resume"]["failed"] == 0


def test_capacity_map_locates_knee_and_holds_fair_shares(run_once):
    """Multi-tenant saturation map (PR 9): sweep arrival rate x tenant
    mix x worker count and check the capacity contract — every cell
    terminates every request, each (mix, workers) series has a visible
    SLO-attainment knee with monotone degradation past it, equal-weight
    tenants split saturated dispatch near 1:1, and 3:1 weights hold the
    saturated shares near 3:1."""
    from repro.bench.harness import capacity_sweep, render_capacity_map

    result = run_once(lambda: capacity_sweep())
    print("\n" + render_capacity_map(result))
    RESULTS_DIR.mkdir(exist_ok=True)
    # The full capacity map is committed once, as the "capacity_map"
    # entry of BENCH_service.json (the CI regression baseline); this
    # results file is just the pointer, so the two copies cannot drift.
    (RESULTS_DIR / "service_capacity.json").write_text(
        json.dumps(
            {
                "see": "../../BENCH_service.json#capacity_map",
                "note": "single source of truth for the capacity map is "
                "the committed service-bench baseline; regenerate with "
                "write_service_bench()",
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    # Zero lost requests at every point of the map.
    for cell in result["cells"]:
        assert cell["lost"] == 0, cell
    # Each series locates a knee inside the sweep, and more workers move
    # it to a higher rate (the map is a capacity surface, not a line).
    knees = {
        (k["mix"], k["workers"]): k["knee_rate_rps"]
        for k in result["knees"]
    }
    for (mix, workers), knee in knees.items():
        assert knee is not None, f"no knee located for {mix}@{workers}"
    assert knees[("equal", 4)] > knees[("equal", 2)]
    # Past the knee, SLO attainment degrades monotonically with load.
    for k in result["knees"]:
        series = sorted(
            (
                c
                for c in result["cells"]
                if c["mix"] == k["mix"]
                and c["workers"] == k["workers"]
                and c["rate_rps"] >= k["knee_rate_rps"]
            ),
            key=lambda c: c["rate_rps"],
        )
        for earlier, later in zip(series, series[1:]):
            assert later["slo_attainment"] <= earlier["slo_attainment"] + 0.02
    # Saturated fairness: equal weights within 1.25x, 3:1 within 20%.
    assert result["fairness"]["equal"]["imbalance"] <= 1.25
    assert result["fairness"]["weighted_3to1"]["imbalance"] <= 1.20
