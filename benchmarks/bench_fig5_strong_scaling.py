"""Fig. 5: strong scaling on 32^3 x 256 and 24^3 x 128, both comm
strategies, the bad-NUMA curve, and the overlap anomaly."""

from conftest import BENCH_ITERATIONS
from repro.bench import fig5a, fig5b


def _check_fig5a(exp) -> None:
    # Memory footprint: mixed precision missing at 4 GPUs, single present.
    assert exp.series_by_label("single-half").at(4) is None
    assert exp.series_by_label("single-half").at(8) is not None
    assert exp.series_by_label("single").at(4) is not None
    # "The improvement from overlapping communication with computation is
    # increasingly apparent as the number of GPUs increases."
    for mode in ("single", "single-half"):
        ov = exp.series_by_label(mode)
        nov = exp.series_by_label(f"{mode}, not overlapped")
        assert ov.at(32) > 1.1 * nov.at(32)
    ov = exp.series_by_label("single")
    nov = exp.series_by_label("single, not overlapped")
    assert ov.at(32) / nov.at(32) > ov.at(8) / nov.at(8)
    # Bad NUMA binding is "noticeably lower" (Fig. 5(a) maroon curve).
    good = exp.series_by_label("single-half").at(32)
    bad = exp.series_by_label("single-half, bad NUMA placement").at(32)
    assert bad < 0.95 * good
    # "we sustained over 3 Tflops" on 32 GPUs.
    assert good > 3000.0


def test_fig5a(run_once, record_experiment):
    exp = run_once(lambda: fig5a(iterations=BENCH_ITERATIONS))
    record_experiment(exp)
    _check_fig5a(exp)


def _check_fig5b(exp) -> None:
    ov = exp.series_by_label("single-half")
    nov = exp.series_by_label("single-half, not overlapped")
    # The paper's surprise: at this small volume the overlapped mixed
    # solver plateaus — the non-overlapped variant is faster at 32 GPUs
    # (the ~50 us cudaMemcpyAsync latency of Fig. 7 dominates).
    assert nov.at(32) > ov.at(32)
    # At large local volumes (few GPUs) overlap is still a win.
    assert ov.at(4) > nov.at(4)
    # The mixed/single advantage shrinks toward 1 with the GPU count
    # ("surpassed even by the purely single precision case").
    ov_single = exp.series_by_label("single")
    r8 = ov.at(8) / ov_single.at(8)
    r32 = ov.at(32) / ov_single.at(32)
    assert r32 < r8
    assert r32 < 1.15


def test_fig5b(run_once, record_experiment):
    exp = run_once(lambda: fig5b(iterations=BENCH_ITERATIONS))
    record_experiment(exp)
    _check_fig5b(exp)
