"""Section VII-C: 32 GPUs vs the 128-core 9q CPU partition (>10x)."""

from conftest import BENCH_ITERATIONS
from repro.bench import cpu_comparison
from repro.gpu.specs import XEON_E5530


def _check(exp) -> None:
    # "we obtained 255 Gflops in single precision using highly optimized
    # SSE routines" on 16 nodes x 8 cores x ~2 Gflops.
    assert abs(XEON_E5530.sustained_gflops(16) - 256.0) < 2.0
    # "over a factor of 10 faster than observed without the GPUs"
    assert exp.series_by_label("speedup (x)").at(2.0) > 10.0


def test_cpu_comparison(run_once, record_experiment):
    exp = run_once(lambda: cpu_comparison(iterations=BENCH_ITERATIONS))
    record_experiment(exp)
    _check(exp)
