"""Section V-E: kernel auto-tuning, and the solver-vs-matvec overhead.

"Due to the memory bandwidth intensity of these (essentially streaming)
kernels, the complete solver typically runs 10 to 20% slower than would
the matrix-vector product in isolation."
"""

from repro.core import invert_model, paper_invert_param
from repro.core.autotune import autotune
from repro.core.dslash import DeviceSchurOperator
from repro.gpu import GTX285, Precision, VirtualGPU
from repro.lattice import LatticeGeometry


def test_autotune_sweep(run_once):
    cache = run_once(lambda: autotune(GTX285))
    header = cache.as_header()
    print("\n" + header)
    assert "#define DSLASH_SINGLE_BLOCK" in header
    # Double precision cannot reach single's occupancy (8K register file).
    assert 0 < cache.occupancy("dslash", Precision.DOUBLE) < cache.occupancy(
        "dslash", Precision.SINGLE
    )


def _matvec_rate(precision: Precision, dims=(24, 24, 24, 32)) -> float:
    """Bare matrix-vector rate (effective Gflops) at tuned occupancy."""
    geo = LatticeGeometry(dims)
    gpu = VirtualGPU(enforce_memory=False, execute=False)
    cache = autotune(GTX285)
    op = DeviceSchurOperator.setup(
        gpu, None, geo, None, None, 0.1, precision=precision,
        occupancy={"dslash": cache.occupancy("dslash", precision)},
    )
    src = op.make_spinor("src")
    tmp = op.make_spinor("tmp")
    dst = op.make_spinor("dst")
    i0 = gpu.timeline.op_count
    t0 = gpu.timeline.host_time
    for _ in range(10):
        op.apply(src, tmp, dst)
    gpu.device_synchronize()
    flops = gpu.timeline.flops_since(i0)
    return flops / (gpu.timeline.host_time - t0) / 1e9


def _solver_rate(mode: str, dims=(24, 24, 24, 32)) -> float:
    inv = paper_invert_param(mode, fixed_iterations=20)
    res = invert_model(dims, inv, n_gpus=1, enforce_memory=False)
    return res.stats.sustained_gflops


def test_solver_overhead_vs_matvec(run_once):
    """The complete solver runs 10-20% below the bare matvec (V-E)."""

    def measure():
        out = {}
        for mode, precision in (
            ("single", Precision.SINGLE),
            ("double", Precision.DOUBLE),
        ):
            out[mode] = (_matvec_rate(precision), _solver_rate(mode))
        return out

    rates = run_once(measure)
    # Double's matvec is partially compute bound (88 Gflops DP peak), so
    # the streaming BLAS costs relatively less there.
    bounds = {"single": (0.08, 0.30), "double": (0.03, 0.30)}
    for mode, (matvec, solver) in rates.items():
        overhead = 1.0 - solver / matvec
        print(
            f"\n{mode}: matvec {matvec:.1f} Gflops, solver {solver:.1f} "
            f"Gflops, overhead {overhead:.1%}"
        )
        lo, hi = bounds[mode]
        assert lo < overhead < hi, mode
