"""What-if study: the paper's code on Fermi-generation hardware.

The paper closes awaiting "future hardware and software improvements" and
notes (footnote 4) that "the Fermi architecture improves upon this model
by allowing for bidirectional transfers over the PCI-E bus."  Table I
already lists the Tesla C2050; this bench re-runs the Fig. 5(b) overlap
study on simulated C2050s — dual copy engines, bigger DP throughput — to
quantify how much of the small-volume overlap anomaly the new hardware
removes.
"""

from conftest import BENCH_ITERATIONS
from repro.bench import run_scaling_point
from repro.bench.report import format_table
from repro.gpu.specs import GTX285, get_gpu

C2050 = get_gpu("Tesla C2050")


def _gap(gpu_spec, n_gpus, dims=(24, 24, 24, 128)):
    """(overlapped - non-overlapped) / non-overlapped, in percent."""
    rates = {}
    for overlap in (True, False):
        p = run_scaling_point(
            dims, "single-half", n_gpus, overlap=overlap,
            gpu_spec=gpu_spec, fixed_iterations=BENCH_ITERATIONS,
        )
        rates[overlap] = p.gflops
    return 100.0 * (rates[True] / rates[False] - 1.0), rates


def test_fermi_softens_overlap_anomaly(run_once):
    def measure():
        return {spec.name: {n: _gap(spec, n) for n in (8, 32)} for spec in (GTX285, C2050)}

    results = run_once(measure)
    rows = []
    for name, by_n in results.items():
        for n, (gain, rates) in by_n.items():
            rows.append([name, n, f"{rates[False]:.0f}", f"{rates[True]:.0f}", f"{gain:+.1f}%"])
    print("\n" + format_table(
        ["card", "GPUs", "no overlap", "overlapped", "overlap gain"], rows
    ))
    # On the GT200 the overlap gain collapses (goes negative) from 8 to 32
    # GPUs — the Fig. 5(b) anomaly.
    gt200_8 = results[GTX285.name][8][0]
    gt200_32 = results[GTX285.name][32][0]
    assert gt200_32 < 0 < gt200_8
    # Fermi's dual copy engines recover part of the loss at 32 GPUs.
    fermi_32 = results[C2050.name][32][0]
    assert fermi_32 > gt200_32


def test_dual_copy_engines_overlap_directions(run_once):
    """Timeline-level check: on a C2050, an h2d and a d2h transfer can be
    in flight simultaneously; on a GTX 285 they serialize."""
    from repro.gpu import VirtualGPU

    def measure():
        out = {}
        for spec in (GTX285, C2050):
            gpu = VirtualGPU(spec=spec, enforce_memory=False)
            a = gpu.memcpy("down", "d2h", 2**20, stream=1, asynchronous=True)
            b = gpu.memcpy("up", "h2d", 2**20, stream=2, asynchronous=True)
            out[spec.name] = (a, b)
        return out

    ops = run_once(measure)
    a285, b285 = ops[GTX285.name]
    assert b285.start >= a285.end  # single engine: serialized
    a2050, b2050 = ops[C2050.name]
    assert b2050.start < a2050.end  # dual engines: concurrent
