"""Chaos benchmarks: solver cost under increasing comms fault rates.

The reliable-update solvers of Section V are the natural consumer of
fault injection: a retried or jittered exchange is just extra model time
on the critical path, which the overlapped communication strategy of
Section VI-D2 may or may not hide.  These benches sweep fault intensity
and report time-to-completion and retry counts, and check the headline
property: faults perturb *time*, never results.
"""

import numpy as np

from repro.bench.harness import chaos_solve
from repro.comms import FaultPlan

DIMS = (8, 8, 8, 32)
GPUS = 4
ITERS = 10


def test_jitter_sweep(run_once):
    """Time-to-completion vs latency-jitter probability."""

    def sweep():
        rows = []
        for prob in (0.0, 0.1, 0.3, 0.6):
            plan = FaultPlan.jittery(seed=11, prob=prob)
            rep = chaos_solve(DIMS, "single-half", GPUS, plan,
                              fixed_iterations=ITERS)
            assert rep.completed
            rows.append((prob, rep.model_time, rep.injected_delay_s))
        return rows

    rows = run_once(sweep)
    print("\njitter prob   solve (us)   injected (us)")
    for prob, t, inj in rows:
        print(f"{prob:11.2f} {t * 1e6:12.1f} {inj * 1e6:15.1f}")
    # More jitter => strictly more injected delay and a slower solve.
    times = [t for _, t, _ in rows]
    injected = [i for _, _, i in rows]
    assert injected == sorted(injected)
    assert times[-1] > times[0]
    # The solve slows by at most the injected delay: the overlap strategy
    # hides some of it behind the interior kernel.
    assert times[-1] - times[0] <= injected[-1] + 1e-9


def test_retry_sweep(run_once):
    """Retry counts and backoff cost vs transient send-failure rate."""

    def sweep():
        rows = []
        for prob in (0.0, 0.05, 0.2, 0.5):
            plan = FaultPlan.flaky(seed=13, fail_prob=prob)
            rep = chaos_solve(DIMS, "single-half", GPUS, plan,
                              fixed_iterations=ITERS)
            assert rep.completed
            rows.append((prob, rep.retries, rep.model_time))
        return rows

    rows = run_once(sweep)
    print("\nfail prob   retries   solve (us)")
    for prob, retries, t in rows:
        print(f"{prob:9.2f} {retries:9d} {t * 1e6:12.1f}")
    retries = [r for _, r, _ in rows]
    assert retries[0] == 0 and retries == sorted(retries) and retries[-1] > 0
    times = [t for _, _, t in rows]
    assert times[-1] > times[0]


def test_overlap_hides_jitter(run_once):
    """The overlapped strategy absorbs more of the injected latency than
    the serial exchange — chaos quantifies the paper's overlap payoff."""

    def measure():
        out = {}
        for overlap in (True, False):
            plan = FaultPlan.jittery(seed=17, prob=0.4)
            clean = chaos_solve(DIMS, "single-half", GPUS, FaultPlan(seed=17),
                                overlap=overlap, fixed_iterations=ITERS)
            noisy = chaos_solve(DIMS, "single-half", GPUS, plan,
                                overlap=overlap, fixed_iterations=ITERS)
            out[overlap] = (noisy.model_time - clean.model_time,
                            noisy.injected_delay_s)
        return out

    out = run_once(measure)
    slow_overlap, inj_overlap = out[True]
    slow_serial, inj_serial = out[False]
    print(f"\noverlap: +{slow_overlap * 1e6:.1f} us of {inj_overlap * 1e6:.1f} "
          f"injected; serial: +{slow_serial * 1e6:.1f} us of "
          f"{inj_serial * 1e6:.1f} injected")
    # Identical communication pattern => identical injected schedule.
    assert np.isclose(inj_overlap, inj_serial)
    # Hidden fraction is at least as good with overlap on.
    assert slow_overlap <= slow_serial + 1e-9


def test_schedule_deterministic(run_once):
    """Same seed => byte-identical fault schedule and model time."""

    def twice():
        plan = FaultPlan.jittery(seed=7, prob=0.3).with_stall(2, after_s=5e-4)
        return [chaos_solve(DIMS, "single-half", GPUS, plan,
                            fixed_iterations=ITERS) for _ in range(2)]

    a, b = run_once(twice)
    assert a.fault_events == b.fault_events
    assert a.completed == b.completed is False
    assert (a.failure.rank, a.failure.model_time) == (
        b.failure.rank, b.failure.model_time
    )
