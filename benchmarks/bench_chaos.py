"""Chaos benchmarks: solver cost under increasing comms fault rates.

The reliable-update solvers of Section V are the natural consumer of
fault injection: a retried or jittered exchange is just extra model time
on the critical path, which the overlapped communication strategy of
Section VI-D2 may or may not hide.  These benches sweep fault intensity
and report time-to-completion and retry counts, and check the headline
property: faults perturb *time*, never results.
"""

import numpy as np
import pytest

from repro.bench.harness import chaos_invert, chaos_solve
from repro.comms import FaultPlan, IntegrityPolicy
from repro.core import RetryPolicy

DIMS = (8, 8, 8, 32)
GPUS = 4
ITERS = 10


def test_jitter_sweep(run_once):
    """Time-to-completion vs latency-jitter probability."""

    def sweep():
        rows = []
        for prob in (0.0, 0.1, 0.3, 0.6):
            plan = FaultPlan.jittery(seed=11, prob=prob)
            rep = chaos_solve(DIMS, "single-half", GPUS, plan,
                              fixed_iterations=ITERS)
            assert rep.completed
            rows.append((prob, rep.model_time, rep.injected_delay_s))
        return rows

    rows = run_once(sweep)
    print("\njitter prob   solve (us)   injected (us)")
    for prob, t, inj in rows:
        print(f"{prob:11.2f} {t * 1e6:12.1f} {inj * 1e6:15.1f}")
    # More jitter => strictly more injected delay and a slower solve.
    times = [t for _, t, _ in rows]
    injected = [i for _, _, i in rows]
    assert injected == sorted(injected)
    assert times[-1] > times[0]
    # The solve slows by at most the injected delay: the overlap strategy
    # hides some of it behind the interior kernel.
    assert times[-1] - times[0] <= injected[-1] + 1e-9


def test_retry_sweep(run_once):
    """Retry counts and backoff cost vs transient send-failure rate."""

    def sweep():
        rows = []
        for prob in (0.0, 0.05, 0.2, 0.5):
            plan = FaultPlan.flaky(seed=13, fail_prob=prob)
            rep = chaos_solve(DIMS, "single-half", GPUS, plan,
                              fixed_iterations=ITERS)
            assert rep.completed
            rows.append((prob, rep.retries, rep.model_time))
        return rows

    rows = run_once(sweep)
    print("\nfail prob   retries   solve (us)")
    for prob, retries, t in rows:
        print(f"{prob:9.2f} {retries:9d} {t * 1e6:12.1f}")
    retries = [r for _, r, _ in rows]
    assert retries[0] == 0 and retries == sorted(retries) and retries[-1] > 0
    times = [t for _, _, t in rows]
    assert times[-1] > times[0]


def test_overlap_hides_jitter(run_once):
    """The overlapped strategy absorbs more of the injected latency than
    the serial exchange — chaos quantifies the paper's overlap payoff."""

    def measure():
        out = {}
        for overlap in (True, False):
            plan = FaultPlan.jittery(seed=17, prob=0.4)
            clean = chaos_solve(DIMS, "single-half", GPUS, FaultPlan(seed=17),
                                overlap=overlap, fixed_iterations=ITERS)
            noisy = chaos_solve(DIMS, "single-half", GPUS, plan,
                                overlap=overlap, fixed_iterations=ITERS)
            out[overlap] = (noisy.model_time - clean.model_time,
                            noisy.injected_delay_s)
        return out

    out = run_once(measure)
    slow_overlap, inj_overlap = out[True]
    slow_serial, inj_serial = out[False]
    print(f"\noverlap: +{slow_overlap * 1e6:.1f} us of {inj_overlap * 1e6:.1f} "
          f"injected; serial: +{slow_serial * 1e6:.1f} us of "
          f"{inj_serial * 1e6:.1f} injected")
    # Identical communication pattern => identical injected schedule.
    assert np.isclose(inj_overlap, inj_serial)
    # Hidden fraction is at least as good with overlap on.
    assert slow_overlap <= slow_serial + 1e-9


def test_schedule_deterministic(run_once):
    """Same seed => byte-identical fault schedule and model time."""

    def twice():
        plan = FaultPlan.jittery(seed=7, prob=0.3).with_stall(2, after_s=5e-4)
        return [chaos_solve(DIMS, "single-half", GPUS, plan,
                            fixed_iterations=ITERS) for _ in range(2)]

    a, b = run_once(twice)
    assert a.fault_events == b.fault_events
    assert a.completed == b.completed is False
    assert (a.failure.rank, a.failure.model_time) == (
        b.failure.rank, b.failure.model_time
    )


def test_recovery_overhead_curve(run_once):
    """Self-healing cost vs crash time: a rank killed later throws away
    more of the failed attempt, so the lost model time grows monotonically
    with the crash point while every run still completes."""

    def sweep():
        policy = RetryPolicy(max_attempts=2)
        baseline = chaos_solve(DIMS, "single-half", GPUS, FaultPlan(seed=23),
                               fixed_iterations=ITERS, retry_policy=policy)
        assert baseline.completed and baseline.recoveries == 0
        rows = []
        for crash_us in (500.0, 2000.0, 8000.0, 20000.0):
            plan = FaultPlan(seed=23).with_stall(
                1, after_s=crash_us * 1e-6, mode="crash"
            )
            rep = chaos_solve(DIMS, "single-half", GPUS, plan,
                              fixed_iterations=ITERS, retry_policy=policy)
            assert rep.completed and rep.recoveries >= 1
            rows.append((crash_us, rep.model_time, rep.lost_time_s,
                         rep.final_ranks))
        return baseline.model_time, rows

    clean_time, rows = run_once(sweep)
    print(f"\nhealthy solve: {clean_time * 1e6:12.1f} us on {GPUS} ranks")
    print("crash (us)   solve (us)    lost (us)   final ranks")
    for crash_us, t, lost, ranks in rows:
        print(f"{crash_us:10.0f} {t * 1e6:12.1f} {lost * 1e6:12.1f} {ranks:13d}")
    lost = [lo for _, _, lo, _ in rows]
    # Dying later wastes more of the failed attempt ...
    assert lost == sorted(lost) and lost[0] > 0
    # ... and the reported solve time honestly includes that waste.  (The
    # total can still beat the healthy 4-rank run: the relaunched 2-rank
    # world spends less on communication at this volume — the strong-
    # scaling tradeoff of Section VII.)
    assert all(t > lo for _, t, lo, _ in rows)


def test_functional_recovery_matches_healthy(run_once):
    """A crashed-and-recovered *functional* solve converges to the same
    tolerance as the uninterrupted solve, at a quantified time premium."""

    dims = (4, 4, 4, 8)

    def measure():
        policy = RetryPolicy(max_attempts=2)
        healthy = chaos_invert(dims, "single-half", GPUS, FaultPlan(seed=5),
                               retry_policy=policy)
        plan = FaultPlan(seed=5).with_stall(1, after_s=0.03, mode="crash")
        recovered = chaos_invert(dims, "single-half", GPUS, plan,
                                 retry_policy=policy)
        return healthy, recovered

    healthy, recovered = run_once(measure)
    print(f"\nhealthy:   {healthy.model_time * 1e6:10.1f} us, "
          f"true residual {healthy.true_residual:.3e}")
    print(f"recovered: {recovered.model_time * 1e6:10.1f} us, "
          f"true residual {recovered.true_residual:.3e} "
          f"({recovered.recoveries} relaunch, "
          f"{recovered.lost_time_s * 1e6:.1f} us lost, "
          f"{recovered.final_ranks} ranks)")
    assert healthy.converged and healthy.recoveries == 0
    assert recovered.converged and recovered.recoveries >= 1
    assert recovered.true_residual < 1e-6
    assert recovered.model_time > healthy.model_time


def test_integrity_overhead(run_once):
    """Checksummed halo exchange costs < 10% model time — the protection
    is cheap because hashing is memory-bound and the faces are small
    relative to the interior kernel work."""

    def measure():
        plan = FaultPlan(seed=29)  # fault-free: pure protection cost
        off = chaos_solve(DIMS, "single-half", GPUS, plan,
                          fixed_iterations=ITERS,
                          integrity=IntegrityPolicy.off())
        on = chaos_solve(DIMS, "single-half", GPUS, plan,
                         fixed_iterations=ITERS,
                         integrity=IntegrityPolicy())
        return off, on

    off, on = run_once(measure)
    overhead = (on.model_time - off.model_time) / off.model_time
    print(f"\nunprotected: {off.model_time * 1e6:12.1f} us")
    print(f"checksummed: {on.model_time * 1e6:12.1f} us "
          f"(+{overhead * 100:.2f}%, "
          f"{on.integrity_overhead_s * 1e6:.1f} us hashing/verify)")
    assert on.integrity_overhead_s > 0
    assert off.integrity_overhead_s == 0.0
    assert 0.0 <= overhead < 0.10


@pytest.mark.slow
def test_corruption_rate_sweep(run_once):
    """Detection/repair accounting vs bit-flip probability: every injected
    corruption is either corrected by resend or escalated loudly — none
    pass silently — and repair cost grows with the corruption rate."""

    def sweep():
        rows = []
        for prob in (0.0, 0.01, 0.05, 0.2):
            plan = FaultPlan.corrupting(seed=31, bitflip_prob=prob)
            rep = chaos_solve(DIMS, "single-half", GPUS, plan,
                              fixed_iterations=ITERS)
            injected = sum(
                1 for e in rep.fault_events
                if e.kind in ("bitflip", "scribble")
            )
            rows.append((prob, injected, rep.corruptions_detected,
                         rep.corruptions_corrected, rep.completed))
        return rows

    rows = run_once(sweep)
    print("\nflip prob   injected   detected   corrected   completed")
    for prob, inj, det, cor, done in rows:
        print(f"{prob:9.2f} {inj:10d} {det:10d} {cor:11d} {str(done):>11s}")
    assert rows[0][1] == 0 and rows[0][4]  # clean baseline completes
    for prob, injected, detected, corrected, completed in rows[1:]:
        if injected:
            assert detected >= injected  # nothing passes silently
            # A corrupted resend is detected again before it is repaired,
            # so detections can exceed corrections; a run completes only
            # by repairing every damaged message it saw.
            assert detected >= corrected
            if completed:
                assert corrected >= 1
    injected_counts = [inj for _, inj, _, _, _ in rows]
    assert injected_counts == sorted(injected_counts)
