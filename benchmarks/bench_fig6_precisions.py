"""Fig. 6: strong scaling of all four precision modes (non-overlapped)."""

from conftest import BENCH_ITERATIONS
from repro.bench import fig6


def _check_fig6(exp) -> None:
    at = lambda label, n: exp.series_by_label(f"{label}, not overlapped").at(n)  # noqa: E731
    # "the mixed precision solvers employing half precision outperform
    # both single and double uniform precision solvers"
    for n in (8, 16, 32):
        assert at("single-half", n) > at("single", n)
        assert at("double-half", n) > at("double", n)
        assert at("double-half", n) > at("single", n)

    # "uniform double precision exhibits the best strong scaling of all
    # because this kernel is less bandwidth bound" — parallel efficiency
    # from 2 to 32 GPUs.
    def efficiency(label):
        s = exp.series_by_label(f"{label}, not overlapped")
        return (s.at(32) / 32) / (s.at(2) / 2)

    e_double = efficiency("double")
    for other in ("single", "single-half", "double-half"):
        assert e_double >= efficiency(other), other


def test_fig6(run_once, record_experiment):
    exp = run_once(lambda: fig6(iterations=BENCH_ITERATIONS))
    record_experiment(exp)
    _check_fig6(exp)
