#!/usr/bin/env python
"""Bench-regression guard: re-run the service benchmark and compare it
against the committed ``BENCH_service.json`` baseline.

The service benchmarks are *model-time* measurements — pure functions of
the schedule, not of the machine running them — so any drift is a real
behaviour change in the scheduler/placement stack, not noise.  The
tolerance exists only for intentional recalibration headroom: a change
that moves batched-vs-unbatched speedup or the placement hit rates by
more than ``TOLERANCE`` must regenerate the baseline deliberately
(``python -c "from repro.bench.harness import write_service_bench;
write_service_bench()"``), not slip through CI.

Usage::

    python benchmarks/check_service_regression.py [BASELINE_JSON]

Exits non-zero on any out-of-tolerance metric.
"""

import json
import pathlib
import sys

TOLERANCE = 0.15  # +/-15% (model-time metrics: pure functions, no noise)
#: Wall-clock speedup drift band (the raw-speed refactor's before/after
#: ratio is dimensionless and roughly machine-portable, but it is still
#: a wall measurement).
THROUGHPUT_TOLERANCE = 0.20  # +/-20%
#: Acceptance floor for the raw-speed refactor: the fastpath must keep
#: the saturated-campaign wall throughput at least this many times the
#: legacy paths.
SPEEDUP_FLOOR = 5.0


def _within(name: str, measured: float, baseline: float) -> bool:
    if baseline == 0:
        ok = measured == 0
    else:
        ok = abs(measured - baseline) <= TOLERANCE * abs(baseline)
    verdict = "ok" if ok else f"REGRESSION (tolerance {TOLERANCE:.0%})"
    print(f"{name:42s} measured {measured:8.4f}  baseline {baseline:8.4f}  {verdict}")
    return ok


def main(argv: list[str]) -> int:
    baseline_path = pathlib.Path(
        argv[1] if len(argv) > 1 else
        pathlib.Path(__file__).resolve().parent.parent / "BENCH_service.json"
    )
    baseline = json.loads(baseline_path.read_text())
    campaign = baseline["campaign"]

    from repro.bench.harness import service_benchmark

    fresh = service_benchmark(
        campaign["requests"],
        dims=tuple(campaign["dims"]),
        mode=campaign["mode"],
        workers=campaign["workers"],
        ranks=campaign["ranks_per_worker"],
        max_batch=campaign["max_batch"],
        rate_rps=campaign["rate_rps"],
        iterations=campaign["iterations"],
        seed=campaign["seed"],
    )

    checks = [
        _within(
            "batched_vs_unbatched_throughput",
            fresh["batched_vs_unbatched_throughput"],
            baseline["batched_vs_unbatched_throughput"],
        ),
        _within(
            "batched.placement.residency_hit_rate",
            fresh["batched"]["placement"]["residency_hit_rate"],
            baseline["batched"]["placement"]["residency_hit_rate"],
        ),
        _within(
            "batched.placement.tunecache_hit_rate",
            fresh["batched"]["placement"]["tunecache_hit_rate"],
            baseline["batched"]["placement"]["tunecache_hit_rate"],
        ),
        _within(
            "batched.throughput_rps",
            fresh["batched"]["throughput_rps"],
            baseline["batched"]["throughput_rps"],
        ),
    ]

    if "resilience" in baseline:
        from repro.bench.harness import resilience_benchmark

        rc = baseline["resilience"]["campaign"]
        fresh_res = resilience_benchmark(
            rc["requests"],
            dims=tuple(rc["dims"]),
            mode=rc["mode"],
            workers=rc["workers"],
            ranks=rc["ranks_per_worker"],
            max_batch=rc["max_batch"],
            base_rps=rc["base_rps"],
            burst_rps=rc["burst_rps"],
            burst_start_s=rc["burst_start_ms"] * 1e-3,
            burst_len_s=rc["burst_len_ms"] * 1e-3,
            deadline_slack_s=rc["deadline_slack_ms"] * 1e-3,
            straggler_factor=rc["straggler_factor"],
            iterations=rc["iterations"],
            seed=rc["seed"],
        )
        on = fresh_res["resilience_on"]
        base_on = baseline["resilience"]["resilience_on"]
        checks += [
            _within(
                "resilience.high_p99_off_vs_on",
                fresh_res["high_p99_off_vs_on"],
                baseline["resilience"]["high_p99_off_vs_on"],
            ),
            _within(
                "resilience_on.quarantines",
                on["quarantines"],
                base_on["quarantines"],
            ),
            _within(
                "resilience_on.shed_low",
                on["shed_low"],
                base_on["shed_low"],
            ),
            _within(
                "resilience_on.slo_attainment",
                on["slo_attainment"],
                base_on["slo_attainment"],
            ),
        ]

    if "domain_resilience" in baseline:
        from repro.bench.harness import domain_resilience_benchmark

        dc = baseline["domain_resilience"]["campaign"]
        nodes, rest = dc["topology"].split("x")
        wpn, racks = rest.split("@")
        fresh_dom = domain_resilience_benchmark(
            dc["requests"],
            dims=tuple(dc["dims"]),
            mode=dc["mode"],
            ranks=dc["ranks_per_worker"],
            nodes=int(nodes),
            workers_per_node=int(wpn),
            racks=int(racks),
            max_batch=dc["max_batch"],
            base_rps=dc["base_rps"],
            burst_rps=dc["burst_rps"],
            burst_start_s=dc["burst_start_ms"] * 1e-3,
            burst_len_s=dc["burst_len_ms"] * 1e-3,
            kill_node=dc["kill_node"],
            kill_at_s=dc["kill_at_ms"] * 1e-3,
            partition_rack=dc["partition_rack"],
            partition_at_s=dc["partition_at_ms"] * 1e-3,
            heal_mean_s=dc["heal_mean_ms"] * 1e-3,
            iterations=dc["iterations"],
            n_configs=dc["n_configs"],
            seed=dc["seed"],
        )
        base_dom = baseline["domain_resilience"]
        # Acceptance invariants, not just drift: domain-aware isolation
        # must stay strictly faster than one-ledger-at-a-time discovery,
        # HIGH p99 no worse, nothing lost, and the mirror leg exercised.
        isolate_gain = fresh_dom["isolate_off_vs_on"] or 0.0
        invariants = (
            isolate_gain > 1.0
            and fresh_dom["high_p99_off_vs_on"] >= 1.0
            and fresh_dom["domain_on"]["failed"] == 0
            and fresh_dom["domain_off"]["failed"] == 0
            and fresh_dom["mirror_resume"]["mirror_restores"] >= 1
            and fresh_dom["mirror_resume"]["failed"] == 0
        )
        print(
            f"{'domain_resilience.invariants':42s} "
            f"{'ok' if invariants else 'VIOLATED'}"
        )
        checks += [
            invariants,
            _within(
                "domain_resilience.isolate_off_vs_on",
                isolate_gain,
                base_dom["isolate_off_vs_on"],
            ),
            _within(
                "domain_resilience.high_p99_off_vs_on",
                fresh_dom["high_p99_off_vs_on"],
                base_dom["high_p99_off_vs_on"],
            ),
            _within(
                "domain_on.domains.nodes_killed",
                fresh_dom["domain_on"]["domains"]["nodes_killed"],
                base_dom["domain_on"]["domains"]["nodes_killed"],
            ),
            _within(
                "domain_on.domains.partition_heals",
                fresh_dom["domain_on"]["domains"]["partition_heals"],
                base_dom["domain_on"]["domains"]["partition_heals"],
            ),
        ]

    if "capacity_map" in baseline:
        from repro.bench.harness import capacity_sweep

        cc = baseline["capacity_map"]["campaign"]
        fresh_cap = capacity_sweep(
            cc["requests"],
            dims=tuple(cc["dims"]),
            mode=cc["mode"],
            ranks=cc["ranks_per_worker"],
            max_batch=cc["max_batch"],
            rates=tuple(cc["rates_rps"]),
            workers=tuple(cc["workers"]),
            deadline_slack_s=cc["deadline_slack_ms"] * 1e-3,
            iterations=cc["iterations"],
            seed=cc["seed"],
        )
        base_cap = baseline["capacity_map"]
        # Hard invariants, not just drift:
        # * no cell loses a request (completed+failed+rejected == submitted);
        # * past each series' knee, SLO attainment degrades monotonically
        #   with offered load (small slack for nearest-rank percentile
        #   quantization);
        # * equal-weight tenants split saturated dispatch within 1.25x;
        # * 3:1 weights hold saturated shares within 20% of 3:1.
        lost_ok = all(c["lost"] == 0 for c in fresh_cap["cells"])
        monotone_ok = True
        for k in fresh_cap["knees"]:
            if k["knee_rate_rps"] is None:
                continue
            series = sorted(
                (
                    c
                    for c in fresh_cap["cells"]
                    if c["mix"] == k["mix"]
                    and c["workers"] == k["workers"]
                    and c["rate_rps"] >= k["knee_rate_rps"]
                ),
                key=lambda c: c["rate_rps"],
            )
            for earlier, later in zip(series, series[1:]):
                if later["slo_attainment"] > earlier["slo_attainment"] + 0.02:
                    monotone_ok = False
        equal_fair = fresh_cap["fairness"]["equal"]["imbalance"] <= 1.25
        weighted_fair = (
            fresh_cap["fairness"]["weighted_3to1"]["imbalance"] <= 1.20
        )
        for name, ok in (
            ("capacity_map.zero_lost", lost_ok),
            ("capacity_map.slo_monotone_past_knee", monotone_ok),
            ("capacity_map.equal_weight_fairness", equal_fair),
            ("capacity_map.weighted_3to1_fairness", weighted_fair),
        ):
            print(f"{name:42s} {'ok' if ok else 'VIOLATED'}")
        checks += [lost_ok, monotone_ok, equal_fair, weighted_fair]
        # Drift guards: the knees and the saturated shares are the
        # capacity contract; a silent shift is a scheduler change.
        fresh_knees = {
            (k["mix"], k["workers"]): k["knee_rate_rps"]
            for k in fresh_cap["knees"]
        }
        for k in base_cap["knees"]:
            base_knee = k["knee_rate_rps"]
            fresh_knee = fresh_knees.get((k["mix"], k["workers"]))
            checks.append(
                _within(
                    f"capacity_map.knee[{k['mix']}@{k['workers']}w]",
                    fresh_knee if fresh_knee is not None else 0.0,
                    base_knee if base_knee is not None else 0.0,
                )
            )
        for mix_name, base_fair in base_cap["fairness"].items():
            for tenant, share in base_fair["shares"].items():
                checks.append(
                    _within(
                        f"capacity_map.share[{mix_name}:{tenant}]",
                        fresh_cap["fairness"][mix_name]["shares"][tenant],
                        share,
                    )
                )

    if "throughput" in baseline:
        from repro.bench.harness import throughput_benchmark

        tc = dict(baseline["throughput"]["campaign"])
        fresh_thr = throughput_benchmark(
            tc.pop("requests"),
            warmup_requests=tc.pop("warmup_requests"),
            repeats=tc.pop("repeats"),
            dims=tuple(tc.pop("dims", (4, 4, 4, 8))),
            rate_rps=tc.pop("rate_rps", 20000.0),
            max_batch=tc.pop("max_batch"),
            workers=tc.pop("workers"),
            ranks=tc.pop("ranks_per_worker"),
            queue_capacity=tc.pop("queue_capacity"),
            iterations=tc.pop("iterations"),
            seed=tc.pop("seed", 7),
        )
        # Wall-clock rps is machine-specific, so only the dimensionless
        # speedup is held to the baseline (THROUGHPUT_TOLERANCE, wider
        # than the model-time TOLERANCE because wall time is noisy even
        # best-of-N) — plus the raw-speed refactor's acceptance floor.
        floor_ok = fresh_thr["speedup"] >= SPEEDUP_FLOOR
        print(
            f"{'throughput.speedup_floor':42s} measured "
            f"{fresh_thr['speedup']:8.4f}  floor    {SPEEDUP_FLOOR:8.4f}  "
            f"{'ok' if floor_ok else 'REGRESSION'}"
        )
        base_speedup = baseline["throughput"]["speedup"]
        drift = abs(fresh_thr["speedup"] - base_speedup) / base_speedup
        drift_ok = drift <= THROUGHPUT_TOLERANCE
        print(
            f"{'throughput.speedup':42s} measured "
            f"{fresh_thr['speedup']:8.4f}  baseline {base_speedup:8.4f}  "
            f"{'ok' if drift_ok else f'REGRESSION (tolerance {THROUGHPUT_TOLERANCE:.0%})'}"
        )
        checks += [floor_ok, drift_ok]

    if all(checks):
        print("service bench within tolerance of baseline")
        return 0
    print(
        "service bench regressed against BENCH_service.json; if the "
        "change is intentional, regenerate the baseline with "
        "write_service_bench()",
        file=sys.stderr,
    )
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
