"""Ablations of the design choices DESIGN.md calls out.

Each bench switches one of the paper's optimizations off and measures the
cost: the pad vs partition camping (Section V-B), 2-row gauge compression
(V-C1), the non-relativistic-basis face halving (V-C2 / VI-C), half
precision (V-C3), and reliable updates vs defect correction (V-D).
"""

import numpy as np

from repro.core import QudaGaugeParam, invert, invert_model, paper_invert_param
from repro.gpu import GTX285, Precision
from repro.gpu.layout import FieldLayout
from repro.gpu.perfmodel import DEFAULT_PARAMS, kernel_time


def test_partition_camping_ablation(run_once):
    """Section V-B: padding the fields avoids partition camping."""
    # Layout-level: power-of-two volume camps only without the pad.
    lay = FieldLayout(sites=2**15, internal_reals=24, nvec=4, pad_sites=0)
    assert lay.partition_camping(Precision.SINGLE, GTX285)
    padded = FieldLayout(sites=2**15, internal_reals=24, nvec=4, pad_sites=2048)
    assert not padded.partition_camping(Precision.SINGLE, GTX285)
    # Kernel-level penalty.
    t_ok = kernel_time(GTX285, DEFAULT_PARAMS, Precision.SINGLE, 10**8, 10**6)
    t_camp = kernel_time(
        GTX285, DEFAULT_PARAMS, Precision.SINGLE, 10**8, 10**6, camping=True
    )
    assert t_camp / t_ok > 1.5

    # End-to-end: disabling the pad on a camping-prone volume slows the
    # solve (the paper's observed "unexpected loss of performance for
    # certain problem sizes").
    def end_to_end():
        inv = paper_invert_param("single", fixed_iterations=10)
        dims = (16, 16, 16, 16)
        padded = invert_model(
            dims, inv, n_gpus=1, enforce_memory=False,
            gauge_param=QudaGaugeParam(pad_spatial_volume=True),
        )
        unpadded = invert_model(
            dims, inv, n_gpus=1, enforce_memory=False,
            gauge_param=QudaGaugeParam(pad_spatial_volume=False),
        )
        return padded.stats.sustained_gflops / unpadded.stats.sustained_gflops

    ratio = run_once(end_to_end)
    print(f"\npad vs no-pad speedup on 16^4: {ratio:.2f}x")
    assert ratio > 1.2


def test_gauge_compression_ablation(run_once):
    """Section V-C1: 12-number storage cuts gauge traffic by a third —
    faster, and numerically identical (unitarity-exact reconstruction)."""

    def end_to_end():
        inv = paper_invert_param("single", fixed_iterations=10)
        dims = (24, 24, 24, 32)
        out = []
        for flag in (True, False):
            res = invert_model(
                dims, inv, n_gpus=1, enforce_memory=False,
                gauge_param=QudaGaugeParam(reconstruct_12=flag),
            )
            out.append(res.stats.sustained_gflops)
        return out

    fast, slow = run_once(end_to_end)
    ratio = fast / slow
    print(f"\n12-number compression speedup: {ratio:.2f}x")
    assert 1.04 < ratio < 1.30

    # Numerics unchanged (double precision, 2 GPUs).
    from repro.lattice import LatticeGeometry, random_spinor, weak_field_gauge

    rng = np.random.default_rng(3)
    geo = LatticeGeometry((4, 4, 4, 4))
    gauge = weak_field_gauge(geo, rng, 0.1)
    src = random_spinor(geo, rng)
    inv = paper_invert_param("double", mass=0.2)
    sols = [
        invert(
            gauge, src, inv, n_gpus=2,
            gauge_param=QudaGaugeParam(precision="double", reconstruct_12=flag),
        ).solution.data
        for flag in (True, False)
    ]
    np.testing.assert_allclose(sols[0], sols[1], atol=1e-10)


def test_face_traffic_is_half_a_spinor(run_once):
    """Section V-C2 / VI-C: the projected face carries 12 reals per site
    (half of a 24-real spinor) thanks to the non-relativistic basis."""
    from repro.gpu import DeviceSpinorField, VirtualGPU

    def measure():
        gpu = VirtualGPU(enforce_memory=False)
        f = DeviceSpinorField(
            gpu, sites=1024, precision=Precision.SINGLE, face_sites=128
        )
        return f.face_message_bytes()

    face_bytes = run_once(measure)
    assert face_bytes == (128 * 24 * 4) // 2


def test_half_precision_speedup(run_once):
    """Section V-C3: half-precision storage roughly doubles the rate."""

    def measure():
        dims = (24, 24, 24, 32)
        rates = {}
        for mode in ("single", "single-half"):
            inv = paper_invert_param(mode, fixed_iterations=10)
            rates[mode] = invert_model(
                dims, inv, n_gpus=1, enforce_memory=False
            ).stats.sustained_gflops
        return rates

    rates = run_once(measure)
    ratio = rates["single-half"] / rates["single"]
    print(f"\nmixed single-half vs uniform single: {ratio:.2f}x")
    assert 1.3 < ratio < 2.2


def test_reliable_updates_vs_defect_correction(run_once):
    """Section V-D: defect correction 'increases the total number of
    solver iterations' vs reliable updates (functional comparison)."""
    from repro.lattice import LatticeGeometry, random_spinor, weak_field_gauge

    def measure():
        rng = np.random.default_rng(17)
        geo = LatticeGeometry((4, 4, 4, 8))
        gauge = weak_field_gauge(geo, rng, 0.15)
        src = random_spinor(geo, rng)
        reliable = invert(
            gauge, src,
            paper_invert_param("double-half", mass=0.2, tol=1e-10),
            n_gpus=1,
        )
        defect = invert(
            gauge, src,
            paper_invert_param(
                "double-half", mass=0.2, tol=1e-10, use_defect_correction=True
            ),
            n_gpus=1,
        )
        return reliable, defect

    reliable, defect = run_once(measure)
    print(
        f"\nreliable updates: {reliable.stats.iterations} sloppy iters "
        f"({reliable.stats.reliable_updates} refreshes); defect "
        f"correction: {defect.stats.iterations} sloppy iters "
        f"({defect.stats.reliable_updates} restarts)"
    )
    assert reliable.stats.converged and defect.stats.converged
    assert defect.stats.iterations >= reliable.stats.iterations
