"""Table I: specifications of representative NVIDIA graphics cards."""

from repro.bench import table1
from repro.gpu.specs import TABLE_I


def test_table1(run_once):
    text = run_once(table1)
    print("\n" + text)
    # The six rows of Table I, with the GTX 285 values verbatim.
    assert len(TABLE_I) == 6
    assert "GeForce GTX 285" in text and "159.0" in text and "1062.0" in text
