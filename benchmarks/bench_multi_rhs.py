"""Multi-RHS amortization: the economics of Section VIII's workloads.

"The calculations involve 32768 calls to the solver for each
configuration and benefit enormously from the speedup delivered by the
GPU solver."  One setup (gauge upload, ghost exchange, clover inversion,
autotuning) must amortize over many solves; this bench measures the
per-solve model time of ``invert_multi`` against one-``invert``-per-source.
"""

import numpy as np

from repro.core import invert, invert_multi, paper_invert_param
from repro.lattice import LatticeGeometry, point_source, weak_field_gauge

N_SOURCES = 6


def test_multi_rhs_amortizes_setup(run_once):
    def measure():
        geo = LatticeGeometry((4, 4, 4, 8))
        rng = np.random.default_rng(12)
        gauge = weak_field_gauge(geo, rng, noise=0.1)
        inv = paper_invert_param("single-half", mass=0.3)
        sources = [
            point_source(geo, spin=s, color=c)
            for s in range(2)
            for c in range(3)
        ][:N_SOURCES]
        # Amortized: one setup, N solver loops.
        multi = invert_multi(gauge, sources, inv, n_gpus=2, verify=False)
        # Naive: N independent invert() calls (setup paid every time).
        singles = [
            invert(gauge, s, inv, n_gpus=2, verify=False) for s in sources
        ]
        return multi, singles

    multi, singles = run_once(measure)
    # Same numerics either way.
    for m, s in zip(multi, singles):
        assert m.stats.converged and s.stats.converged
        assert m.stats.iterations == s.stats.iterations
        np.testing.assert_allclose(
            m.solution.data, s.solution.data, atol=1e-6
        )
    # The amortization is in the *setup* (gauge/clover upload, ghost
    # exchange): each solve's t_start marks how much schedule ran before
    # it.  The multi-RHS campaign pays setup once; the naive loop pays it
    # per source.
    multi_setup = multi[0].per_rank[0].t_start
    naive_setup = sum(s.per_rank[0].t_start for s in singles)
    multi_total = multi[-1].per_rank[0].t_end
    naive_total = sum(s.per_rank[0].t_end for s in singles)
    print(
        f"\n{N_SOURCES} solves: setup {multi_setup * 1e3:.2f} ms once "
        f"(amortized) vs {naive_setup * 1e3:.2f} ms repeated; campaign "
        f"{multi_total * 1e3:.1f} ms vs {naive_total * 1e3:.1f} ms"
    )
    assert multi_setup < naive_setup / (N_SOURCES - 1)
    # And the total campaign never regresses (within scheduling noise of
    # the solve windows themselves).
    assert multi_total < 1.02 * naive_total
