"""Section VII-C memory feasibility: which 32^3 x 256 configurations fit
on 2 GiB cards — the '4 GPUs for single, 8 for mixed' result."""

from repro.bench import memory_footprint


def _check(exp) -> None:
    # "The uniform single precision solver ... can be solved (at a
    # performance cost) already on 4 GPUs."
    assert exp.series_by_label("single").at(4) == 1.0
    # "at least 8 GPUs are needed to solve this system" (mixed).
    assert exp.series_by_label("single-half").at(4) is None
    assert exp.series_by_label("single-half").at(8) == 1.0
    # Nothing fits on 2 GPUs; everything fits on 32.
    for s in exp.series:
        assert s.at(2) is None
        assert s.at(32) == 1.0


def test_memory_footprint(run_once, record_experiment):
    exp = run_once(memory_footprint)
    record_experiment(exp)
    _check(exp)
