"""Fig. 7: the PCIe latency microbenchmark (cudaMemcpy vs Async)."""

from repro.bench import fig7


def _check_fig7(exp) -> None:
    sync = exp.series_by_label("cudaMemcpy - device to host")
    async_ = exp.series_by_label("cudaMemcpyAsync - device to host")
    # "~11 us" synchronous vs "just under 50 us" asynchronous latency.
    assert 10 < sync.at(1024) < 13
    assert 45 < async_.at(1024) < 50
    # The gap washes out for large messages (bandwidth dominated).
    assert async_.at(1024) / sync.at(1024) > 3.5
    assert async_.at(262144) / sync.at(262144) < 1.6
    # "different gradients for the host-to-device and device-to-host
    # transfers" — the early-revision Intel 5520 chipset quirk.
    h2d = exp.series_by_label("cudaMemcpy - host to device")
    slope_d2h = sync.at(262144) - sync.at(1024)
    slope_h2d = h2d.at(262144) - h2d.at(1024)
    assert slope_d2h > 1.2 * slope_h2d
    # Transfer time is monotone in message size for all four curves.
    for s in exp.series:
        assert s.y == sorted(s.y)


def test_fig7(run_once, record_experiment):
    exp = run_once(fig7)
    record_experiment(exp)
    _check_fig7(exp)
