"""Shared benchmark fixtures.

Figure benches run each experiment once (they are model-time studies, not
wall-clock microbenchmarks) via ``benchmark.pedantic``; the rendered
paper-vs-measured report is printed and archived under
``benchmarks/results/`` so the run leaves an inspectable record.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Timing-only iterations per scaling point in the bench suite.  Small
#: enough to keep the full suite fast; the sustained rate is steady-state.
BENCH_ITERATIONS = 15


@pytest.fixture
def record_experiment():
    """Print an experiment's report and archive it to results/."""

    def _record(experiment):
        text = experiment.render()
        print("\n" + text)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{experiment.exp_id}.txt").write_text(text + "\n")
        return experiment

    return _record


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""

    def _run(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)

    return _run
