"""Future-work bench: multi-dimensional decomposition beyond 32 GPUs.

Section VI-A: "If one were to attempt to scale to hundreds of GPUs or
more, multi-dimensional parallelization would clearly be needed to keep
the local surface to volume ratio under control."  This bench extends
the Fig. 5(a) strong-scaling study past the paper's 32 GPUs and compares
the paper's time-only slicing with (Z, T) grids.
"""

from conftest import BENCH_ITERATIONS
from repro.bench.report import format_table
from repro.core import invert_model, paper_invert_param

DIMS = (32, 32, 32, 256)


def _rate(n_gpus=None, grid=None):
    inv = paper_invert_param("single-half", fixed_iterations=BENCH_ITERATIONS)
    res = invert_model(
        DIMS, inv, n_gpus=n_gpus or 1, grid=grid, enforce_memory=False
    )
    return res.stats.sustained_gflops


def test_multidim_strong_scaling(run_once):
    def measure():
        out = {}
        for n, grid in ((32, (4, 8)), (64, (4, 16)), (128, (4, 32))):
            out[n] = (_rate(n_gpus=n), _rate(grid=grid), grid)
        return out

    results = run_once(measure)
    rows = [
        [n, f"{r1d:.0f}", f"{grid}", f"{r2d:.0f}", f"{r2d / r1d:.2f}x"]
        for n, (r1d, r2d, grid) in results.items()
    ]
    print("\n32^3 x 256, mixed single-half, overlapped:\n" + format_table(
        ["GPUs", "1-D (T only) Gflops", "2-D grid", "2-D Gflops", "2-D/1-D"],
        rows,
    ))
    # At the paper's scale, time-only slicing holds its own...
    r1d_32, r2d_32, _ = results[32]
    assert r1d_32 > 0.8 * r2d_32
    # ...but at 128 GPUs (T_local = 2: every site is a boundary site) the
    # 2-D grid wins, as the paper predicts.
    r1d_128, r2d_128, _ = results[128]
    assert r2d_128 > r1d_128
    # And the 2-D decomposition keeps strong-scaling further: 128 GPUs
    # beat 64 GPUs.
    assert results[128][1] > results[64][1]
