"""Fig. 4: weak scaling to 32 GPUs at 32^4 and 24^3 x 32 sites per GPU.

Each bench regenerates the figure's series, archives the
paper-vs-measured report, and asserts the paper's qualitative shape.
"""

from conftest import BENCH_ITERATIONS
from repro.bench import fig4a, fig4b


def _check_fig4a(exp) -> None:
    # "near linear scaling on up to 32 GPUs in all solver modes"
    for s in exp.series:
        assert s.at(32) / 32 > 0.85 * s.at(1), s.label
    # mixed precision "substantially more performant" than uniform single
    single = exp.series_by_label("single")
    mixed = exp.series_by_label("single-half")
    for n in single.x:
        assert mixed.at(n) > 1.25 * single.at(n)
    # "we have reached a performance of 4.75 Tflops" — same ballpark
    assert 0.6 * 4750 < mixed.at(32) < 1.5 * 4750


def test_fig4a(run_once, record_experiment):
    exp = run_once(lambda: fig4a(iterations=BENCH_ITERATIONS))
    record_experiment(exp)
    _check_fig4a(exp)


def _check_fig4b(exp) -> None:
    at = lambda label, n: exp.series_by_label(label).at(n)  # noqa: E731
    # mode ordering: both mixed modes > single > double, at 8 and 32 GPUs
    for n in (8, 32):
        assert at("single-half", n) > at("single", n) > at("double", n)
        assert at("double-half", n) > at("single", n)
    # "the mixed double-half precision performance ... is nearly identical
    # to that of the single-half precision case"
    sh, dh = at("single-half", 32), at("double-half", 32)
    assert abs(sh - dh) / sh < 0.10


def test_fig4b(run_once, record_experiment):
    exp = run_once(lambda: fig4b(iterations=BENCH_ITERATIONS))
    record_experiment(exp)
    _check_fig4b(exp)
