"""Quickstart: solve a Wilson-clover system on a simulated 2-GPU cluster.

This is the smallest end-to-end use of the library: build a weak-field
gauge configuration (the paper's own benchmark configuration recipe),
pick a right-hand side, and call :func:`repro.core.invert` — the analogue
of QUDA's ``invertQuda`` — with the paper's mixed single-half precision
parameters on two virtual GTX 285s.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import invert, paper_invert_param
from repro.lattice import LatticeGeometry, random_spinor, weak_field_gauge


def main() -> None:
    rng = np.random.default_rng(2010)

    # An 8^3 x 16 lattice: small enough to solve numerically in seconds.
    geometry = LatticeGeometry((8, 8, 8, 16))
    gauge = weak_field_gauge(geometry, rng, noise=0.1)
    source = random_spinor(geometry, rng)

    # The paper's production mode: BiCGstab, single precision outer with
    # half-precision (16-bit fixed point) inner iterations, reliable
    # updates with delta = 0.1, target residual 1e-7, overlapped comms.
    params = paper_invert_param("single-half", mass=0.1)

    print(f"lattice {geometry.dims}, plaquette {gauge.plaquette():.4f}")
    print(f"solving with {params.solver}, mode single-half, tol {params.tol:g}")

    result = invert(gauge, source, params, n_gpus=2)

    stats = result.stats
    print(f"converged:        {stats.converged}")
    print(f"iterations:       {stats.iterations} "
          f"({stats.reliable_updates} reliable updates)")
    print(f"true residual:    {result.true_residual:.2e}  (|b - Mx| / |b|)")
    print(f"model time:       {stats.model_time * 1e3:.2f} ms on 2 virtual GPUs")
    print(f"sustained rate:   {stats.sustained_gflops:.1f} effective Gflops")
    print(f"peak GPU memory:  {result.peak_device_bytes / 2**20:.1f} MiB")

    assert stats.converged and result.true_residual < 1e-5


if __name__ == "__main__":
    main()
