"""Strong-scaling study at paper scale: should you overlap communication?

The paper's headline systems question (Sections VI-D, VII-C): overlapping
communication with computation helps on the large 32^3 x 256 lattice but
*hurts* on 24^3 x 128 beyond ~8 GPUs, because cudaMemcpyAsync carries ~4x
the latency of a synchronous copy (Fig. 7).  This example sweeps both
lattices over GPU counts in timing-only mode (no field data — these are
the paper's actual production volumes) and prints the decision table.

Run:  python examples/scaling_study.py
"""

from repro.bench import run_scaling_point
from repro.bench.report import format_table


def sweep(dims, gpu_counts):
    rows = []
    for n in gpu_counts:
        cells = [n]
        for overlap in (False, True):
            point = run_scaling_point(
                dims, "single-half", n, overlap=overlap, fixed_iterations=20
            )
            cells.append("OOM" if point.gflops is None else f"{point.gflops:.0f}")
        if "OOM" not in cells[1:]:
            gain = float(cells[2]) / float(cells[1]) - 1.0
            cells.append(f"{gain:+.1%}")
            cells.append("overlap" if gain > 0 else "DON'T overlap")
        else:
            cells += ["-", "-"]
        rows.append(cells)
    return rows


def main() -> None:
    for dims in ((32, 32, 32, 256), (24, 24, 24, 128)):
        counts = [n for n in (2, 4, 8, 16, 32) if dims[3] % n == 0]
        print(f"\n=== V = {dims[0]}^3 x {dims[3]}, mixed single-half ===")
        print(
            format_table(
                ["GPUs", "no overlap (Gflops)", "overlapped (Gflops)",
                 "overlap gain", "verdict"],
                sweep(dims, counts),
            )
        )
    print(
        "\nAs in the paper: the large lattice rewards overlapping more and "
        "more\nwith GPU count, while the small lattice's local volume is too "
        "small to\nhide the asynchronous-copy latency — 'the decision on "
        "whether to overlap\ncommunication and computation or not may depend "
        "on the system under\nconsideration, as well as the problem size' "
        "(Section VII-D)."
    )


if __name__ == "__main__":
    main()
