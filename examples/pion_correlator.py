"""A real LQCD analysis on top of the solver: a pion correlator.

The paper's motivation is the *analysis* phase of lattice QCD — solving
the Dirac equation for many right-hand sides and contracting the
solutions into hadronic observables (Section I; the solver "is now in use
in production LQCD calculations of the spectrum of hadrons").  This
example performs the textbook version of that workflow with the library's
public API:

1. solve for the full point-source propagator S(x; 0) — 12 solves, one
   per source (spin, color) — on a simulated 2-GPU cluster;
2. contract it into the pion two-point function
       C(t) = sum_x  Tr[ S(x,t)^dag S(x,t) ]
   (gamma_5-hermiticity turns the anti-quark line into S^dag);
3. print C(t) and the effective mass  m_eff(t) = log C(t)/C(t+1).

On a weak-field configuration the correlator must be positive and decay
monotonically away from the source — both are asserted.

Run:  python examples/pion_correlator.py
"""

import numpy as np

from repro.core import invert, paper_invert_param
from repro.lattice import LatticeGeometry, point_source, weak_field_gauge


def compute_propagator(gauge, params, n_gpus=2):
    """All 12 source components: returns S[t-slice index, spin, color]
    as solution spinor-field data stacked per source."""
    geometry = gauge.geometry
    columns = {}
    for spin in range(4):
        for color in range(3):
            src = point_source(geometry, site=0, spin=spin, color=color)
            res = invert(gauge, src, params, n_gpus=n_gpus)
            assert res.stats.converged
            columns[(spin, color)] = res.solution.data
    return columns


def pion_correlator(geometry, columns):
    """C(t) = sum_{x, spins, colors} |S(x, t)|^2 — the pion two-point
    function with a point source at the origin."""
    T = geometry.dims[3]
    vs = geometry.spatial_volume
    corr = np.zeros(T)
    for sol in columns.values():
        per_site = np.sum(np.abs(sol) ** 2, axis=(1, 2))  # (V,)
        corr += per_site.reshape(T, vs).sum(axis=1)
    return corr


def main() -> None:
    rng = np.random.default_rng(42)
    geometry = LatticeGeometry((6, 6, 6, 16))
    gauge = weak_field_gauge(geometry, rng, noise=0.08)
    params = paper_invert_param("single-half", mass=0.3)

    print("solving the 12 propagator components (3 colors x 4 spins)...")
    columns = compute_propagator(gauge, params)
    corr = pion_correlator(geometry, columns)

    print("\n  t      C(t)          m_eff(t)")
    half = geometry.dims[3] // 2
    for t in range(half):
        m_eff = np.log(corr[t] / corr[t + 1]) if t + 1 < half else float("nan")
        print(f"  {t:2d}  {corr[t]:.6e}   {m_eff:8.4f}")

    # Physics sanity: positivity and monotone decay toward the midpoint.
    assert np.all(corr > 0), "pion correlator must be positive"
    assert np.all(np.diff(corr[:half]) < 0), "must decay away from the source"
    print("\npion correlator is positive and decaying — as it must be.")


if __name__ == "__main__":
    main()
