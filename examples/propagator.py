"""The paper's measurement workload: a propagator calculation.

Section VII-A: "The numerical measurements were taken from running the
Chroma propagator code and performing 6 linear solves for each test (one
for each of the 3 color components of the upper 2 spin components), with
the quoted performance results given by averages over these solves."

This example reproduces that protocol: six point-source solves on a
weak-field configuration over two virtual GPUs, reporting the averaged
sustained performance and verifying every solution against the host
reference operator.

Run:  python examples/propagator.py
"""

import numpy as np

from repro.bench import propagator_benchmark


def main() -> None:
    mean_gflops, results = propagator_benchmark(
        dims=(8, 8, 8, 16),
        mode="single-half",
        n_gpus=2,
        n_solves=6,
        mass=0.15,
    )

    print("spin color   iters  reliable  |r|_true     Gflops")
    sources = [(s, c) for s in range(2) for c in range(3)]
    for (spin, color), res in zip(sources, results):
        print(
            f"   {spin}     {color}   {res.stats.iterations:5d}"
            f"  {res.stats.reliable_updates:8d}"
            f"  {res.true_residual:.2e}"
            f"  {res.stats.sustained_gflops:9.1f}"
        )
    print(f"\naverage over 6 solves: {mean_gflops:.1f} effective Gflops")

    iters = [r.stats.iterations for r in results]
    print(f"iteration spread: {min(iters)}..{max(iters)} "
          "(the mass parameter controls conditioning, not the rate)")

    assert all(r.stats.converged for r in results)
    assert all(r.true_residual < 1e-5 for r in results)


if __name__ == "__main__":
    main()
