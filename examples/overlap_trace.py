"""Visualize the two communication strategies of Section VI-D.

Renders the GPU timeline of one distributed matrix application as an
ASCII Gantt chart, for both strategies:

* **not overlapped** — faces drain synchronously on stream 0, then a
  single full-volume kernel runs: one serial chain;
* **overlapped** — the interior kernel occupies stream 0 (`#`) while the
  face copies (`<`/`>`) fly on the side streams, and only the small
  boundary kernel trails.

Run:  python examples/overlap_trace.py
"""

import numpy as np

from repro.bench.trace import render_gantt
from repro.comms import QMPMachine, run_spmd
from repro.core.dslash import DeviceSchurOperator
from repro.gpu import Precision, VirtualGPU
from repro.lattice import LatticeGeometry, make_clover, weak_field_gauge


def trace_one_apply(overlap: bool) -> str:
    geo = LatticeGeometry((8, 8, 8, 32))
    rng = np.random.default_rng(1)
    gauge = weak_field_gauge(geo, rng, noise=0.1)
    clover = make_clover(gauge)
    slicing = geo.slice_time(2)

    def fn(comm):
        gpu = VirtualGPU(enforce_memory=False, name=f"gpu{comm.rank}")
        comm.bind_timeline(gpu.timeline)
        qmp = QMPMachine(comm)
        local = slicing.locals[comm.rank]
        slab = slicing.local_sites(comm.rank)
        op = DeviceSchurOperator.setup(
            gpu, qmp, local, gauge.data[:, slab], clover.data[slab], 0.1,
            precision=Precision.SINGLE, overlap=overlap,
        )
        src = op.make_spinor("src")
        tmp = op.make_spinor("tmp")
        dst = op.make_spinor("dst")
        if gpu.execute:
            r = np.random.default_rng(comm.rank)
            src.set(
                r.standard_normal((local.half_volume, 4, 3))
                + 1j * r.standard_normal((local.half_volume, 4, 3))
            )
        i0 = gpu.timeline.op_count
        op.apply(src, tmp, dst)
        gpu.device_synchronize()
        ops = gpu.timeline.ops[i0:]
        elapsed = max(o.end for o in ops) - min(o.start for o in ops)
        return ops, elapsed

    ops, elapsed = run_spmd(2, fn)[0]
    title = "overlapped (Section VI-D2)" if overlap else "not overlapped (VI-D1)"
    return f"--- {title}: {elapsed * 1e6:.0f} us ---\n" + render_gantt(ops)


def main() -> None:
    print("One Mhat application on rank 0 of 2 (8^3 x 16 local volume):\n")
    for overlap in (False, True):
        print(trace_one_apply(overlap))
        print()
    print(
        "In the overlapped chart the interior kernels (stream 0) run under\n"
        "the face transfers (streams 3/4); in the serial chart everything\n"
        "queues behind everything else.  At *small* local volumes the\n"
        "async-copy latency makes the overlapped version slower — Fig. 5(b)."
    )


if __name__ == "__main__":
    main()
