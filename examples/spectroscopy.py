"""Hadron spectroscopy: the production workload the paper enables.

"The solver we have described is now in use in production LQCD
calculations of the spectrum of hadrons" (Section VIII).  This example
runs that analysis end to end with the library's measurement toolkit:

1. compute the full point-source propagator — 12 solves through
   :func:`repro.core.invert_multi`, which uploads the gauge field, does
   the ghost exchange, and autotunes *once* (the amortization that makes
   "32768 calls to the solver for each configuration" economical);
2. contract it into meson two-point functions in several channels;
3. extract effective masses and check the expected physics.

Run:  python examples/spectroscopy.py
"""

import numpy as np

from repro.core import paper_invert_param
from repro.lattice import LatticeGeometry, weak_field_gauge
from repro.lattice.measurements import compute_propagator, meson_correlator


def effective_mass(corr: np.ndarray) -> np.ndarray:
    """m_eff(t) = log C(t)/C(t+1), where defined."""
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = corr[:-1] / corr[1:]
        return np.where(ratio > 0, np.log(np.abs(ratio)), np.nan)


def main() -> None:
    geometry = LatticeGeometry((6, 6, 6, 16))
    rng = np.random.default_rng(11)
    gauge = weak_field_gauge(geometry, rng, noise=0.08)
    inv = paper_invert_param("single-half", mass=0.25)

    print(f"lattice {geometry.dims}, plaquette {gauge.plaquette():.4f}")
    print("computing the 12 propagator columns (one invert_multi call)...")
    prop = compute_propagator(gauge, inv, n_gpus=2)

    channels = ("pion", "rho_x", "rho_y", "rho_z")
    correlators = {ch: meson_correlator(prop, ch) for ch in channels}
    rho_avg = np.mean(
        [correlators[f"rho_{d}"] for d in "xyz"], axis=0
    )

    half = geometry.dims[3] // 2
    m_pi = effective_mass(correlators["pion"])
    m_rho = effective_mass(rho_avg)
    print("\n  t        C_pi(t)       C_rho(t)   m_eff(pi)  m_eff(rho)")
    for t in range(half):
        print(
            f"  {t:2d}  {correlators['pion'][t]:13.6e}  {rho_avg[t]:13.6e}"
            f"   {m_pi[t]:8.4f}    {m_rho[t]:8.4f}"
        )

    # Physics checks on this nearly-free configuration.
    assert np.all(correlators["pion"][:half] > 0)
    assert np.all(rho_avg[:half] > 0)
    plateau_pi = float(np.mean(m_pi[2:half - 1]))
    plateau_rho = float(np.mean(m_rho[2:half - 1]))
    print(f"\nplateau masses: m_pi ~ {plateau_pi:.3f}, m_rho ~ {plateau_rho:.3f} "
          "(nearly degenerate at weak coupling, as expected)")
    assert abs(plateau_pi - plateau_rho) / plateau_pi < 0.15


if __name__ == "__main__":
    main()
