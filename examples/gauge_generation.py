"""The full two-phase LQCD workflow: generate, then analyze.

The paper's introduction describes lattice QCD as two phases — gauge-field
generation (a long-chain Monte Carlo) and analysis (many solver calls per
configuration) — and its conclusion lists GPU gauge generation as future
work.  This example runs the complete pipeline with the library's
extension modules:

1. **Generation**: thermalize a small Markov chain with the
   Cabibbo-Marinari heatbath + overrelaxation at beta = 5.7, watching the
   plaquette equilibrate from both hot and cold starts;
2. **Analysis**: take the final configuration and run the paper's
   mixed-precision multi-GPU solver on it.

Run:  python examples/gauge_generation.py
"""

import numpy as np

from repro.core import invert, paper_invert_param
from repro.lattice import LatticeGeometry, random_spinor
from repro.lattice.montecarlo import Ensemble


def main() -> None:
    geometry = LatticeGeometry((4, 4, 4, 8))
    beta = 5.7
    n_updates = 12

    print(f"phase 1: generating at beta = {beta} on {geometry.dims} ...")
    chains = {
        "cold": Ensemble(geometry, beta, np.random.default_rng(1), start="cold"),
        "hot": Ensemble(geometry, beta, np.random.default_rng(2), start="hot"),
    }
    print("update    plaquette(cold)   plaquette(hot)")
    for step in range(n_updates):
        for ens in chains.values():
            ens.update(1)
        print(
            f"  {step + 1:4d}        {chains['cold'].plaquette_history[-1]:.4f}"
            f"            {chains['hot'].plaquette_history[-1]:.4f}"
        )
    p_cold = np.mean(chains["cold"].plaquette_history[-4:])
    p_hot = np.mean(chains["hot"].plaquette_history[-4:])
    print(f"\nequilibrated plaquette: cold {p_cold:.4f}, hot {p_hot:.4f} "
          "(opposite starts meet)")
    assert abs(p_cold - p_hot) < 0.05

    print("\nphase 2: analyzing the generated configuration ...")
    gauge = chains["cold"].gauge
    rng = np.random.default_rng(3)
    source = random_spinor(geometry, rng)
    # A thermalized beta=5.7 configuration is rough; a heavier quark
    # keeps the toy solve quick.
    params = paper_invert_param("single-half", mass=1.2, maxiter=2000)
    result = invert(gauge, source, params, n_gpus=2)
    print(f"solver: {result.stats.iterations} iterations, "
          f"true residual {result.true_residual:.2e}, "
          f"{result.stats.sustained_gflops:.1f} effective Gflops")
    assert result.stats.converged


if __name__ == "__main__":
    main()
