"""Elastic worker pool: scale simulated workers against measured load.

A fixed ``workers=N`` is the single-allocation world of the source paper
— one job, one set of GPUs, amortize setup and go.  "Scaling Lattice QCD
beyond 100 GPUs" (arXiv:1109.2935) is the sequel's lesson: at cluster
scale the *allocation itself* must flex with the workload.  The serving
analogue is an autoscaler: the daemon measures its arrival rate, prices
a worker in batch-service-seconds, and spins simulated workers up and
down to hold a target utilization.

The controller is deliberately classical (and deterministic):

* **Demand** — an EWMA of interarrival gaps (the same
  :class:`~repro.service.queueing.DrainEstimator` machinery PR 5 built
  for retry-after hints, pointed at arrivals instead of batch
  durations) gives the arrival rate λ; the drain estimator gives the
  per-batch service time s.  Offered load in worker-seconds per second
  is ``λ·s/m`` for batch size m, so the pool wants
  ``ceil(λ·s/(m·ρ))`` workers at target utilization ρ.
* **Backlog pressure** — a burst outruns any EWMA; queued-but-unserved
  batches are demand already in the building, so the desired size is
  also floored by the current backlog in batches.
* **Damping** — scale decisions respect a cooldown, scale-up pays a
  modeled spin-up delay before the worker takes traffic (capacity is
  never free), and scale-down retires only *idle* workers, one per
  decision, draining their gauge residency (a retired device's warmth
  must not leak into the routing tables).

Every decision is a pure function of (time, estimator states, pool
state), so elastic campaigns replay byte-identically — and the whole
ledger of :class:`ScaleEvent`\\ s lands in the service report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .queueing import DrainEstimator

__all__ = [
    "ElasticPolicy",
    "ScaleEvent",
    "ArrivalRateEstimator",
    "PoolController",
    "spread_domain",
]


@dataclass(frozen=True)
class ElasticPolicy:
    """The autoscaler's contract."""

    min_workers: int = 1
    max_workers: int = 8
    #: Utilization the pool is sized for: smaller = more headroom.
    target_utilization: float = 0.75
    #: Model time between a scale-up decision and the worker taking
    #: traffic (allocation + gauge-free boot; residency starts cold).
    spinup_s: float = 2e-3
    #: Minimum model time between scale decisions (damping).
    cooldown_s: float = 1e-3
    #: EWMA smoothing of the arrival-rate estimator.
    alpha: float = 0.3

    def __post_init__(self) -> None:
        if self.min_workers < 1:
            raise ValueError("min_workers must be >= 1")
        if self.max_workers < self.min_workers:
            raise ValueError("max_workers must be >= min_workers")
        if not 0.0 < self.target_utilization <= 1.0:
            raise ValueError("target_utilization must be in (0, 1]")
        if self.spinup_s < 0 or self.cooldown_s < 0:
            raise ValueError("spinup_s and cooldown_s must be >= 0")
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")


@dataclass(frozen=True)
class ScaleEvent:
    """One autoscaler decision, for the report's ledger."""

    time_s: float
    kind: str  # "up" | "down"
    n_before: int
    n_after: int
    reason: str

    def to_json(self) -> dict:
        return {
            "time_us": round(self.time_s * 1e6, 3),
            "kind": self.kind,
            "n_before": self.n_before,
            "n_after": self.n_after,
            "reason": self.reason,
        }


class ArrivalRateEstimator:
    """EWMA arrival-rate tracker with silence decay.

    Interarrival gaps feed the same EWMA the drain estimator uses.  The
    wrinkle: an EWMA only updates on arrivals, so after a burst it would
    report the burst rate forever into a quiet tail.  The fix is free
    information — at query time, ``now - last_arrival`` is a *lower
    bound* on the current true gap, so the estimate is
    ``1 / max(ewma_gap, now - last_arrival)``: rates decay on silence
    without a single extra event.
    """

    def __init__(self, *, alpha: float = 0.3) -> None:
        self._gaps = DrainEstimator(alpha=alpha, initial_s=1.0)
        self.last_arrival_s: float | None = None

    def observe(self, arrival_s: float) -> None:
        if self.last_arrival_s is not None:
            self._gaps.observe(max(arrival_s - self.last_arrival_s, 0.0))
        self.last_arrival_s = arrival_s

    def rate_rps(self, now: float) -> float:
        """Estimated arrival rate at ``now`` (0 before any arrival)."""
        if self.last_arrival_s is None:
            return 0.0
        gap = self._gaps.batch_s if self._gaps.samples else 0.0
        gap = max(gap, now - self.last_arrival_s, 1e-12)
        return 1.0 / gap

    def to_json(self) -> dict:
        return {"gaps": self._gaps.to_json(), "last_arrival_s": self.last_arrival_s}

    @classmethod
    def from_json(cls, data: dict) -> "ArrivalRateEstimator":
        est = cls()
        est._gaps = DrainEstimator.from_json(data["gaps"])
        est.last_arrival_s = data["last_arrival_s"]
        return est


class PoolController:
    """Desired-size computation + the scale-event ledger.

    The controller never touches workers itself — it answers "how many
    should exist" and records what it decided; the service applies the
    delta (spinning up with the modeled delay, retiring only idle
    workers).  Keeping actuation in the event loop keeps every scale
    effect a totally-ordered event like any other.
    """

    def __init__(self, policy: ElasticPolicy) -> None:
        self.policy = policy
        self.events: list[ScaleEvent] = []
        self.last_scale_s = float("-inf")
        self.spinup_spent_s = 0.0

    # ------------------------------------------------------------------ #

    def desired(
        self,
        now: float,
        *,
        rate_rps: float,
        batch_s: float,
        max_batch: int,
        backlog: int,
    ) -> int:
        """How many workers the pool should have right now."""
        p = self.policy
        demand = rate_rps * batch_s / max(max_batch, 1)
        # 1e-9 slack so a demand computing to exactly N.0 (float noise
        # aside) asks for N workers, not N+1.
        need_rate = math.ceil(demand / p.target_utilization - 1e-9)
        backlog_batches = -(-backlog // max(max_batch, 1))
        want = max(need_rate, backlog_batches, p.min_workers)
        return min(want, p.max_workers)

    def decide(
        self,
        now: float,
        *,
        current: int,
        idle: int,
        rate_rps: float,
        batch_s: float,
        max_batch: int,
        backlog: int,
        quarantined: int = 0,
    ) -> int:
        """Scale delta to apply: positive = spin up that many, -1 =
        retire one idle worker, 0 = hold.

        ``current`` counts active workers plus pending spin-ups (so a
        burst does not double-order capacity that is already booting);
        quarantined-but-probing workers are *excluded* from it — they
        serve nothing right now.  Scale-down is one worker per decision
        and only when a worker is actually idle, the queue holds no full
        batch, and ``quarantined`` is zero: a pool with capacity parked
        in the circuit breaker's cooldown is not oversized — retiring a
        healthy idle worker while a sick one probes would shrink the
        pool twice for one fault, and the probe's verdict (reinstate or
        retire) is the decision that should size the pool.
        """
        p = self.policy
        if now - self.last_scale_s < p.cooldown_s:
            return 0
        want = self.desired(
            now, rate_rps=rate_rps, batch_s=batch_s,
            max_batch=max_batch, backlog=backlog,
        )
        if want > current:
            delta = want - current
            self._note(now, "up", current, want,
                       f"rate {rate_rps:.0f} rps, backlog {backlog}")
            self.spinup_spent_s += delta * p.spinup_s
            return delta
        if (
            want < current and idle > 0 and backlog < max_batch
            and quarantined == 0
        ):
            self._note(now, "down", current, current - 1,
                       f"rate {rate_rps:.0f} rps, {idle} idle")
            return -1
        return 0

    def _note(self, now: float, kind: str, before: int, after: int,
              reason: str) -> None:
        self.events.append(ScaleEvent(now, kind, before, after, reason))
        self.last_scale_s = now

    @property
    def scale_ups(self) -> int:
        return sum(1 for e in self.events if e.kind == "up")

    @property
    def scale_downs(self) -> int:
        return sum(1 for e in self.events if e.kind == "down")

    # ------------------------------------------------------------------ #

    def to_json(self) -> dict:
        return {
            "last_scale_s": (
                self.last_scale_s if self.last_scale_s != float("-inf") else None
            ),
            "spinup_spent_s": self.spinup_spent_s,
            "events": [
                {
                    "time_s": e.time_s,
                    "kind": e.kind,
                    "n_before": e.n_before,
                    "n_after": e.n_after,
                    "reason": e.reason,
                }
                for e in self.events
            ],
        }

    @classmethod
    def from_json(cls, policy: ElasticPolicy, data: dict) -> "PoolController":
        ctl = cls(policy)
        ctl.last_scale_s = (
            data["last_scale_s"] if data["last_scale_s"] is not None
            else float("-inf")
        )
        ctl.spinup_spent_s = float(data["spinup_spent_s"])
        ctl.events = [
            ScaleEvent(
                time_s=float(e["time_s"]),
                kind=e["kind"],
                n_before=int(e["n_before"]),
                n_after=int(e["n_after"]),
                reason=e["reason"],
            )
            for e in data["events"]
        ]
        return ctl


def spread_domain(loads: dict, healthy: list) -> int:
    """Pick the failure domain for the next scale-up worker.

    Packing scale-up workers onto one node rebuilds exactly the blast
    radius the failure-domain layer exists to bound: a single node loss
    would take the whole elastic surge with it.  Spread instead — the
    least-loaded *healthy* domain wins, lowest node id breaking ties so
    the choice is deterministic.  ``loads`` maps node id to its count of
    active workers; healthy nodes absent from ``loads`` count as empty.
    """
    if not healthy:
        raise ValueError("no healthy domains to scale into")
    return min(sorted(healthy), key=lambda node: loads.get(node, 0))
