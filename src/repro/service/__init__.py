"""Solve service: a queued, batched, SLO-aware campaign scheduler.

The paper's production workload is not one solve but a *campaign*: "The
calculations involve 32768 calls to the solver for each configuration"
(Section VIII), running for days on a shared cluster ("Scaling Lattice
QCD beyond 100 GPUs", arXiv:1109.2935).  This package serves that
workload the way an inference-serving stack serves model traffic:

* :class:`~repro.service.request.SolveRequest` — one solver call (gauge
  config id, source, precision recipe, priority, deadline);
* :class:`~repro.service.queueing.AdmissionQueue` — bounded admission
  with priority/deadline ordering and reject-with-retry-after
  backpressure;
* :class:`~repro.service.batching.BatchPolicy` — groups compatible
  requests into multi-RHS batches (max size + max wait window),
  amortizing the device setup the way
  :func:`repro.core.invert_multi` does;
* :mod:`repro.service.placement` — the topology/residency layer: a
  :class:`~repro.service.placement.GridSelector` scoring per-request
  process grids with the calibrated perf model, a
  :class:`~repro.service.placement.ResidencyRouter` steering batches to
  gauge-resident workers, and a persistent
  :class:`~repro.service.placement.SharedTuneCache` amortizing the
  Section V-E autotune sweep across batches and campaigns;
* :class:`~repro.service.workers.SimWorker` — a simulated multi-GPU
  worker (an n-rank SimMPI cluster per batch), optionally under a
  :class:`~repro.comms.faults.FaultPlan`, optionally self-healing via
  the resilience stack;
* :class:`~repro.service.service.SolveService` — the deterministic
  event-driven scheduler tying it together, with per-request lifecycle
  tracing and p50/p95/p99 latency accounting
  (:class:`~repro.service.metrics.ServiceReport`).

The daemon era (PR 6) makes the service *long-lived*: requests arrive
over an open channel (:func:`~repro.service.workload.stream_workload` /
:func:`~repro.service.workload.bursty_workload`), the in-flight campaign
checkpoints at batch boundaries
(:class:`~repro.service.campaign.CampaignCheckpointStore`) so a
scheduler crash resumes with no lost requests, LOW batches yield to HIGH
arrivals at refresh-point boundaries
(:class:`~repro.service.service.PreemptionPolicy`), and the worker pool
scales elastically against the measured arrival rate
(:class:`~repro.service.elastic.ElasticPolicy`).

The resilience era (PR 7, :mod:`repro.service.health`) hardens the
daemon against its own pool and against overload: a per-worker
:class:`~repro.service.health.HealthBoard` feeds a circuit breaker
(quarantine → cooldown → seeded probe → reinstate or retire), straggling
batches earn hedged replicas (:class:`~repro.service.health.HedgePolicy`,
first completion wins), and a
:class:`~repro.service.health.BrownoutController` sheds, degrades and
finally rejects under sustained pressure instead of failing HIGH
traffic.  :class:`~repro.comms.faults.WorkerFaultPlan` injects the
correlated whole-worker kills and straggler slowdowns these features are
exercised against.

The multi-tenant era (:mod:`repro.service.tenancy`) shares the daemon
between competing campaigns: per-tenant token-bucket quotas
(:class:`~repro.service.tenancy.TokenBucket`, rejects carrying an honest
refill-derived retry-after), a start-time weighted-fair scheduler
(:class:`~repro.service.tenancy.WeightedFairScheduler`) arbitrating
dispatch across tenants within each priority tier, and a per-tenant
scorecard on the report.  Tenancy-free campaigns are untouched — the
same schedule, byte for byte.

Everything is driven by *model time* — the same discrete-event clock the
rest of the repository runs on — so a campaign with a fixed seed is
fully deterministic: identical completion order, identical percentiles,
byte-identical reports, on any machine.
"""

from .batching import Batch, BatchPolicy, select_batch
from .campaign import (
    CampaignCheckpoint,
    CampaignCheckpointStore,
    MirroredCheckpointStore,
    SchedulerCrash,
)
from .elastic import (
    ArrivalRateEstimator,
    ElasticPolicy,
    PoolController,
    ScaleEvent,
    spread_domain,
)
from .health import (
    BROWNOUT_DEGRADE,
    BROWNOUT_NORMAL,
    BROWNOUT_REJECT,
    BROWNOUT_SHED_LOW,
    HEALTHY,
    PROBING,
    QUARANTINED,
    RETIRED_SICK,
    BrownoutController,
    BrownoutPolicy,
    DomainBoard,
    DomainHealth,
    DomainPolicy,
    HealthBoard,
    HealthPolicy,
    HedgePolicy,
    WorkerHealth,
)
from .metrics import ServiceReport, percentile
from .placement import (
    GridCandidate,
    GridSelector,
    PlacementDecision,
    PlacementEngine,
    PlacementPolicy,
    ResidencyRouter,
    SharedTuneCache,
    gauge_upload_s,
    residency_key,
)
from .queueing import AdmissionQueue, DrainEstimator, partition_by_tenant
from .request import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    RequestRecord,
    SolveRequest,
    StructuredFailure,
)
from .service import (
    PreemptionPolicy,
    ServiceConfig,
    ServiceInvariantError,
    ServiceResult,
    SolveService,
)
from .tenancy import (
    TenancyPolicy,
    TenantRegistry,
    TenantSpec,
    TokenBucket,
    WeightedFairScheduler,
)
from .workers import BatchExecution, SimWorker
from .workload import bursty_workload, stream_workload, synthetic_workload

__all__ = [
    "SolveRequest",
    "RequestRecord",
    "StructuredFailure",
    "PRIORITY_HIGH",
    "PRIORITY_NORMAL",
    "PRIORITY_LOW",
    "AdmissionQueue",
    "DrainEstimator",
    "BatchPolicy",
    "Batch",
    "select_batch",
    "GridCandidate",
    "GridSelector",
    "ResidencyRouter",
    "SharedTuneCache",
    "PlacementPolicy",
    "PlacementDecision",
    "PlacementEngine",
    "gauge_upload_s",
    "residency_key",
    "SimWorker",
    "BatchExecution",
    "SolveService",
    "ServiceConfig",
    "ServiceInvariantError",
    "ServiceResult",
    "ServiceReport",
    "percentile",
    "synthetic_workload",
    "stream_workload",
    "bursty_workload",
    "CampaignCheckpoint",
    "CampaignCheckpointStore",
    "SchedulerCrash",
    "PreemptionPolicy",
    "ElasticPolicy",
    "ScaleEvent",
    "ArrivalRateEstimator",
    "PoolController",
    "HealthPolicy",
    "WorkerHealth",
    "HealthBoard",
    "HedgePolicy",
    "BrownoutPolicy",
    "BrownoutController",
    "HEALTHY",
    "QUARANTINED",
    "PROBING",
    "RETIRED_SICK",
    "BROWNOUT_NORMAL",
    "BROWNOUT_SHED_LOW",
    "BROWNOUT_DEGRADE",
    "BROWNOUT_REJECT",
    "DomainPolicy",
    "DomainHealth",
    "DomainBoard",
    "MirroredCheckpointStore",
    "spread_domain",
    "TenancyPolicy",
    "TenantSpec",
    "TenantRegistry",
    "TokenBucket",
    "WeightedFairScheduler",
    "partition_by_tenant",
]
