"""Simulated multi-GPU workers: each batch runs on an n-rank cluster.

A :class:`SimWorker` is the service's execution unit — the analogue of
one multi-GPU job slot on the paper's cluster.  Executing a batch spins
up an n-rank SimMPI world (exactly what :func:`repro.core.invert_multi`
/ :func:`repro.core.invert_model_multi` do), pays the device setup once,
and runs one solver loop per right-hand side.  The batch's *service
time* is the model time the worker was occupied: the max over ranks of
the last source's timeline end, plus any model time lost to recovery.

**Placement integration** (the placement layer decides, the worker
executes):

* ``grid=(ranks_z, ranks_t)`` runs the batch on the multi-dimensional
  decomposition instead of time-only slicing — the worker's rank count
  is fixed; the grid reshapes it.
* The worker tracks the :func:`~repro.service.placement.residency_key`
  of its last successful batch.  When the next batch matches, the
  device already holds the gauge configuration in the right precisions
  and the right slicing, and the modeled host→device gauge upload is
  credited back (charged only on a miss).  A failed batch tears the
  context down, clearing residency.
* A :class:`~repro.service.placement.SharedTuneCache` replaces per-batch
  retuning: on a miss the worker pays the Section V-E exhaustive-sweep
  model time and stores the tunings; on a hit the stored launch
  parameters are reused for free.

Fault integration: a :class:`~repro.comms.faults.FaultPlan` bound to the
worker perturbs its batches.  With a
:class:`~repro.core.solvers.resilience.RetryPolicy` the worker
*self-heals* (relaunch over survivors, resume from checkpoint) and the
batch completes with recovery accounting; without one the batch dies
with a structured :class:`~repro.comms.faults.RankFailedError` and the
service decides (retry elsewhere or fail the requests).  Either way a
fired rank fault is retired from the worker's plan — a planned crash is
a one-shot event, not a curse on every later batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import prod

import numpy as np

from ..comms.cluster import ClusterSpec
from ..comms.faults import FaultPlan, IntegrityPolicy, RankFailedError
from ..core import (
    InvertResult,
    RetryPolicy,
    invert_model_multi,
    invert_multi,
    paper_invert_param,
)
from ..gpu.specs import GTX285, GPUSpec
from .placement import SharedTuneCache, gauge_upload_s, residency_key
from .request import SolveRequest

__all__ = ["BatchExecution", "SimWorker"]


def _root_rank_failure(exc: BaseException) -> RankFailedError | None:
    """The RankFailedError at the root of a SimMPI failure, if any."""
    seen: set[int] = set()
    while exc is not None and id(exc) not in seen:
        if isinstance(exc, RankFailedError):
            return exc
        seen.add(id(exc))
        exc = exc.__cause__ or exc.__context__
    return None


@dataclass
class BatchExecution:
    """What one batch run cost and produced."""

    ok: bool
    #: Model time the worker was occupied (successful batches: setup +
    #: all solver loops + recovery, plus any tunecache-miss sweep, minus
    #: any residency-hit upload credit; failed batches: time to the
    #: failure plus the teardown penalty).
    duration_s: float
    failure: RankFailedError | None = None
    #: Per-request solver outcomes, aligned with the submitted batch
    #: (empty for failed executions).
    outcomes: list[dict] = field(default_factory=list)
    recoveries: int = 0
    restarts: int = 0
    corruptions_detected: int = 0
    #: Ranks whose planned stall/crash fired during this execution.
    fired_ranks: tuple[int, ...] = ()
    # ---- placement outcome ------------------------------------------- #
    #: Process grid the batch ran on (``None`` = time-only slicing).
    grid: tuple[int, int] | None = None
    #: The gauge configuration was already device-resident: the modeled
    #: host→device upload was credited back.
    residency_hit: bool = False
    gauge_saved_s: float = 0.0
    #: Shared-tunecache outcome: a miss charges the exhaustive-sweep
    #: model time, a hit charges nothing.
    tune_hit: bool = False
    tune_cost_s: float = 0.0


class SimWorker:
    """One simulated multi-GPU worker slot."""

    #: Model-mode service times are pure functions of the schedule, so
    #: identical clean batches share one measurement (a wall-clock
    #: optimization only — model time is unaffected).  Durations are
    #: cached *cold*: before the residency credit and the tunecache
    #: charge, which are applied per execution.
    _model_cache: dict[tuple, tuple[float, list[dict]]] = {}

    def __init__(
        self,
        worker_id: int,
        *,
        ranks: int = 2,
        gpu_spec: GPUSpec = GTX285,
        cluster: ClusterSpec | None = None,
        fault_plan: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
        integrity: IntegrityPolicy | None = None,
        functional: bool = False,
        fixed_iterations: int = 15,
        overlap: bool = True,
        gauge_noise: float = 0.1,
        #: Track gauge residency and credit the upload on hits.
        residency: bool = True,
        #: Model time charged for tearing down a crashed batch before
        #: the worker can accept new work.
        failure_penalty_s: float = 1e-3,
        #: Straggler injection: successful batches take this multiple of
        #: their modeled duration (a throttled GPU or degraded link slows
        #: the node without failing it).  1.0 = healthy.
        straggler_factor: float = 1.0,
    ) -> None:
        if ranks < 1:
            raise ValueError("ranks must be >= 1")
        if straggler_factor < 1.0:
            raise ValueError("straggler_factor must be >= 1")
        self.worker_id = worker_id
        self.ranks = ranks
        self.gpu_spec = gpu_spec
        self.cluster = cluster
        self.fault_plan = fault_plan
        self.retry_policy = retry_policy
        self.integrity = integrity
        self.functional = functional
        self.fixed_iterations = fixed_iterations
        self.overlap = overlap
        self.gauge_noise = gauge_noise
        self.residency = residency
        self.failure_penalty_s = failure_penalty_s
        self.straggler_factor = straggler_factor
        self.batches_run = 0
        self.busy_s = 0.0
        #: Identity of the gauge setup left on the device by the last
        #: successful batch (config, dims, mode, grid) — ``None`` after
        #: a failure (the crashed context is torn down) or before any
        #: batch ran.
        self.resident_key: tuple | None = None
        #: Retired by the elastic pool controller: the slot takes no new
        #: work and its device memory has been drained.
        self.retired = False
        self._gauges: dict[tuple, object] = {}

    def retire(self) -> None:
        """Scale-down: release the slot and drain its device memory.

        Residency must go with the worker — a retired device's gauge
        warmth leaking into the routing tables would let the placement
        layer credit uploads nobody can skip."""
        self.retired = True
        self.evict_residency()

    def evict_residency(self) -> None:
        """Drain the device's warm gauge state without retiring the slot.

        Quarantine uses this: the circuit breaker may reinstate the
        worker after its probe, but while it sits in cooldown its warmth
        must not keep attracting traffic through the routing tables —
        and a genuinely sick device's resident state is not to be
        trusted anyway."""
        self.resident_key = None
        self._gauges.clear()

    # ------------------------------------------------------------------ #
    # Campaign-checkpoint round trip: the scheduler died, the worker
    # (and its device-resident gauge) did not.
    # ------------------------------------------------------------------ #

    def state_json(self) -> dict:
        key = self.resident_key
        return {
            "worker_id": self.worker_id,
            "busy_s": self.busy_s,
            "batches_run": self.batches_run,
            "retired": self.retired,
            "resident": (
                None
                if key is None
                else {
                    "config_id": key[0],
                    "dims": list(key[1]),
                    "mode": key[2],
                    "grid": list(key[3]) if key[3] is not None else None,
                }
            ),
        }

    def restore_state(self, data: dict) -> None:
        self.busy_s = float(data["busy_s"])
        self.batches_run = int(data["batches_run"])
        self.retired = bool(data["retired"])
        res = data["resident"]
        self.resident_key = (
            None
            if res is None
            else (
                int(res["config_id"]),
                tuple(res["dims"]),
                res["mode"],
                tuple(res["grid"]) if res["grid"] is not None else None,
            )
        )

    # ------------------------------------------------------------------ #

    def _invert_param(self, head: SolveRequest):
        return paper_invert_param(
            head.mode,
            mass=head.mass,
            solver=head.solver,
            overlap_comms=self.overlap,
            fixed_iterations=self.fixed_iterations,
            retry_policy=self.retry_policy,
        )

    def _gauge_for(self, head: SolveRequest, grid: tuple[int, int] | None):
        """The worker's resident copy of a gauge configuration (weak
        field derived deterministically from the config id).

        The cache key includes the grid: the *device-resident* slabs of
        a grid-routed upload are a different object from the T-sliced
        slabs of the same configuration, so the two must never alias
        (the host field's values are identical either way — the identity
        is per-slicing on purpose).
        """
        key = (head.config_id, head.dims, grid)
        if key not in self._gauges:
            from ..lattice import LatticeGeometry, weak_field_gauge

            rng = np.random.default_rng(
                np.random.SeedSequence([head.config_id, 0xC0F1])
            )
            self._gauges[key] = weak_field_gauge(
                LatticeGeometry(head.dims), rng, noise=self.gauge_noise
            )
        return self._gauges[key]

    @staticmethod
    def _batch_duration(results: list[InvertResult]) -> float:
        last = results[-1]
        return max(i.t_end for i in last.per_rank) + last.stats.lost_time

    @staticmethod
    def _outcomes(results: list[InvertResult]) -> list[dict]:
        return [
            {
                "iterations": r.stats.iterations,
                "converged": r.stats.converged,
                "residual_norm": r.stats.residual_norm,
                "recoveries": r.stats.recoveries,
            }
            for r in results
        ]

    def _retire_fired(self, events) -> tuple[int, ...]:
        """Drop rank faults that fired from this worker's plan (each
        batch restarts model clocks at zero, so a fired stall/crash
        would otherwise replay on every subsequent batch)."""
        fired = tuple(
            sorted({e.rank for e in events if e.kind in ("stall", "crash")})
        )
        if fired and self.fault_plan is not None:
            self.fault_plan = self.fault_plan.without_ranks(fired)
        return fired

    # ------------------------------------------------------------------ #

    def local_volume(self, dims: tuple[int, int, int, int]) -> int:
        """Sites per rank — the tunecache key's volume component (equal
        for time-only slicing and any grid over the same rank count)."""
        volume = prod(dims)
        if volume % self.ranks:
            raise ValueError(
                f"volume {volume} not divisible over {self.ranks} ranks"
            )
        return volume // self.ranks

    def execute(
        self,
        requests: list[SolveRequest],
        *,
        grid: tuple[int, int] | None = None,
        tune_cache: SharedTuneCache | None = None,
    ) -> BatchExecution:
        """Run one batch to completion or structured failure.

        All requests share a compatibility key (the scheduler's
        invariant); the head request supplies the recipe.  ``grid``
        reshapes the worker's ranks into a (Z, T) process grid;
        ``tune_cache`` swaps per-batch retuning for the shared store.
        """
        if not requests:
            raise ValueError("empty batch")
        head = requests[0]
        if grid is not None and grid[0] * grid[1] != self.ranks:
            raise ValueError(
                f"grid {grid} needs {grid[0] * grid[1]} ranks; worker "
                f"{self.worker_id} has {self.ranks}"
            )
        self.batches_run += 1

        key = residency_key(head.config_id, head.dims, head.mode, grid)
        hit = self.residency and self.resident_key == key
        saved_s = (
            gauge_upload_s(head.dims, self.ranks, mode=head.mode) if hit else 0.0
        )
        tunings = None
        tune_hit = False
        tune_cost = 0.0
        if tune_cache is not None:
            tunings, tune_cost = tune_cache.acquire(
                self.gpu_spec, self.local_volume(head.dims)
            )
            tune_hit = tune_cost == 0.0

        try:
            if self.functional:
                results = self._execute_functional(head, requests, grid, tunings)
            else:
                cached = self._execute_model(head, len(requests), grid)
                if cached is not None:
                    duration, outcomes = cached
                    results = None
                else:
                    results = invert_model_multi(
                        head.dims,
                        self._invert_param(head),
                        n_sources=len(requests),
                        n_gpus=self.ranks,
                        grid=grid,
                        cluster=self.cluster,
                        gpu_spec=self.gpu_spec,
                        enforce_memory=False,
                        tune_cache=tunings,
                        fault_plan=self.fault_plan,
                        integrity=self.integrity,
                    )
        except RuntimeError as exc:
            failure = _root_rank_failure(exc)
            if failure is None:
                raise
            fired = self._retire_fired(getattr(exc, "fault_events", []))
            # The crashed context is torn down with the batch: whatever
            # gauge the device held is gone (residency eviction), and no
            # upload credit is taken — the setup must be repaid.
            self.resident_key = None
            return BatchExecution(
                ok=False,
                duration_s=max(failure.model_time, 0.0)
                + self.failure_penalty_s
                + tune_cost,
                failure=failure,
                fired_ranks=fired or (failure.rank,),
                grid=grid,
                tune_hit=tune_hit,
                tune_cost_s=tune_cost,
            )
        if results is not None:
            fired = self._retire_fired(
                [e for r in results for e in r.fault_events]
            )
            duration = self._batch_duration(results)
            outcomes = self._outcomes(results)
            recoveries = max(r.stats.recoveries for r in results)
            restarts = max(r.stats.restarts for r in results)
            corruptions = max(r.stats.corruptions_detected for r in results)
            self._maybe_cache(head, len(requests), grid, duration, outcomes)
        else:
            fired = ()
            recoveries = restarts = corruptions = 0
        self.resident_key = key
        # Straggler injection scales the solve itself, not the cacheable
        # cold duration (the model cache is shared across workers) and
        # not the setup credits/charges.
        execution = BatchExecution(
            ok=True,
            duration_s=max(
                duration * self.straggler_factor + tune_cost - saved_s, 0.0
            ),
            outcomes=outcomes,
            recoveries=recoveries,
            restarts=restarts,
            corruptions_detected=corruptions,
            fired_ranks=fired,
            grid=grid,
            residency_hit=hit,
            gauge_saved_s=saved_s,
            tune_hit=tune_hit,
            tune_cost_s=tune_cost,
        )
        return execution

    def _execute_functional(
        self,
        head: SolveRequest,
        requests: list[SolveRequest],
        grid: tuple[int, int] | None,
        tunings,
    ) -> list[InvertResult]:
        from ..lattice import random_spinor

        gauge = self._gauge_for(head, grid)
        sources = [
            random_spinor(
                gauge.geometry,
                np.random.default_rng(
                    np.random.SeedSequence([r.source_seed, r.req_id, 0x50CE])
                ),
            )
            for r in requests
        ]
        return invert_multi(
            gauge,
            sources,
            self._invert_param(head),
            n_gpus=self.ranks,
            grid=grid,
            cluster=self.cluster,
            gpu_spec=self.gpu_spec,
            tune_cache=tunings,
            verify=False,
            fault_plan=self.fault_plan,
            integrity=self.integrity,
        )

    # ------------------------------------------------------------------ #
    # Model-mode duration cache (wall-clock only; model time unaffected)
    # ------------------------------------------------------------------ #

    def _cache_key(
        self, head: SolveRequest, n: int, grid: tuple[int, int] | None
    ) -> tuple | None:
        if (
            self.functional
            or self.fault_plan is not None
            or self.cluster is not None
            or self.integrity is not None
        ):
            return None
        # The grid is part of the key: a grid-routed schedule and a
        # T-sliced schedule of the same volume have different comm
        # patterns and must never alias.
        return (
            head.dims, head.mode, head.solver, head.mass, n,
            self.ranks, grid, self.gpu_spec.name, self.fixed_iterations,
            self.overlap,
        )

    def _execute_model(
        self, head: SolveRequest, n: int, grid: tuple[int, int] | None
    ):
        key = self._cache_key(head, n, grid)
        if key is None:
            return None
        return self._model_cache.get(key)

    def _maybe_cache(
        self,
        head: SolveRequest,
        n: int,
        grid: tuple[int, int] | None,
        duration: float,
        outcomes: list[dict],
    ) -> None:
        key = self._cache_key(head, n, grid)
        if key is not None:
            self._model_cache[key] = (duration, outcomes)
