"""Simulated multi-GPU workers: each batch runs on an n-rank cluster.

A :class:`SimWorker` is the service's execution unit — the analogue of
one multi-GPU job slot on the paper's cluster.  Executing a batch spins
up an n-rank SimMPI world (exactly what :func:`repro.core.invert_multi`
/ :func:`repro.core.invert_model_multi` do), pays the device setup once,
and runs one solver loop per right-hand side.  The batch's *service
time* is the model time the worker was occupied: the max over ranks of
the last source's timeline end, plus any model time lost to recovery.

Fault integration: a :class:`~repro.comms.faults.FaultPlan` bound to the
worker perturbs its batches.  With a
:class:`~repro.core.solvers.resilience.RetryPolicy` the worker
*self-heals* (relaunch over survivors, resume from checkpoint) and the
batch completes with recovery accounting; without one the batch dies
with a structured :class:`~repro.comms.faults.RankFailedError` and the
service decides (retry elsewhere or fail the requests).  Either way a
fired rank fault is retired from the worker's plan — a planned crash is
a one-shot event, not a curse on every later batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..comms.cluster import ClusterSpec
from ..comms.faults import FaultPlan, IntegrityPolicy, RankFailedError
from ..core import (
    InvertResult,
    RetryPolicy,
    invert_model_multi,
    invert_multi,
    paper_invert_param,
)
from ..gpu.specs import GTX285, GPUSpec
from .request import SolveRequest

__all__ = ["BatchExecution", "SimWorker"]


def _root_rank_failure(exc: BaseException) -> RankFailedError | None:
    """The RankFailedError at the root of a SimMPI failure, if any."""
    seen: set[int] = set()
    while exc is not None and id(exc) not in seen:
        if isinstance(exc, RankFailedError):
            return exc
        seen.add(id(exc))
        exc = exc.__cause__ or exc.__context__
    return None


@dataclass
class BatchExecution:
    """What one batch run cost and produced."""

    ok: bool
    #: Model time the worker was occupied (successful batches: setup +
    #: all solver loops + recovery; failed batches: time to the failure
    #: plus the teardown penalty).
    duration_s: float
    failure: RankFailedError | None = None
    #: Per-request solver outcomes, aligned with the submitted batch
    #: (empty for failed executions).
    outcomes: list[dict] = field(default_factory=list)
    recoveries: int = 0
    restarts: int = 0
    corruptions_detected: int = 0
    #: Ranks whose planned stall/crash fired during this execution.
    fired_ranks: tuple[int, ...] = ()


class SimWorker:
    """One simulated multi-GPU worker slot."""

    #: Model-mode service times are pure functions of the schedule, so
    #: identical clean batches share one measurement (a wall-clock
    #: optimization only — model time is unaffected).
    _model_cache: dict[tuple, tuple[float, list[dict]]] = {}

    def __init__(
        self,
        worker_id: int,
        *,
        ranks: int = 2,
        gpu_spec: GPUSpec = GTX285,
        cluster: ClusterSpec | None = None,
        fault_plan: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
        integrity: IntegrityPolicy | None = None,
        functional: bool = False,
        fixed_iterations: int = 15,
        overlap: bool = True,
        gauge_noise: float = 0.1,
        #: Model time charged for tearing down a crashed batch before
        #: the worker can accept new work.
        failure_penalty_s: float = 1e-3,
    ) -> None:
        if ranks < 1:
            raise ValueError("ranks must be >= 1")
        self.worker_id = worker_id
        self.ranks = ranks
        self.gpu_spec = gpu_spec
        self.cluster = cluster
        self.fault_plan = fault_plan
        self.retry_policy = retry_policy
        self.integrity = integrity
        self.functional = functional
        self.fixed_iterations = fixed_iterations
        self.overlap = overlap
        self.gauge_noise = gauge_noise
        self.failure_penalty_s = failure_penalty_s
        self.batches_run = 0
        self.busy_s = 0.0
        self._gauges: dict[tuple, object] = {}

    # ------------------------------------------------------------------ #

    def _invert_param(self, head: SolveRequest):
        return paper_invert_param(
            head.mode,
            mass=head.mass,
            solver=head.solver,
            overlap_comms=self.overlap,
            fixed_iterations=self.fixed_iterations,
            retry_policy=self.retry_policy,
        )

    def _gauge_for(self, head: SolveRequest):
        """The worker's resident copy of a gauge configuration (weak
        field derived deterministically from the config id)."""
        from ..lattice import LatticeGeometry, weak_field_gauge

        key = (head.config_id, head.dims)
        if key not in self._gauges:
            rng = np.random.default_rng(
                np.random.SeedSequence([head.config_id, 0xC0F1])
            )
            self._gauges[key] = weak_field_gauge(
                LatticeGeometry(head.dims), rng, noise=self.gauge_noise
            )
        return self._gauges[key]

    @staticmethod
    def _batch_duration(results: list[InvertResult]) -> float:
        last = results[-1]
        return max(i.t_end for i in last.per_rank) + last.stats.lost_time

    @staticmethod
    def _outcomes(results: list[InvertResult]) -> list[dict]:
        return [
            {
                "iterations": r.stats.iterations,
                "converged": r.stats.converged,
                "residual_norm": r.stats.residual_norm,
                "recoveries": r.stats.recoveries,
            }
            for r in results
        ]

    def _retire_fired(self, events) -> tuple[int, ...]:
        """Drop rank faults that fired from this worker's plan (each
        batch restarts model clocks at zero, so a fired stall/crash
        would otherwise replay on every subsequent batch)."""
        fired = tuple(
            sorted({e.rank for e in events if e.kind in ("stall", "crash")})
        )
        if fired and self.fault_plan is not None:
            self.fault_plan = self.fault_plan.without_ranks(fired)
        return fired

    # ------------------------------------------------------------------ #

    def execute(self, requests: list[SolveRequest]) -> BatchExecution:
        """Run one batch to completion or structured failure.

        All requests share a compatibility key (the scheduler's
        invariant); the head request supplies the recipe.
        """
        if not requests:
            raise ValueError("empty batch")
        head = requests[0]
        self.batches_run += 1
        try:
            if self.functional:
                results = self._execute_functional(head, requests)
            else:
                cached = self._execute_model(head, len(requests))
                if cached is not None:
                    duration, outcomes = cached
                    return BatchExecution(
                        ok=True, duration_s=duration, outcomes=outcomes
                    )
                results = invert_model_multi(
                    head.dims,
                    self._invert_param(head),
                    n_sources=len(requests),
                    n_gpus=self.ranks,
                    cluster=self.cluster,
                    gpu_spec=self.gpu_spec,
                    enforce_memory=False,
                    fault_plan=self.fault_plan,
                    integrity=self.integrity,
                )
        except RuntimeError as exc:
            failure = _root_rank_failure(exc)
            if failure is None:
                raise
            fired = self._retire_fired(getattr(exc, "fault_events", []))
            return BatchExecution(
                ok=False,
                duration_s=max(failure.model_time, 0.0) + self.failure_penalty_s,
                failure=failure,
                fired_ranks=fired or (failure.rank,),
            )
        fired = self._retire_fired(
            [e for r in results for e in r.fault_events]
        )
        execution = BatchExecution(
            ok=True,
            duration_s=self._batch_duration(results),
            outcomes=self._outcomes(results),
            recoveries=max(r.stats.recoveries for r in results),
            restarts=max(r.stats.restarts for r in results),
            corruptions_detected=max(
                r.stats.corruptions_detected for r in results
            ),
            fired_ranks=fired,
        )
        self._maybe_cache(head, len(requests), execution)
        return execution

    def _execute_functional(
        self, head: SolveRequest, requests: list[SolveRequest]
    ) -> list[InvertResult]:
        from ..lattice import random_spinor

        gauge = self._gauge_for(head)
        sources = [
            random_spinor(
                gauge.geometry,
                np.random.default_rng(
                    np.random.SeedSequence([r.source_seed, r.req_id, 0x50CE])
                ),
            )
            for r in requests
        ]
        return invert_multi(
            gauge,
            sources,
            self._invert_param(head),
            n_gpus=self.ranks,
            cluster=self.cluster,
            gpu_spec=self.gpu_spec,
            verify=False,
            fault_plan=self.fault_plan,
            integrity=self.integrity,
        )

    # ------------------------------------------------------------------ #
    # Model-mode duration cache (wall-clock only; model time unaffected)
    # ------------------------------------------------------------------ #

    def _cache_key(self, head: SolveRequest, n: int) -> tuple | None:
        if (
            self.functional
            or self.fault_plan is not None
            or self.cluster is not None
            or self.integrity is not None
        ):
            return None
        return (
            head.dims, head.mode, head.solver, head.mass, n,
            self.ranks, self.gpu_spec.name, self.fixed_iterations,
            self.overlap,
        )

    def _execute_model(self, head: SolveRequest, n: int):
        key = self._cache_key(head, n)
        if key is None:
            return None
        return self._model_cache.get(key)

    def _maybe_cache(
        self, head: SolveRequest, n: int, execution: BatchExecution
    ) -> None:
        key = self._cache_key(head, n)
        if key is not None:
            self._model_cache[key] = (
                execution.duration_s,
                execution.outcomes,
            )
