"""Topology- and residency-aware placement: *where and how* a batch runs.

PR 4's scheduler answered only *when*: round-robin worker pulls, every
worker slicing the time dimension, every batch re-uploading its gauge
configuration and re-deriving its kernel tunings.  This module is the
layer the dispatch loop now consults instead, and it decides three
things per batch:

* **How to partition** — :class:`GridSelector` scores every feasible
  process grid ``(ranks_z, ranks_t)`` for the request volume with the
  calibrated perf model (:mod:`repro.gpu.perfmodel`) at the tuned dslash
  occupancy (:mod:`repro.core.autotune`) and picks the cheapest
  per-iteration critical path.  One-dimensional time slicing minimizes
  *total* surface, but its per-face message is the whole spatial volume;
  once local T gets thin (the paper's >16-GPU regime, "Scaling Lattice
  QCD beyond 100 GPUs" arXiv:1109.2935), splitting a second dimension
  shrinks the largest face — and faces of different dimensions travel
  concurrently over different neighbour links — so a 2-D grid wins the
  critical path even though it moves more bytes in aggregate.

* **Where to run** — :class:`ResidencyRouter` routes a batch to an idle
  worker whose device already holds the batch's gauge configuration (in
  the same precisions and the same slicing), so the host→device gauge
  upload — the dominant per-batch setup transfer — is paid only on a
  residency miss.

* **What is already tuned** — :class:`SharedTuneCache` is the
  process-wide analogue of the ``tunecache.tsv`` real QUDA ships: the
  exhaustive Section V-E block-size sweep is paid once per (kernel,
  precision, local volume, device spec) and every later batch of the
  same shape reuses the stored launch parameters.  The store serializes
  to JSON, so ``repro serve --tunecache PATH`` amortizes the sweep
  across *campaigns*, not just across batches.

All three decisions are pure functions of the request, the pool state,
and the calibrated constants — the service's determinism witness is
unchanged by placement.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from math import prod

from ..core.autotune import (
    KERNEL_REGISTERS,
    TuneCache,
    TuneResult,
    autotune,
    tune_sweep_cost_s,
)
from ..core.interface import PRECISION_MODES
from ..gpu.perfmodel import DEFAULT_PARAMS, PerfModelParams, kernel_time, pcie_time
from ..gpu.precision import Precision
from ..gpu.specs import GTX285, GPUSpec

__all__ = [
    "GridCandidate",
    "GridSelector",
    "ResidencyRouter",
    "SharedTuneCache",
    "PlacementPolicy",
    "PlacementDecision",
    "PlacementEngine",
    "gauge_upload_s",
    "residency_key",
]

#: Device traffic of one dslash application, in reals per site: 8 gauge
#: links (12 reals, compressed) + 8 neighbour spinors + source + result
#: (24 reals each).
_DSLASH_REALS_PER_SITE = 8 * 12 + 10 * 24
#: Wilson dslash arithmetic per site (the paper's effective-flops
#: convention).
_DSLASH_FLOPS_PER_SITE = 1320
#: A spinor face site travels as 24 reals at the sloppy precision.
_SPINOR_REALS = 24


def gauge_upload_s(
    dims: tuple[int, int, int, int],
    ranks: int,
    *,
    mode: str = "single-half",
    params: PerfModelParams = DEFAULT_PARAMS,
    compressed: bool = True,
    numa_ok: bool = True,
) -> float:
    """Modeled host→device upload time of one rank's gauge slab(s).

    Mixed-precision modes upload the gauge twice (full + sloppy operator
    copies), serialized on each rank's own PCIe link; ranks upload
    concurrently, so the batch-level cost equals the per-rank cost.
    Ghost/pad regions are excluded — the estimate deliberately
    under-counts the charge :class:`~repro.core.dslash.DeviceSchurOperator`
    actually pays, so a residency discount can never drive a batch
    duration negative.
    """
    volume = prod(dims)
    if ranks < 1 or volume % ranks:
        raise ValueError(f"volume {volume} not divisible over {ranks} ranks")
    v_loc = volume // ranks
    full, sloppy = PRECISION_MODES[mode]
    reals = 12 if compressed else 18
    nbytes = sum(
        v_loc * 4 * reals * p.real_bytes for p in {full, sloppy}
    )
    return pcie_time(params, nbytes, "h2d", asynchronous=False, numa_ok=numa_ok)


def residency_key(
    config_id: int,
    dims: tuple[int, int, int, int],
    mode: str,
    grid: tuple[int, int] | None,
) -> tuple:
    """Identity of a device-resident gauge setup.

    The *slicing* is part of the identity: a configuration uploaded as
    time slabs is laid out differently from the same configuration on a
    Z×T grid, and the precisions of the resident copies come from the
    mode — so neither grid-routed vs. T-sliced solves nor different
    precision recipes may alias.
    """
    return (config_id, dims, mode, grid)


# --------------------------------------------------------------------- #
# Grid selection
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class GridCandidate:
    """One feasible decomposition and its scored critical path."""

    #: ``(ranks_z, ranks_t)``, or ``None`` for the paper's time-only
    #: slicing (dispatched through the classic ``n_gpus`` path).
    grid: tuple[int, int] | None
    #: Estimated per-iteration critical path (seconds): kernel + the
    #: slowest dimension's face exchange.
    score_s: float
    kernel_s: float
    comm_s: float


class GridSelector:
    """Per-request process-grid selection from the calibrated perf model.

    For a worker of ``ranks`` GPUs and a request volume, every feasible
    decomposition — time-only plus every ``(ranks_z, ranks_t)`` with
    ``ranks_z > 1`` — is scored as *kernel time + communication critical
    path* per solver iteration:

    * kernel time is the dslash streaming cost of the local volume at
      the tuned occupancy (identical across candidates of equal local
      volume, but it keeps the score an absolute time);
    * each partitioned dimension exchanges two faces over its neighbour
      links, serialized within the dimension but concurrent *across*
      dimensions (distinct neighbours), so the communication term is the
      ``max`` over dimensions of ``2*(overhead + latency + face/bw)``.

    Small volumes therefore degrade to time-only slicing (per-message
    overhead dominates, and one partitioned dimension beats two), while
    large anisotropic volumes on many ranks route to a 2-D grid (the
    largest face shrinks).  Selection is memoized and deterministic.
    """

    def __init__(
        self,
        *,
        gpu_spec: GPUSpec = GTX285,
        params: PerfModelParams = DEFAULT_PARAMS,
        tune_cache: TuneCache | None = None,
    ) -> None:
        self.gpu_spec = gpu_spec
        self.params = params
        self._tunings = tune_cache if tune_cache is not None else autotune(gpu_spec)
        self._memo: dict[tuple, tuple[int, int] | None] = {}

    # ------------------------------------------------------------------ #

    def _feasible_time(self, dims, ranks: int) -> bool:
        T = dims[3]
        if T % ranks:
            return False
        return ranks == 1 or (T // ranks) % 2 == 0

    def _feasible_grid(self, dims, rz: int, rt: int) -> bool:
        Z, T = dims[2], dims[3]
        for extent, r in ((Z, rz), (T, rt)):
            if extent % r:
                return False
            if r > 1 and (extent // r) % 2:
                return False
        return True

    def _estimate(self, dims, rz: int, rt: int, mode: str) -> GridCandidate:
        X, Y, Z, T = dims
        v_loc = (X * Y * Z * T) // (rz * rt)
        _, sloppy = PRECISION_MODES[mode]
        occ = self._tunings.occupancy("dslash", sloppy)
        kern = kernel_time(
            self.gpu_spec,
            self.params,
            sloppy,
            bytes_moved=v_loc * _DSLASH_REALS_PER_SITE * sloppy.real_bytes,
            flops=v_loc * _DSLASH_FLOPS_PER_SITE,
            occupancy=occ,
        )
        comm = 0.0
        for r, local in ((rz, Z // rz), (rt, T // rt)):
            if r == 1:
                continue
            face_bytes = (v_loc // local) * _SPINOR_REALS * sloppy.real_bytes
            per_face = (
                self.params.mpi_overhead_s
                + self.params.ib_latency_s
                + face_bytes / self.params.ib_bw
            )
            comm = max(comm, 2.0 * per_face)
        return GridCandidate(
            grid=None if rz == 1 else (rz, rt),
            score_s=kern + comm,
            kernel_s=kern,
            comm_s=comm,
        )

    def candidates(
        self, dims: tuple[int, int, int, int], ranks: int, mode: str = "single-half"
    ) -> list[GridCandidate]:
        """Every feasible decomposition, cheapest critical path first.

        Ties break toward time-only slicing, then toward the smaller
        ``ranks_z`` (fewer partitioned Z planes).
        """
        if ranks < 1:
            raise ValueError("ranks must be >= 1")
        out: list[GridCandidate] = []
        if self._feasible_time(dims, ranks):
            out.append(self._estimate(dims, 1, ranks, mode))
        for rz in range(2, ranks + 1):
            if ranks % rz:
                continue
            rt = ranks // rz
            if self._feasible_grid(dims, rz, rt):
                out.append(self._estimate(dims, rz, rt, mode))
        out.sort(key=lambda c: (c.score_s, 0 if c.grid is None else c.grid[0]))
        return out

    def select(
        self, dims: tuple[int, int, int, int], ranks: int, mode: str = "single-half"
    ) -> tuple[int, int] | None:
        """The chosen grid (``None`` = time-only) for a request shape.

        Single-rank workers always degrade to time-only.  Raises
        :class:`ValueError` when *no* decomposition divides the volume —
        the request cannot run on this worker at all.
        """
        if ranks == 1:
            return None
        memo_key = (dims, ranks, mode)
        if memo_key not in self._memo:
            cands = self.candidates(dims, ranks, mode)
            if not cands:
                raise ValueError(
                    f"volume {dims} admits no decomposition over {ranks} "
                    "ranks: T is not divisible into even slabs and no "
                    "(ranks_z, ranks_t) grid divides Z and T evenly"
                )
            self._memo[memo_key] = cands[0].grid
        return self._memo[memo_key]


# --------------------------------------------------------------------- #
# Gauge residency
# --------------------------------------------------------------------- #


class ResidencyRouter:
    """Routes batches to gauge-resident workers (warm pools).

    The router reads each worker's ``resident_key`` — what its device
    held after its last successful batch — and prefers, in order: an
    idle worker already resident for this batch's key (a *hit*: the
    gauge upload is skipped), an idle worker holding nothing (a cold
    miss that does not evict another configuration's warmth), and only
    then the lowest-id idle worker (evicting its residency).  Ordering
    is by worker id at every step, so routing stays deterministic.
    """

    def __init__(self, workers, *, enabled: bool = True) -> None:
        self.workers = workers
        self.enabled = enabled

    def route(self, key: tuple, idle_ids: list[int]) -> tuple[int, bool]:
        """``(worker_id, predicted_hit)`` for a batch with residency ``key``."""
        if not idle_ids:
            raise ValueError("no idle workers to route to")
        ordered = sorted(idle_ids)
        if self.enabled:
            for w in ordered:
                if self.workers[w].resident_key == key:
                    return w, True
            for w in ordered:
                if self.workers[w].resident_key is None:
                    return w, False
        return ordered[0], False


# --------------------------------------------------------------------- #
# Shared tunecache
# --------------------------------------------------------------------- #


class SharedTuneCache:
    """Process-wide, serializable autotune store (QUDA's ``tunecache``).

    Entries are keyed by ``(kernel, precision, local volume, spec)``;
    :meth:`acquire` either assembles a complete
    :class:`~repro.core.autotune.TuneCache` from stored entries (a *hit*
    — zero model-time setup charge, the avoided sweep cost is credited
    to ``saved_s``) or runs the exhaustive sweep, stores every result,
    and charges :func:`~repro.core.autotune.tune_sweep_cost_s` to the
    batch (a *miss*, accumulated in ``spent_s``).  ``save``/``load``
    persist the entries as JSON so the sweep amortizes across campaigns
    and across scheduler restarts.
    """

    def __init__(self) -> None:
        self._entries: dict[tuple[str, str, int, str], TuneResult] = {}
        self.hits = 0
        self.misses = 0
        self.saved_s = 0.0
        self.spent_s = 0.0

    def __len__(self) -> int:
        return len(self._entries)

    def reset_counters(self) -> None:
        """Start a fresh campaign scorecard (entries are kept)."""
        self.hits = 0
        self.misses = 0
        self.saved_s = 0.0
        self.spent_s = 0.0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # ------------------------------------------------------------------ #

    def lookup(self, spec: GPUSpec, local_volume: int) -> TuneCache | None:
        """A complete per-device cache for this local volume, or ``None``
        if any (kernel, precision) variant is missing."""
        cache = TuneCache(spec_name=spec.name)
        for kernel, per_prec in KERNEL_REGISTERS.items():
            for precision in per_prec:
                res = self._entries.get(
                    (kernel, precision.name, local_volume, spec.name)
                )
                if res is None:
                    return None
                cache.results[(kernel, precision)] = res
        return cache

    def store(self, spec: GPUSpec, local_volume: int, cache: TuneCache) -> None:
        for (kernel, precision), res in cache.results.items():
            self._entries[(kernel, precision.name, local_volume, spec.name)] = res

    def acquire(
        self,
        spec: GPUSpec,
        local_volume: int,
        *,
        params: PerfModelParams = DEFAULT_PARAMS,
    ) -> tuple[TuneCache, float]:
        """``(tunings, model setup charge)`` for one batch's shape."""
        sweep = tune_sweep_cost_s(spec, local_volume=local_volume, params=params)
        cached = self.lookup(spec, local_volume)
        if cached is not None:
            self.hits += 1
            self.saved_s += sweep
            return cached, 0.0
        fresh = autotune(spec)
        self.store(spec, local_volume, fresh)
        self.misses += 1
        self.spent_s += sweep
        return fresh, sweep

    # ------------------------------------------------------------------ #

    def to_json(self) -> dict:
        return {
            "entries": [
                {
                    "kernel": kernel,
                    "precision": precision,
                    "local_volume": volume,
                    "spec": spec,
                    **res.to_json(),
                }
                for (kernel, precision, volume, spec), res in sorted(
                    self._entries.items()
                )
            ]
        }

    @classmethod
    def from_json(cls, data: dict) -> "SharedTuneCache":
        cache = cls()
        for entry in data["entries"]:
            res = TuneResult.from_json(entry)
            cache._entries[
                (
                    entry["kernel"],
                    entry["precision"],
                    int(entry["local_volume"]),
                    entry["spec"],
                )
            ] = res
        return cache

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "SharedTuneCache":
        with open(path) as fh:
            return cls.from_json(json.load(fh))


# --------------------------------------------------------------------- #
# The placement engine the dispatch loop consults
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class PlacementPolicy:
    """The placement layer's three knobs."""

    #: ``"auto"`` scores grids per request; ``None`` forces the paper's
    #: time-only slicing; a ``(ranks_z, ranks_t)`` tuple pins the grid.
    grid: str | tuple[int, int] | None = "auto"
    #: Route batches to gauge-resident workers and charge the upload
    #: only on a miss.
    residency: bool = True
    #: Consult/charge the shared tunecache (disabling restores PR 4's
    #: uncharged per-batch retuning).
    tunecache: bool = True

    def __post_init__(self) -> None:
        g = self.grid
        if g is None or g == "auto":
            return
        if (
            isinstance(g, tuple)
            and len(g) == 2
            and all(isinstance(v, int) and v >= 1 for v in g)
        ):
            return
        raise ValueError(
            f"grid must be 'auto', None, or a (ranks_z, ranks_t) tuple; got {g!r}"
        )


@dataclass(frozen=True)
class PlacementDecision:
    """Where and how one batch will run."""

    worker_id: int
    grid: tuple[int, int] | None
    residency_key: tuple
    predicted_hit: bool


@dataclass
class PlacementStats:
    """Campaign-level placement accounting (fed into the report)."""

    residency_hits: int = 0
    residency_misses: int = 0
    gauge_saved_s: float = 0.0
    #: Batches per decomposition, keyed by ``"ZxT"`` or ``"time"``.
    grids: dict[str, int] = field(default_factory=dict)
    #: Cold placements diverted to a different failure domain than the
    #: key's existing warm replicas (anti-affinity).
    anti_affinity_placements: int = 0


class PlacementEngine:
    """The dispatch loop's oracle: grid, worker, and tunings per batch."""

    def __init__(
        self,
        policy: PlacementPolicy,
        workers,
        *,
        gpu_spec: GPUSpec = GTX285,
        params: PerfModelParams = DEFAULT_PARAMS,
        tune_cache: SharedTuneCache | None = None,
    ) -> None:
        self.policy = policy
        self.workers = workers
        self.params = params
        self.selector = GridSelector(gpu_spec=gpu_spec, params=params)
        self.router = ResidencyRouter(workers, enabled=policy.residency)
        self.tune_cache: SharedTuneCache | None = None
        if policy.tunecache:
            self.tune_cache = (
                tune_cache if tune_cache is not None else SharedTuneCache()
            )
        self.stats = PlacementStats()

    # ------------------------------------------------------------------ #

    def reset_stats(self) -> None:
        """Start a fresh campaign scorecard (the tunecache's *entries*
        survive — that persistence is the point — but its hit/miss and
        saved/spent counters restart with the stats)."""
        self.stats = PlacementStats()
        if self.tune_cache is not None:
            self.tune_cache.reset_counters()

    def grid_for(self, request, ranks: int) -> tuple[int, int] | None:
        g = self.policy.grid
        if g == "auto":
            return self.selector.select(request.dims, ranks, request.mode)
        if g is None:
            return None
        rz, rt = g
        if rz * rt != ranks:
            raise ValueError(
                f"pinned grid {g} needs {rz * rt} ranks but workers have {ranks}"
            )
        return None if rz == 1 else (rz, rt)

    def place(
        self,
        records,
        idle_ids: list[int],
        *,
        node_of=None,
        anti_affinity: bool = False,
    ) -> PlacementDecision:
        """Decide worker and grid for a selected batch.

        With ``anti_affinity`` on (and ``node_of`` mapping worker id →
        failure domain), a *miss* placement prefers a domain that holds
        no warm replica of this key: residency hits still win outright
        (serving from the warm copy is the point of having one), but new
        replicas spread across domains so one node loss cannot take
        every warm copy of a gauge configuration at once.
        """
        head = records[0].request
        ranks = self.workers[idle_ids[0]].ranks if idle_ids else 0
        grid = self.grid_for(head, ranks)
        key = residency_key(head.config_id, head.dims, head.mode, grid)
        worker_id, predicted = self.router.route(key, idle_ids)
        if not predicted and anti_affinity and node_of is not None:
            avoid = {
                node_of(w.worker_id)
                for w in self.workers
                if w.resident_key == key and not w.retired
            }
            if avoid and node_of(worker_id) in avoid:
                preferred = [i for i in idle_ids if node_of(i) not in avoid]
                if preferred:
                    worker_id, predicted = self.router.route(key, preferred)
                    self.stats.anti_affinity_placements += 1
        return PlacementDecision(
            worker_id=worker_id,
            grid=grid,
            residency_key=key,
            predicted_hit=predicted,
        )

    def observe(self, execution) -> None:
        """Fold one batch execution's placement outcome into the stats."""
        if execution.residency_hit:
            self.stats.residency_hits += 1
            self.stats.gauge_saved_s += execution.gauge_saved_s
        else:
            self.stats.residency_misses += 1
        label = (
            "time"
            if execution.grid is None
            else f"{execution.grid[0]}x{execution.grid[1]}"
        )
        self.stats.grids[label] = self.stats.grids.get(label, 0) + 1

    def summary(self) -> dict:
        """The placement block of :class:`~repro.service.metrics.ServiceReport`."""
        s = self.stats
        routed = s.residency_hits + s.residency_misses
        out = {
            "residency_hits": s.residency_hits,
            "residency_misses": s.residency_misses,
            "residency_hit_rate": s.residency_hits / routed if routed else 0.0,
            "gauge_saved_s": s.gauge_saved_s,
            "grids": dict(sorted(s.grids.items())),
            "anti_affinity_placements": s.anti_affinity_placements,
            "tunecache_hits": 0,
            "tunecache_misses": 0,
            "tunecache_hit_rate": 0.0,
            "tune_setup_spent_s": 0.0,
            "tune_setup_saved_s": 0.0,
        }
        if self.tune_cache is not None:
            out.update(
                tunecache_hits=self.tune_cache.hits,
                tunecache_misses=self.tune_cache.misses,
                tunecache_hit_rate=self.tune_cache.hit_rate,
                tune_setup_spent_s=self.tune_cache.spent_s,
                tune_setup_saved_s=self.tune_cache.saved_s,
            )
        return out
