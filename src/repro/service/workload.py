"""Deterministic synthetic workloads for the solve service.

Open-loop arrivals with exponential interarrival times (the standard
serving-stack load model), priorities drawn from a configurable mix, and
per-priority deadline slack — all keyed on one seed through
``SeedSequence`` so a workload is byte-identical across runs and
platforms, which is what makes whole-campaign schedules replayable.
"""

from __future__ import annotations

import numpy as np

from .request import PRIORITY_HIGH, PRIORITY_LOW, PRIORITY_NORMAL, SolveRequest

__all__ = ["synthetic_workload"]

_SALT_ARRIVAL = 0xA881
_SALT_PRIORITY = 0xA882
_SALT_CONFIG = 0xA883


def synthetic_workload(
    n_requests: int,
    *,
    seed: int = 2010,
    rate_rps: float = 2000.0,
    dims: tuple[int, int, int, int] = (8, 8, 8, 32),
    mode: str = "single-half",
    solver: str = "bicgstab",
    mass: float = 0.2,
    n_configs: int = 1,
    priority_mix: tuple[float, float, float] = (0.1, 0.7, 0.2),
    #: Deadline slack in model seconds for a NORMAL-priority request;
    #: HIGH gets half, LOW double.  ``None`` disables deadlines.
    deadline_slack_s: float | None = None,
) -> list[SolveRequest]:
    """``n_requests`` arrivals of a Section-VIII-style campaign."""
    if n_requests < 0:
        raise ValueError("n_requests must be >= 0")
    if rate_rps <= 0:
        raise ValueError("rate_rps must be > 0")
    if n_configs < 1:
        raise ValueError("n_configs must be >= 1")
    mix = np.asarray(priority_mix, dtype=float)
    if mix.min() < 0 or mix.sum() <= 0:
        raise ValueError("priority_mix must be nonnegative with positive sum")
    mix = mix / mix.sum()

    arrival_rng = np.random.default_rng(
        np.random.SeedSequence([seed, _SALT_ARRIVAL])
    )
    prio_rng = np.random.default_rng(
        np.random.SeedSequence([seed, _SALT_PRIORITY])
    )
    config_rng = np.random.default_rng(
        np.random.SeedSequence([seed, _SALT_CONFIG])
    )
    gaps = arrival_rng.exponential(1.0 / rate_rps, size=n_requests)
    arrivals = np.cumsum(gaps)
    priorities = prio_rng.choice(
        [PRIORITY_HIGH, PRIORITY_NORMAL, PRIORITY_LOW],
        size=n_requests,
        p=mix,
    )
    configs = config_rng.integers(0, n_configs, size=n_requests)

    slack_by_priority = {
        PRIORITY_HIGH: 0.5,
        PRIORITY_NORMAL: 1.0,
        PRIORITY_LOW: 2.0,
    }
    requests = []
    for i in range(n_requests):
        arrival = float(arrivals[i])
        priority = int(priorities[i])
        deadline = None
        if deadline_slack_s is not None:
            deadline = arrival + deadline_slack_s * slack_by_priority[priority]
        requests.append(
            SolveRequest(
                req_id=i,
                config_id=int(configs[i]),
                dims=dims,
                mode=mode,
                solver=solver,
                mass=mass,
                source_seed=seed,
                priority=priority,
                arrival_s=arrival,
                deadline_s=deadline,
            )
        )
    return requests
