"""Deterministic synthetic workloads and arrival processes.

Open-loop arrivals with exponential interarrival times (the standard
serving-stack load model), priorities drawn from a configurable mix, and
per-priority deadline slack — all keyed on one seed through
``SeedSequence`` so a workload is byte-identical across runs and
platforms, which is what makes whole-campaign schedules replayable.

Two shapes of workload are offered:

* :func:`synthetic_workload` — the classic fixed-size list (PR 4): all
  arrivals materialized up front, for one-shot campaigns.
* :func:`stream_workload` / :func:`bursty_workload` — *lazy* arrival
  processes for the daemon (``repro serve --stream``): requests are
  generated one at a time as the event loop consumes them, so the
  admission channel outlives any fixed list, and a resumed scheduler can
  regenerate exactly the same stream and skip what it already consumed.
  ``bursty_workload`` is a piecewise-constant-rate Poisson process (a
  quiet baseline, a burst window, quiet again) — the canonical traffic
  shape that forces an elastic pool to scale up and back down.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .request import PRIORITY_HIGH, PRIORITY_LOW, PRIORITY_NORMAL, SolveRequest

__all__ = ["synthetic_workload", "stream_workload", "bursty_workload"]

_SALT_ARRIVAL = 0xA881
_SALT_PRIORITY = 0xA882
_SALT_CONFIG = 0xA883
_SALT_TENANT = 0xA884

#: Per-priority deadline slack multipliers (HIGH is the tight tier).
_SLACK = {PRIORITY_HIGH: 0.5, PRIORITY_NORMAL: 1.0, PRIORITY_LOW: 2.0}


def _normalized_mix(priority_mix) -> np.ndarray:
    mix = np.asarray(priority_mix, dtype=float)
    if mix.min() < 0 or mix.sum() <= 0:
        raise ValueError("priority_mix must be nonnegative with positive sum")
    return mix / mix.sum()


def _tenant_mix(tenants, tenant_mix) -> np.ndarray | None:
    """Normalized tenant draw probabilities, or ``None`` when the
    workload is untenanted (the tenant RNG is then never created, so
    untenanted streams stay byte-identical to pre-tenancy builds)."""
    if tenants is None:
        if tenant_mix is not None:
            raise ValueError("tenant_mix requires tenants")
        return None
    if not tenants:
        raise ValueError("tenants must be non-empty when given")
    if tenant_mix is None:
        tenant_mix = [1.0] * len(tenants)
    if len(tenant_mix) != len(tenants):
        raise ValueError(
            f"{len(tenants)} tenant(s) but {len(tenant_mix)} mix weight(s)"
        )
    return _normalized_mix(tenant_mix)


def synthetic_workload(
    n_requests: int,
    *,
    seed: int = 2010,
    rate_rps: float = 2000.0,
    dims: tuple[int, int, int, int] = (8, 8, 8, 32),
    mode: str = "single-half",
    solver: str = "bicgstab",
    mass: float = 0.2,
    n_configs: int = 1,
    priority_mix: tuple[float, float, float] = (0.1, 0.7, 0.2),
    #: Deadline slack in model seconds for a NORMAL-priority request;
    #: HIGH gets half, LOW double.  ``None`` disables deadlines.
    deadline_slack_s: float | None = None,
    tenants: tuple[str, ...] | None = None,
    tenant_mix: tuple[float, ...] | None = None,
) -> list[SolveRequest]:
    """``n_requests`` arrivals of a Section-VIII-style campaign."""
    if n_requests < 0:
        raise ValueError("n_requests must be >= 0")
    if rate_rps <= 0:
        raise ValueError("rate_rps must be > 0")
    if n_configs < 1:
        raise ValueError("n_configs must be >= 1")
    mix = _normalized_mix(priority_mix)
    tmix = _tenant_mix(tenants, tenant_mix)

    arrival_rng = np.random.default_rng(
        np.random.SeedSequence([seed, _SALT_ARRIVAL])
    )
    prio_rng = np.random.default_rng(
        np.random.SeedSequence([seed, _SALT_PRIORITY])
    )
    config_rng = np.random.default_rng(
        np.random.SeedSequence([seed, _SALT_CONFIG])
    )
    gaps = arrival_rng.exponential(1.0 / rate_rps, size=n_requests)
    arrivals = np.cumsum(gaps)
    priorities = prio_rng.choice(
        [PRIORITY_HIGH, PRIORITY_NORMAL, PRIORITY_LOW],
        size=n_requests,
        p=mix,
    )
    configs = config_rng.integers(0, n_configs, size=n_requests)
    owners = None
    if tmix is not None:
        tenant_rng = np.random.default_rng(
            np.random.SeedSequence([seed, _SALT_TENANT])
        )
        owners = tenant_rng.choice(len(tenants), size=n_requests, p=tmix)

    requests = []
    for i in range(n_requests):
        arrival = float(arrivals[i])
        priority = int(priorities[i])
        deadline = None
        if deadline_slack_s is not None:
            deadline = arrival + deadline_slack_s * _SLACK[priority]
        requests.append(
            SolveRequest(
                req_id=i,
                config_id=int(configs[i]),
                dims=dims,
                mode=mode,
                solver=solver,
                mass=mass,
                source_seed=seed,
                priority=priority,
                arrival_s=arrival,
                deadline_s=deadline,
                tenant=tenants[int(owners[i])] if owners is not None else None,
            )
        )
    return requests


# --------------------------------------------------------------------- #
# Streaming arrival processes (daemon mode)
# --------------------------------------------------------------------- #


def _stream(
    gap_for,
    n_requests: int | None,
    duration_s: float | None,
    *,
    seed: int,
    dims: tuple[int, int, int, int],
    mode: str,
    solver: str,
    mass: float,
    n_configs: int,
    priority_mix: tuple[float, float, float],
    deadline_slack_s: float | None,
    tenants: tuple[str, ...] | None = None,
    tenant_mix: tuple[float, ...] | None = None,
) -> Iterator[SolveRequest]:
    """Shared lazy generator behind the streaming workloads.

    ``gap_for(rng, now)`` draws the next interarrival gap — the hook the
    bursty process uses to vary the rate over event time.  Generation is
    incremental draws from per-purpose ``SeedSequence``-keyed RNGs, so
    the stream is byte-identical across runs and a resumed scheduler can
    regenerate it and skip the prefix it already consumed.

    Validation happens here, eagerly; the inner generator only draws.
    """
    if n_requests is None and duration_s is None:
        raise ValueError("bound the stream with n_requests and/or duration_s")
    if n_requests is not None and n_requests < 0:
        raise ValueError("n_requests must be >= 0")
    if duration_s is not None and duration_s <= 0:
        raise ValueError("duration_s must be > 0")
    if n_configs < 1:
        raise ValueError("n_configs must be >= 1")
    mix = _normalized_mix(priority_mix)
    tmix = _tenant_mix(tenants, tenant_mix)
    return _stream_gen(
        gap_for, n_requests, duration_s, mix,
        seed=seed, dims=dims, mode=mode, solver=solver, mass=mass,
        n_configs=n_configs, deadline_slack_s=deadline_slack_s,
        tenants=tenants, tmix=tmix,
    )


def _stream_gen(
    gap_for,
    n_requests: int | None,
    duration_s: float | None,
    mix: np.ndarray,
    *,
    seed: int,
    dims: tuple[int, int, int, int],
    mode: str,
    solver: str,
    mass: float,
    n_configs: int,
    deadline_slack_s: float | None,
    tenants: tuple[str, ...] | None = None,
    tmix: np.ndarray | None = None,
) -> Iterator[SolveRequest]:
    arrival_rng = np.random.default_rng(np.random.SeedSequence([seed, _SALT_ARRIVAL]))
    prio_rng = np.random.default_rng(np.random.SeedSequence([seed, _SALT_PRIORITY]))
    config_rng = np.random.default_rng(np.random.SeedSequence([seed, _SALT_CONFIG]))
    # The tenant RNG exists only for tenanted streams: untenanted runs
    # make exactly the draws pre-tenancy builds made, byte for byte.
    tenant_rng = None
    if tmix is not None:
        tenant_rng = np.random.default_rng(
            np.random.SeedSequence([seed, _SALT_TENANT])
        )
    now = 0.0
    i = 0
    while n_requests is None or i < n_requests:
        now += gap_for(arrival_rng, now)
        if duration_s is not None and now > duration_s:
            return
        priority = int(
            prio_rng.choice([PRIORITY_HIGH, PRIORITY_NORMAL, PRIORITY_LOW], p=mix)
        )
        deadline = None
        if deadline_slack_s is not None:
            deadline = now + deadline_slack_s * _SLACK[priority]
        tenant = None
        if tenant_rng is not None:
            tenant = tenants[int(tenant_rng.choice(len(tenants), p=tmix))]
        yield SolveRequest(
            req_id=i,
            config_id=int(config_rng.integers(0, n_configs)),
            dims=dims,
            mode=mode,
            solver=solver,
            mass=mass,
            source_seed=seed,
            priority=priority,
            arrival_s=now,
            deadline_s=deadline,
            tenant=tenant,
        )
        i += 1


def stream_workload(
    n_requests: int | None = None,
    *,
    seed: int = 2010,
    rate_rps: float = 2000.0,
    duration_s: float | None = None,
    dims: tuple[int, int, int, int] = (8, 8, 8, 32),
    mode: str = "single-half",
    solver: str = "bicgstab",
    mass: float = 0.2,
    n_configs: int = 1,
    priority_mix: tuple[float, float, float] = (0.1, 0.7, 0.2),
    deadline_slack_s: float | None = None,
    tenants: tuple[str, ...] | None = None,
    tenant_mix: tuple[float, ...] | None = None,
) -> Iterator[SolveRequest]:
    """A lazy open-loop Poisson arrival stream for the daemon.

    Bounded by ``n_requests``, ``duration_s`` (model time), or both —
    the daemon drains whatever the channel delivers and keeps running
    until it does.
    """
    if rate_rps <= 0:
        raise ValueError("rate_rps must be > 0")
    return _stream(
        lambda rng, now: float(rng.exponential(1.0 / rate_rps)),
        n_requests,
        duration_s,
        seed=seed,
        dims=dims,
        mode=mode,
        solver=solver,
        mass=mass,
        n_configs=n_configs,
        priority_mix=priority_mix,
        deadline_slack_s=deadline_slack_s,
        tenants=tenants,
        tenant_mix=tenant_mix,
    )


def bursty_workload(
    n_requests: int | None = None,
    *,
    seed: int = 2010,
    base_rps: float = 500.0,
    burst_rps: float = 8000.0,
    burst_start_s: float = 0.0,
    burst_len_s: float = 0.0,
    duration_s: float | None = None,
    dims: tuple[int, int, int, int] = (8, 8, 8, 32),
    mode: str = "single-half",
    solver: str = "bicgstab",
    mass: float = 0.2,
    n_configs: int = 1,
    priority_mix: tuple[float, float, float] = (0.1, 0.7, 0.2),
    deadline_slack_s: float | None = None,
    tenants: tuple[str, ...] | None = None,
    tenant_mix: tuple[float, ...] | None = None,
) -> Iterator[SolveRequest]:
    """A piecewise-constant-rate Poisson stream: quiet, burst, quiet.

    Inside ``[burst_start_s, burst_start_s + burst_len_s)`` arrivals come
    at ``burst_rps``; outside at ``base_rps``.  The canonical traffic
    shape for exercising the elastic pool: the burst drives a scale-up,
    the quiet tail a scale-down.
    """
    if base_rps <= 0 or burst_rps <= 0:
        raise ValueError("arrival rates must be > 0")
    if burst_len_s < 0:
        raise ValueError("burst_len_s must be >= 0")

    def gap(rng, now: float) -> float:
        in_burst = burst_start_s <= now < burst_start_s + burst_len_s
        rate = burst_rps if in_burst else base_rps
        return float(rng.exponential(1.0 / rate))

    return _stream(
        gap,
        n_requests,
        duration_s,
        seed=seed,
        dims=dims,
        mode=mode,
        solver=solver,
        mass=mass,
        n_configs=n_configs,
        priority_mix=priority_mix,
        deadline_slack_s=deadline_slack_s,
        tenants=tenants,
        tenant_mix=tenant_mix,
    )
