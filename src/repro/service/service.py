"""The solve service: a deterministic event-driven campaign scheduler.

:class:`SolveService` consumes a workload of
:class:`~repro.service.request.SolveRequest` arrivals and drives them to
terminal states on a pool of simulated multi-GPU workers, entirely on
the model clock:

1. **Admission** — arrivals enter the bounded
   :class:`~repro.service.queueing.AdmissionQueue`; a full queue rejects
   with a retry-after hint computed from the live backlog (backpressure,
   never unbounded latency).
2. **Batching** — the :class:`~repro.service.batching.BatchPolicy`
   groups compatible requests into multi-RHS batches: dispatch on full
   batch, window expiry, or expedited priority, always considering
   higher-priority groups first.
3. **Execution** — each batch occupies a
   :class:`~repro.service.workers.SimWorker` (an n-rank SimMPI cluster)
   for its deterministic model duration; faults injected by the worker's
   :class:`~repro.comms.faults.FaultPlan` either self-heal inside the
   batch (worker retry policy) or surface as a structured failure the
   service answers with bounded re-dispatch.
4. **Accounting** — every transition is stamped on the request's
   lifecycle trace; the final
   :class:`~repro.service.metrics.ServiceReport` carries the wait/latency
   percentiles, occupancy, utilization and goodput.

The event loop orders (time, kind, sequence) totally, every duration is
model time, and every scheduling decision is a pure function of the
workload and the seed — so two runs of the same campaign produce
identical completion orders and identical percentiles, and the
*no-lost-requests* invariant (every admitted request ends COMPLETED or
FAILED-with-structure) is checked, not hoped for.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field as dataclass_field

from ..comms.cluster import ClusterSpec
from ..comms.faults import FaultPlan, IntegrityPolicy
from ..core import RetryPolicy
from ..gpu.specs import GTX285, GPUSpec
from .batching import Batch, BatchPolicy, select_batch
from .metrics import ServiceReport
from .queueing import AdmissionQueue
from .request import (
    COMPLETED,
    FAILED,
    QUEUED,
    REJECTED,
    RUNNING,
    RequestRecord,
    SolveRequest,
    StructuredFailure,
)
from .workers import SimWorker

__all__ = ["ServiceConfig", "ServiceResult", "SolveService", "ServiceInvariantError"]

# Event kinds, in same-time processing order: completions free workers
# before new arrivals are admitted; timeouts merely re-trigger dispatch.
_EV_DONE = 0
_EV_ARRIVAL = 1
_EV_TIMEOUT = 2


class ServiceInvariantError(RuntimeError):
    """A request left the event loop in a non-terminal state — the
    service lost work, which must never pass silently."""


@dataclass(frozen=True)
class ServiceConfig:
    """Everything that shapes a campaign's schedule."""

    queue_capacity: int = 64
    policy: BatchPolicy = dataclass_field(default_factory=BatchPolicy)
    n_workers: int = 2
    ranks_per_worker: int = 2
    #: Additional dispatches after a worker failure before the request
    #: fails terminally.
    max_retries: int = 1
    #: Real numerics (weak-field configs, actual sources) instead of the
    #: timing-only schedule.
    functional: bool = False
    fixed_iterations: int = 15
    overlap: bool = True
    #: Fault template: worker ``w`` in ``chaos_workers`` runs under
    #: ``fault_plan.reseeded(w)`` — independent schedules, one seed.
    fault_plan: FaultPlan | None = None
    chaos_workers: tuple[int, ...] = ()
    #: Worker-side self-healing (checkpoint resume over survivors);
    #: ``None`` leaves recovery to service-level re-dispatch.
    retry_policy: RetryPolicy | None = None
    integrity: IntegrityPolicy | None = None
    #: Seeds the service's own bookkeeping (reserved; scheduling is
    #: already deterministic without randomness).
    seed: int = 0
    #: Retry-after fallback before any batch has been measured.
    service_time_hint_s: float = 2e-3

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        for w in self.chaos_workers:
            if not 0 <= w < self.n_workers:
                raise ValueError(f"chaos worker {w} outside the pool")
        if self.chaos_workers and self.fault_plan is None:
            raise ValueError("chaos_workers requires a fault_plan")


@dataclass
class ServiceResult:
    """A served campaign: the report plus every artifact behind it."""

    report: ServiceReport
    records: list[RequestRecord]
    batches: list[Batch]
    #: Request ids in completion order — the determinism witness.
    completion_order: list[int]
    workers: list[SimWorker]

    def record_for(self, req_id: int) -> RequestRecord:
        for rec in self.records:
            if rec.request.req_id == req_id:
                return rec
        raise KeyError(req_id)


class SolveService:
    """Deterministic scheduler over a simulated worker pool."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        gpu_spec: GPUSpec = GTX285,
        cluster: ClusterSpec | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        cfg = self.config
        self.workers = [
            SimWorker(
                w,
                ranks=cfg.ranks_per_worker,
                gpu_spec=gpu_spec,
                cluster=cluster,
                fault_plan=(
                    cfg.fault_plan.reseeded(w)
                    if cfg.fault_plan is not None and w in cfg.chaos_workers
                    else None
                ),
                retry_policy=cfg.retry_policy,
                integrity=cfg.integrity,
                functional=cfg.functional,
                fixed_iterations=cfg.fixed_iterations,
                overlap=cfg.overlap,
            )
            for w in range(cfg.n_workers)
        ]

    # ------------------------------------------------------------------ #

    def run(self, requests: list[SolveRequest]) -> ServiceResult:
        """Serve a whole campaign; returns when every request is terminal."""
        cfg = self.config
        queue = AdmissionQueue(cfg.queue_capacity)
        records = [RequestRecord(request=req) for req in requests]
        seq = 0
        events: list[tuple] = []
        for rec in records:
            heapq.heappush(
                events, (rec.request.arrival_s, _EV_ARRIVAL, seq, rec)
            )
            seq += 1

        batches: list[Batch] = []
        completion_order: list[int] = []
        idle = list(range(len(self.workers)))  # ascending worker ids
        duration_sum = 0.0
        duration_n = 0
        now = 0.0
        makespan = 0.0

        def estimate_retry_after() -> float:
            est = (
                duration_sum / duration_n
                if duration_n
                else cfg.service_time_hint_s
            )
            backlog_batches = -(-max(len(queue), 1) // cfg.policy.max_batch)
            return est * (backlog_batches + 1) / len(self.workers)

        def dispatch() -> None:
            nonlocal seq, duration_sum, duration_n
            while idle and len(queue):
                selected = select_batch(queue.ordered(), now, cfg.policy)
                if selected is None:
                    return
                queue.remove(selected)
                worker = self.workers[idle.pop(0)]
                batch = Batch(
                    batch_id=len(batches),
                    records=selected,
                    key=selected[0].request.compat_key,
                    formed_s=now,
                    worker_id=worker.worker_id,
                )
                batches.append(batch)
                for rec in selected:
                    rec.state = RUNNING
                    rec.attempts += 1
                    if rec.dispatched_s is None:
                        rec.dispatched_s = now
                    rec.batch_ids.append(batch.batch_id)
                    rec.note(
                        now,
                        "dispatch",
                        f"batch {batch.batch_id} (size {batch.size}) "
                        f"on worker {worker.worker_id}, attempt {rec.attempts}",
                    )
                batch.trace.append(
                    (now, "dispatch", f"worker {worker.worker_id}")
                )
                execution = worker.execute([r.request for r in selected])
                worker.busy_s += execution.duration_s
                duration_sum += execution.duration_s
                duration_n += 1
                heapq.heappush(
                    events,
                    (
                        now + execution.duration_s,
                        _EV_DONE,
                        seq,
                        (batch, execution),
                    ),
                )
                seq += 1

        def complete(batch: Batch, execution) -> None:
            nonlocal seq, makespan
            worker = self.workers[batch.worker_id]
            idle.append(worker.worker_id)
            idle.sort()
            batch.completed_s = now
            batch.duration_s = execution.duration_s
            batch.ok = execution.ok
            batch.recoveries = execution.recoveries
            makespan = max(makespan, now)
            if execution.ok:
                batch.trace.append((now, "complete", ""))
                for rec, outcome in zip(batch.records, execution.outcomes):
                    rec.state = COMPLETED
                    rec.completed_s = now
                    rec.iterations = outcome["iterations"]
                    rec.converged = outcome["converged"]
                    rec.residual_norm = outcome["residual_norm"]
                    rec.recoveries = outcome["recoveries"]
                    rec.note(
                        now,
                        "complete",
                        f"{outcome['iterations']} iterations"
                        + (
                            f", {outcome['recoveries']} recover(ies)"
                            if outcome["recoveries"]
                            else ""
                        ),
                    )
                    completion_order.append(rec.request.req_id)
                return
            failure = execution.failure
            batch.detail = str(failure)
            batch.trace.append((now, "worker_failure", str(failure)))
            for rec in batch.records:
                if rec.attempts <= cfg.max_retries:
                    rec.state = QUEUED
                    queue.offer(rec, force=True)
                    rec.note(
                        now,
                        "requeue",
                        f"worker {batch.worker_id} failed "
                        f"(rank {failure.rank} {failure.mode}); "
                        f"retry {rec.attempts}/{cfg.max_retries}",
                    )
                else:
                    rec.state = FAILED
                    rec.completed_s = now
                    rec.failure = StructuredFailure(
                        kind="worker_crash",
                        detail=str(failure),
                        failed_rank=failure.rank,
                        model_time=now,
                        attempts=rec.attempts,
                    )
                    rec.note(
                        now,
                        "fail",
                        f"retries exhausted after {rec.attempts} attempts: "
                        f"{failure}",
                    )
                    completion_order.append(rec.request.req_id)

        while events:
            t, kind, _, payload = heapq.heappop(events)
            now = t
            if kind == _EV_DONE:
                batch, execution = payload
                complete(batch, execution)
            elif kind == _EV_ARRIVAL:
                rec = payload
                rec.note(now, "arrive", f"priority {rec.request.priority}")
                if not queue.offer(rec):
                    rec.state = REJECTED
                    rec.completed_s = now
                    rec.retry_after_s = estimate_retry_after()
                    rec.note(
                        now,
                        "reject",
                        f"queue full ({cfg.queue_capacity}); retry after "
                        f"{rec.retry_after_s * 1e6:.1f}us",
                    )
                    continue
                rec.admitted_s = now
                rec.note(now, "admit", f"depth {len(queue)}")
                heapq.heappush(
                    events,
                    (now + cfg.policy.max_wait_s, _EV_TIMEOUT, seq, None),
                )
                seq += 1
            # _EV_TIMEOUT carries no payload: it exists to revisit the
            # queue once a batching window has expired.
            dispatch()

        stuck = [rec for rec in records if not rec.terminal]
        if stuck:
            raise ServiceInvariantError(
                f"{len(stuck)} request(s) left non-terminal: "
                f"{[r.request.req_id for r in stuck]}"
            )

        report = ServiceReport.collect(
            records,
            batches,
            cfg.policy,
            worker_busy_s=[w.busy_s for w in self.workers],
            makespan_s=makespan,
        )
        return ServiceResult(
            report=report,
            records=records,
            batches=batches,
            completion_order=completion_order,
            workers=self.workers,
        )
