"""The solve service: a long-lived, self-healing campaign daemon.

PR 4 built a one-shot scheduler — ``run(requests)`` drained a fixed list
and returned.  This module is the daemon era: requests arrive over an
open admission channel (any iterator of
:class:`~repro.service.request.SolveRequest` in event-time order — a
materialized list or a lazy :func:`~repro.service.workload.stream_workload`),
and the :class:`~repro.service.queueing.AdmissionQueue`,
:class:`~repro.service.batching.BatchPolicy` and
:class:`~repro.service.placement.PlacementEngine` operate *continuously*
instead of draining a snapshot.  On top of the PR 4/5 pipeline
(admission → batching → placement → execution → accounting), the daemon
adds three behaviours a service that "never stops" needs:

1. **Scheduler self-healing** — the in-flight campaign (queue contents,
   per-request lifecycle, worker residency, tunecache, estimator and
   autoscaler state) commits to a
   :class:`~repro.service.campaign.CampaignCheckpointStore` at batch
   boundaries — the campaign analogue of PR 2's refresh-point solve
   checkpoints.  A simulated scheduler crash (:class:`SchedulerCrash`)
   resumes via :meth:`SolveService.resume`: terminal outcomes restore
   verbatim, admitted-but-unserved requests re-enter the queue, and
   everything after the last commit replays deterministically — the
   no-lost-requests invariant holds *across* the crash.

2. **Preemption** — when HIGH work lands mid-batch with no idle worker,
   a running LOW batch yields at its next refresh-point boundary (the
   same boundaries PR 2 checkpoints solves at, so the preempted solve
   *resumes* from checkpoint rather than restarting: the re-dispatch
   charges only the remaining work plus a modeled resume overhead).

3. **Elastic workers** — a :class:`~repro.service.elastic.PoolController`
   scales the simulated pool against an EWMA of the measured arrival
   rate (the PR 5 :class:`~repro.service.queueing.DrainEstimator`
   pointed at interarrival gaps), charging a modeled spin-up delay on
   scale-up and draining gauge residency on scale-down.

4. **Failure-domain resilience** (:mod:`repro.service.health`) — a
   per-worker health ledger feeds a circuit breaker (drain → cooldown →
   seeded probe → reinstate or retire), running batches that outlive a
   model-relative threshold earn a hedged replica on an idle healthy
   worker (first completion wins, the loser abandons at its next
   refresh boundary), and a brownout controller sheds/degrades/rejects
   under sustained overload instead of failing HIGH traffic.

The event loop still orders (time, kind, sequence) totally, every
duration is model time, and every decision — including preemption
points, scale events, breaker transitions, hedge launches and
checkpoint commits — is a pure function of the workload and the seed,
so daemon campaigns replay byte-identically.  With health, hedging and
brownout disabled (the default) no new event is ever pushed, so legacy
schedules are unchanged.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field as dataclass_field, replace
from typing import Iterable, Iterator

from ..comms.cluster import ClusterSpec, Topology
from ..comms.faults import (
    DomainFaultPlan,
    FaultPlan,
    HcaDegrade,
    IntegrityPolicy,
    SwitchPartition,
    WorkerFaultPlan,
)
from ..core import RetryPolicy
from ..gpu.specs import GTX285, GPUSpec
from .batching import Batch, BatchPolicy, select_batch
from .campaign import CampaignCheckpoint, CampaignCheckpointStore, SchedulerCrash
from .elastic import (
    ArrivalRateEstimator,
    ElasticPolicy,
    PoolController,
    spread_domain,
)
from .health import (
    BROWNOUT_DEGRADE,
    BROWNOUT_NORMAL,
    BROWNOUT_REJECT,
    BROWNOUT_SHED_LOW,
    DEGRADE_MODE,
    HEALTHY,
    PROBING,
    QUARANTINED,
    BrownoutController,
    BrownoutPolicy,
    DomainBoard,
    DomainPolicy,
    HealthBoard,
    HealthPolicy,
    HedgePolicy,
)
from .metrics import ServiceReport
from .placement import PlacementEngine, PlacementPolicy, SharedTuneCache
from .queueing import AdmissionQueue, DrainEstimator, partition_by_tenant
from .tenancy import TenancyPolicy, TenantRegistry
from .request import (
    COMPLETED,
    FAILED,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    QUEUED,
    REJECTED,
    RUNNING,
    RequestRecord,
    SolveRequest,
    StructuredFailure,
)
from .workers import BatchExecution, SimWorker

__all__ = [
    "ServiceConfig",
    "ServiceResult",
    "SolveService",
    "ServiceInvariantError",
    "PreemptionPolicy",
    "SchedulerCrash",
]

# Event kinds, in same-time processing order: completions free workers
# first; preemption yields fire before new arrivals are admitted (the
# boundary belongs to the batch, not the trigger); spun-up workers join
# before arrivals so fresh capacity takes same-instant traffic; timeouts
# merely re-trigger dispatch.  The resilience kinds (hedge checks,
# hedge-loser worker frees, worker kills, quarantine probes) come after
# every legacy kind and are only ever pushed when their feature is
# enabled — with health/hedging/brownout off, legacy schedules are
# byte-identical.
_EV_DONE = 0
_EV_PREEMPT = 1
_EV_WORKER_UP = 2
_EV_ARRIVAL = 3
_EV_TIMEOUT = 4
_EV_HEDGE = 5
_EV_HEDGE_CANCEL = 6
_EV_KILL = 7
_EV_PROBE = 8
# Failure-domain kinds (PR 8): correlated faults and the domain breaker's
# single probe.  Pushed only when a DomainFaultPlan / DomainPolicy is
# configured, so topology-free schedules stay byte-identical.
_EV_NODE_KILL = 9
_EV_HCA_DEGRADE = 10
_EV_PARTITION = 11
_EV_HEAL = 12
_EV_DOMAIN_PROBE = 13

#: Float-rounding slack for refresh-boundary arithmetic (same scale as
#: the batching window slack).
_BOUNDARY_SLACK_S = 1e-9


class ServiceInvariantError(RuntimeError):
    """A request left the event loop in a non-terminal state — the
    service lost work, which must never pass silently."""


@dataclass(frozen=True)
class PreemptionPolicy:
    """When running batches yield to more urgent work.

    A batch is *preemptible* when every member sits at or below
    ``victim_priority`` (numerically >=); an arrival at or above
    ``trigger_priority`` (numerically <=) that finds no idle worker
    schedules the victim's yield at its next refresh-point boundary —
    the instant PR 2's machinery has a consistent checkpoint, so the
    preempted solve later *resumes* (remaining work + a modeled
    checkpoint-reload overhead) instead of restarting.
    """

    enabled: bool = False
    #: Refresh-point boundaries per batch (the reliable-update cadence):
    #: a batch can yield at ``k/N`` of its duration, ``k = 1..N-1``.
    refresh_points: int = 4
    #: Model time to reload the checkpoint and re-establish device state
    #: when a preempted batch resumes.
    resume_overhead_s: float = 100e-6
    #: Arrivals at or above this urgency (numerically <=) may trigger.
    trigger_priority: int = PRIORITY_HIGH
    #: Batches whose every member is at or below this urgency
    #: (numerically >=) may be preempted.
    victim_priority: int = PRIORITY_LOW

    def __post_init__(self) -> None:
        if self.refresh_points < 1:
            raise ValueError("refresh_points must be >= 1")
        if self.resume_overhead_s < 0:
            raise ValueError("resume_overhead_s must be >= 0")


@dataclass(frozen=True)
class ServiceConfig:
    """Everything that shapes a campaign's schedule."""

    queue_capacity: int = 64
    policy: BatchPolicy = dataclass_field(default_factory=BatchPolicy)
    n_workers: int = 2
    ranks_per_worker: int = 2
    #: Additional dispatches after a worker failure before the request
    #: fails terminally.
    max_retries: int = 1
    #: Real numerics (weak-field configs, actual sources) instead of the
    #: timing-only schedule.
    functional: bool = False
    fixed_iterations: int = 15
    overlap: bool = True
    #: Fault template: worker ``w`` in ``chaos_workers`` runs under
    #: ``fault_plan.reseeded(w)`` — independent schedules, one seed.
    fault_plan: FaultPlan | None = None
    chaos_workers: tuple[int, ...] = ()
    #: Worker-side self-healing (checkpoint resume over survivors);
    #: ``None`` leaves recovery to service-level re-dispatch.
    retry_policy: RetryPolicy | None = None
    integrity: IntegrityPolicy | None = None
    #: Seeds the service's own bookkeeping (reserved; scheduling is
    #: already deterministic without randomness).
    seed: int = 0
    #: Retry-after fallback before any batch has been measured.
    service_time_hint_s: float = 2e-3
    #: EWMA smoothing factor of the drain-rate estimator behind the
    #: retry-after hint (1.0 = last batch only).
    drain_alpha: float = 0.3
    #: The placement layer's knobs: grid selection, residency routing,
    #: shared tunecache.
    placement: PlacementPolicy = dataclass_field(default_factory=PlacementPolicy)
    #: Refresh-boundary preemption of LOW batches by HIGH arrivals.
    preemption: PreemptionPolicy = dataclass_field(default_factory=PreemptionPolicy)
    #: Autoscaling of the worker pool (``None`` = fixed ``n_workers``).
    elastic: ElasticPolicy | None = None
    #: Campaign-checkpoint cadence, in batch completions per commit.
    checkpoint_every: int = 1
    #: Circuit-breaker policy (``None`` or ``enabled=False`` = off).
    health: HealthPolicy | None = None
    #: Straggler-hedging policy (``None`` or ``enabled=False`` = off).
    hedge: HedgePolicy | None = None
    #: Graceful-brownout policy (``None`` or ``enabled=False`` = off).
    brownout: BrownoutPolicy | None = None
    #: Whole-worker fault injection: scheduled kills and per-worker
    #: straggler slowdowns (the failure modes the resilience layer is
    #: exercised against).
    worker_faults: WorkerFaultPlan | None = None
    #: Physical failure-domain hierarchy (worker -> node -> rack).
    #: ``None`` = flat pool; every domain feature below requires it.
    topology: Topology | None = None
    #: Correlated fault injection at domain granularity: silent node
    #: loss, HCA degradation, switch partitions.
    domain_faults: DomainFaultPlan | None = None
    #: Domain-level breaker: k-of-n correlated worker strikes escalate
    #: to a whole-node quarantine with a single probe per domain.
    domain_health: DomainPolicy | None = None
    #: Place warm-pool / hedge replicas in a different failure domain
    #: than the primary whenever one is available.
    anti_affinity: bool = False
    #: Multi-tenant capacity control: per-tenant token-bucket quotas and
    #: weighted-fair dispatch.  ``None`` (or a tenant-less policy) keeps
    #: the whole subsystem inert — tenancy-free schedules byte-identical.
    tenancy: TenancyPolicy | None = None

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if not 0.0 < self.drain_alpha <= 1.0:
            raise ValueError("drain_alpha must be in (0, 1]")
        g = self.placement.grid
        if isinstance(g, tuple) and g[0] * g[1] != self.ranks_per_worker:
            raise ValueError(
                f"pinned grid {g} needs {g[0] * g[1]} ranks but workers "
                f"have {self.ranks_per_worker}"
            )
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        for w in self.chaos_workers:
            if not 0 <= w < self.n_workers:
                raise ValueError(f"chaos worker {w} outside the pool")
        if self.chaos_workers and self.fault_plan is None:
            raise ValueError("chaos_workers requires a fault_plan")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.elastic is not None and not (
            self.elastic.min_workers <= self.n_workers <= self.elastic.max_workers
        ):
            raise ValueError(
                f"n_workers={self.n_workers} outside the elastic range "
                f"[{self.elastic.min_workers}, {self.elastic.max_workers}]"
            )
        if self.topology is not None:
            if self.n_workers > self.topology.n_workers:
                raise ValueError(
                    f"n_workers={self.n_workers} exceeds the topology's "
                    f"{self.topology.n_workers} worker slot(s)"
                )
        else:
            if self.domain_faults is not None:
                raise ValueError("domain_faults requires a topology")
            if self.domain_health is not None and self.domain_health.enabled:
                raise ValueError("domain_health requires a topology")
            if self.anti_affinity:
                raise ValueError("anti_affinity requires a topology")


@dataclass
class ServiceResult:
    """A served campaign: the report plus every artifact behind it."""

    report: ServiceReport
    records: list[RequestRecord]
    batches: list[Batch]
    #: Request ids in completion order — the determinism witness.
    completion_order: list[int]
    workers: list[SimWorker]

    def record_for(self, req_id: int) -> RequestRecord:
        for rec in self.records:
            if rec.request.req_id == req_id:
                return rec
        raise KeyError(req_id)


@dataclass
class _ProbeRun:
    """A quarantined worker's seeded probe batch in flight.

    Rides the ``_EV_DONE`` queue like any batch completion (discriminated
    by type), but its request never enters the campaign's records — a
    probe is the breaker's instrument, not admitted traffic.
    """

    worker_id: int
    execution: BatchExecution


@dataclass
class _DeadRun:
    """A batch condemned by a *silent* node loss, awaiting detection.

    The scheduler dispatched to a dead node without knowing it: the
    send can only fail by timeout, so the failure surfaces ``detect_s``
    after dispatch — not at the instant of death.  Rides ``_EV_DONE``
    discriminated by type, like :class:`_ProbeRun`.
    """

    batch: Batch
    start_s: float


@dataclass
class _DomainProbeRun:
    """The domain breaker's single probe for a quarantined node."""

    node: int
    worker_id: int
    execution: BatchExecution


@dataclass
class _PreemptedRun:
    """A batch parked at a refresh-point checkpoint, awaiting resume."""

    records: list[RequestRecord]
    key: tuple
    residency_key: tuple
    grid: tuple[int, int] | None
    remaining_s: float
    #: The original execution: its outcomes replay on resume (the solve
    #: continues from checkpoint — same trajectory, same answer).
    execution: BatchExecution
    priority: int
    preempted_s: float
    from_batch: int


class SolveService:
    """Deterministic scheduler over a simulated (elastic) worker pool."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        gpu_spec: GPUSpec = GTX285,
        cluster: ClusterSpec | None = None,
        tune_cache: SharedTuneCache | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.gpu_spec = gpu_spec
        self.cluster = cluster
        self.workers = [
            self._make_worker(w) for w in range(self.config.n_workers)
        ]
        #: The dispatch loop's oracle; ``tune_cache`` may be a store
        #: loaded from disk (``repro serve --tunecache``) so the sweep
        #: amortizes across campaigns.
        self.placement = PlacementEngine(
            self.config.placement,
            self.workers,
            gpu_spec=gpu_spec,
            tune_cache=tune_cache,
        )

    def _make_worker(self, worker_id: int, node: int | None = None) -> SimWorker:
        """One worker slot — the factory the elastic controller uses, so
        a scaled-up worker is indistinguishable from a boot-time one.

        ``node`` is the failure domain an elastic scale-up landed on:
        its straggler factor then derives from the (domain, seed) pair
        instead of the pool index, so a resumed run with different
        scale history stays deterministic per worker *identity*.
        """
        cfg = self.config
        if cfg.worker_faults is None:
            straggler = 1.0
        elif node is not None and worker_id >= cfg.n_workers:
            straggler = cfg.worker_faults.reseeded(
                node,
                cfg.seed,
                boot_workers=cfg.n_workers,
                n_nodes=cfg.topology.n_nodes,
            )
        else:
            straggler = cfg.worker_faults.straggler_factor(worker_id)
        return SimWorker(
            worker_id,
            ranks=cfg.ranks_per_worker,
            gpu_spec=self.gpu_spec,
            cluster=self.cluster,
            # Chaos covers the configured boot workers *and* every
            # elastic scale-up (ids past the boot pool): each gets its
            # own ``reseeded(worker_id)`` stream, so scaled-up capacity
            # is never fault-immune and never replays worker 0's faults.
            fault_plan=(
                cfg.fault_plan.reseeded(worker_id)
                if cfg.fault_plan is not None
                and (worker_id in cfg.chaos_workers or worker_id >= cfg.n_workers)
                else None
            ),
            retry_policy=cfg.retry_policy,
            integrity=cfg.integrity,
            functional=cfg.functional,
            fixed_iterations=cfg.fixed_iterations,
            overlap=cfg.overlap,
            residency=cfg.placement.residency,
            straggler_factor=straggler,
        )

    # ------------------------------------------------------------------ #

    def run(self, requests: list[SolveRequest]) -> ServiceResult:
        """Serve a fixed campaign; returns when every request is terminal.

        The one-shot entry point (PR 4 compatible): the list becomes an
        arrival stream ordered by event time (stable for ties, so legacy
        schedules are unchanged).
        """
        return self.serve(sorted(requests, key=lambda r: r.arrival_s))

    def serve(
        self,
        arrivals: Iterable[SolveRequest],
        *,
        checkpoint: CampaignCheckpointStore | None = None,
        crash_at_s: float | None = None,
    ) -> ServiceResult:
        """Serve an arrival stream until the channel closes and every
        admitted request is terminal.

        ``checkpoint`` enables campaign-level self-healing: the schedule
        commits at batch boundaries, and a :class:`SchedulerCrash`
        (raised when the model clock reaches ``crash_at_s``) carries the
        store so the supervisor can :meth:`resume`.
        """
        campaign = _Campaign(
            self, iter(arrivals), store=checkpoint, crash_at_s=crash_at_s
        )
        return campaign.run()

    def resume(
        self,
        arrivals: Iterable[SolveRequest],
        *,
        checkpoint: CampaignCheckpointStore,
        crash_at_s: float | None = None,
    ) -> ServiceResult:
        """Resume a crashed campaign from its last verified commit.

        ``arrivals`` must be the same (deterministic) source the crashed
        run consumed — the restore skips exactly the prefix the
        checkpoint recorded.  With no verified commit the campaign
        simply restarts from scratch (at-least-once, never lost).
        """
        snapshot = checkpoint.latest()
        source: Iterator[SolveRequest] = iter(arrivals)
        if snapshot is not None:
            source = itertools.islice(
                source, snapshot.arrivals_consumed, None
            )
        campaign = _Campaign(
            self,
            source,
            store=checkpoint,
            crash_at_s=crash_at_s,
            restore=snapshot,
        )
        return campaign.run()


class _Campaign:
    """One daemon run: the event loop and all of its mutable state.

    Promoted out of closure-land so the state is *enumerable* — the
    campaign checkpoint is a method over these attributes, not a
    parallel bookkeeping structure that could drift.
    """

    def __init__(
        self,
        service: SolveService,
        arrivals: Iterator[SolveRequest],
        *,
        store: CampaignCheckpointStore | None,
        crash_at_s: float | None,
        restore: CampaignCheckpoint | None = None,
    ) -> None:
        self.service = service
        self.cfg = service.config
        self.workers = service.workers
        self.placement = service.placement
        self.arrivals = arrivals
        self.store = store
        self.crash_at_s = crash_at_s

        cfg = self.cfg
        self.queue = AdmissionQueue(cfg.queue_capacity)
        self.records: list[RequestRecord] = []
        self.batches: list[Batch] = []
        self.completion_order: list[int] = []
        self.preempted: list[_PreemptedRun] = []
        self.running: dict[int, tuple[Batch, BatchExecution, float, float]] = {}
        self.cancelled: set[int] = set()
        self.events: list[tuple] = []
        self.seq = 0
        self.now = 0.0
        self.makespan = 0.0
        self.batch_seq = 0
        self.arrivals_consumed = 0
        self.preemptions_total = 0
        self.resumed_batches = 0
        self.checkpoints_committed = 0
        self.batches_since_commit = 0
        self.restored_requests = 0
        self.restored = False
        self.pending_up: set[int] = set()
        self.drain = DrainEstimator(
            alpha=cfg.drain_alpha, initial_s=cfg.service_time_hint_s
        )
        self.arrival_est = ArrivalRateEstimator(
            alpha=cfg.elastic.alpha if cfg.elastic else 0.3
        )
        self.controller = (
            PoolController(cfg.elastic) if cfg.elastic is not None else None
        )
        self.board = (
            HealthBoard(cfg.health)
            if cfg.health is not None and cfg.health.enabled
            else None
        )
        self.brownout = (
            BrownoutController(cfg.brownout)
            if cfg.brownout is not None and cfg.brownout.enabled
            else None
        )
        self.hedge = (
            cfg.hedge if cfg.hedge is not None and cfg.hedge.enabled else None
        )
        self.hedges_launched = 0
        self.hedges_won = 0
        self.hedges_cancelled = 0
        self.workers_killed = 0
        #: Multi-tenant state machine (quotas, fairness clocks, per-tenant
        #: counters); ``None`` keeps every tenancy hook inert.
        self.tenants = (
            TenantRegistry(cfg.tenancy)
            if cfg.tenancy is not None and cfg.tenancy.enabled
            else None
        )
        #: Drain-model estimate taken at each batch's dispatch — the
        #: baseline hedging and the slow-completion signal compare to.
        self.predicted: dict[int, float] = {}
        #: Head request of the most recent fresh dispatch: the probe
        #: batch a quarantined worker must survive to be reinstated.
        self.probe_template: SolveRequest | None = None

        # ---- failure-domain state (all inert when topology is None) --
        self.topology = cfg.topology
        self.domain_board = (
            DomainBoard(cfg.domain_health)
            if cfg.domain_health is not None and cfg.domain_health.enabled
            else None
        )
        #: Explicit node assignments for elastic scale-ups; boot workers
        #: map through the topology's arithmetic.
        self.worker_node: dict[int, int] = {}
        self.dead_nodes: set[int] = set()
        self.hca_factor: dict[int, float] = {}
        self.partitioned: set[int] = set()
        self.healed_racks: set[int] = set()
        self.nodes_killed = 0
        self.partitions_seen = 0
        self.partition_heals = 0
        self.anti_affinity_hedges = 0
        #: First model time each worker was held out of service by a
        #: breaker (worker or domain) — the time-to-isolate witness.
        self.isolation_s: dict[int, float] = {}

        if restore is not None:
            self._restore(restore)
        self.placement.reset_stats()
        self.idle = sorted(
            w.worker_id
            for w in self.workers
            if not w.retired
            and (self.board is None or self.board.is_serving(w.worker_id))
            and self._idle_ok(w.worker_id)
        )

    # ------------------------------------------------------------------ #
    # Restore (scheduler self-healing)
    # ------------------------------------------------------------------ #

    def _restore(self, ckpt: CampaignCheckpoint) -> None:
        """Rebuild campaign state from the last verified commit."""
        self.restored = True
        self.now = ckpt.time_s
        self.makespan = ckpt.makespan_s
        self.batch_seq = ckpt.next_batch_id
        self.arrivals_consumed = ckpt.arrivals_consumed
        self.preemptions_total = ckpt.preemptions
        self.checkpoints_committed = ckpt.checkpoints_committed
        self.completion_order = list(ckpt.completion_order)
        terminal, pending = ckpt.restored_records()
        self.records.extend(terminal)
        for rec in pending:
            # The record's batch (if any) died with the scheduler:
            # re-queue at the restore clock.  Not counted against the
            # retry budget — the worker did not fail, the scheduler did.
            rec.state = QUEUED
            rec.note(self.now, "restore", "re-queued after scheduler crash")
            self.records.append(rec)
            self.queue.offer(rec, force=True)
        self.restored_requests = len(pending)
        d = ckpt.domains
        if d:
            # Parsed *before* the worker rebuild: elastic workers need
            # their node assignment to reproduce the (domain, seed)
            # straggler factor.  ``hca_factor`` is deliberately NOT
            # checkpointed — rebuilt workers carry base factors, and the
            # refired HCA event re-applies the slowdown exactly once.
            self.worker_node = {
                int(k): int(v) for k, v in d.get("worker_nodes", {}).items()
            }
            self.dead_nodes = {int(n) for n in d.get("dead_nodes", [])}
            self.partitioned = {int(r) for r in d.get("partitioned", [])}
            self.healed_racks = {int(r) for r in d.get("healed_racks", [])}
            self.nodes_killed = int(d.get("nodes_killed", 0))
            self.partitions_seen = int(d.get("partitions_seen", 0))
            self.partition_heals = int(d.get("partition_heals", 0))
            self.anti_affinity_hedges = int(d.get("anti_affinity_hedges", 0))
            self.isolation_s = {
                int(k): float(v) for k, v in d.get("isolation_s", {}).items()
            }
        for wd in ckpt.workers:
            while wd["worker_id"] >= len(self.workers):
                wid = len(self.workers)
                self.workers.append(
                    self.service._make_worker(
                        wid, node=self.worker_node.get(wid)
                    )
                )
            self.workers[wd["worker_id"]].restore_state(wd)
        if ckpt.tunecache is not None and self.placement.tune_cache is not None:
            self.placement.tune_cache = SharedTuneCache.from_json(ckpt.tunecache)
        self.drain = DrainEstimator.from_json(ckpt.drain)
        if ckpt.arrival_rate:
            self.arrival_est = ArrivalRateEstimator.from_json(ckpt.arrival_rate)
        if self.controller is not None and ckpt.elastic:
            self.controller = PoolController.from_json(
                self.cfg.elastic, ckpt.elastic
            )
        if self.board is not None and ckpt.health:
            self.board = HealthBoard.from_json(self.cfg.health, ckpt.health)
            # Re-arm the breaker's pending probes: quarantines survive
            # the crash (a known-flaky worker must not restart HEALTHY),
            # but their probe events died with the scheduler.  A worker
            # caught mid-probe re-enters QUARANTINED — its probe batch
            # is gone, so it earns a fresh one.
            for wh in self.board.workers.values():
                if wh.state == PROBING:
                    wh.state = QUARANTINED
                if wh.state == QUARANTINED:
                    self._push(
                        max(wh.cooldown_until_s, self.now),
                        _EV_PROBE,
                        wh.worker_id,
                    )
        if self.domain_board is not None and ckpt.domain_health:
            # Same re-arm recipe as the worker board: quarantines
            # survive the crash, in-flight probes do not.
            self.domain_board = DomainBoard.from_json(
                self.cfg.domain_health, ckpt.domain_health
            )
            for dh in self.domain_board.domains.values():
                if dh.state == PROBING:
                    dh.state = QUARANTINED
                if dh.state == QUARANTINED:
                    self._push(
                        max(dh.cooldown_until_s, self.now),
                        _EV_DOMAIN_PROBE,
                        dh.node,
                    )
        if self.brownout is not None and ckpt.brownout:
            self.brownout = BrownoutController.from_json(
                self.cfg.brownout, ckpt.brownout
            )
        if ckpt.hedges:
            self.hedges_launched = int(ckpt.hedges.get("launched", 0))
            self.hedges_won = int(ckpt.hedges.get("won", 0))
            self.hedges_cancelled = int(ckpt.hedges.get("cancelled", 0))
        if self.tenants is not None and ckpt.tenancy:
            # Bucket levels and refill clocks restore verbatim (the
            # resumed clock continues from the commit time, so no tenant
            # is re-charged for admissions the checkpoint already saw),
            # and the fairness clocks pick up exactly where they ran.
            self.tenants.restore(ckpt.tenancy)
        self.workers_killed = ckpt.workers_killed

    def _commit_checkpoint(self) -> None:
        """Serialize the campaign at a batch boundary (every request in
        a well-defined lifecycle state; no event half-processed)."""
        if self.store is None:
            return
        ckpt = CampaignCheckpoint(
            time_s=self.now,
            arrivals_consumed=self.arrivals_consumed,
            next_batch_id=self.batch_seq,
            next_req_seq=len(self.records),
            makespan_s=self.makespan,
            checkpoints_committed=self.checkpoints_committed + 1,
            preemptions=self.preemptions_total,
            completion_order=list(self.completion_order),
            terminal=[r.to_json() for r in self.records if r.terminal],
            pending=[r.to_json() for r in self.records if not r.terminal],
            workers=[w.state_json() for w in self.workers],
            tunecache=(
                self.placement.tune_cache.to_json()
                if self.placement.tune_cache is not None
                else None
            ),
            drain=self.drain.to_json(),
            arrival_rate=self.arrival_est.to_json(),
            elastic=(
                self.controller.to_json() if self.controller is not None else {}
            ),
            health=self.board.to_json() if self.board is not None else {},
            brownout=(
                self.brownout.to_json() if self.brownout is not None else {}
            ),
            hedges=(
                {
                    "launched": self.hedges_launched,
                    "won": self.hedges_won,
                    "cancelled": self.hedges_cancelled,
                }
                if self.hedge is not None
                else {}
            ),
            workers_killed=self.workers_killed,
            tenancy=(
                self.tenants.to_json() if self.tenants is not None else {}
            ),
            domain_health=(
                self.domain_board.to_json()
                if self.domain_board is not None
                else {}
            ),
            domains=(
                {
                    "worker_nodes": {
                        str(w): n for w, n in sorted(self.worker_node.items())
                    },
                    "dead_nodes": sorted(self.dead_nodes),
                    "partitioned": sorted(self.partitioned),
                    "healed_racks": sorted(self.healed_racks),
                    "nodes_killed": self.nodes_killed,
                    "partitions_seen": self.partitions_seen,
                    "partition_heals": self.partition_heals,
                    "anti_affinity_hedges": self.anti_affinity_hedges,
                    "isolation_s": {
                        str(w): t for w, t in sorted(self.isolation_s.items())
                    },
                }
                if self.topology is not None
                else {}
            ),
        )
        self.store.commit(ckpt)
        self.checkpoints_committed += 1
        self.batches_since_commit = 0

    # ------------------------------------------------------------------ #
    # Event helpers
    # ------------------------------------------------------------------ #

    def _push(self, time_s: float, kind: int, payload) -> None:
        heapq.heappush(self.events, (time_s, kind, self.seq, payload))
        self.seq += 1

    def _push_next_arrival(self) -> None:
        req = next(self.arrivals, None)
        if req is not None:
            self._push(req.arrival_s, _EV_ARRIVAL, req)

    def _next_batch_id(self) -> int:
        bid = self.batch_seq
        self.batch_seq += 1
        return bid

    def _active_workers(self) -> int:
        return sum(1 for w in self.workers if not w.retired)

    def _serving_workers(self) -> int:
        """Workers actually taking traffic: active minus the breaker's
        quarantined/probing holds *and* minus whole domains parked by a
        quarantine or partition (identical to :meth:`_active_workers`
        when neither health tracking nor a topology is configured).

        Retry-after hints divide the backlog by this count — when a
        domain quarantine parks most of the pool, computing against the
        full pool would tell shed clients to come back far too soon.
        """
        if self.board is None and self.topology is None:
            return self._active_workers()
        return sum(
            1
            for w in self.workers
            if not w.retired
            and (self.board is None or self.board.is_serving(w.worker_id))
            and self._idle_ok(w.worker_id)
        )

    # ------------------------------------------------------------------ #
    # Failure-domain helpers (all vacuous when topology is None)
    # ------------------------------------------------------------------ #

    def _node_of(self, worker_id: int) -> int:
        """The failure domain a worker lives on."""
        node = self.worker_node.get(worker_id)
        if node is not None:
            return node
        return self.topology.node_of_worker(worker_id)

    def _members(self, node: int) -> list[int]:
        """Every pool worker (any lifecycle state) on ``node``."""
        return [
            w.worker_id
            for w in self.workers
            if self._node_of(w.worker_id) == node
        ]

    def _node_dead(self, worker_id: int) -> bool:
        return (
            self.topology is not None
            and self._node_of(worker_id) in self.dead_nodes
        )

    def _idle_ok(self, worker_id: int) -> bool:
        """May this worker take traffic, as far as *domain* state knows?

        True by construction when no topology is configured, so every
        call site degenerates to the legacy schedule byte-for-byte.
        """
        if self.topology is None:
            return True
        node = self._node_of(worker_id)
        if self.domain_board is not None and not self.domain_board.is_serving(
            node
        ):
            return False
        if self.topology.rack_of_node(node) in self.partitioned:
            return False
        return True

    def _record_isolation(self, worker_id: int) -> None:
        if self.topology is not None:
            self.isolation_s.setdefault(worker_id, self.now)

    def _domain_strike(self, worker_id: int) -> None:
        """One worker-level fault is one strike against its domain; the
        k-th *distinct* striking worker in the window escalates to a
        whole-domain quarantine."""
        if self.domain_board is None:
            return
        node = self._node_of(worker_id)
        if self.domain_board.observe_strike(node, worker_id, self.now):
            self._quarantine_domain(node)

    def _reidle_members(self, nodes) -> None:
        """Return every eligible parked worker on ``nodes`` to the idle
        set (after a heal or a domain reinstate)."""
        busy = {b.worker_id for b, _, _, _ in self.running.values()}
        changed = False
        for node in nodes:
            for wid in self._members(node):
                worker = self.workers[wid]
                if (
                    worker.retired
                    or wid in busy
                    or wid in self.pending_up
                    or wid in self.idle
                ):
                    continue
                if self.board is not None and not self.board.is_serving(wid):
                    continue
                if not self._idle_ok(wid):
                    continue
                self.idle.append(wid)
                changed = True
        if changed:
            self.idle.sort()

    @staticmethod
    def _grid_label(grid: tuple[int, int] | None) -> str:
        return "time-sliced" if grid is None else f"grid {grid[0]}x{grid[1]}"

    # ------------------------------------------------------------------ #
    # Admission
    # ------------------------------------------------------------------ #

    def _admit(self, req: SolveRequest) -> RequestRecord | None:
        """Process one arrival; returns the record when it might warrant
        a preemption probe after the dispatch pass."""
        cfg = self.cfg
        rec = RequestRecord(request=req)
        self.records.append(rec)
        rec.note(self.now, "arrive", f"priority {req.priority}")
        self.arrival_est.observe(self.now)
        if self.tenants is not None and req.tenant in self.tenants:
            # Quota gate: one bucket token per admission.  The reject's
            # retry-after is the bucket's *refill* time — when the tenant
            # next has a token — not the drain estimate, which says when
            # the cluster has room (a different, usually shorter, answer
            # that would invite an immediate second reject).  A quota
            # reject never reaches a worker, so it never touches the
            # health ledgers either: it is the tenant's fault, not a
            # worker's.
            retry = self.tenants.admit(req.tenant, self.now)
            if retry is not None:
                rec.state = REJECTED
                rec.completed_s = self.now
                rec.retry_after_s = retry
                rec.note(
                    self.now,
                    "quota",
                    f"tenant {req.tenant} over quota; retry after "
                    f"{retry * 1e6:.1f}us (bucket refill)",
                )
                return None
        level = self._update_brownout()
        if level >= BROWNOUT_SHED_LOW and req.priority != PRIORITY_HIGH:
            # HIGH is admitted at every level (capacity itself, i.e. the
            # queue bound, is its only limit); LOW sheds first, NORMAL
            # only at the top level.
            if level >= BROWNOUT_REJECT or req.priority == PRIORITY_LOW:
                shed = True
                if self.tenants is not None and req.tenant in self.tenants:
                    if level < BROWNOUT_REJECT:
                        # Weight-proportional shedding: the heaviest
                        # tenant keeps every LOW request, lighter tenants
                        # shed in proportion to their weight deficit —
                        # instead of the tenant-blind shed-all.
                        shed = self.tenants.shed_low(req.tenant)
                    else:
                        self.tenants.note_shed(req.tenant)
                if shed:
                    rec.state = REJECTED
                    rec.shed = True
                    rec.completed_s = self.now
                    rec.retry_after_s = self.drain.retry_after_s(
                        len(self.queue),
                        max_batch=cfg.policy.max_batch,
                        n_workers=max(self._serving_workers(), 1),
                    )
                    if req.priority == PRIORITY_LOW:
                        self.brownout.shed += 1
                    else:
                        self.brownout.brownout_rejected += 1
                    rec.note(
                        self.now,
                        "shed",
                        f"brownout level {level}; retry after "
                        f"{rec.retry_after_s * 1e6:.1f}us",
                    )
                    return None
        if not self.queue.offer(rec):
            rec.state = REJECTED
            rec.completed_s = self.now
            rec.retry_after_s = self.drain.retry_after_s(
                len(self.queue),
                max_batch=cfg.policy.max_batch,
                n_workers=max(self._serving_workers(), 1),
            )
            rec.note(
                self.now,
                "reject",
                f"queue full ({cfg.queue_capacity}); retry after "
                f"{rec.retry_after_s * 1e6:.1f}us",
            )
            return None
        rec.admitted_s = self.now
        rec.note(self.now, "admit", f"depth {len(self.queue)}")
        self._push(self.now + cfg.policy.max_wait_s, _EV_TIMEOUT, None)
        self._evaluate_scale()
        if (
            cfg.preemption.enabled
            and req.priority <= cfg.preemption.trigger_priority
        ):
            return rec
        return None

    # ------------------------------------------------------------------ #
    # Elastic pool
    # ------------------------------------------------------------------ #

    def _evaluate_scale(self) -> None:
        if self.controller is None:
            return
        delta = self.controller.decide(
            self.now,
            current=self._serving_workers() + len(self.pending_up),
            idle=len(self.idle),
            rate_rps=self.arrival_est.rate_rps(self.now),
            batch_s=self.drain.batch_s,
            max_batch=self.cfg.policy.max_batch,
            backlog=len(self.queue),
            quarantined=(
                (self.board.n_quarantined() if self.board is not None else 0)
                + self._domain_held_workers()
            ),
        )
        if delta > 0:
            for _ in range(delta):
                wid = len(self.workers)
                node = self._scale_up_node()
                self.workers.append(self.service._make_worker(wid, node=node))
                if node is not None:
                    self.worker_node[wid] = node
                    factor = self.hca_factor.get(node)
                    if factor is not None:
                        # New capacity on a degraded node inherits the
                        # node's sick HCA like every co-resident worker.
                        self.workers[wid].straggler_factor *= factor
                self.pending_up.add(wid)
                self._push(
                    self.now + self.cfg.elastic.spinup_s, _EV_WORKER_UP, wid
                )
        elif delta < 0:
            # Retire from the top so worker ids stay dense at the bottom
            # (and the pick is deterministic).  Removing the id from
            # ``idle`` *before* anything else closes the scale-down /
            # dispatch race: a retired worker can never be selected.
            wid = max(self.idle)
            self.idle.remove(wid)
            self.workers[wid].retire()

    def _domain_held_workers(self) -> int:
        """Not-retired workers parked by a *domain* hold (quarantine or
        partition) that the worker board still considers serving — the
        controller must not read them as shrinkable idle capacity."""
        if self.topology is None:
            return 0
        return sum(
            1
            for w in self.workers
            if not w.retired
            and (self.board is None or self.board.is_serving(w.worker_id))
            and not self._idle_ok(w.worker_id)
        )

    def _scale_up_node(self) -> int | None:
        """Anti-pack the elastic surge: least-loaded healthy domain,
        lowest node id on ties.  ``None`` without a topology."""
        if self.topology is None:
            return None
        nodes = list(range(self.topology.n_nodes))
        healthy = [
            n
            for n in nodes
            if n not in self.dead_nodes
            and self.topology.rack_of_node(n) not in self.partitioned
            and (
                self.domain_board is None or self.domain_board.is_serving(n)
            )
        ]
        loads: dict[int, int] = {}
        for w in self.workers:
            if not w.retired:
                n = self._node_of(w.worker_id)
                loads[n] = loads.get(n, 0) + 1
        # With every domain unhealthy the pool still must not starve:
        # fall back to spreading across all nodes.
        return spread_domain(loads, healthy or nodes)

    def _worker_up(self, worker_id: int) -> None:
        self.pending_up.discard(worker_id)
        if not self.workers[worker_id].retired and self._idle_ok(worker_id):
            self.idle.append(worker_id)
            self.idle.sort()

    # ------------------------------------------------------------------ #
    # Preemption
    # ------------------------------------------------------------------ #

    def _maybe_preempt(self, trigger: RequestRecord) -> None:
        """A qualifying arrival is still queued after the dispatch pass:
        schedule the best LOW victim's yield at its next refresh point."""
        pre = self.cfg.preemption
        best = None
        for batch, execution, start, end in self.running.values():
            if batch.preempt_at_s is not None:
                # Already checkpointing toward a yield — a second HIGH
                # arrival must not re-preempt it (it will free the
                # worker at that same boundary anyway).
                continue
            if batch.hedge_of is not None or batch.hedge_batch_id is not None:
                # Hedged pairs are off-limits: preempting either copy
                # would double-account the shared records' lifecycle
                # (the pair resolves at first completion instead).
                continue
            worst = min(r.request.priority for r in batch.records)
            if worst < pre.victim_priority:
                continue
            if worst <= trigger.request.priority:
                continue  # never preempt work as urgent as the trigger
            # Most remaining work = most latency bought; ties to the
            # older batch for determinism.
            remaining = end - self.now
            key = (remaining, -batch.batch_id)
            if best is None or key > best[0]:
                best = (key, batch, start, end)
        if best is None:
            return
        _, batch, start, end = best
        interval = (end - start) / pre.refresh_points
        k = max(
            1,
            -int(-(self.now - start - _BOUNDARY_SLACK_S) // interval),
        )
        boundary = start + k * interval
        if boundary >= end - _BOUNDARY_SLACK_S:
            return  # no checkpoint boundary left before completion
        batch.preempt_at_s = boundary
        batch.trace.append(
            (
                self.now,
                "preempt_scheduled",
                f"HIGH request {trigger.request.req_id} waiting; yield at "
                f"refresh boundary {boundary * 1e6:.1f}us",
            )
        )
        self._push(boundary, _EV_PREEMPT, batch)

    def _do_preempt(self, batch: Batch) -> None:
        """Yield a running batch at its refresh boundary: checkpoint,
        free the worker, park the remainder for resume."""
        entry = self.running.pop(batch.batch_id, None)
        if entry is None or batch.ok is not None:
            return  # completed (or failed) before the boundary
        _, execution, start, end = entry
        self.cancelled.add(batch.batch_id)
        worker = self.workers[batch.worker_id]
        worker.busy_s -= end - self.now  # unspent occupancy credited back
        batch.preempted = True
        batch.completed_s = self.now
        batch.duration_s = self.now - start
        batch.detail = "preempted at refresh boundary"
        batch.trace.append(
            (self.now, "preempt", f"{(end - self.now) * 1e6:.1f}us remaining")
        )
        head = batch.records[0].request
        for rec in batch.records:
            rec.state = QUEUED
            rec.preemptions += 1
            rec.note(
                self.now,
                "preempt",
                f"batch {batch.batch_id} yielded at refresh boundary; "
                "will resume from checkpoint",
            )
        self.preempted.append(
            _PreemptedRun(
                records=batch.records,
                key=head.compat_key,
                residency_key=(head.config_id, head.dims, head.mode, batch.grid),
                grid=batch.grid,
                remaining_s=end - self.now,
                execution=execution,
                priority=min(r.request.priority for r in batch.records),
                preempted_s=self.now,
                from_batch=batch.batch_id,
            )
        )
        self.preemptions_total += 1
        if not worker.retired and self._idle_ok(worker.worker_id):
            self.idle.append(worker.worker_id)
            self.idle.sort()

    # ------------------------------------------------------------------ #
    # Failure-domain resilience: brownout, hedging, breaker, kills
    # ------------------------------------------------------------------ #

    def _update_brownout(self) -> int:
        """Fold the current backlog pressure (estimated drain time across
        the serving pool) into the controller; returns the active level
        (NORMAL when brownout is disabled)."""
        if self.brownout is None:
            return BROWNOUT_NORMAL
        pressure = self.drain.backlog_drain_s(
            len(self.queue),
            max_batch=self.cfg.policy.max_batch,
            n_workers=max(self._serving_workers(), 1),
        )
        return self.brownout.update(self.now, pressure)

    def _arm_hedge(self, batch: Batch) -> None:
        """Schedule the straggler check: if the batch is still running
        when elapsed time crosses ``trigger_factor`` x the dispatch-time
        drain estimate, it earns a speculative replica."""
        if self.hedge is None or self.drain.samples < self.hedge.min_samples:
            return
        self._push(
            self.now
            + self.hedge.trigger_factor * self.predicted[batch.batch_id],
            _EV_HEDGE,
            batch,
        )

    def _maybe_hedge(self, batch: Batch) -> None:
        """The hedge threshold passed with the batch still running:
        launch a replica on an idle healthy worker.  First completion
        wins; the loser abandons at its next refresh boundary."""
        entry = self.running.get(batch.batch_id)
        if entry is None or batch.preempt_at_s is not None:
            return
        if batch.hedge_of is not None or batch.hedge_batch_id is not None:
            return
        if not self.idle:
            return  # no healthy idle worker to hedge on
        _, _, start, end = entry
        if end - self.now <= _BOUNDARY_SLACK_S:
            return  # completing at this very instant anyway
        pick = 0
        if self.cfg.anti_affinity and self.topology is not None:
            # A hedge exists because the primary looks sick; a replica
            # sharing the primary's failure domain shares its fate.
            # Prefer an idle worker on a *different* node — gauge-
            # resident ones first, so the diversion never trades warmth
            # for diversity when it can have both.
            primary_node = self._node_of(batch.worker_id)
            head = batch.records[0].request
            rkey = (head.config_id, head.dims, head.mode, batch.grid)
            best = None
            for i, cand in enumerate(self.idle):
                if self._node_of(cand) == primary_node:
                    continue
                score = (0 if self.workers[cand].resident_key == rkey else 1, i)
                if best is None or score < best[0]:
                    best = (score, i)
            if best is not None:
                pick = best[1]
        wid = self.idle.pop(pick)
        if (
            self.cfg.anti_affinity
            and self.topology is not None
            and self._node_of(wid) != self._node_of(batch.worker_id)
        ):
            self.anti_affinity_hedges += 1
        worker = self.workers[wid]
        replica = Batch(
            batch_id=self._next_batch_id(),
            records=batch.records,
            key=batch.key,
            formed_s=self.now,
            worker_id=wid,
            grid=batch.grid,
            hedge_of=batch.batch_id,
            degraded_mode=batch.degraded_mode,
        )
        batch.hedge_batch_id = replica.batch_id
        self.batches.append(replica)
        requests = [r.request for r in batch.records]
        if batch.degraded_mode is not None:
            requests = [
                replace(q, mode=batch.degraded_mode) for q in requests
            ]
        execution = worker.execute(
            requests, grid=batch.grid, tune_cache=self.placement.tune_cache
        )
        worker.busy_s += execution.duration_s
        self.hedges_launched += 1
        batch.trace.append(
            (
                self.now,
                "hedge",
                f"straggling ({(self.now - start) * 1e6:.1f}us elapsed); "
                f"replica batch {replica.batch_id} on worker {wid}",
            )
        )
        replica.trace.append(
            (self.now, "hedge_replica", f"of batch {batch.batch_id}")
        )
        for rec in batch.records:
            rec.batch_ids.append(replica.batch_id)
            rec.note(
                self.now,
                "hedge",
                f"replica batch {replica.batch_id} launched on worker {wid}",
            )
        hend = self.now + execution.duration_s
        self.running[replica.batch_id] = (replica, execution, self.now, hend)
        self._push(hend, _EV_DONE, (replica, execution))
        if self._node_dead(wid):
            self._condemn(replica.batch_id)

    def _resolve_hedge(self, batch: Batch) -> None:
        """``batch`` completed first: cancel the surviving copy at its
        next refresh-point boundary (the earliest instant the worker can
        abandon the solve with consistent device state), crediting back
        the occupancy it will not spend."""
        partner_id = (
            batch.hedge_of if batch.hedge_of is not None else batch.hedge_batch_id
        )
        entry = self.running.pop(partner_id, None)
        if entry is None:
            return
        loser, _, lstart, lend = entry
        self.cancelled.add(partner_id)
        self.predicted.pop(partner_id, None)
        interval = (lend - lstart) / self.hedge.refresh_points
        k = max(
            1,
            -int(-(self.now - lstart - _BOUNDARY_SLACK_S) // interval),
        )
        free_at = min(lstart + k * interval, lend)
        lworker = self.workers[loser.worker_id]
        lworker.busy_s -= lend - free_at
        loser.hedge_cancelled = True
        loser.completed_s = free_at
        loser.duration_s = free_at - lstart
        loser.detail = f"hedge: batch {batch.batch_id} finished first"
        loser.trace.append(
            (
                self.now,
                "hedge_cancel",
                f"batch {batch.batch_id} won; abandoning at "
                f"{free_at * 1e6:.1f}us",
            )
        )
        self.hedges_cancelled += 1
        if batch.hedge_of is not None:
            self.hedges_won += 1
        self._push(free_at, _EV_HEDGE_CANCEL, loser.worker_id)

    def _hedge_worker_free(self, worker_id: int) -> None:
        """A cancelled hedge loser reached its abandon boundary: its
        worker rejoins the idle set (unless retired or quarantined in
        the meantime)."""
        worker = self.workers[worker_id]
        if worker.retired:
            return
        if self.board is not None and not self.board.is_serving(worker_id):
            return
        if not self._idle_ok(worker_id):
            return
        if worker_id not in self.idle:
            self.idle.append(worker_id)
            self.idle.sort()

    def _quarantine(self, worker_id: int) -> None:
        """Open the breaker: hold the worker out of the idle set, evict
        its warm residency (a sick device's warmth must not keep
        attracting traffic), and schedule the post-cooldown probe."""
        wh = self.board.quarantine(worker_id, self.now)
        if worker_id in self.idle:
            self.idle.remove(worker_id)
        self.workers[worker_id].evict_residency()
        self._push(wh.cooldown_until_s, _EV_PROBE, worker_id)
        self._record_isolation(worker_id)
        self._domain_strike(worker_id)

    def _start_probe(self, worker_id: int) -> None:
        """Cooldown expired: run one seeded probe batch (representative
        work — the head request of the most recent fresh dispatch — at
        LOW priority, outside the campaign's records) on the quarantined
        worker."""
        worker = self.workers[worker_id]
        if worker.retired or self.board.state(worker_id) != QUARANTINED:
            return
        if self.topology is not None and not self._idle_ok(worker_id):
            # The whole domain is held (quarantined or partitioned): a
            # per-worker probe would race the domain's single probe.
            # Retry once the domain resolves.
            self._push(
                self.now + max(self.board.policy.cooldown_s, 1e-6),
                _EV_PROBE,
                worker_id,
            )
            return
        template = self.probe_template
        if template is None:
            # Nothing dispatched yet to probe with; close the breaker
            # optimistically — the ledger re-opens it on the next fault.
            self.board.reinstate(worker_id)
            self.idle.append(worker_id)
            self.idle.sort()
            return
        self.board.start_probe(worker_id)
        probe_req = replace(
            template,
            req_id=-(worker_id + 1),
            priority=PRIORITY_LOW,
            arrival_s=self.now,
            deadline_s=None,
        )
        execution = worker.execute(
            [probe_req], grid=None, tune_cache=self.placement.tune_cache
        )
        if self._node_dead(worker_id):
            # A probe sent to a dead node can only time out.
            execution = replace(execution, ok=False)
            duration = self.cfg.domain_faults.detect_s
        else:
            duration = execution.duration_s
        worker.busy_s += duration
        self._push(
            self.now + duration,
            _EV_DONE,
            _ProbeRun(worker_id, execution),
        )

    def _probe_done(self, run: _ProbeRun) -> None:
        """The probe's verdict: clean closes the breaker with a reset
        ledger; a failure is a strike — re-quarantine, or retire the
        worker for good at ``max_strikes``."""
        wid = run.worker_id
        worker = self.workers[wid]
        if worker.retired:
            return
        if run.execution.ok:
            self.board.reinstate(wid)
            if self._idle_ok(wid):
                self.idle.append(wid)
                self.idle.sort()
            return
        self.board.observe_failure(wid, "probe")
        if self.board.tracker(wid).strikes >= self.board.policy.max_strikes:
            self.board.retire_sick(wid)
            worker.retire()
            self._evaluate_scale()  # the pool may want a replacement
        else:
            wh = self.board.quarantine(wid, self.now)
            self._push(wh.cooldown_until_s, _EV_PROBE, wid)
            self._domain_strike(wid)

    def _kill_worker(self, worker_id: int) -> None:
        """A whole worker dies (injected correlated failure): retire it,
        fail its in-flight batches, and hand their requests back to the
        queue — the no-lost-requests invariant does not care whose fault
        the loss was."""
        cfg = self.cfg
        if not 0 <= worker_id < len(self.workers):
            return
        worker = self.workers[worker_id]
        if worker.retired:
            return
        worker.retire()
        self.workers_killed += 1
        if worker_id in self.idle:
            self.idle.remove(worker_id)
        if self.board is not None:
            self.board.observe_failure(worker_id, "kill")
            self.board.retire_sick(worker_id)
        self._record_isolation(worker_id)
        self._domain_strike(worker_id)
        doomed = sorted(
            bid
            for bid, (b, _, _, _) in self.running.items()
            if b.worker_id == worker_id
        )
        for bid in doomed:
            batch, _, start, end = self.running.pop(bid)
            self.cancelled.add(bid)
            self.predicted.pop(bid, None)
            worker.busy_s -= end - self.now
            batch.completed_s = self.now
            batch.duration_s = self.now - start
            batch.ok = False
            batch.detail = f"worker {worker_id} killed"
            batch.trace.append(
                (self.now, "killed", "worker died mid-batch")
            )
            partner_id = (
                batch.hedge_of
                if batch.hedge_of is not None
                else batch.hedge_batch_id
            )
            if partner_id is not None and partner_id in self.running:
                continue  # the surviving copy still serves these records
            for rec in batch.records:
                if rec.attempts <= cfg.max_retries:
                    rec.state = QUEUED
                    self.queue.offer(rec, force=True)
                    rec.note(
                        self.now,
                        "requeue",
                        f"worker {worker_id} killed; "
                        f"retry {rec.attempts}/{cfg.max_retries}",
                    )
                else:
                    rec.state = FAILED
                    rec.completed_s = self.now
                    rec.failure = StructuredFailure(
                        kind="worker_crash",
                        detail=f"worker {worker_id} killed",
                        model_time=self.now,
                        attempts=rec.attempts,
                    )
                    rec.note(
                        self.now,
                        "fail",
                        f"worker {worker_id} killed; retries exhausted",
                    )
                    self.completion_order.append(rec.request.req_id)
        self._evaluate_scale()

    # ------------------------------------------------------------------ #
    # Correlated domain faults: silent node loss, HCA rot, partitions
    # ------------------------------------------------------------------ #

    def _kill_node(self, node: int) -> None:
        """A node dies *silently*: no retire, no idle eviction — the
        scheduler keeps dispatching to its workers and only learns of
        the death through timed-out sends.  The resilience stack (worker
        strikes escalating to a domain quarantine) must infer the rest.

        Idempotent on the restored ``dead_nodes`` set so the refired
        event replays safely after a scheduler resume."""
        if self.topology is None or node in self.dead_nodes:
            return
        self.dead_nodes.add(node)
        self.nodes_killed += 1
        if self.store is not None and hasattr(self.store, "lose_domain"):
            # The checkpoint replica hosted on this node goes with it.
            self.store.lose_domain(node)
        doomed = sorted(
            bid
            for bid, (b, _, _, _) in self.running.items()
            if self._node_of(b.worker_id) == node
        )
        for bid in doomed:
            self._condemn(bid)

    def _condemn(self, batch_id: int) -> None:
        """A batch is in flight to (or running on) a dead node: its
        completion will never arrive.  Replace it with a timeout firing
        ``detect_s`` from now — the earliest instant the scheduler can
        notice anything is wrong."""
        entry = self.running.pop(batch_id, None)
        if entry is None:
            return
        batch, _, start, end = entry
        self.cancelled.add(batch_id)
        fail_at = self.now + self.cfg.domain_faults.detect_s
        # Occupancy past the detection point is never spent; occupancy
        # before it models the scheduler believing the worker is busy.
        self.workers[batch.worker_id].busy_s -= max(end - fail_at, 0.0)
        self._push(fail_at, _EV_DONE, _DeadRun(batch, start))

    def _dead_done(self, run: _DeadRun) -> None:
        """The send timeout fired: surface the condemned batch's failure
        exactly like a worker crash — requeue within budget, terminal
        fail past it — but *without* retiring the worker.  The slot
        rejoins the idle set and keeps attracting traffic until the
        breakers catch on: that detection lag is the cost the domain
        quarantine exists to bound."""
        batch = run.batch
        cfg = self.cfg
        wid = batch.worker_id
        worker = self.workers[wid]
        node = self._node_of(wid)
        self.predicted.pop(batch.batch_id, None)
        batch.completed_s = self.now
        batch.duration_s = self.now - run.start_s
        batch.ok = False
        batch.detail = f"node {node} unreachable"
        batch.trace.append(
            (
                self.now,
                "node_dead",
                f"send to worker {wid} timed out after "
                f"{cfg.domain_faults.detect_s * 1e6:.1f}us",
            )
        )
        partner_id = (
            batch.hedge_of if batch.hedge_of is not None else batch.hedge_batch_id
        )
        if partner_id is not None and partner_id in self.running:
            batch.trace.append(
                (
                    self.now,
                    "hedge_survivor",
                    f"records stay with running batch {partner_id}",
                )
            )
        else:
            for rec in batch.records:
                if rec.attempts <= cfg.max_retries:
                    rec.state = QUEUED
                    self.queue.offer(rec, force=True)
                    rec.note(
                        self.now,
                        "requeue",
                        f"worker {wid} unreachable (node {node} lost); "
                        f"retry {rec.attempts}/{cfg.max_retries}",
                    )
                else:
                    rec.state = FAILED
                    rec.completed_s = self.now
                    rec.failure = StructuredFailure(
                        kind="node_lost",
                        detail=f"node {node} unreachable",
                        model_time=self.now,
                        attempts=rec.attempts,
                    )
                    rec.note(
                        self.now,
                        "fail",
                        f"node {node} unreachable; retries exhausted",
                    )
                    self.completion_order.append(rec.request.req_id)
        if (
            not worker.retired
            and (self.board is None or self.board.is_serving(wid))
            and self._idle_ok(wid)
        ):
            self.idle.append(wid)
            self.idle.sort()
        if (
            self.board is not None
            and not worker.retired
            and self.board.state(wid) == HEALTHY
        ):
            self.board.observe_failure(wid, "crash")
            if self.board.should_trip(wid):
                self._quarantine(wid)
                batch.trace.append(
                    (self.now, "quarantine", f"worker {wid} quarantined")
                )
        self._update_brownout()
        self._evaluate_scale()
        self.batches_since_commit += 1
        if self.batches_since_commit >= cfg.checkpoint_every:
            self._commit_checkpoint()

    def _hca_degrade(self, spec: HcaDegrade) -> None:
        """A node's HCA rots: every co-resident worker slows by the
        spec's factor (in-flight batches keep their schedule; only
        future executions pay).  Re-applies exactly once after resume
        because rebuilt workers carry base factors."""
        if spec.node in self.hca_factor:
            return
        self.hca_factor[spec.node] = spec.factor
        for wid in self._members(spec.node):
            worker = self.workers[wid]
            if not worker.retired:
                worker.straggler_factor *= spec.factor

    def _partition(self, spec: SwitchPartition) -> None:
        """A switch partitions a whole rack — loud, unlike a node kill:
        the scheduler sees the link drop, parks every rack worker, and
        requeues their in-flight work immediately.  The rack is not
        retired; the seeded heal returns it."""
        rack = spec.rack
        if rack in self.partitioned or rack in self.healed_racks:
            return
        self.partitioned.add(rack)
        self.partitions_seen += 1
        member_ids = {
            wid
            for node in self.topology.nodes_in_rack(rack)
            for wid in self._members(node)
        }
        for wid in sorted(member_ids):
            if wid in self.idle:
                self.idle.remove(wid)
        cfg = self.cfg
        doomed = sorted(
            bid
            for bid, (b, _, _, _) in self.running.items()
            if b.worker_id in member_ids
        )
        for bid in doomed:
            batch, _, start, end = self.running.pop(bid)
            self.cancelled.add(bid)
            self.predicted.pop(bid, None)
            worker = self.workers[batch.worker_id]
            worker.busy_s -= end - self.now
            batch.completed_s = self.now
            batch.duration_s = self.now - start
            batch.ok = False
            batch.detail = f"rack {rack} partitioned"
            batch.trace.append(
                (self.now, "partitioned", "switch uplink lost mid-batch")
            )
            partner_id = (
                batch.hedge_of
                if batch.hedge_of is not None
                else batch.hedge_batch_id
            )
            if partner_id is not None and partner_id in self.running:
                continue  # the surviving copy still serves these records
            for rec in batch.records:
                if rec.attempts <= cfg.max_retries:
                    rec.state = QUEUED
                    self.queue.offer(rec, force=True)
                    rec.note(
                        self.now,
                        "requeue",
                        f"rack {rack} partitioned; "
                        f"retry {rec.attempts}/{cfg.max_retries}",
                    )
                else:
                    rec.state = FAILED
                    rec.completed_s = self.now
                    rec.failure = StructuredFailure(
                        kind="partition",
                        detail=f"rack {rack} partitioned",
                        model_time=self.now,
                        attempts=rec.attempts,
                    )
                    rec.note(
                        self.now,
                        "fail",
                        f"rack {rack} partitioned; retries exhausted",
                    )
                    self.completion_order.append(rec.request.req_id)
        self._update_brownout()
        self._evaluate_scale()

    def _heal(self, rack: int) -> None:
        if rack not in self.partitioned:
            return
        self.partitioned.discard(rack)
        self.healed_racks.add(rack)
        self.partition_heals += 1
        self._reidle_members(self.topology.nodes_in_rack(rack))
        self._evaluate_scale()

    # ------------------------------------------------------------------ #
    # Domain quarantine: escalation, single probe, reinstate/retire
    # ------------------------------------------------------------------ #

    def _quarantine_domain(self, node: int) -> None:
        """k distinct workers on one node struck inside the window:
        stop debating worker by worker and park the whole domain — idle
        eviction and residency eviction for every member, one probe for
        the node instead of one per worker."""
        dh = self.domain_board.quarantine(node, self.now)
        for wid in self._members(node):
            worker = self.workers[wid]
            if worker.retired:
                continue
            if wid in self.idle:
                self.idle.remove(wid)
            worker.evict_residency()
            self._record_isolation(wid)
        self._push(dh.cooldown_until_s, _EV_DOMAIN_PROBE, node)

    def _start_domain_probe(self, node: int) -> None:
        """The domain cooldown expired: one probe for the whole node,
        on its lowest-id live member."""
        if (
            self.domain_board is None
            or self.domain_board.state(node) != QUARANTINED
        ):
            return
        members = [
            wid
            for wid in self._members(node)
            if not self.workers[wid].retired
        ]
        if not members:
            self.domain_board.retire_sick(node)
            return
        if self.topology.rack_of_node(node) in self.partitioned:
            # Unreachable domains cannot be probed; wait out the heal.
            self._push(
                self.now + max(self.domain_board.policy.cooldown_s, 1e-6),
                _EV_DOMAIN_PROBE,
                node,
            )
            return
        template = self.probe_template
        if template is None:
            self.domain_board.reinstate(node)
            self._reidle_members((node,))
            return
        self.domain_board.start_probe(node)
        wid = members[0]
        worker = self.workers[wid]
        probe_req = replace(
            template,
            # Below the per-worker probe id range, so traces never alias.
            req_id=-(len(self.workers) + node + 1),
            priority=PRIORITY_LOW,
            arrival_s=self.now,
            deadline_s=None,
        )
        execution = worker.execute(
            [probe_req], grid=None, tune_cache=self.placement.tune_cache
        )
        if node in self.dead_nodes:
            execution = replace(execution, ok=False)
            duration = self.cfg.domain_faults.detect_s
        else:
            duration = execution.duration_s
        worker.busy_s += duration
        self._push(
            self.now + duration,
            _EV_DONE,
            _DomainProbeRun(node, wid, execution),
        )

    def _domain_probe_done(self, run: _DomainProbeRun) -> None:
        """The domain probe's verdict: clean reinstates every eligible
        member at once; a strike re-quarantines, and ``max_strikes``
        retires the whole node for good."""
        node = run.node
        if self.domain_board is None:
            return
        dh = self.domain_board.tracker(node)
        if dh.state != PROBING:
            return
        if run.execution.ok:
            self.domain_board.reinstate(node)
            self._reidle_members((node,))
            return
        if dh.probe_strikes >= self.domain_board.policy.max_strikes:
            self.domain_board.retire_sick(node)
            for wid in self._members(node):
                worker = self.workers[wid]
                if not worker.retired:
                    worker.retire()
                    self._record_isolation(wid)
                if wid in self.idle:
                    self.idle.remove(wid)
            self._evaluate_scale()  # the pool lost a whole node
        else:
            dh = self.domain_board.quarantine(node, self.now)
            self._push(dh.cooldown_until_s, _EV_DOMAIN_PROBE, node)

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #

    def _fail_placement(self, selected: list[RequestRecord], detail: str) -> None:
        """No decomposition fits the pool: the request can never run
        here, so it fails terminally (structured, not silently)."""
        for rec in selected:
            rec.state = FAILED
            rec.completed_s = self.now
            rec.failure = StructuredFailure(
                kind="infeasible_volume",
                detail=detail,
                model_time=self.now,
                attempts=rec.attempts,
            )
            rec.note(self.now, "fail", f"placement: {detail}")
            self.completion_order.append(rec.request.req_id)

    def _best_preempted(self) -> _PreemptedRun | None:
        best = None
        for run in self.preempted:
            key = (run.priority, run.preempted_s, run.from_batch)
            if best is None or key < best[0]:
                best = (key, run)
        return best[1] if best is not None else None

    def _select_fresh(self) -> list[RequestRecord] | None:
        """The next dispatchable fresh batch.

        Without tenancy this is plain :func:`select_batch` over the
        scheduling order.  With tenants, each tenant's partition runs
        its own selection, and the weighted-fair scheduler arbitrates
        among the tenants whose ready batch sits in the most urgent
        tier — so no tenant starves another within a priority class,
        while a more urgent tier still always wins the worker.
        """
        ordered = self.queue.ordered()
        if self.tenants is None:
            return select_batch(ordered, self.now, self.cfg.policy)
        ready: dict[str | None, list[RequestRecord]] = {}
        for name, subset in partition_by_tenant(ordered, self.tenants).items():
            group = select_batch(subset, self.now, self.cfg.policy)
            if group is not None:
                ready[name] = group
        if not ready:
            return None
        best = min(g[0].request.priority for g in ready.values())
        tier = {
            name: g
            for name, g in ready.items()
            if g[0].request.priority == best
        }
        names = [name for name in tier if name is not None]
        if not names:
            return tier[None]  # only untenanted work in the head tier
        return tier[self.tenants.wfq.pick(names)]

    def _dispatch(self) -> None:
        cfg = self.cfg
        while self.idle and (len(self.queue) or self.preempted):
            selected = self._select_fresh()
            resume = self._best_preempted()
            if selected is not None and (
                resume is None
                or selected[0].request.priority < resume.priority
            ):
                self._dispatch_fresh(selected)
            elif resume is not None:
                self._dispatch_resume(resume)
            else:
                return

    def _dispatch_fresh(self, selected: list[RequestRecord]) -> None:
        cfg = self.cfg
        self.queue.remove(selected)
        try:
            decision = self.placement.place(
                selected,
                self.idle,
                node_of=(self._node_of if self.topology is not None else None),
                anti_affinity=cfg.anti_affinity,
            )
        except ValueError as exc:
            self._fail_placement(selected, str(exc))
            return
        if self.domain_board is not None and not self.domain_board.is_serving(
            self._node_of(decision.worker_id)
        ):
            # Structural invariant (the idle set never holds a worker in
            # a quarantined domain); a trip here is a scheduler bug.
            raise ServiceInvariantError(
                f"batch dispatched to worker {decision.worker_id} in "
                f"quarantined domain {self._node_of(decision.worker_id)}"
            )
        self.idle.remove(decision.worker_id)
        worker = self.workers[decision.worker_id]
        degraded = None
        if (
            self.brownout is not None
            and self.brownout.level >= BROWNOUT_DEGRADE
        ):
            # One step down the precision ladder before failing anyone:
            # the whole batch shares a mode (it is in the compat key).
            degraded = DEGRADE_MODE.get(selected[0].request.mode)
        batch = Batch(
            batch_id=self._next_batch_id(),
            records=selected,
            key=selected[0].request.compat_key,
            formed_s=self.now,
            worker_id=worker.worker_id,
            grid=decision.grid,
            degraded_mode=degraded,
        )
        self.batches.append(batch)
        self.probe_template = selected[0].request
        if (
            self.tenants is not None
            and selected[0].request.tenant in self.tenants
        ):
            # One batch = one tenant (select_batch partitions by tenant),
            # so the fairness clock advances by exactly this dispatch's
            # size over the tenant's weight.
            self.tenants.wfq.charge(
                selected[0].request.tenant, float(len(selected))
            )
        for rec in selected:
            rec.state = RUNNING
            rec.attempts += 1
            if rec.dispatched_s is None:
                rec.dispatched_s = self.now
            rec.batch_ids.append(batch.batch_id)
            rec.grid = decision.grid
            if degraded is not None:
                rec.degraded = True
                rec.note(
                    self.now,
                    "degrade",
                    f"brownout: serving at {degraded} instead of "
                    f"{rec.request.mode}",
                )
            rec.note(
                self.now,
                "dispatch",
                f"batch {batch.batch_id} (size {batch.size}) "
                f"on worker {worker.worker_id} "
                f"({self._grid_label(decision.grid)}"
                + (", gauge-resident" if decision.predicted_hit else "")
                + f"), attempt {rec.attempts}",
            )
        batch.trace.append(
            (
                self.now,
                "dispatch",
                f"worker {worker.worker_id}, "
                f"{self._grid_label(decision.grid)}"
                + (", gauge-resident" if decision.predicted_hit else "")
                + (f", degraded to {degraded}" if degraded is not None else ""),
            )
        )
        requests = [r.request for r in selected]
        if degraded is not None:
            requests = [replace(q, mode=degraded) for q in requests]
        execution = worker.execute(
            requests,
            grid=decision.grid,
            tune_cache=self.placement.tune_cache,
        )
        worker.busy_s += execution.duration_s
        self.predicted[batch.batch_id] = self.drain.batch_s
        self._arm_hedge(batch)
        self.drain.observe(execution.duration_s)
        end = self.now + execution.duration_s
        self.running[batch.batch_id] = (batch, execution, self.now, end)
        self._push(end, _EV_DONE, (batch, execution))
        if self._node_dead(batch.worker_id):
            self._condemn(batch.batch_id)

    def _dispatch_resume(self, run: _PreemptedRun) -> None:
        """Resume a preempted batch from its refresh-point checkpoint:
        remaining work plus the modeled reload overhead, outcomes
        replayed from the original execution."""
        self.preempted.remove(run)
        worker_id, hit = self.placement.router.route(
            run.residency_key, self.idle
        )
        self.idle.remove(worker_id)
        worker = self.workers[worker_id]
        duration = run.remaining_s + self.cfg.preemption.resume_overhead_s
        batch = Batch(
            batch_id=self._next_batch_id(),
            records=run.records,
            key=run.key,
            formed_s=self.now,
            worker_id=worker_id,
            grid=run.grid,
            resumed_from=run.from_batch,
        )
        self.batches.append(batch)
        for rec in run.records:
            rec.state = RUNNING
            rec.batch_ids.append(batch.batch_id)
            rec.note(
                self.now,
                "resume",
                f"batch {batch.batch_id} resumes batch {run.from_batch} "
                f"on worker {worker_id} from checkpoint "
                f"({run.remaining_s * 1e6:.1f}us remaining)",
            )
        batch.trace.append(
            (
                self.now,
                "resume",
                f"worker {worker_id}, from batch {run.from_batch}",
            )
        )
        execution = replace(
            run.execution,
            duration_s=duration,
            residency_hit=hit,
            gauge_saved_s=0.0,
        )
        worker.busy_s += duration
        worker.resident_key = run.residency_key
        self.predicted[batch.batch_id] = self.drain.batch_s
        self._arm_hedge(batch)
        self.drain.observe(duration)
        self.resumed_batches += 1
        end = self.now + duration
        self.running[batch.batch_id] = (batch, execution, self.now, end)
        self._push(end, _EV_DONE, (batch, execution))
        if self._node_dead(batch.worker_id):
            self._condemn(batch.batch_id)

    # ------------------------------------------------------------------ #
    # Completion
    # ------------------------------------------------------------------ #

    def _complete(self, batch: Batch, execution: BatchExecution) -> None:
        cfg = self.cfg
        self.running.pop(batch.batch_id, None)
        predicted = self.predicted.pop(batch.batch_id, 0.0)
        worker = self.workers[batch.worker_id]
        if not worker.retired and self._idle_ok(batch.worker_id):
            self.idle.append(worker.worker_id)
            self.idle.sort()
        batch.completed_s = self.now
        batch.duration_s = execution.duration_s
        batch.ok = execution.ok
        batch.recoveries = execution.recoveries
        batch.residency_hit = execution.residency_hit
        self.placement.observe(execution)
        self.makespan = max(self.makespan, self.now)
        if execution.ok:
            batch.trace.append((self.now, "complete", ""))
            for rec, outcome in zip(batch.records, execution.outcomes):
                rec.state = COMPLETED
                rec.completed_s = self.now
                rec.iterations = outcome["iterations"]
                rec.converged = outcome["converged"]
                rec.residual_norm = outcome["residual_norm"]
                rec.recoveries = outcome["recoveries"]
                rec.note(
                    self.now,
                    "complete",
                    f"{outcome['iterations']} iterations"
                    + (
                        f", {outcome['recoveries']} recover(ies)"
                        if outcome["recoveries"]
                        else ""
                    ),
                )
                self.completion_order.append(rec.request.req_id)
            if batch.hedge_of is not None or batch.hedge_batch_id is not None:
                self._resolve_hedge(batch)
        else:
            failure = execution.failure
            batch.detail = str(failure)
            batch.trace.append((self.now, "worker_failure", str(failure)))
            partner_id = (
                batch.hedge_of
                if batch.hedge_of is not None
                else batch.hedge_batch_id
            )
            if partner_id is not None and partner_id in self.running:
                # The other copy of the hedged pair is still running and
                # owns the shared records — no requeue, no terminal fail.
                batch.trace.append(
                    (
                        self.now,
                        "hedge_survivor",
                        f"records stay with running batch {partner_id}",
                    )
                )
            else:
                for rec in batch.records:
                    if rec.attempts <= cfg.max_retries:
                        rec.state = QUEUED
                        self.queue.offer(rec, force=True)
                        rec.note(
                            self.now,
                            "requeue",
                            f"worker {batch.worker_id} failed "
                            f"(rank {failure.rank} {failure.mode}); "
                            f"retry {rec.attempts}/{cfg.max_retries}",
                        )
                    else:
                        rec.state = FAILED
                        rec.completed_s = self.now
                        rec.failure = StructuredFailure(
                            kind="worker_crash",
                            detail=str(failure),
                            failed_rank=failure.rank,
                            model_time=self.now,
                            attempts=rec.attempts,
                        )
                        rec.note(
                            self.now,
                            "fail",
                            f"retries exhausted after {rec.attempts} "
                            f"attempts: {failure}",
                        )
                        self.completion_order.append(rec.request.req_id)
        if (
            self.board is not None
            and not worker.retired
            and self.board.state(batch.worker_id) == HEALTHY
        ):
            if execution.ok:
                slow = self.board.observe_success(
                    batch.worker_id, execution.duration_s, predicted
                )
                if slow:
                    batch.trace.append(
                        (
                            self.now,
                            "slow",
                            f"{execution.duration_s * 1e6:.1f}us vs model "
                            f"{predicted * 1e6:.1f}us",
                        )
                    )
            else:
                self.board.observe_failure(
                    batch.worker_id,
                    execution.failure.mode
                    if execution.failure is not None
                    else "crash",
                )
            if self.board.should_trip(batch.worker_id):
                self._quarantine(batch.worker_id)
                batch.trace.append(
                    (
                        self.now,
                        "quarantine",
                        f"worker {batch.worker_id} quarantined (failure "
                        f"rate "
                        f"{self.board.tracker(batch.worker_id).failure_rate:.2f})",
                    )
                )
        self._update_brownout()
        self._evaluate_scale()
        self.batches_since_commit += 1
        if self.batches_since_commit >= cfg.checkpoint_every:
            self._commit_checkpoint()

    # ------------------------------------------------------------------ #
    # The loop
    # ------------------------------------------------------------------ #

    def run(self) -> ServiceResult:
        if self.cfg.worker_faults is not None:
            for kill in self.cfg.worker_faults.kills:
                self._push(max(kill.at_s, self.now), _EV_KILL, kill.worker_id)
        if self.cfg.domain_faults is not None:
            df = self.cfg.domain_faults
            for nk in df.node_kills:
                self._push(max(nk.at_s, self.now), _EV_NODE_KILL, nk.node)
            for hd in df.hca_degrades:
                self._push(max(hd.at_s, self.now), _EV_HCA_DEGRADE, hd)
            for sp in df.partitions:
                self._push(max(sp.at_s, self.now), _EV_PARTITION, sp)
                # The heal is seeded at schedule time (an absolute model
                # time), so a resumed run heals at the same instant.
                self._push(max(df.heal_time(sp), self.now), _EV_HEAL, sp.rack)
        self._push_next_arrival()
        self._dispatch()  # restored queue contents may already be ready
        while self.events:
            t, kind, _, payload = heapq.heappop(self.events)
            if self.crash_at_s is not None and t >= self.crash_at_s:
                raise SchedulerCrash(
                    self.crash_at_s,
                    self.store
                    if self.store is not None
                    else CampaignCheckpointStore(),
                )
            self.now = t
            probe = None
            if kind == _EV_DONE:
                if isinstance(payload, _ProbeRun):
                    self._probe_done(payload)
                elif isinstance(payload, _DomainProbeRun):
                    self._domain_probe_done(payload)
                elif isinstance(payload, _DeadRun):
                    self._dead_done(payload)
                else:
                    batch, execution = payload
                    if batch.batch_id not in self.cancelled:
                        self._complete(batch, execution)
            elif kind == _EV_PREEMPT:
                self._do_preempt(payload)
            elif kind == _EV_WORKER_UP:
                self._worker_up(payload)
            elif kind == _EV_ARRIVAL:
                self.arrivals_consumed += 1
                probe = self._admit(payload)
                self._push_next_arrival()
            elif kind == _EV_HEDGE:
                self._maybe_hedge(payload)
            elif kind == _EV_HEDGE_CANCEL:
                self._hedge_worker_free(payload)
            elif kind == _EV_KILL:
                self._kill_worker(payload)
            elif kind == _EV_PROBE:
                self._start_probe(payload)
            elif kind == _EV_NODE_KILL:
                self._kill_node(payload)
            elif kind == _EV_HCA_DEGRADE:
                self._hca_degrade(payload)
            elif kind == _EV_PARTITION:
                self._partition(payload)
            elif kind == _EV_HEAL:
                self._heal(payload)
            elif kind == _EV_DOMAIN_PROBE:
                self._start_domain_probe(payload)
            # _EV_TIMEOUT carries no payload: it exists to revisit the
            # queue once a batching window has expired.
            self._dispatch()
            if probe is not None and probe.state == QUEUED:
                self._maybe_preempt(probe)

        stuck = [rec for rec in self.records if not rec.terminal]
        if stuck:
            raise ServiceInvariantError(
                f"{len(stuck)} request(s) left non-terminal: "
                f"{[r.request.req_id for r in stuck]}"
            )

        report = ServiceReport.collect(
            self.records,
            self.batches,
            self.cfg.policy,
            worker_busy_s=[w.busy_s for w in self.workers],
            makespan_s=self.makespan,
            placement=self.placement.summary(),
            daemon=self._daemon_summary(),
        )
        return ServiceResult(
            report=report,
            records=self.records,
            batches=self.batches,
            completion_order=self.completion_order,
            workers=self.workers,
        )

    def _daemon_summary(self) -> dict:
        out = {
            "preemptions": self.preemptions_total,
            "resumed_batches": self.resumed_batches,
            "final_workers": self._active_workers(),
            "checkpoints_committed": self.checkpoints_committed,
            "checkpoint_restores": 1 if self.restored else 0,
            "restored_requests": self.restored_requests,
        }
        if self.controller is not None:
            out.update(
                scale_ups=self.controller.scale_ups,
                scale_downs=self.controller.scale_downs,
                scale_events=[e.to_json() for e in self.controller.events],
                spinup_spent_s=self.controller.spinup_spent_s,
            )
        if self.board is not None:
            out.update(self.board.summary())
        if self.hedge is not None:
            out.update(
                hedges_launched=self.hedges_launched,
                hedges_won=self.hedges_won,
                hedges_cancelled=self.hedges_cancelled,
            )
        if self.brownout is not None:
            out["brownout"] = self.brownout.summary()
        if self.cfg.worker_faults is not None:
            out["workers_killed"] = self.workers_killed
        if self.tenants is not None:
            out["tenancy"] = self.tenants.summary()
        if self.topology is not None:
            scorecard = {
                "topology": str(self.topology),
                "nodes_killed": self.nodes_killed,
                "partitions": self.partitions_seen,
                "partition_heals": self.partition_heals,
                "anti_affinity_placements": (
                    self.placement.stats.anti_affinity_placements
                ),
                "anti_affinity_hedges": self.anti_affinity_hedges,
                "mirror_restores": (
                    int(getattr(self.store, "mirror_restores", 0))
                    if self.store is not None
                    else 0
                ),
                "isolation_ms": self._isolation_ms(),
            }
            if self.domain_board is not None:
                scorecard.update(self.domain_board.summary())
            out["domains"] = scorecard
        return out

    def _isolation_ms(self) -> dict:
        """Per-node time-to-isolate: the instant the *last* boot worker
        on the node was held out of service.  Only nodes whose every
        boot worker has been isolated appear — a partial hold is not
        isolation."""
        out: dict[str, float] = {}
        boot = self.cfg.n_workers
        for node in range(self.topology.n_nodes):
            members = [
                w for w in self.topology.workers_on_node(node) if w < boot
            ]
            if members and all(w in self.isolation_s for w in members):
                out[str(node)] = round(
                    max(self.isolation_s[w] for w in members) * 1e3, 6
                )
        return out
