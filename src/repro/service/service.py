"""The solve service: a deterministic event-driven campaign scheduler.

:class:`SolveService` consumes a workload of
:class:`~repro.service.request.SolveRequest` arrivals and drives them to
terminal states on a pool of simulated multi-GPU workers, entirely on
the model clock:

1. **Admission** — arrivals enter the bounded
   :class:`~repro.service.queueing.AdmissionQueue`; a full queue rejects
   with a retry-after hint computed from the live backlog (backpressure,
   never unbounded latency).
2. **Batching** — the :class:`~repro.service.batching.BatchPolicy`
   groups compatible requests into multi-RHS batches: dispatch on full
   batch, window expiry, or expedited priority, always considering
   higher-priority groups first.
3. **Placement** — the dispatch loop no longer pulls the lowest-id idle
   worker: each selected batch is handed to the
   :class:`~repro.service.placement.PlacementEngine`, which picks the
   process grid (time-only vs. ``(ranks_z, ranks_t)``, scored with the
   calibrated perf model), routes toward a gauge-resident worker (the
   host→device upload is charged only on a miss), and supplies the
   shared tunecache (the Section V-E sweep is charged once per shape).
4. **Execution** — each batch occupies a
   :class:`~repro.service.workers.SimWorker` (an n-rank SimMPI cluster)
   for its deterministic model duration; faults injected by the worker's
   :class:`~repro.comms.faults.FaultPlan` either self-heal inside the
   batch (worker retry policy) or surface as a structured failure the
   service answers with bounded re-dispatch.
5. **Accounting** — every transition is stamped on the request's
   lifecycle trace; the final
   :class:`~repro.service.metrics.ServiceReport` carries the wait/latency
   percentiles, occupancy, utilization, goodput and the placement
   scorecard (grid histogram, residency and tunecache hit rates, setup
   seconds saved).

The event loop orders (time, kind, sequence) totally, every duration is
model time, and every scheduling decision is a pure function of the
workload and the seed — so two runs of the same campaign produce
identical completion orders and identical percentiles, and the
*no-lost-requests* invariant (every admitted request ends COMPLETED or
FAILED-with-structure) is checked, not hoped for.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field as dataclass_field

from ..comms.cluster import ClusterSpec
from ..comms.faults import FaultPlan, IntegrityPolicy
from ..core import RetryPolicy
from ..gpu.specs import GTX285, GPUSpec
from .batching import Batch, BatchPolicy, select_batch
from .metrics import ServiceReport
from .placement import PlacementEngine, PlacementPolicy, SharedTuneCache
from .queueing import AdmissionQueue, DrainEstimator
from .request import (
    COMPLETED,
    FAILED,
    QUEUED,
    REJECTED,
    RUNNING,
    RequestRecord,
    SolveRequest,
    StructuredFailure,
)
from .workers import SimWorker

__all__ = ["ServiceConfig", "ServiceResult", "SolveService", "ServiceInvariantError"]

# Event kinds, in same-time processing order: completions free workers
# before new arrivals are admitted; timeouts merely re-trigger dispatch.
_EV_DONE = 0
_EV_ARRIVAL = 1
_EV_TIMEOUT = 2


class ServiceInvariantError(RuntimeError):
    """A request left the event loop in a non-terminal state — the
    service lost work, which must never pass silently."""


@dataclass(frozen=True)
class ServiceConfig:
    """Everything that shapes a campaign's schedule."""

    queue_capacity: int = 64
    policy: BatchPolicy = dataclass_field(default_factory=BatchPolicy)
    n_workers: int = 2
    ranks_per_worker: int = 2
    #: Additional dispatches after a worker failure before the request
    #: fails terminally.
    max_retries: int = 1
    #: Real numerics (weak-field configs, actual sources) instead of the
    #: timing-only schedule.
    functional: bool = False
    fixed_iterations: int = 15
    overlap: bool = True
    #: Fault template: worker ``w`` in ``chaos_workers`` runs under
    #: ``fault_plan.reseeded(w)`` — independent schedules, one seed.
    fault_plan: FaultPlan | None = None
    chaos_workers: tuple[int, ...] = ()
    #: Worker-side self-healing (checkpoint resume over survivors);
    #: ``None`` leaves recovery to service-level re-dispatch.
    retry_policy: RetryPolicy | None = None
    integrity: IntegrityPolicy | None = None
    #: Seeds the service's own bookkeeping (reserved; scheduling is
    #: already deterministic without randomness).
    seed: int = 0
    #: Retry-after fallback before any batch has been measured.
    service_time_hint_s: float = 2e-3
    #: EWMA smoothing factor of the drain-rate estimator behind the
    #: retry-after hint (1.0 = last batch only).
    drain_alpha: float = 0.3
    #: The placement layer's knobs: grid selection, residency routing,
    #: shared tunecache.
    placement: PlacementPolicy = dataclass_field(default_factory=PlacementPolicy)

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if not 0.0 < self.drain_alpha <= 1.0:
            raise ValueError("drain_alpha must be in (0, 1]")
        g = self.placement.grid
        if isinstance(g, tuple) and g[0] * g[1] != self.ranks_per_worker:
            raise ValueError(
                f"pinned grid {g} needs {g[0] * g[1]} ranks but workers "
                f"have {self.ranks_per_worker}"
            )
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        for w in self.chaos_workers:
            if not 0 <= w < self.n_workers:
                raise ValueError(f"chaos worker {w} outside the pool")
        if self.chaos_workers and self.fault_plan is None:
            raise ValueError("chaos_workers requires a fault_plan")


@dataclass
class ServiceResult:
    """A served campaign: the report plus every artifact behind it."""

    report: ServiceReport
    records: list[RequestRecord]
    batches: list[Batch]
    #: Request ids in completion order — the determinism witness.
    completion_order: list[int]
    workers: list[SimWorker]

    def record_for(self, req_id: int) -> RequestRecord:
        for rec in self.records:
            if rec.request.req_id == req_id:
                return rec
        raise KeyError(req_id)


class SolveService:
    """Deterministic scheduler over a simulated worker pool."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        gpu_spec: GPUSpec = GTX285,
        cluster: ClusterSpec | None = None,
        tune_cache: SharedTuneCache | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        cfg = self.config
        self.workers = [
            SimWorker(
                w,
                ranks=cfg.ranks_per_worker,
                gpu_spec=gpu_spec,
                cluster=cluster,
                fault_plan=(
                    cfg.fault_plan.reseeded(w)
                    if cfg.fault_plan is not None and w in cfg.chaos_workers
                    else None
                ),
                retry_policy=cfg.retry_policy,
                integrity=cfg.integrity,
                functional=cfg.functional,
                fixed_iterations=cfg.fixed_iterations,
                overlap=cfg.overlap,
                residency=cfg.placement.residency,
            )
            for w in range(cfg.n_workers)
        ]
        #: The dispatch loop's oracle; ``tune_cache`` may be a store
        #: loaded from disk (``repro serve --tunecache``) so the sweep
        #: amortizes across campaigns.
        self.placement = PlacementEngine(
            cfg.placement,
            self.workers,
            gpu_spec=gpu_spec,
            tune_cache=tune_cache,
        )

    # ------------------------------------------------------------------ #

    def run(self, requests: list[SolveRequest]) -> ServiceResult:
        """Serve a whole campaign; returns when every request is terminal."""
        cfg = self.config
        queue = AdmissionQueue(cfg.queue_capacity)
        records = [RequestRecord(request=req) for req in requests]
        seq = 0
        events: list[tuple] = []
        for rec in records:
            heapq.heappush(
                events, (rec.request.arrival_s, _EV_ARRIVAL, seq, rec)
            )
            seq += 1

        batches: list[Batch] = []
        completion_order: list[int] = []
        idle = list(range(len(self.workers)))  # ascending worker ids
        drain = DrainEstimator(
            alpha=cfg.drain_alpha, initial_s=cfg.service_time_hint_s
        )
        self.placement.reset_stats()
        now = 0.0
        makespan = 0.0

        def grid_label(grid: tuple[int, int] | None) -> str:
            return "time-sliced" if grid is None else f"grid {grid[0]}x{grid[1]}"

        def fail_placement(selected, detail: str) -> None:
            """No decomposition fits the pool: the request can never run
            here, so it fails terminally (structured, not silently)."""
            for rec in selected:
                rec.state = FAILED
                rec.completed_s = now
                rec.failure = StructuredFailure(
                    kind="infeasible_volume",
                    detail=detail,
                    model_time=now,
                    attempts=rec.attempts,
                )
                rec.note(now, "fail", f"placement: {detail}")
                completion_order.append(rec.request.req_id)

        def dispatch() -> None:
            nonlocal seq
            while idle and len(queue):
                selected = select_batch(queue.ordered(), now, cfg.policy)
                if selected is None:
                    return
                queue.remove(selected)
                try:
                    decision = self.placement.place(selected, idle)
                except ValueError as exc:
                    fail_placement(selected, str(exc))
                    continue
                idle.remove(decision.worker_id)
                worker = self.workers[decision.worker_id]
                batch = Batch(
                    batch_id=len(batches),
                    records=selected,
                    key=selected[0].request.compat_key,
                    formed_s=now,
                    worker_id=worker.worker_id,
                    grid=decision.grid,
                )
                batches.append(batch)
                for rec in selected:
                    rec.state = RUNNING
                    rec.attempts += 1
                    if rec.dispatched_s is None:
                        rec.dispatched_s = now
                    rec.batch_ids.append(batch.batch_id)
                    rec.grid = decision.grid
                    rec.note(
                        now,
                        "dispatch",
                        f"batch {batch.batch_id} (size {batch.size}) "
                        f"on worker {worker.worker_id} "
                        f"({grid_label(decision.grid)}"
                        + (", gauge-resident" if decision.predicted_hit else "")
                        + f"), attempt {rec.attempts}",
                    )
                batch.trace.append(
                    (
                        now,
                        "dispatch",
                        f"worker {worker.worker_id}, "
                        f"{grid_label(decision.grid)}"
                        + (", gauge-resident" if decision.predicted_hit else ""),
                    )
                )
                execution = worker.execute(
                    [r.request for r in selected],
                    grid=decision.grid,
                    tune_cache=self.placement.tune_cache,
                )
                worker.busy_s += execution.duration_s
                drain.observe(execution.duration_s)
                heapq.heappush(
                    events,
                    (
                        now + execution.duration_s,
                        _EV_DONE,
                        seq,
                        (batch, execution),
                    ),
                )
                seq += 1

        def complete(batch: Batch, execution) -> None:
            nonlocal seq, makespan
            worker = self.workers[batch.worker_id]
            idle.append(worker.worker_id)
            idle.sort()
            batch.completed_s = now
            batch.duration_s = execution.duration_s
            batch.ok = execution.ok
            batch.recoveries = execution.recoveries
            batch.residency_hit = execution.residency_hit
            self.placement.observe(execution)
            makespan = max(makespan, now)
            if execution.ok:
                batch.trace.append((now, "complete", ""))
                for rec, outcome in zip(batch.records, execution.outcomes):
                    rec.state = COMPLETED
                    rec.completed_s = now
                    rec.iterations = outcome["iterations"]
                    rec.converged = outcome["converged"]
                    rec.residual_norm = outcome["residual_norm"]
                    rec.recoveries = outcome["recoveries"]
                    rec.note(
                        now,
                        "complete",
                        f"{outcome['iterations']} iterations"
                        + (
                            f", {outcome['recoveries']} recover(ies)"
                            if outcome["recoveries"]
                            else ""
                        ),
                    )
                    completion_order.append(rec.request.req_id)
                return
            failure = execution.failure
            batch.detail = str(failure)
            batch.trace.append((now, "worker_failure", str(failure)))
            for rec in batch.records:
                if rec.attempts <= cfg.max_retries:
                    rec.state = QUEUED
                    queue.offer(rec, force=True)
                    rec.note(
                        now,
                        "requeue",
                        f"worker {batch.worker_id} failed "
                        f"(rank {failure.rank} {failure.mode}); "
                        f"retry {rec.attempts}/{cfg.max_retries}",
                    )
                else:
                    rec.state = FAILED
                    rec.completed_s = now
                    rec.failure = StructuredFailure(
                        kind="worker_crash",
                        detail=str(failure),
                        failed_rank=failure.rank,
                        model_time=now,
                        attempts=rec.attempts,
                    )
                    rec.note(
                        now,
                        "fail",
                        f"retries exhausted after {rec.attempts} attempts: "
                        f"{failure}",
                    )
                    completion_order.append(rec.request.req_id)

        while events:
            t, kind, _, payload = heapq.heappop(events)
            now = t
            if kind == _EV_DONE:
                batch, execution = payload
                complete(batch, execution)
            elif kind == _EV_ARRIVAL:
                rec = payload
                rec.note(now, "arrive", f"priority {rec.request.priority}")
                if not queue.offer(rec):
                    rec.state = REJECTED
                    rec.completed_s = now
                    rec.retry_after_s = drain.retry_after_s(
                        len(queue),
                        max_batch=cfg.policy.max_batch,
                        n_workers=len(self.workers),
                    )
                    rec.note(
                        now,
                        "reject",
                        f"queue full ({cfg.queue_capacity}); retry after "
                        f"{rec.retry_after_s * 1e6:.1f}us",
                    )
                    continue
                rec.admitted_s = now
                rec.note(now, "admit", f"depth {len(queue)}")
                heapq.heappush(
                    events,
                    (now + cfg.policy.max_wait_s, _EV_TIMEOUT, seq, None),
                )
                seq += 1
            # _EV_TIMEOUT carries no payload: it exists to revisit the
            # queue once a batching window has expired.
            dispatch()

        stuck = [rec for rec in records if not rec.terminal]
        if stuck:
            raise ServiceInvariantError(
                f"{len(stuck)} request(s) left non-terminal: "
                f"{[r.request.req_id for r in stuck]}"
            )

        report = ServiceReport.collect(
            records,
            batches,
            cfg.policy,
            worker_busy_s=[w.busy_s for w in self.workers],
            makespan_s=makespan,
            placement=self.placement.summary(),
        )
        return ServiceResult(
            report=report,
            records=records,
            batches=batches,
            completion_order=completion_order,
            workers=self.workers,
        )
