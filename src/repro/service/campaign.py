"""Campaign-level checkpointing: the scheduler self-heals like a solve.

PR 2 taught *solves* to survive rank crashes: refresh-point
:class:`~repro.core.solvers.checkpoint.SolveCheckpoint` snapshots,
deterministic bytes, checksum-validated restore with a previous-commit
fallback.  This module applies the identical design one level up — to
the scheduler itself.  A long-lived daemon streaming requests for days
*will* lose its scheduler process eventually; when it does, the in-flight
campaign (admitted-but-unserved requests, terminal outcomes already
acked, the worker pool's residency state, the shared tunecache, the
drain/arrival estimators, the autoscaler's position) must not evaporate.

:class:`CampaignCheckpoint` is the serializable snapshot, committed at
batch boundaries — the campaign analogue of a reliable-update refresh
point, where the scheduler's view is globally consistent: no event is
half-processed, every request is in a well-defined lifecycle state.
Serialization is one packed :mod:`repro.codec` record — struct-packed
tagged values behind a versioned CRC32 frame — so the bytes are a pure
function of the state and a torn or corrupted snapshot is *rejected on
load* rather than resuming a campaign from damaged bookkeeping.  The
pre-codec format (``RPCS\\x01`` magic + length-prefixed canonical JSON +
checksum) still restores; ``from_bytes`` auto-detects the frame.

:class:`CampaignCheckpointStore` keeps the latest commit plus one
verified fallback (exactly like the solve-level store) and optionally
mirrors each commit to a file, so a restarted process — not just a
surviving one — can resume.  Restore semantics are at-least-once:
whatever happened after the last commit (completions the scheduler never
acked, arrivals it never logged) is deterministically *replayed* by the
resumed run, so the no-lost-requests invariant holds across the crash.
"""

from __future__ import annotations

import io
import json
import os
import struct
from dataclasses import dataclass, field

from .. import codec
from ..comms.faults import checksum_bytes
from .request import RequestRecord

__all__ = [
    "CampaignCheckpoint",
    "CampaignCheckpointStore",
    "MirroredCheckpointStore",
    "SchedulerCrash",
]

#: Magic of the pre-codec (length-prefixed canonical JSON) format, kept
#: so old on-disk checkpoint mirrors keep restoring.
_LEGACY_MAGIC = b"RPCS\x01"


class SchedulerCrash(RuntimeError):
    """The (simulated) scheduler process died mid-campaign.

    Raised by :meth:`SolveService.serve` when the model clock reaches the
    configured crash time.  Carries the checkpoint store so the caller
    can hand it straight to :meth:`SolveService.resume` — the same
    supervisor pattern ``run_with_recovery`` uses for solves.
    """

    def __init__(self, time_s: float, store: "CampaignCheckpointStore") -> None:
        super().__init__(
            f"scheduler crashed at {time_s * 1e6:.1f}us with "
            f"{store.committed} checkpoint commit(s)"
        )
        self.time_s = time_s
        self.store = store


@dataclass
class CampaignCheckpoint:
    """One committed recovery point of a streaming campaign.

    Everything the resumed scheduler needs, keyed by lifecycle class:

    * ``terminal`` — records already completed/failed/rejected: restored
      verbatim (their outcomes were acked; re-running them would violate
      exactly-once acking).
    * ``pending`` — records admitted but not terminal (queued, running,
      or preempted at commit time).  Their batches died with the
      scheduler, so they re-enter the queue on restore.
    * ``arrivals_consumed`` — how many arrivals the scheduler had pulled
      from the (deterministic) source; the resumed run regenerates the
      source and skips exactly this prefix.
    * pool state — per-worker residency keys, busy time, retired flags —
      the *workers* survived the scheduler; their devices still hold
      gauge configurations, and throwing that warmth away on every
      scheduler restart would repay setup the whole placement layer
      exists to avoid.  Plus the serialized tunecache, estimator states,
      and autoscaler position for the same reason.
    """

    time_s: float = 0.0
    arrivals_consumed: int = 0
    next_batch_id: int = 0
    next_req_seq: int = 0
    makespan_s: float = 0.0
    checkpoints_committed: int = 0
    preemptions: int = 0
    completion_order: list[int] = field(default_factory=list)
    #: ``RequestRecord.to_json()`` dicts, split by lifecycle class.
    terminal: list[dict] = field(default_factory=list)
    pending: list[dict] = field(default_factory=list)
    #: Per-worker ``{"resident": key-or-None, "busy_s": float, ...}``.
    workers: list[dict] = field(default_factory=list)
    #: ``SharedTuneCache.to_json()`` (``None`` when tunecache disabled).
    tunecache: dict | None = None
    #: EWMA states: ``{"ewma": ..., "samples": ...}``.
    drain: dict = field(default_factory=dict)
    arrival_rate: dict = field(default_factory=dict)
    #: Autoscaler position: scale events so far + cooldown clock.
    elastic: dict = field(default_factory=dict)
    #: Circuit-breaker board (``HealthBoard.to_json()``): per-worker
    #: ledgers and states, so a resumed scheduler *preserves*
    #: quarantines — restarting a known-flaky worker at HEALTHY would
    #: hand it traffic the breaker had already taken away.
    health: dict = field(default_factory=dict)
    #: Brownout level + ledger (``BrownoutController.to_json()``): the
    #: level is state, not recomputable — a resumed scheduler facing the
    #: restored backlog must keep shedding rather than rediscover the
    #: overload from NORMAL one admission at a time.
    brownout: dict = field(default_factory=dict)
    #: Hedge accounting carried across the crash (launched/won/cancelled).
    hedges: dict = field(default_factory=dict)
    #: Whole-worker kills already applied before the commit.
    workers_killed: int = 0
    #: Domain-breaker board (``DomainBoard.to_json()``): a resumed
    #: scheduler preserves whole-node quarantines for the same reason it
    #: preserves per-worker ones.
    domain_health: dict = field(default_factory=dict)
    #: Campaign-side failure-domain state: elastic worker→node
    #: assignments, dead nodes, applied HCA factors, partitioned racks,
    #: and the domain counters — all already-applied fault effects, so
    #: the refired fault events replay idempotently after a crash.
    domains: dict = field(default_factory=dict)
    #: Multi-tenant state (``TenantRegistry.to_json()``): token-bucket
    #: levels with their refill clocks, weighted-fair virtual clocks, and
    #: per-tenant counters.  Buckets restore *verbatim* — a resumed
    #: scheduler must not re-charge tokens for admissions the crashed one
    #: already consumed.
    tenancy: dict = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Deterministic serialization (PR-2 recipe: magic + JSON + checksum)
    # ------------------------------------------------------------------ #

    def to_json(self) -> dict:
        return {
            "time_s": self.time_s,
            "arrivals_consumed": self.arrivals_consumed,
            "next_batch_id": self.next_batch_id,
            "next_req_seq": self.next_req_seq,
            "makespan_s": self.makespan_s,
            "checkpoints_committed": self.checkpoints_committed,
            "preemptions": self.preemptions,
            "completion_order": list(self.completion_order),
            "terminal": list(self.terminal),
            "pending": list(self.pending),
            "workers": list(self.workers),
            "tunecache": self.tunecache,
            "drain": dict(self.drain),
            "arrival_rate": dict(self.arrival_rate),
            "elastic": dict(self.elastic),
            "health": dict(self.health),
            "brownout": dict(self.brownout),
            "hedges": dict(self.hedges),
            "workers_killed": self.workers_killed,
            "domain_health": dict(self.domain_health),
            "domains": dict(self.domains),
            "tenancy": dict(self.tenancy),
        }

    @classmethod
    def from_json(cls, data: dict) -> "CampaignCheckpoint":
        return cls(
            time_s=float(data["time_s"]),
            arrivals_consumed=int(data["arrivals_consumed"]),
            next_batch_id=int(data["next_batch_id"]),
            next_req_seq=int(data["next_req_seq"]),
            makespan_s=float(data["makespan_s"]),
            checkpoints_committed=int(data["checkpoints_committed"]),
            preemptions=int(data.get("preemptions", 0)),
            completion_order=[int(r) for r in data["completion_order"]],
            terminal=list(data["terminal"]),
            pending=list(data["pending"]),
            workers=list(data["workers"]),
            tunecache=data["tunecache"],
            drain=dict(data["drain"]),
            arrival_rate=dict(data["arrival_rate"]),
            elastic=dict(data["elastic"]),
            health=dict(data.get("health", {})),
            brownout=dict(data.get("brownout", {})),
            hedges=dict(data.get("hedges", {})),
            workers_killed=int(data.get("workers_killed", 0)),
            domain_health=dict(data.get("domain_health", {})),
            domains=dict(data.get("domains", {})),
            tenancy=dict(data.get("tenancy", {})),
        )

    def to_bytes(self) -> bytes:
        return codec.encode_record(self.to_json(), kind=codec.KIND_CAMPAIGN)

    @classmethod
    def from_bytes(cls, data: bytes) -> "CampaignCheckpoint":
        if codec.is_packed(data):
            _, body = codec.decode_record(data, expect_kind=codec.KIND_CAMPAIGN)
            return cls.from_json(body)
        if data[: len(_LEGACY_MAGIC)] == _LEGACY_MAGIC:
            return cls._decode_legacy(data)
        raise ValueError("not a CampaignCheckpoint stream")

    @classmethod
    def _decode_legacy(cls, data: bytes) -> "CampaignCheckpoint":
        """Decode the pre-codec (length-prefixed canonical JSON) format."""
        buf = io.BytesIO(data)
        buf.read(len(_LEGACY_MAGIC))
        blen, expected = struct.unpack("<II", buf.read(8))
        body = buf.read(blen)
        if len(body) != blen:
            raise ValueError("truncated CampaignCheckpoint stream")
        actual = checksum_bytes(body)
        if actual != expected:
            raise ValueError(
                f"campaign checkpoint checksum mismatch: "
                f"{actual:#010x} != {expected:#010x}"
            )
        return cls.from_json(json.loads(body.decode()))

    # ------------------------------------------------------------------ #

    def restored_records(self) -> tuple[list[RequestRecord], list[RequestRecord]]:
        """``(terminal, pending)`` as live records."""
        return (
            [RequestRecord.from_json(d) for d in self.terminal],
            [RequestRecord.from_json(d) for d in self.pending],
        )


class CampaignCheckpointStore:
    """Latest + one verified fallback commit, optionally file-mirrored.

    The in-memory pair mirrors the solve-level store's contract: a
    commit that later fails its checksum on load is discarded (once)
    and the previous verified commit restores instead.  ``path`` makes
    each commit durable, so a *restarted* scheduler process — not just a
    surviving supervisor — can :meth:`load` and resume.
    """

    def __init__(self, path: str | None = None) -> None:
        self.path = path
        self.committed = 0
        self._blobs: list[bytes] = []

    def __len__(self) -> int:
        return len(self._blobs)

    def commit(self, checkpoint: CampaignCheckpoint) -> None:
        blob = checkpoint.to_bytes()
        self._blobs.append(blob)
        del self._blobs[:-2]  # latest + one verified fallback
        self.committed += 1
        if self.path:
            tmp = f"{self.path}.tmp"
            with open(tmp, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, self.path)

    def latest(self) -> CampaignCheckpoint | None:
        """Most recent commit whose checksum validates (fallback on a
        torn latest), or ``None`` when nothing committed."""
        while self._blobs:
            try:
                return CampaignCheckpoint.from_bytes(self._blobs[-1])
            except ValueError:
                self._blobs.pop()
        return None

    def destroy(self) -> None:
        """Drop every blob — the domain hosting this replica died.

        The file mirror (if any) is left alone: a dead node's disk is
        unreachable, not rewritten."""
        self._blobs.clear()

    @classmethod
    def load(cls, path: str) -> "CampaignCheckpointStore":
        store = cls(path)
        with open(path, "rb") as fh:
            store._blobs = [fh.read()]
        return store


class MirroredCheckpointStore:
    """Cross-domain checkpoint replication: primary + mirror replicas.

    A checkpoint store that lives on one node is a single point of
    failure the rest of this PR just abolished: lose that node and the
    campaign loses its resume point along with the workers.  Every
    commit therefore lands on *two* replicas pinned to different failure
    domains; :meth:`latest` reads the primary and falls back to the
    mirror (each replica keeping its own CRC/verified-fallback recipe),
    and :meth:`lose_domain` — called by the scheduler when a node dies —
    wipes whichever replica that node hosted.  Duck-type compatible with
    :class:`CampaignCheckpointStore` everywhere the scheduler touches a
    store (``commit`` / ``latest`` / ``committed`` / ``len``).
    """

    def __init__(
        self,
        primary: CampaignCheckpointStore | None = None,
        mirror: CampaignCheckpointStore | None = None,
        *,
        primary_domain: int = 0,
        mirror_domain: int = 1,
    ) -> None:
        if primary_domain == mirror_domain:
            raise ValueError("primary and mirror must live in different domains")
        self.primary = primary if primary is not None else CampaignCheckpointStore()
        self.mirror = mirror if mirror is not None else CampaignCheckpointStore()
        self.primary_domain = primary_domain
        self.mirror_domain = mirror_domain
        self.committed = 0
        self.lost: set[int] = set()
        #: Times :meth:`latest` had to serve from the mirror.
        self.mirror_restores = 0

    def __len__(self) -> int:
        return max(len(self.primary), len(self.mirror))

    def commit(self, checkpoint: CampaignCheckpoint) -> None:
        if self.primary_domain not in self.lost:
            self.primary.commit(checkpoint)
        if self.mirror_domain not in self.lost:
            self.mirror.commit(checkpoint)
        self.committed += 1

    def lose_domain(self, node: int) -> None:
        """The node died; wipe whichever replica it hosted (if any)."""
        if node in self.lost:
            return
        if node == self.primary_domain:
            self.lost.add(node)
            self.primary.destroy()
        elif node == self.mirror_domain:
            self.lost.add(node)
            self.mirror.destroy()

    def latest(self) -> CampaignCheckpoint | None:
        if self.primary_domain not in self.lost:
            ckpt = self.primary.latest()
            if ckpt is not None:
                return ckpt
        ckpt = self.mirror.latest()
        if ckpt is not None:
            self.mirror_restores += 1
        return ckpt
