"""Latency/throughput accounting for a served campaign.

Everything a serving stack's dashboard shows, computed from the model
clock so the numbers are deterministic: queue-wait and end-to-end
latency percentiles (nearest-rank, so two same-seed runs agree to the
last bit), batch occupancy (how full the batching policy keeps the
multi-RHS slots), per-worker utilization, throughput and *goodput*
(completions that honoured their deadline).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .batching import Batch, BatchPolicy
from .request import COMPLETED, FAILED, REJECTED, RequestRecord

__all__ = ["percentile", "ServiceReport"]


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without floats
    return ordered[int(rank) - 1]


@dataclass
class ServiceReport:
    """One campaign's scorecard."""

    n_requests: int = 0
    admitted: int = 0
    rejected: int = 0
    completed: int = 0
    failed: int = 0
    #: Dispatches beyond each request's first (service-level retries
    #: after worker failures).
    retries: int = 0
    #: Worker-side self-healing relaunches observed inside batches.
    recoveries: int = 0
    #: Batch executions that died with a structured failure.
    worker_crashes: int = 0
    n_batches: int = 0
    mean_batch_size: float = 0.0
    batch_occupancy: float = 0.0
    #: Queue-wait percentiles (arrival -> first dispatch), seconds.
    wait_p50_s: float = 0.0
    wait_p95_s: float = 0.0
    wait_p99_s: float = 0.0
    #: End-to-end latency percentiles (arrival -> terminal), seconds.
    latency_p50_s: float = 0.0
    latency_p99_s: float = 0.0
    #: Model time from first arrival to last completion.
    makespan_s: float = 0.0
    throughput_rps: float = 0.0
    goodput_rps: float = 0.0
    #: Completions that met their deadline / completions with one.
    slo_attainment: float = 1.0
    worker_utilization: list[float] = field(default_factory=list)
    #: Placement scorecard (:meth:`PlacementEngine.summary`): batches per
    #: decomposition, gauge-residency hits/misses and upload seconds
    #: saved, shared-tunecache hits/misses and sweep seconds spent/saved.
    placement: dict = field(default_factory=dict)

    @property
    def residency_hit_rate(self) -> float:
        return self.placement.get("residency_hit_rate", 0.0)

    @property
    def tunecache_hit_rate(self) -> float:
        return self.placement.get("tunecache_hit_rate", 0.0)

    @property
    def setup_saved_s(self) -> float:
        """Total modeled setup time placement avoided: gauge uploads
        skipped on residency hits plus autotune sweeps skipped on
        tunecache hits."""
        return self.placement.get("gauge_saved_s", 0.0) + self.placement.get(
            "tune_setup_saved_s", 0.0
        )

    @classmethod
    def collect(
        cls,
        records: list[RequestRecord],
        batches: list[Batch],
        policy: BatchPolicy,
        *,
        worker_busy_s: list[float],
        makespan_s: float,
        placement: dict | None = None,
    ) -> "ServiceReport":
        completed = [r for r in records if r.state == COMPLETED]
        failed = [r for r in records if r.state == FAILED]
        rejected = [r for r in records if r.state == REJECTED]
        waits = sorted(
            r.wait_s for r in records if r.wait_s is not None
        )
        latencies = sorted(
            r.latency_s for r in completed if r.latency_s is not None
        )
        with_deadline = [
            r for r in completed if r.request.deadline_s is not None
        ]
        met = [r for r in completed if r.met_deadline]
        met_with_deadline = [
            r for r in with_deadline if r.met_deadline
        ]
        horizon = makespan_s if makespan_s > 0 else 1.0
        sizes = [b.size for b in batches]
        return cls(
            n_requests=len(records),
            admitted=len(records) - len(rejected),
            rejected=len(rejected),
            completed=len(completed),
            failed=len(failed),
            retries=sum(max(0, r.attempts - 1) for r in records),
            recoveries=sum(b.recoveries for b in batches),
            worker_crashes=sum(1 for b in batches if b.ok is False),
            n_batches=len(batches),
            mean_batch_size=(sum(sizes) / len(sizes)) if sizes else 0.0,
            batch_occupancy=(
                sum(sizes) / (len(sizes) * policy.max_batch) if sizes else 0.0
            ),
            wait_p50_s=percentile(waits, 50),
            wait_p95_s=percentile(waits, 95),
            wait_p99_s=percentile(waits, 99),
            latency_p50_s=percentile(latencies, 50),
            latency_p99_s=percentile(latencies, 99),
            makespan_s=makespan_s,
            throughput_rps=len(completed) / horizon,
            goodput_rps=len(met) / horizon,
            slo_attainment=(
                len(met_with_deadline) / len(with_deadline)
                if with_deadline
                else 1.0
            ),
            worker_utilization=[
                min(1.0, busy / horizon) for busy in worker_busy_s
            ],
            placement=placement or {},
        )

    def to_json(self) -> dict:
        return {
            "requests": self.n_requests,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "failed": self.failed,
            "retries": self.retries,
            "recoveries": self.recoveries,
            "worker_crashes": self.worker_crashes,
            "batches": self.n_batches,
            "mean_batch_size": round(self.mean_batch_size, 4),
            "batch_occupancy": round(self.batch_occupancy, 4),
            "wait_p50_us": round(self.wait_p50_s * 1e6, 3),
            "wait_p95_us": round(self.wait_p95_s * 1e6, 3),
            "wait_p99_us": round(self.wait_p99_s * 1e6, 3),
            "latency_p50_us": round(self.latency_p50_s * 1e6, 3),
            "latency_p99_us": round(self.latency_p99_s * 1e6, 3),
            "makespan_us": round(self.makespan_s * 1e6, 3),
            "throughput_rps": round(self.throughput_rps, 3),
            "goodput_rps": round(self.goodput_rps, 3),
            "slo_attainment": round(self.slo_attainment, 4),
            "worker_utilization": [
                round(u, 4) for u in self.worker_utilization
            ],
            "placement": self._placement_json(),
        }

    def _placement_json(self) -> dict:
        p = self.placement
        if not p:
            return {}
        return {
            "grids": dict(p.get("grids", {})),
            "residency_hits": p.get("residency_hits", 0),
            "residency_misses": p.get("residency_misses", 0),
            "residency_hit_rate": round(p.get("residency_hit_rate", 0.0), 4),
            "gauge_saved_us": round(p.get("gauge_saved_s", 0.0) * 1e6, 3),
            "tunecache_hits": p.get("tunecache_hits", 0),
            "tunecache_misses": p.get("tunecache_misses", 0),
            "tunecache_hit_rate": round(p.get("tunecache_hit_rate", 0.0), 4),
            "tune_setup_spent_us": round(
                p.get("tune_setup_spent_s", 0.0) * 1e6, 3
            ),
            "tune_setup_saved_us": round(
                p.get("tune_setup_saved_s", 0.0) * 1e6, 3
            ),
        }

    def render(self) -> str:
        util = ", ".join(
            f"w{i} {u * 100:.1f}%" for i, u in enumerate(self.worker_utilization)
        )
        lines = [
            f"requests: {self.n_requests} submitted, {self.admitted} admitted, "
            f"{self.rejected} rejected (backpressure)",
            f"terminal: {self.completed} completed, {self.failed} failed, "
            f"{self.retries} retries, {self.recoveries} recoveries, "
            f"{self.worker_crashes} worker crash(es)",
            f"batches:  {self.n_batches} dispatched, mean size "
            f"{self.mean_batch_size:.2f} "
            f"(occupancy {self.batch_occupancy * 100:.1f}%)",
            f"queue wait:   p50 {self.wait_p50_s * 1e6:10.3f} us   "
            f"p95 {self.wait_p95_s * 1e6:10.3f} us   "
            f"p99 {self.wait_p99_s * 1e6:10.3f} us",
            f"latency:      p50 {self.latency_p50_s * 1e6:10.3f} us   "
            f"p99 {self.latency_p99_s * 1e6:10.3f} us",
            f"throughput:   {self.throughput_rps:.1f} req/s over "
            f"{self.makespan_s * 1e3:.3f} ms (goodput {self.goodput_rps:.1f} "
            f"req/s, SLO attainment {self.slo_attainment * 100:.1f}%)",
            f"utilization:  {util}" if util else "utilization:  (no workers)",
        ]
        p = self.placement
        if p:
            grids = ", ".join(
                f"{label} x{count}"
                for label, count in sorted(p.get("grids", {}).items())
            )
            lines.append(
                f"placement:    grids [{grids}]; residency "
                f"{p.get('residency_hits', 0)}/"
                f"{p.get('residency_hits', 0) + p.get('residency_misses', 0)}"
                f" hits ({p.get('residency_hit_rate', 0.0) * 100:.1f}%), "
                f"gauge saved {p.get('gauge_saved_s', 0.0) * 1e6:.1f} us"
            )
            lines.append(
                f"tunecache:    {p.get('tunecache_hits', 0)} hit(s), "
                f"{p.get('tunecache_misses', 0)} miss(es) "
                f"({p.get('tunecache_hit_rate', 0.0) * 100:.1f}%); sweep "
                f"spent {p.get('tune_setup_spent_s', 0.0) * 1e6:.1f} us, "
                f"saved {p.get('tune_setup_saved_s', 0.0) * 1e6:.1f} us"
            )
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True)
