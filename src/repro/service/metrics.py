"""Latency/throughput accounting for a served campaign.

Everything a serving stack's dashboard shows, computed from the model
clock so the numbers are deterministic: queue-wait and end-to-end
latency percentiles (nearest-rank, so two same-seed runs agree to the
last bit), batch occupancy (how full the batching policy keeps the
multi-RHS slots), per-worker utilization, throughput and *goodput*
(completions that honoured their deadline).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .. import codec
from .batching import Batch, BatchPolicy
from .request import (
    COMPLETED,
    FAILED,
    PRIORITY_LOW,
    PRIORITY_NAMES,
    REJECTED,
    RequestRecord,
)
from .soa import RecordColumns

__all__ = ["percentile", "ServiceReport"]

#: Windows the daemon-era throughput series is bucketed into.
_N_WINDOWS = 8


def _maybe_us(seconds: float | None) -> float | None:
    """Seconds -> rounded microseconds, passing ``None`` through (a tier
    or tenant with zero completions has no percentile, not a zero one)."""
    return None if seconds is None else round(seconds * 1e6, 3)


def _fmt_us(seconds: float | None) -> str:
    """Render a latency percentile, showing ``n/a`` for ``None``."""
    return "n/a" if seconds is None else f"{seconds * 1e6:.1f} us"


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without floats
    return ordered[int(rank) - 1]


@dataclass
class ServiceReport:
    """One campaign's scorecard."""

    n_requests: int = 0
    admitted: int = 0
    rejected: int = 0
    completed: int = 0
    failed: int = 0
    #: Dispatches beyond each request's first (service-level retries
    #: after worker failures).
    retries: int = 0
    #: Worker-side self-healing relaunches observed inside batches.
    recoveries: int = 0
    #: Batch executions that died with a structured failure.
    worker_crashes: int = 0
    n_batches: int = 0
    mean_batch_size: float = 0.0
    batch_occupancy: float = 0.0
    #: Queue-wait percentiles (arrival -> first dispatch), seconds.
    wait_p50_s: float = 0.0
    wait_p95_s: float = 0.0
    wait_p99_s: float = 0.0
    #: End-to-end latency percentiles (arrival -> terminal), seconds.
    latency_p50_s: float = 0.0
    latency_p99_s: float = 0.0
    #: Model time from first arrival to last completion.
    makespan_s: float = 0.0
    throughput_rps: float = 0.0
    goodput_rps: float = 0.0
    #: Completions that met their deadline / completions with one.
    slo_attainment: float = 1.0
    worker_utilization: list[float] = field(default_factory=list)
    #: Placement scorecard (:meth:`PlacementEngine.summary`): batches per
    #: decomposition, gauge-residency hits/misses and upload seconds
    #: saved, shared-tunecache hits/misses and sweep seconds spent/saved.
    placement: dict = field(default_factory=dict)
    # ---- daemon era --------------------------------------------------- #
    #: Per-priority completion latency: ``{"high": {"completed": n,
    #: "p50_s": ..., "p99_s": ...}, ...}`` — the number preemption exists
    #: to move is HIGH's p99.
    priority_latency: dict = field(default_factory=dict)
    #: Completions per window of the campaign (len :data:`_N_WINDOWS`),
    #: as requests/second — the daemon's throughput timeline.
    throughput_windows: list[float] = field(default_factory=list)
    window_s: float = 0.0
    #: Batches that yielded at a refresh boundary to higher-priority
    #: work, and how many of those later resumed from their checkpoint.
    preemptions: int = 0
    resumed_batches: int = 0
    #: Autoscaler ledger.
    scale_ups: int = 0
    scale_downs: int = 0
    scale_events: list[dict] = field(default_factory=list)
    final_workers: int = 0
    spinup_spent_s: float = 0.0
    #: Campaign-checkpoint accounting: commits made, restores performed
    #: (a resumed run reports >= 1), and how many non-terminal requests
    #: the restore re-queued.
    checkpoints_committed: int = 0
    checkpoint_restores: int = 0
    restored_requests: int = 0
    # ---- resilience era ----------------------------------------------- #
    #: Straggler-hedging ledger: replicas launched, replicas that beat
    #: their original, losers cancelled at a refresh boundary.
    hedges_launched: int = 0
    hedges_won: int = 0
    hedges_cancelled: int = 0
    #: Brownout ledger: LOW requests shed with a retry-after, NORMAL
    #: refused at the REJECT level, completions served at a degraded
    #: precision tier.
    shed_low: int = 0
    brownout_rejected: int = 0
    degraded_served: int = 0
    #: Brownout controller summary (final/max level + transitions).
    brownout: dict = field(default_factory=dict)
    #: Circuit-breaker ledger.
    quarantines: int = 0
    reinstated: int = 0
    retired_sick: int = 0
    #: Whole-worker kills injected by the fault plan.
    workers_killed: int = 0
    #: Failure-domain scorecard (present when the service ran with a
    #: :class:`~repro.comms.cluster.Topology`): topology string, nodes
    #: lost, partitions seen/healed, domain quarantines by node,
    #: anti-affinity placements/hedges, mirror restores, and per-node
    #: time-to-isolate in ms.
    domains: dict = field(default_factory=dict)
    #: Per-tenant scorecard (present when the service ran with a
    #: :class:`~repro.service.tenancy.TenancyPolicy`): weight and fair
    #: share, request/terminal counts, quota rejects and sheds, latency
    #: percentiles (``None`` when the tenant saw zero completions), SLO
    #: attainment, and goodput share versus the configured weight share.
    tenants: dict = field(default_factory=dict)

    @property
    def residency_hit_rate(self) -> float:
        return self.placement.get("residency_hit_rate", 0.0)

    @property
    def tunecache_hit_rate(self) -> float:
        return self.placement.get("tunecache_hit_rate", 0.0)

    @property
    def setup_saved_s(self) -> float:
        """Total modeled setup time placement avoided: gauge uploads
        skipped on residency hits plus autotune sweeps skipped on
        tunecache hits."""
        return self.placement.get("gauge_saved_s", 0.0) + self.placement.get(
            "tune_setup_saved_s", 0.0
        )

    @classmethod
    def collect(
        cls,
        records: list[RequestRecord],
        batches: list[Batch],
        policy: BatchPolicy,
        *,
        worker_busy_s: list[float],
        makespan_s: float,
        placement: dict | None = None,
        daemon: dict | None = None,
    ) -> "ServiceReport":
        # One pass over the records builds the columnar (SoA) view;
        # every aggregate below is a vectorized expression over it.
        cols = RecordColumns(records)
        n_completed = cols.count(cols.completed)
        n_failed = cols.count(cols.failed)
        n_rejected = cols.count(cols.rejected)
        waits = cols.sorted_waits()
        latencies = cols.sorted_latencies()
        n_with_deadline = cols.count(cols.completed & cols.has_deadline)
        n_met = cols.count(cols.met_deadline)
        n_met_with_deadline = cols.count(
            cols.met_deadline & cols.has_deadline
        )
        horizon = makespan_s if makespan_s > 0 else 1.0
        sizes = [b.size for b in batches]

        by_priority: dict[str, dict] = {}
        for value, name in PRIORITY_NAMES.items():
            tier = cols.latencies_in_order(cols.priority == value)
            if tier:
                by_priority[name] = {
                    "completed": len(tier),
                    "p50_s": percentile(tier, 50),
                    "p99_s": percentile(tier, 99),
                }

        window_s = horizon / _N_WINDOWS
        windows = cols.window_counts(window_s, _N_WINDOWS)
        throughput_windows = (
            [round(n / window_s, 3) for n in windows] if n_completed else []
        )

        daemon = daemon or {}
        tenants = cls._tenant_scorecard(
            daemon.get("tenancy", {}), cols, horizon
        )
        return cls(
            n_requests=cols.n,
            admitted=cols.n - n_rejected,
            rejected=n_rejected,
            completed=n_completed,
            failed=n_failed,
            retries=cols.retries(),
            recoveries=sum(b.recoveries for b in batches),
            worker_crashes=sum(1 for b in batches if b.ok is False),
            n_batches=len(batches),
            mean_batch_size=(sum(sizes) / len(sizes)) if sizes else 0.0,
            batch_occupancy=(
                sum(sizes) / (len(sizes) * policy.max_batch) if sizes else 0.0
            ),
            wait_p50_s=percentile(waits, 50),
            wait_p95_s=percentile(waits, 95),
            wait_p99_s=percentile(waits, 99),
            latency_p50_s=percentile(latencies, 50),
            latency_p99_s=percentile(latencies, 99),
            makespan_s=makespan_s,
            throughput_rps=n_completed / horizon,
            goodput_rps=n_met / horizon,
            slo_attainment=(
                n_met_with_deadline / n_with_deadline
                if n_with_deadline
                else 1.0
            ),
            worker_utilization=[
                min(1.0, busy / horizon) for busy in worker_busy_s
            ],
            placement=placement or {},
            priority_latency=by_priority,
            throughput_windows=throughput_windows,
            window_s=window_s if n_completed else 0.0,
            preemptions=daemon.get("preemptions", 0),
            resumed_batches=daemon.get("resumed_batches", 0),
            scale_ups=daemon.get("scale_ups", 0),
            scale_downs=daemon.get("scale_downs", 0),
            scale_events=daemon.get("scale_events", []),
            final_workers=daemon.get("final_workers", len(worker_busy_s)),
            spinup_spent_s=daemon.get("spinup_spent_s", 0.0),
            checkpoints_committed=daemon.get("checkpoints_committed", 0),
            checkpoint_restores=daemon.get("checkpoint_restores", 0),
            restored_requests=daemon.get("restored_requests", 0),
            hedges_launched=daemon.get("hedges_launched", 0),
            hedges_won=daemon.get("hedges_won", 0),
            hedges_cancelled=daemon.get("hedges_cancelled", 0),
            shed_low=cols.count(
                cols.rejected & cols.shed & (cols.priority == PRIORITY_LOW)
            ),
            brownout_rejected=cols.count(
                cols.rejected & cols.shed & (cols.priority != PRIORITY_LOW)
            ),
            degraded_served=cols.count(cols.completed & cols.degraded),
            brownout=daemon.get("brownout", {}),
            quarantines=daemon.get("quarantines", 0),
            reinstated=daemon.get("reinstated", 0),
            retired_sick=daemon.get("retired_sick", 0),
            workers_killed=daemon.get("workers_killed", 0),
            domains=daemon.get("domains", {}),
            tenants=tenants,
        )

    @staticmethod
    def _tenant_scorecard(
        tenancy: dict, cols: RecordColumns, horizon: float
    ) -> dict:
        """Per-tenant slice of the campaign, keyed by tenant name.

        Percentiles are ``None`` — not zero — for a tenant with no
        completions: "saw no traffic" and "answered instantly" must not
        be confusable on a dashboard.  ``goodput_share`` is the tenant's
        slice of deadline-met completions across all *registered*
        tenants (falling back to the completed-count slice when no
        tenanted request carried a met deadline), which is the number
        the weighted-fair scheduler promises converges to
        ``weight_share`` under sustained backlog.
        """
        if not tenancy:
            return {}
        weights = tenancy.get("weights", {})
        counters = tenancy.get("counters", {})
        total_weight = sum(weights.values()) or 1.0
        masks = {name: cols.tenant_mask(name) for name in weights}
        good = {
            name: cols.count(cols.met_deadline & mask)
            for name, mask in masks.items()
        }
        done = {
            name: cols.count(cols.completed & mask)
            for name, mask in masks.items()
        }
        share_of = good if sum(good.values()) else done
        share_total = sum(share_of.values())
        out: dict[str, dict] = {}
        for name in sorted(weights):
            mask = masks[name]
            lat = cols.sorted_latencies(mask)
            n_with_deadline = cols.count(
                cols.completed & cols.has_deadline & mask
            )
            n_met = cols.count(
                cols.met_deadline & cols.has_deadline & mask
            )
            ctr = counters.get(name, {})
            out[name] = {
                "weight": float(weights[name]),
                "weight_share": weights[name] / total_weight,
                "requests": cols.count(mask),
                "completed": done[name],
                "failed": cols.count(cols.failed & mask),
                "rejected": cols.count(cols.rejected & mask),
                "quota_rejected": int(ctr.get("quota_rejected", 0)),
                "shed": int(ctr.get("shed", 0)),
                "p50_s": percentile(lat, 50) if lat else None,
                "p95_s": percentile(lat, 95) if lat else None,
                "p99_s": percentile(lat, 99) if lat else None,
                "slo_attainment": (
                    n_met / n_with_deadline if n_with_deadline else 1.0
                ),
                "goodput_rps": good[name] / horizon,
                "goodput_share": (
                    share_of[name] / share_total if share_total else 0.0
                ),
            }
        return out

    def to_json(self) -> dict:
        out = {
            "requests": self.n_requests,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "failed": self.failed,
            "retries": self.retries,
            "recoveries": self.recoveries,
            "worker_crashes": self.worker_crashes,
            "batches": self.n_batches,
            "mean_batch_size": round(self.mean_batch_size, 4),
            "batch_occupancy": round(self.batch_occupancy, 4),
            "wait_p50_us": round(self.wait_p50_s * 1e6, 3),
            "wait_p95_us": round(self.wait_p95_s * 1e6, 3),
            "wait_p99_us": round(self.wait_p99_s * 1e6, 3),
            "latency_p50_us": round(self.latency_p50_s * 1e6, 3),
            "latency_p99_us": round(self.latency_p99_s * 1e6, 3),
            "makespan_us": round(self.makespan_s * 1e6, 3),
            "throughput_rps": round(self.throughput_rps, 3),
            "goodput_rps": round(self.goodput_rps, 3),
            "slo_attainment": round(self.slo_attainment, 4),
            "worker_utilization": [
                round(u, 4) for u in self.worker_utilization
            ],
            "placement": self._placement_json(),
            "priority_latency": {
                name: {
                    "completed": tier["completed"],
                    "p50_us": _maybe_us(tier["p50_s"]),
                    "p99_us": _maybe_us(tier["p99_s"]),
                }
                for name, tier in sorted(self.priority_latency.items())
            },
            "throughput_windows_rps": list(self.throughput_windows),
            "window_us": round(self.window_s * 1e6, 3),
            "preemptions": self.preemptions,
            "resumed_batches": self.resumed_batches,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "scale_events": list(self.scale_events),
            "final_workers": self.final_workers,
            "spinup_spent_us": round(self.spinup_spent_s * 1e6, 3),
            "checkpoints_committed": self.checkpoints_committed,
            "checkpoint_restores": self.checkpoint_restores,
            "restored_requests": self.restored_requests,
            "hedges_launched": self.hedges_launched,
            "hedges_won": self.hedges_won,
            "hedges_cancelled": self.hedges_cancelled,
            "shed_low": self.shed_low,
            "brownout_rejected": self.brownout_rejected,
            "degraded_served": self.degraded_served,
            "brownout": dict(self.brownout),
            "quarantines": self.quarantines,
            "reinstated": self.reinstated,
            "retired_sick": self.retired_sick,
            "workers_killed": self.workers_killed,
        }
        # Only topology-enabled runs carry a scorecard, so legacy report
        # JSON stays byte-identical to what pre-domain builds emitted.
        if self.domains:
            out["domains"] = dict(self.domains)
        # Same contract for tenancy: tenancy-free reports never gain the
        # key, so their bytes match pre-tenancy builds.
        if self.tenants:
            out["tenants"] = {
                name: {
                    "weight": t["weight"],
                    "weight_share": round(t["weight_share"], 4),
                    "requests": t["requests"],
                    "completed": t["completed"],
                    "failed": t["failed"],
                    "rejected": t["rejected"],
                    "quota_rejected": t["quota_rejected"],
                    "shed": t["shed"],
                    "p50_us": _maybe_us(t["p50_s"]),
                    "p95_us": _maybe_us(t["p95_s"]),
                    "p99_us": _maybe_us(t["p99_s"]),
                    "slo_attainment": round(t["slo_attainment"], 4),
                    "goodput_rps": round(t["goodput_rps"], 3),
                    "goodput_share": round(t["goodput_share"], 4),
                }
                for name, t in sorted(self.tenants.items())
            }
        return out

    @classmethod
    def from_json(cls, data: dict) -> "ServiceReport":
        """Rebuild a report from :meth:`to_json` output.

        The round trip is a fixed point —
        ``from_json(to_json(r)).to_json() == r.to_json()`` — so reports
        survive the JSON artifacts (CI scorecards, ``BENCH_service.json``)
        without drift.  Keys the writing version predates default to
        their zero values.
        """
        p = data.get("placement", {})
        placement = (
            {
                "grids": dict(p["grids"]),
                "residency_hits": p["residency_hits"],
                "residency_misses": p["residency_misses"],
                "residency_hit_rate": p["residency_hit_rate"],
                "gauge_saved_s": p["gauge_saved_us"] / 1e6,
                "anti_affinity_placements": p.get(
                    "anti_affinity_placements", 0
                ),
                "tunecache_hits": p["tunecache_hits"],
                "tunecache_misses": p["tunecache_misses"],
                "tunecache_hit_rate": p["tunecache_hit_rate"],
                "tune_setup_spent_s": p["tune_setup_spent_us"] / 1e6,
                "tune_setup_saved_s": p["tune_setup_saved_us"] / 1e6,
            }
            if p
            else {}
        )
        return cls(
            n_requests=data["requests"],
            admitted=data["admitted"],
            rejected=data["rejected"],
            completed=data["completed"],
            failed=data["failed"],
            retries=data["retries"],
            recoveries=data["recoveries"],
            worker_crashes=data["worker_crashes"],
            n_batches=data["batches"],
            mean_batch_size=data["mean_batch_size"],
            batch_occupancy=data["batch_occupancy"],
            wait_p50_s=data["wait_p50_us"] / 1e6,
            wait_p95_s=data["wait_p95_us"] / 1e6,
            wait_p99_s=data["wait_p99_us"] / 1e6,
            latency_p50_s=data["latency_p50_us"] / 1e6,
            latency_p99_s=data["latency_p99_us"] / 1e6,
            makespan_s=data["makespan_us"] / 1e6,
            throughput_rps=data["throughput_rps"],
            goodput_rps=data["goodput_rps"],
            slo_attainment=data["slo_attainment"],
            worker_utilization=list(data["worker_utilization"]),
            placement=placement,
            priority_latency={
                name: {
                    "completed": tier["completed"],
                    "p50_s": (
                        tier["p50_us"] / 1e6
                        if tier["p50_us"] is not None
                        else None
                    ),
                    "p99_s": (
                        tier["p99_us"] / 1e6
                        if tier["p99_us"] is not None
                        else None
                    ),
                }
                for name, tier in data["priority_latency"].items()
            },
            throughput_windows=list(data["throughput_windows_rps"]),
            window_s=data["window_us"] / 1e6,
            preemptions=data.get("preemptions", 0),
            resumed_batches=data.get("resumed_batches", 0),
            scale_ups=data.get("scale_ups", 0),
            scale_downs=data.get("scale_downs", 0),
            scale_events=list(data.get("scale_events", [])),
            final_workers=data.get("final_workers", 0),
            spinup_spent_s=data.get("spinup_spent_us", 0.0) / 1e6,
            checkpoints_committed=data.get("checkpoints_committed", 0),
            checkpoint_restores=data.get("checkpoint_restores", 0),
            restored_requests=data.get("restored_requests", 0),
            hedges_launched=data.get("hedges_launched", 0),
            hedges_won=data.get("hedges_won", 0),
            hedges_cancelled=data.get("hedges_cancelled", 0),
            shed_low=data.get("shed_low", 0),
            brownout_rejected=data.get("brownout_rejected", 0),
            degraded_served=data.get("degraded_served", 0),
            brownout=dict(data.get("brownout", {})),
            quarantines=data.get("quarantines", 0),
            reinstated=data.get("reinstated", 0),
            retired_sick=data.get("retired_sick", 0),
            workers_killed=data.get("workers_killed", 0),
            domains=dict(data.get("domains", {})),
            tenants={
                name: {
                    "weight": t["weight"],
                    "weight_share": t["weight_share"],
                    "requests": t["requests"],
                    "completed": t["completed"],
                    "failed": t["failed"],
                    "rejected": t["rejected"],
                    "quota_rejected": t["quota_rejected"],
                    "shed": t["shed"],
                    "p50_s": (
                        t["p50_us"] / 1e6 if t["p50_us"] is not None else None
                    ),
                    "p95_s": (
                        t["p95_us"] / 1e6 if t["p95_us"] is not None else None
                    ),
                    "p99_s": (
                        t["p99_us"] / 1e6 if t["p99_us"] is not None else None
                    ),
                    "slo_attainment": t["slo_attainment"],
                    "goodput_rps": t["goodput_rps"],
                    "goodput_share": t["goodput_share"],
                }
                for name, t in data.get("tenants", {}).items()
            },
        )

    def _placement_json(self) -> dict:
        p = self.placement
        if not p:
            return {}
        out = {
            "grids": dict(p.get("grids", {})),
            "residency_hits": p.get("residency_hits", 0),
            "residency_misses": p.get("residency_misses", 0),
            "residency_hit_rate": round(p.get("residency_hit_rate", 0.0), 4),
            "gauge_saved_us": round(p.get("gauge_saved_s", 0.0) * 1e6, 3),
            "tunecache_hits": p.get("tunecache_hits", 0),
            "tunecache_misses": p.get("tunecache_misses", 0),
            "tunecache_hit_rate": round(p.get("tunecache_hit_rate", 0.0), 4),
            "tune_setup_spent_us": round(
                p.get("tune_setup_spent_s", 0.0) * 1e6, 3
            ),
            "tune_setup_saved_us": round(
                p.get("tune_setup_saved_s", 0.0) * 1e6, 3
            ),
        }
        # Anti-affinity only exists under a topology; omit the zero so
        # legacy placement JSON is unchanged byte for byte.
        if p.get("anti_affinity_placements"):
            out["anti_affinity_placements"] = p["anti_affinity_placements"]
        return out

    def render(self) -> str:
        util = ", ".join(
            f"w{i} {u * 100:.1f}%" for i, u in enumerate(self.worker_utilization)
        )
        lines = [
            f"requests: {self.n_requests} submitted, {self.admitted} admitted, "
            f"{self.rejected} rejected (backpressure)",
            f"terminal: {self.completed} completed, {self.failed} failed, "
            f"{self.retries} retries, {self.recoveries} recoveries, "
            f"{self.worker_crashes} worker crash(es)",
            f"batches:  {self.n_batches} dispatched, mean size "
            f"{self.mean_batch_size:.2f} "
            f"(occupancy {self.batch_occupancy * 100:.1f}%)",
            f"queue wait:   p50 {self.wait_p50_s * 1e6:10.3f} us   "
            f"p95 {self.wait_p95_s * 1e6:10.3f} us   "
            f"p99 {self.wait_p99_s * 1e6:10.3f} us",
            f"latency:      p50 {self.latency_p50_s * 1e6:10.3f} us   "
            f"p99 {self.latency_p99_s * 1e6:10.3f} us",
            f"throughput:   {self.throughput_rps:.1f} req/s over "
            f"{self.makespan_s * 1e3:.3f} ms (goodput {self.goodput_rps:.1f} "
            f"req/s, SLO attainment {self.slo_attainment * 100:.1f}%)",
            f"utilization:  {util}" if util else "utilization:  (no workers)",
        ]
        p = self.placement
        if p:
            grids = ", ".join(
                f"{label} x{count}"
                for label, count in sorted(p.get("grids", {}).items())
            )
            lines.append(
                f"placement:    grids [{grids}]; residency "
                f"{p.get('residency_hits', 0)}/"
                f"{p.get('residency_hits', 0) + p.get('residency_misses', 0)}"
                f" hits ({p.get('residency_hit_rate', 0.0) * 100:.1f}%), "
                f"gauge saved {p.get('gauge_saved_s', 0.0) * 1e6:.1f} us"
            )
            lines.append(
                f"tunecache:    {p.get('tunecache_hits', 0)} hit(s), "
                f"{p.get('tunecache_misses', 0)} miss(es) "
                f"({p.get('tunecache_hit_rate', 0.0) * 100:.1f}%); sweep "
                f"spent {p.get('tune_setup_spent_s', 0.0) * 1e6:.1f} us, "
                f"saved {p.get('tune_setup_saved_s', 0.0) * 1e6:.1f} us"
            )
        if self.priority_latency:
            tiers = "   ".join(
                f"{name} p99 {_fmt_us(tier['p99_s'])} ({tier['completed']})"
                for name, tier in sorted(self.priority_latency.items())
            )
            lines.append(f"per priority: {tiers}")
        for name, t in sorted(self.tenants.items()):
            lines.append(
                f"tenant {name}:  weight {t['weight']:g} "
                f"(share {t['weight_share'] * 100:.1f}%), "
                f"{t['completed']}/{t['requests']} completed, "
                f"{t['quota_rejected']} quota-rejected, {t['shed']} shed; "
                f"p50 {_fmt_us(t['p50_s'])}  p95 {_fmt_us(t['p95_s'])}  "
                f"p99 {_fmt_us(t['p99_s'])}; "
                f"SLO {t['slo_attainment'] * 100:.1f}%, "
                f"goodput share {t['goodput_share'] * 100:.1f}%"
            )
        if self.preemptions or self.resumed_batches:
            lines.append(
                f"preemption:   {self.preemptions} yield(s) at refresh "
                f"boundaries, {self.resumed_batches} resumed from checkpoint"
            )
        if self.scale_events:
            lines.append(
                f"autoscaler:   {self.scale_ups} scale-up(s), "
                f"{self.scale_downs} scale-down(s), final pool "
                f"{self.final_workers} worker(s), spin-up spent "
                f"{self.spinup_spent_s * 1e6:.1f} us"
            )
        if self.checkpoints_committed or self.checkpoint_restores:
            lines.append(
                f"checkpoints:  {self.checkpoints_committed} commit(s), "
                f"{self.checkpoint_restores} restore(s)"
                + (
                    f", {self.restored_requests} request(s) re-queued"
                    if self.checkpoint_restores
                    else ""
                )
            )
        if self.quarantines or self.retired_sick:
            lines.append(
                f"breaker:      {self.quarantines} quarantine(s), "
                f"{self.reinstated} reinstated, "
                f"{self.retired_sick} retired sick"
            )
        if self.hedges_launched:
            lines.append(
                f"hedging:      {self.hedges_launched} replica(s) launched, "
                f"{self.hedges_won} won, {self.hedges_cancelled} cancelled"
            )
        if self.brownout:
            lines.append(
                f"brownout:     peak {self.brownout.get('max_level', 'normal')}"
                f", {self.shed_low} LOW shed, {self.brownout_rejected} "
                f"rejected, {self.degraded_served} served degraded"
            )
        if self.workers_killed:
            lines.append(
                f"faults:       {self.workers_killed} worker(s) killed"
            )
        if self.domains:
            d = self.domains
            lines.append(
                f"domains:      topology {d.get('topology', '?')}, "
                f"{d.get('nodes_killed', 0)} node(s) lost, "
                f"{d.get('partitions', 0)} partition(s) "
                f"({d.get('partition_heals', 0)} healed)"
            )
            by_domain = d.get("quarantines_by_domain", {})
            quarantined = ", ".join(
                f"node{n} x{c}" for n, c in sorted(by_domain.items())
            )
            lines.append(
                f"              {d.get('domain_quarantines', 0)} domain "
                f"quarantine(s)"
                + (f" [{quarantined}]" if quarantined else "")
                + f", {d.get('domain_reinstated', 0)} reinstated, "
                f"{d.get('domain_retired', 0)} retired"
            )
            lines.append(
                f"              anti-affinity: "
                f"{d.get('anti_affinity_placements', 0)} placement(s), "
                f"{d.get('anti_affinity_hedges', 0)} hedge(s); "
                f"checkpoint mirror restores: {d.get('mirror_restores', 0)}"
            )
        return "\n".join(lines)

    def render_json(self) -> str:
        return codec.pretty_json(self.to_json())

    # ------------------------------------------------------------------ #
    # Packed telemetry records
    # ------------------------------------------------------------------ #

    def to_record_bytes(self) -> bytes:
        """The report as one packed telemetry record (:mod:`repro.codec`).

        The durable/wire form for scorecard shipping: CRC32-framed,
        several times smaller and faster than the JSON artifact, which
        remains the human/debug format (:meth:`render_json`).
        """
        return codec.encode_record(self.to_json(), kind=codec.KIND_TELEMETRY)

    @classmethod
    def from_record_bytes(cls, data: bytes) -> "ServiceReport":
        """Rebuild a report from :meth:`to_record_bytes` output **or**
        legacy JSON bytes (the format is auto-detected; damage in a
        packed buffer still raises the structured codec errors)."""
        return cls.from_json(
            codec.decode_auto(data, expect_kind=codec.KIND_TELEMETRY)
        )
