"""Batching policy: when compatible requests become one multi-RHS batch.

One device setup (gauge/clover upload, ghost exchange, autotune) serves
every right-hand side in a batch — the amortization ``invert_multi``
provides and ``bench_multi_rhs`` measures.  Batching therefore trades a
bounded queueing delay for setup amortization:

* a batch dispatches as soon as ``max_batch`` compatible requests are
  queued (the setup amortizes fully), or
* when its oldest member has waited ``max_wait_s`` of model time (the
  latency bound — a lone request is never parked indefinitely), or
* immediately, when its head request's priority is at or above
  ``expedite_priority`` (the interactive tier pays setup for latency).

Selection walks the queue in scheduling order, so a high-priority
request's group is always considered before lower tiers: a full
low-priority batch can never capture the worker a waiting high-priority
request is entitled to (no priority inversion through batching).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import fastpath
from .request import PRIORITY_HIGH, RequestRecord

__all__ = ["BatchPolicy", "Batch", "select_batch"]

#: Window-expiry slack: a timeout scheduled at ``arrival + max_wait``
#: re-enters the scheduler at a clock where ``(arrival + max_wait) -
#: arrival`` can round *below* ``max_wait``, which would strand the
#: request until some unrelated event revisits the queue (or forever).
#: One nanosecond of model time is far below any modeled duration and
#: far above double rounding error at any reachable model time.
_WAIT_SLACK_S = 1e-9


@dataclass(frozen=True)
class BatchPolicy:
    """The two-knob batching contract (size cap + wait window)."""

    #: Maximum right-hand sides per batch (1 = batching disabled).
    max_batch: int = 8
    #: Longest model time a batch head may wait before dispatching
    #: partially filled.
    max_wait_s: float = 500e-6
    #: Priorities at or above this (numerically <=) skip the wait window
    #: entirely: dispatched at the next scheduling opportunity, batched
    #: only with whatever compatible work is already queued.
    expedite_priority: int = PRIORITY_HIGH

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")


@dataclass
class Batch:
    """One dispatched multi-RHS batch and its lifecycle."""

    batch_id: int
    records: list[RequestRecord]
    key: tuple
    formed_s: float
    worker_id: int = -1
    #: Process grid the batch ran on (``None`` = time-only slicing).
    grid: tuple[int, int] | None = None
    #: The placement layer routed this batch to a gauge-resident worker.
    residency_hit: bool = False
    #: Refresh-point boundary at which this batch will yield to
    #: higher-priority work (``None`` = no preemption scheduled).  A
    #: batch with a pending yield is "already checkpointing": a second
    #: HIGH arrival must not re-preempt it.
    preempt_at_s: float | None = None
    #: The batch yielded at a refresh boundary; its requests resumed in a
    #: later batch instead of restarting.
    preempted: bool = False
    #: Batch id this batch resumes (checkpoint handoff), or ``None``.
    resumed_from: int | None = None
    #: Straggler-hedging linkage: ``hedge_of`` marks a replica (the
    #: original's batch id); ``hedge_batch_id`` marks an original with a
    #: launched replica.  First completion wins; the loser carries
    #: ``hedge_cancelled`` after it is abandoned at a refresh boundary.
    hedge_of: int | None = None
    hedge_batch_id: int | None = None
    hedge_cancelled: bool = False
    #: Precision tier the batch actually ran at under brownout
    #: DEGRADE_PRECISION (``None`` = the requests' own mode).
    degraded_mode: str | None = None
    completed_s: float | None = None
    duration_s: float | None = None
    ok: bool | None = None
    #: Worker-side recovery accounting (self-healing batches).
    recoveries: int = 0
    detail: str = ""
    #: Lifecycle trace mirroring the per-request traces.
    trace: list[tuple[float, str, str]] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.records)

    def occupancy(self, policy: BatchPolicy) -> float:
        return self.size / policy.max_batch


def select_batch(
    ordered: list[RequestRecord], now: float, policy: BatchPolicy
) -> list[RequestRecord] | None:
    """The next dispatchable batch, or ``None`` to keep waiting.

    ``ordered`` is the queue in scheduling order (priority, deadline,
    arrival).  Records are grouped by compatibility key; the first group
    (in scheduling order) that is *ready* — full, window-expired, or
    expedited — is returned, truncated to ``max_batch``.  Groups that
    are not ready are skipped, so a ready low-priority batch may use an
    idle worker while a fresher high-priority singleton still rides its
    window — but a ready high-priority group always wins the worker.

    Groups are additionally partitioned by tenant: a batch is one
    tenant's work, never a blend, so the weighted-fair accounting
    upstream charges exactly one clock per dispatch.  Untenanted
    records all share the ``None`` partition — grouping (and therefore
    scheduling) is unchanged for tenancy-free campaigns.
    """
    if fastpath.enabled():
        return _select_batch_fast(ordered, now, policy)
    groups: dict[tuple, list[RequestRecord]] = {}
    order: list[tuple] = []
    for rec in ordered:
        key = (rec.request.tenant, rec.request.compat_key)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(rec)
    for key in order:
        group = groups[key][: policy.max_batch]
        head = group[0]
        ready = (
            len(group) >= policy.max_batch
            or now - head.request.arrival_s >= policy.max_wait_s - _WAIT_SLACK_S
            or head.request.priority <= policy.expedite_priority
        )
        if ready:
            return group
    return None


def _select_batch_fast(
    ordered: list[RequestRecord], now: float, policy: BatchPolicy
) -> list[RequestRecord] | None:
    """Early-exit formulation of the same selection rule.

    Identical result to the legacy full scan (the fastpath equivalence
    suite pins this), but it avoids materializing the whole group map
    whenever the head group decides the outcome — the common case under
    a saturated queue, where the head group is window-expired (or
    expedited, or fills to ``max_batch``) and the legacy scan was an
    O(backlog) dict build per scheduler pass.
    """
    if not ordered:
        return None
    max_batch = policy.max_batch
    window = policy.max_wait_s - _WAIT_SLACK_S
    head = ordered[0].request
    head_key = (head.tenant, head.compat_key)
    if now - head.arrival_s >= window or head.priority <= policy.expedite_priority:
        # The head group is ready regardless of size; no later-seen group
        # can outrank it.  Collect its members and stop at a full batch.
        group = []
        for rec in ordered:
            req = rec.request
            if (req.tenant, req.compat_key) == head_key:
                group.append(rec)
                if len(group) == max_batch:
                    break
        return group
    # The head group is ready only if it fills.  Scan in order, capping
    # every group at max_batch; the moment the head group fills it wins
    # outright (it is checked first).  Readiness of later groups is
    # evaluated after the scan, exactly like the legacy pass.
    groups: dict[tuple, list[RequestRecord]] = {head_key: []}
    order = [head_key]
    for rec in ordered:
        req = rec.request
        key = (req.tenant, req.compat_key)
        group = groups.get(key)
        if group is None:
            group = groups[key] = []
            order.append(key)
        if len(group) < max_batch:
            group.append(rec)
            if key == head_key and len(group) == max_batch:
                return group
    for key in order:
        group = groups[key]
        first = group[0].request
        if (
            len(group) >= max_batch
            or now - first.arrival_s >= window
            or first.priority <= policy.expedite_priority
        ):
            return group
    return None
