"""Bounded admission queue with priority/deadline-aware ordering.

The queue is the service's backpressure point: admission beyond
``capacity`` is refused (the caller gets a retry-after hint computed
from the live backlog) rather than letting latency grow without bound —
the same load-shedding contract a serving stack's admission controller
provides.  Ordering is (priority, deadline, arrival): urgent tiers
first, earliest SLO first within a tier, FIFO within equal SLOs, so the
schedule is a pure function of the submitted workload.
"""

from __future__ import annotations

import math

from .request import RequestRecord

__all__ = ["AdmissionQueue"]


def _order_key(rec: RequestRecord) -> tuple:
    req = rec.request
    deadline = req.deadline_s if req.deadline_s is not None else math.inf
    return (req.priority, deadline, req.arrival_s, req.req_id)


class AdmissionQueue:
    """Bounded, priority/deadline-ordered request queue."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._items: list[RequestRecord] = []

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    def offer(self, rec: RequestRecord, *, force: bool = False) -> bool:
        """Admit ``rec`` unless the queue is full.

        ``force`` bypasses the capacity check — used when the service
        *re*-queues a request that a worker failure handed back: that
        request was already admitted once, and bouncing it would break
        the no-lost-requests invariant.
        """
        if self.full and not force:
            return False
        self._items.append(rec)
        return True

    def ordered(self) -> list[RequestRecord]:
        """The scheduling order: priority, then deadline, then arrival."""
        return sorted(self._items, key=_order_key)

    def remove(self, recs: list[RequestRecord]) -> None:
        """Withdraw dispatched records (identity comparison)."""
        drop = {id(r) for r in recs}
        self._items = [r for r in self._items if id(r) not in drop]

    def oldest_arrival(self) -> float | None:
        if not self._items:
            return None
        return min(r.request.arrival_s for r in self._items)
