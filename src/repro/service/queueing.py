"""Bounded admission queue with priority/deadline-aware ordering.

The queue is the service's backpressure point: admission beyond
``capacity`` is refused (the caller gets a retry-after hint computed
from the live backlog) rather than letting latency grow without bound —
the same load-shedding contract a serving stack's admission controller
provides.  Ordering is (priority, deadline, arrival): urgent tiers
first, earliest SLO first within a tier, FIFO within equal SLOs, so the
schedule is a pure function of the submitted workload.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right

from .. import fastpath
from .request import RequestRecord

__all__ = ["AdmissionQueue", "DrainEstimator", "partition_by_tenant"]


class DrainEstimator:
    """EWMA of observed batch service times, for retry-after hints.

    A rejected request is told when to come back; the quality of that
    hint is the quality of the service-time estimate behind it.  A
    campaign's batch durations are not stationary — residency hits,
    tunecache warm-up and grid routing all make *later* batches cheaper
    than earlier ones — so a global mean (the old estimator) lags the
    live drain rate and over-quotes the backlog.  An exponentially
    weighted moving average tracks the recent regime instead: with
    smoothing factor ``alpha``, a sample ``k`` batches old carries weight
    ``alpha * (1 - alpha)**k``, so the estimate converges to the current
    per-batch cost within a few observations of a regime change.
    """

    def __init__(self, *, alpha: float = 0.3, initial_s: float = 2e-3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if initial_s <= 0:
            raise ValueError("initial_s must be > 0")
        self.alpha = alpha
        self.initial_s = initial_s
        self.samples = 0
        self._ewma: float | None = None

    def observe(self, duration_s: float) -> None:
        """Fold one measured batch duration into the estimate."""
        if duration_s < 0:
            raise ValueError("duration_s must be >= 0")
        self.samples += 1
        if self._ewma is None:
            self._ewma = duration_s
        else:
            self._ewma = self.alpha * duration_s + (1 - self.alpha) * self._ewma

    @property
    def batch_s(self) -> float:
        """Current per-batch service-time estimate (the configured hint
        until the first batch has been measured)."""
        return self._ewma if self._ewma is not None else self.initial_s

    def backlog_drain_s(
        self, backlog: int, *, max_batch: int, n_workers: int
    ) -> float:
        """Estimated model time to drain the current backlog across the
        pool — the *pressure* signal the brownout controller levels on
        (and the quantity behind retry-after hints)."""
        if max_batch < 1 or n_workers < 1:
            raise ValueError("max_batch and n_workers must be >= 1")
        backlog_batches = -(-backlog // max_batch)
        return self.batch_s * backlog_batches / n_workers

    def retry_after_s(
        self, backlog: int, *, max_batch: int, n_workers: int
    ) -> float:
        """How long a rejected caller should wait before resubmitting:
        the backlog (in batches, plus the one slot the caller needs)
        drained at the estimated rate across the worker pool."""
        if max_batch < 1 or n_workers < 1:
            raise ValueError("max_batch and n_workers must be >= 1")
        backlog_batches = -(-max(backlog, 1) // max_batch)
        return self.batch_s * (backlog_batches + 1) / n_workers

    # ------------------------------------------------------------------ #
    # Campaign-checkpoint round trip (the estimate survives a scheduler
    # crash — a resumed daemon should not re-learn the drain rate from
    # the configured hint).
    # ------------------------------------------------------------------ #

    def to_json(self) -> dict:
        return {
            "alpha": self.alpha,
            "initial_s": self.initial_s,
            "samples": self.samples,
            "ewma": self._ewma,
        }

    @classmethod
    def from_json(cls, data: dict) -> "DrainEstimator":
        est = cls(alpha=float(data["alpha"]), initial_s=float(data["initial_s"]))
        est.samples = int(data["samples"])
        est._ewma = data["ewma"]
        return est


def _order_key(rec: RequestRecord) -> tuple:
    req = rec.request
    deadline = req.deadline_s if req.deadline_s is not None else math.inf
    return (req.priority, deadline, req.arrival_s, req.req_id)


def partition_by_tenant(
    ordered: list[RequestRecord], registry
) -> dict[str | None, list[RequestRecord]]:
    """Split a scheduling-ordered record list into per-tenant sublists.

    Each sublist preserves the global scheduling order, so per-tenant
    batch selection sees exactly the view it would have seen had only
    that tenant's traffic been queued.  Records whose tenant is absent
    from ``registry`` (including untenanted ``None`` traffic) share the
    ``None`` partition — they bypass fairness accounting and fill idle
    capacity only when no registered tenant holds ready work in the head
    priority tier.
    """
    parts: dict[str | None, list[RequestRecord]] = {}
    for rec in ordered:
        tenant = rec.request.tenant
        key = tenant if tenant in registry else None
        parts.setdefault(key, []).append(rec)
    return parts


class AdmissionQueue:
    """Bounded, priority/deadline-ordered request queue.

    The scheduling order is maintained *incrementally* (SoA-style
    parallel key/record lists kept sorted by binary-insertion) instead
    of re-sorting the whole backlog on every :meth:`ordered` call: the
    scheduler asks for the order at every dispatch opportunity, and
    under a deep backlog the repeated full sorts — each one recomputing
    every record's key tuple through two dataclass hops — were a top
    profile entry.  Keys are computed exactly once per admission (they
    are immutable for a queued record), so ``ordered()`` is a plain
    list copy.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._items: list[RequestRecord] = []
        # Live membership by object identity.  ``_items`` may lag behind
        # it: removal tombstones entries (``_dead``) and compacts the
        # insertion-order list lazily, so a dispatch costs O(batch log n)
        # instead of an O(n) rebuild.  ``_dead`` maps id -> record (the
        # retained reference keeps the id from being recycled).
        self._ids: set[int] = set()
        self._dead: dict[int, RequestRecord] = {}
        # Parallel arrays, kept sorted by key (struct-of-arrays so the
        # bisection compares bare tuples, never record objects).
        self._sorted_keys: list[tuple] = []
        self._sorted_recs: list[RequestRecord] = []

    def __len__(self) -> int:
        return len(self._ids)

    @property
    def full(self) -> bool:
        return len(self._ids) >= self.capacity

    def _compact(self) -> None:
        """Flush tombstoned entries out of the insertion-order list."""
        if self._dead:
            self._items = [r for r in self._items if id(r) not in self._dead]
            self._dead.clear()

    def offer(self, rec: RequestRecord, *, force: bool = False) -> bool:
        """Admit ``rec`` unless the queue is full.

        ``force`` bypasses the capacity check — used when the service
        *re*-queues a request that a worker failure handed back: that
        request was already admitted once, and bouncing it would break
        the no-lost-requests invariant.
        """
        if self.full and not force:
            return False
        if id(rec) in self._dead:
            # Re-queue of a record whose earlier tombstoned copy is
            # still physically present — flush it first so the list
            # never holds the same record twice.
            self._compact()
        fresh = len(self._sorted_recs) == len(self._ids)
        self._items.append(rec)
        self._ids.add(id(rec))
        if fastpath.enabled() and fresh:
            key = _order_key(rec)
            # bisect_right keeps equal keys in insertion order, matching
            # the stable full sort this replaces (keys end in req_id, so
            # true ties cannot occur anyway).
            i = bisect_right(self._sorted_keys, key)
            self._sorted_keys.insert(i, key)
            self._sorted_recs.insert(i, rec)
        return True

    def ordered(self) -> list[RequestRecord]:
        """The scheduling order: priority, then deadline, then arrival."""
        if fastpath.enabled():
            if len(self._sorted_recs) != len(self._ids):
                # The sorted view went stale across a fastpath toggle;
                # rebuild it once and resume incremental maintenance.
                self._compact()
                pairs = sorted(
                    ((_order_key(r), r) for r in self._items),
                    key=lambda kr: kr[0],
                )
                self._sorted_keys = [k for k, _ in pairs]
                self._sorted_recs = [r for _, r in pairs]
            return list(self._sorted_recs)
        self._compact()
        return sorted(self._items, key=_order_key)

    def remove(self, recs: list[RequestRecord]) -> None:
        """Withdraw dispatched records (identity comparison)."""
        for rec in recs:
            rid = id(rec)
            if rid not in self._ids:
                continue
            self._ids.discard(rid)
            self._dead[rid] = rec
            # Locate the record in the sorted view by its (immutable,
            # near-unique) key, then by identity among key-equals.
            key = _order_key(rec)
            i = bisect_left(self._sorted_keys, key)
            n = len(self._sorted_keys)
            while i < n and self._sorted_keys[i] == key:
                if self._sorted_recs[i] is rec:
                    del self._sorted_keys[i]
                    del self._sorted_recs[i]
                    break
                i += 1
        if 2 * len(self._dead) >= len(self._items):
            self._compact()

    def oldest_arrival(self) -> float | None:
        self._compact()
        if not self._items:
            return None
        return min(r.request.arrival_s for r in self._items)

    def snapshot(self) -> list[RequestRecord]:
        """The queue's contents in insertion order (for campaign
        checkpoints — ordering is recomputed from the records, so the
        insertion order is all a restore needs)."""
        self._compact()
        return list(self._items)
