"""Solve requests and their lifecycle records.

A :class:`SolveRequest` is the service's unit of work: one call to the
solver, as the paper's analysis campaigns issue by the tens of thousands
per gauge configuration.  The immutable request carries everything the
scheduler needs to decide *when* and *with whom* to run it; the mutable
:class:`RequestRecord` carries everything observability needs to explain
*what happened* — admission, batching, dispatch, retries, completion or
a :class:`StructuredFailure` — stamped in model time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "PRIORITY_HIGH",
    "PRIORITY_NORMAL",
    "PRIORITY_LOW",
    "SolveRequest",
    "StructuredFailure",
    "RequestRecord",
]

PRIORITY_NAMES = {0: "high", 1: "normal", 2: "low"}

#: Priority classes, lower value = more urgent.  HIGH is the interactive
#: tier (expedited past the batching window), NORMAL the campaign bulk,
#: LOW the backfill tier.
PRIORITY_HIGH = 0
PRIORITY_NORMAL = 1
PRIORITY_LOW = 2

#: Request lifecycle states.  QUEUED and RUNNING are transient; every
#: admitted request must end in COMPLETED or FAILED (the service's
#: no-lost-requests invariant), and REJECTED requests never enter the
#: queue at all.
QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"
REJECTED = "rejected"

TERMINAL_STATES = (COMPLETED, FAILED, REJECTED)


@dataclass(frozen=True)
class SolveRequest:
    """One solver call submitted to the service."""

    req_id: int
    #: Gauge configuration identity: workers derive the (weak-field)
    #: configuration deterministically from this id, and only requests
    #: on the same configuration may share a batch.
    config_id: int = 0
    dims: tuple[int, int, int, int] = (8, 8, 8, 32)
    #: Precision recipe (Section VII-A mode vocabulary).
    mode: str = "single-half"
    solver: str = "bicgstab"
    mass: float = 0.2
    #: Seeds the right-hand side (functional mode).
    source_seed: int = 0
    priority: int = PRIORITY_NORMAL
    #: Model time of submission.
    arrival_s: float = 0.0
    #: Absolute model-time SLO: completion after this still counts as
    #: throughput but not as *goodput*.  ``None`` = no deadline.
    deadline_s: float | None = None
    #: Owning tenant (multi-tenant campaigns); ``None`` = untenanted
    #: traffic, which bypasses quota and fairness accounting entirely.
    tenant: str | None = None

    def __post_init__(self) -> None:
        if len(self.dims) != 4:
            raise ValueError("dims must be (X, Y, Z, T)")
        if self.priority not in (PRIORITY_HIGH, PRIORITY_NORMAL, PRIORITY_LOW):
            raise ValueError(f"unknown priority {self.priority}")
        if self.arrival_s < 0:
            raise ValueError("arrival_s must be >= 0")
        if self.deadline_s is not None and self.deadline_s < self.arrival_s:
            raise ValueError("deadline_s must not precede arrival_s")
        # The batching key is read for every queued record on every
        # scheduler pass; the request is frozen, so compute it once
        # (hence the object.__setattr__).
        object.__setattr__(
            self,
            "_compat_key",
            (self.config_id, self.dims, self.mode, self.solver, self.mass),
        )

    @property
    def compat_key(self) -> tuple:
        """Requests with equal keys may share one multi-RHS batch: one
        device setup (gauge upload, ghost exchange, operators, autotune)
        serves them all, so everything that shapes the setup is in the
        key."""
        return self._compat_key

    # ------------------------------------------------------------------ #
    # Checkpoint serialization (campaign-level self-healing)
    # ------------------------------------------------------------------ #

    def to_json(self) -> dict:
        out = {
            "req_id": self.req_id,
            "config_id": self.config_id,
            "dims": list(self.dims),
            "mode": self.mode,
            "solver": self.solver,
            "mass": self.mass,
            "source_seed": self.source_seed,
            "priority": self.priority,
            "arrival_s": self.arrival_s,
            "deadline_s": self.deadline_s,
        }
        # Only tenanted requests carry the key, so untenanted checkpoint
        # bytes match what pre-tenancy builds committed.
        if self.tenant is not None:
            out["tenant"] = self.tenant
        return out

    @classmethod
    def from_json(cls, data: dict) -> "SolveRequest":
        return cls(
            req_id=int(data["req_id"]),
            config_id=int(data["config_id"]),
            dims=tuple(data["dims"]),
            mode=data["mode"],
            solver=data["solver"],
            mass=float(data["mass"]),
            source_seed=int(data["source_seed"]),
            priority=int(data["priority"]),
            arrival_s=float(data["arrival_s"]),
            deadline_s=(
                float(data["deadline_s"]) if data["deadline_s"] is not None else None
            ),
            tenant=data.get("tenant"),
        )


@dataclass(frozen=True)
class StructuredFailure:
    """Why a request terminally failed — never a bare exception string.

    ``kind`` is ``'worker_crash'`` (a rank of the worker's cluster died
    and the retry budget ran out), ``'solver_breakdown'`` (the
    escalation ladder was exhausted), or ``'execution_error'`` (anything
    else the worker surfaced).  ``attempts`` counts dispatches consumed,
    so the report shows the service did not give up early.
    """

    kind: str
    detail: str = ""
    failed_rank: int = -1
    model_time: float = 0.0
    attempts: int = 0

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "detail": self.detail,
            "failed_rank": self.failed_rank,
            "model_time": self.model_time,
            "attempts": self.attempts,
        }

    @classmethod
    def from_json(cls, data: dict) -> "StructuredFailure":
        return cls(
            kind=data["kind"],
            detail=data["detail"],
            failed_rank=int(data["failed_rank"]),
            model_time=float(data["model_time"]),
            attempts=int(data["attempts"]),
        )


@dataclass
class RequestRecord:
    """The mutable lifecycle of one request inside the service."""

    request: SolveRequest
    state: str = QUEUED
    admitted_s: float | None = None
    #: First dispatch (queue wait = first_dispatch - arrival).
    dispatched_s: float | None = None
    completed_s: float | None = None
    attempts: int = 0
    batch_ids: list[int] = field(default_factory=list)
    failure: StructuredFailure | None = None
    #: Backpressure hint stamped on rejection: resubmit after this many
    #: model seconds and admission is expected to succeed.
    retry_after_s: float | None = None
    #: Process grid the completing dispatch ran on (``None`` = time-only
    #: slicing), stamped by the placement layer at dispatch.
    grid: tuple[int, int] | None = None
    #: Solver outcome of the completing attempt.
    iterations: int = 0
    converged: bool = False
    residual_norm: float = float("nan")
    recoveries: int = 0
    #: Times this request's running batch was preempted at a refresh
    #: boundary by higher-priority work (the solve resumed, not restarted).
    preemptions: int = 0
    #: Served at a downgraded precision tier under brownout — the answer
    #: arrived, but "served degraded" is a different promise than
    #: "served" and the report must be able to tell them apart.
    degraded: bool = False
    #: Rejected by brownout load-shedding (as opposed to a full queue):
    #: the service *chose* to shed this request while capacity remained
    #: for more urgent tiers.
    shed: bool = False
    #: Lifecycle trace: (model time, event, detail), in decision order.
    trace: list[tuple[float, str, str]] = field(default_factory=list)

    def note(self, time_s: float, event: str, detail: str = "") -> None:
        self.trace.append((time_s, event, detail))

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def wait_s(self) -> float | None:
        """Queue wait: arrival to first dispatch."""
        if self.dispatched_s is None:
            return None
        return self.dispatched_s - self.request.arrival_s

    @property
    def latency_s(self) -> float | None:
        """End-to-end: arrival to terminal completion."""
        if self.completed_s is None:
            return None
        return self.completed_s - self.request.arrival_s

    @property
    def met_deadline(self) -> bool:
        """Whether the completion honoured the request's SLO (requests
        without a deadline trivially do)."""
        if self.state != COMPLETED:
            return False
        if self.request.deadline_s is None:
            return True
        return self.completed_s <= self.request.deadline_s

    def render_trace(self) -> str:
        return "\n".join(
            f"{t * 1e6:12.3f}us  {event:<12} {detail}"
            for t, event, detail in self.trace
        )

    # ------------------------------------------------------------------ #
    # Checkpoint serialization (campaign-level self-healing)
    # ------------------------------------------------------------------ #

    def to_json(self) -> dict:
        return {
            "request": self.request.to_json(),
            "state": self.state,
            "admitted_s": self.admitted_s,
            "dispatched_s": self.dispatched_s,
            "completed_s": self.completed_s,
            "attempts": self.attempts,
            "batch_ids": list(self.batch_ids),
            "failure": self.failure.to_json() if self.failure else None,
            "retry_after_s": self.retry_after_s,
            "grid": list(self.grid) if self.grid is not None else None,
            "iterations": self.iterations,
            "converged": self.converged,
            "residual_norm": self.residual_norm,
            "recoveries": self.recoveries,
            "preemptions": self.preemptions,
            "degraded": self.degraded,
            "shed": self.shed,
            "trace": [[t, event, detail] for t, event, detail in self.trace],
        }

    @classmethod
    def from_json(cls, data: dict) -> "RequestRecord":
        return cls(
            request=SolveRequest.from_json(data["request"]),
            state=data["state"],
            admitted_s=data["admitted_s"],
            dispatched_s=data["dispatched_s"],
            completed_s=data["completed_s"],
            attempts=int(data["attempts"]),
            batch_ids=[int(b) for b in data["batch_ids"]],
            failure=(
                StructuredFailure.from_json(data["failure"])
                if data["failure"]
                else None
            ),
            retry_after_s=data["retry_after_s"],
            grid=tuple(data["grid"]) if data["grid"] is not None else None,
            iterations=int(data["iterations"]),
            converged=bool(data["converged"]),
            residual_norm=float(data["residual_norm"]),
            recoveries=int(data["recoveries"]),
            preemptions=int(data.get("preemptions", 0)),
            degraded=bool(data.get("degraded", False)),
            shed=bool(data.get("shed", False)),
            trace=[(t, event, detail) for t, event, detail in data["trace"]],
        )
