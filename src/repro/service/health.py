"""Failure-domain resilience: worker health, hedging, graceful brownout.

"Scaling Lattice QCD beyond 100 GPUs" (arXiv:1109.2935) is the scale the
roadmap points at, and at that scale workers are not interchangeable and
permanently healthy: nodes flap, links degrade, one slow GPU drags a
whole allocation.  PR-2/3 resilience lives *inside* a solve and PR-6
self-healing protects the *scheduler*; this module protects the service
from its own pool and from sustained overload.  Three mechanisms, all
deterministic functions of the schedule:

* **Circuit breaker** — a :class:`WorkerHealth` tracker per worker (EWMA
  failure rate, crash/timeout counters, completion-latency vs the
  drain-model estimate) feeds a breaker that *quarantines* flaky
  workers: drain (the worker finishes its running batch — failures are
  observed at completion, so the drain is free), cooldown, then one
  seeded probe batch; a clean probe reinstates the worker with a reset
  ledger, a failed probe re-quarantines until ``max_strikes`` retires it
  for good.  Quarantine evicts the worker's warm gauge residency — a
  sick device's warmth must not keep attracting traffic through the
  routing tables.
* **Straggler hedging** — when a running batch's elapsed time exceeds a
  model-relative threshold (:class:`HedgePolicy`), a replica launches on
  an idle healthy worker.  First completion wins; the loser is cancelled
  at its next refresh-point boundary (the same boundaries preemption
  yields at — the earliest instant the worker can abandon the solve with
  a consistent device state).
* **Graceful brownout** — a :class:`BrownoutController` steps through
  explicit load levels (NORMAL → SHED_LOW → DEGRADE_PRECISION → REJECT)
  driven by backlog/drain-estimate pressure: shed LOW requests with an
  honest retry-after, then serve batches at a cheaper precision tier
  ("served degraded", recorded per request), and only at the top level
  refuse NORMAL traffic — HIGH is admitted until capacity itself is
  gone.  Levels are checkpointed with the campaign: a resumed scheduler
  facing the same backlog must not restart at NORMAL and re-discover the
  overload one shed decision at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "HEALTHY",
    "QUARANTINED",
    "PROBING",
    "RETIRED_SICK",
    "HealthPolicy",
    "WorkerHealth",
    "HealthBoard",
    "DomainPolicy",
    "DomainHealth",
    "DomainBoard",
    "HedgePolicy",
    "BROWNOUT_NORMAL",
    "BROWNOUT_SHED_LOW",
    "BROWNOUT_DEGRADE",
    "BROWNOUT_REJECT",
    "BROWNOUT_NAMES",
    "DEGRADE_MODE",
    "BrownoutPolicy",
    "BrownoutController",
]

# Circuit-breaker states.  HEALTHY serves traffic; QUARANTINED is drained
# and cooling down; PROBING runs exactly one seeded probe batch; a worker
# that fails ``max_strikes`` probes is RETIRED_SICK — permanently out.
HEALTHY = "healthy"
QUARANTINED = "quarantined"
PROBING = "probing"
RETIRED_SICK = "retired_sick"

# Brownout load levels, in escalation order.  Each level implies the
# measures of every level below it.
BROWNOUT_NORMAL = 0
BROWNOUT_SHED_LOW = 1
BROWNOUT_DEGRADE = 2
BROWNOUT_REJECT = 3

BROWNOUT_NAMES = {
    BROWNOUT_NORMAL: "normal",
    BROWNOUT_SHED_LOW: "shed_low",
    BROWNOUT_DEGRADE: "degrade_precision",
    BROWNOUT_REJECT: "reject",
}

#: One-step precision downgrade under DEGRADE_PRECISION (Section VII-A
#: mode vocabulary): outer precision is the answer's quality contract,
#: so degradation pushes the *inner* solver toward half — the cheapest
#: tier that still converges in the paper's mixed-precision scheme.
#: ``single-half`` is the floor (absent key = already cheapest).
DEGRADE_MODE = {
    "double": "double-half",
    "double-half": "single-half",
    "single": "single-half",
}


@dataclass(frozen=True)
class HealthPolicy:
    """When a worker's ledger trips the circuit breaker."""

    enabled: bool = False
    #: EWMA smoothing of the per-worker failure indicator (1 = failed or
    #: pathologically slow batch, 0 = clean completion).
    alpha: float = 0.5
    #: Failure-rate estimate at or above which the breaker opens.
    trip_rate: float = 0.5
    #: Observations required before the breaker may open (a single
    #: planned chaos crash must not quarantine a healthy worker).
    min_samples: int = 2
    #: A completion slower than ``slow_ratio`` times the drain-model
    #: estimate counts as a (soft) failure sample — the straggler signal.
    slow_ratio: float = 3.0
    #: Model time a quarantined worker cools down before its probe.
    cooldown_s: float = 2e-3
    #: Quarantine entries before a worker is retired for good.
    max_strikes: int = 2

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if not 0.0 < self.trip_rate <= 1.0:
            raise ValueError("trip_rate must be in (0, 1]")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if self.slow_ratio <= 1.0:
            raise ValueError("slow_ratio must be > 1")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")
        if self.max_strikes < 1:
            raise ValueError("max_strikes must be >= 1")


@dataclass
class WorkerHealth:
    """One worker's health ledger (mutable, checkpointable)."""

    worker_id: int
    state: str = HEALTHY
    #: EWMA of the failure indicator (``None`` before any observation).
    ewma_failure: float | None = None
    samples: int = 0
    completions: int = 0
    crashes: int = 0
    timeouts: int = 0
    slow_batches: int = 0
    #: Quarantine entries so far (the breaker's strike count).
    strikes: int = 0
    #: Model time the current cooldown ends (meaningful in QUARANTINED).
    cooldown_until_s: float = 0.0

    @property
    def failure_rate(self) -> float:
        return self.ewma_failure if self.ewma_failure is not None else 0.0

    def _fold(self, indicator: float, alpha: float) -> None:
        self.samples += 1
        if self.ewma_failure is None:
            self.ewma_failure = indicator
        else:
            self.ewma_failure = (
                alpha * indicator + (1 - alpha) * self.ewma_failure
            )

    def to_json(self) -> dict:
        return {
            "worker_id": self.worker_id,
            "state": self.state,
            "ewma_failure": self.ewma_failure,
            "samples": self.samples,
            "completions": self.completions,
            "crashes": self.crashes,
            "timeouts": self.timeouts,
            "slow_batches": self.slow_batches,
            "strikes": self.strikes,
            "cooldown_until_s": self.cooldown_until_s,
        }

    @classmethod
    def from_json(cls, data: dict) -> "WorkerHealth":
        return cls(
            worker_id=int(data["worker_id"]),
            state=data["state"],
            ewma_failure=data["ewma_failure"],
            samples=int(data["samples"]),
            completions=int(data["completions"]),
            crashes=int(data["crashes"]),
            timeouts=int(data["timeouts"]),
            slow_batches=int(data["slow_batches"]),
            strikes=int(data["strikes"]),
            cooldown_until_s=float(data["cooldown_until_s"]),
        )


class HealthBoard:
    """All workers' ledgers plus the campaign-wide breaker counters.

    The board observes and *decides* (should this worker trip?); the
    event loop actuates (removes the worker from the idle set, schedules
    the probe) so every quarantine effect stays a totally-ordered event
    like any other.
    """

    def __init__(self, policy: HealthPolicy) -> None:
        self.policy = policy
        self.workers: dict[int, WorkerHealth] = {}
        self.quarantines = 0
        self.reinstated = 0
        self.retired_sick = 0

    def tracker(self, worker_id: int) -> WorkerHealth:
        if worker_id not in self.workers:
            self.workers[worker_id] = WorkerHealth(worker_id)
        return self.workers[worker_id]

    # ------------------------------------------------------------------ #
    # Observations
    # ------------------------------------------------------------------ #

    def observe_success(
        self, worker_id: int, duration_s: float, predicted_s: float
    ) -> bool:
        """Fold a clean completion; returns True when it counted as a
        *slow* sample (latency beyond ``slow_ratio`` x the model)."""
        wh = self.tracker(worker_id)
        wh.completions += 1
        slow = (
            predicted_s > 0
            and duration_s > self.policy.slow_ratio * predicted_s
        )
        if slow:
            wh.slow_batches += 1
        wh._fold(1.0 if slow else 0.0, self.policy.alpha)
        return slow

    def observe_failure(self, worker_id: int, kind: str) -> None:
        """Fold a failed batch (``kind``: crash | timeout | kill | probe)."""
        wh = self.tracker(worker_id)
        if kind == "timeout":
            wh.timeouts += 1
        else:
            wh.crashes += 1
        wh._fold(1.0, self.policy.alpha)

    def should_trip(self, worker_id: int) -> bool:
        wh = self.tracker(worker_id)
        return (
            wh.state == HEALTHY
            and wh.samples >= self.policy.min_samples
            and wh.failure_rate >= self.policy.trip_rate
        )

    # ------------------------------------------------------------------ #
    # Breaker transitions
    # ------------------------------------------------------------------ #

    def quarantine(self, worker_id: int, now: float) -> WorkerHealth:
        wh = self.tracker(worker_id)
        wh.state = QUARANTINED
        wh.strikes += 1
        wh.cooldown_until_s = now + self.policy.cooldown_s
        self.quarantines += 1
        return wh

    def start_probe(self, worker_id: int) -> None:
        self.tracker(worker_id).state = PROBING

    def reinstate(self, worker_id: int) -> None:
        """A clean probe closes the breaker with a *reset* ledger — the
        quarantined failures must not linger in the EWMA and re-trip the
        breaker on the next (innocent) blip."""
        wh = self.tracker(worker_id)
        wh.state = HEALTHY
        wh.ewma_failure = None
        wh.samples = 0
        self.reinstated += 1

    def retire_sick(self, worker_id: int) -> None:
        self.tracker(worker_id).state = RETIRED_SICK
        self.retired_sick += 1

    # ------------------------------------------------------------------ #
    # Pool views
    # ------------------------------------------------------------------ #

    def state(self, worker_id: int) -> str:
        wh = self.workers.get(worker_id)
        return wh.state if wh is not None else HEALTHY

    def is_serving(self, worker_id: int) -> bool:
        """Whether the worker may take regular traffic (quarantined and
        probing workers hold their slot but serve nothing)."""
        return self.state(worker_id) == HEALTHY

    def n_quarantined(self) -> int:
        """Workers currently held out by the breaker (quarantined or
        probing) — capacity the autoscaler must not also retire."""
        return sum(
            1 for wh in self.workers.values()
            if wh.state in (QUARANTINED, PROBING)
        )

    def summary(self) -> dict:
        return {
            "quarantines": self.quarantines,
            "reinstated": self.reinstated,
            "retired_sick": self.retired_sick,
        }

    # ------------------------------------------------------------------ #
    # Campaign-checkpoint round trip (resume preserves quarantines)
    # ------------------------------------------------------------------ #

    def to_json(self) -> dict:
        return {
            "quarantines": self.quarantines,
            "reinstated": self.reinstated,
            "retired_sick": self.retired_sick,
            "workers": [
                self.workers[w].to_json() for w in sorted(self.workers)
            ],
        }

    @classmethod
    def from_json(cls, policy: HealthPolicy, data: dict) -> "HealthBoard":
        board = cls(policy)
        board.quarantines = int(data["quarantines"])
        board.reinstated = int(data["reinstated"])
        board.retired_sick = int(data["retired_sick"])
        for wd in data["workers"]:
            wh = WorkerHealth.from_json(wd)
            board.workers[wh.worker_id] = wh
        return board


@dataclass(frozen=True)
class DomainPolicy:
    """When correlated per-worker strikes escalate to a whole domain.

    A node loss looks, to the per-worker ledgers, like several workers
    independently going bad at the same moment.  The domain breaker
    recognizes the correlation: ``strike_k`` *distinct* workers of one
    node quarantined within ``strike_window_s`` trips the whole node —
    sweeping the not-yet-convicted co-residents out of service at once
    instead of waiting for each to fail on its own.
    """

    enabled: bool = False
    #: Distinct quarantined workers of one node that trip the domain.
    strike_k: int = 2
    #: Model-time window within which the strikes must correlate.
    strike_window_s: float = 50e-3
    #: Cooldown before the domain's single probe.
    cooldown_s: float = 2e-3
    #: Failed domain probes before the whole node is retired.
    max_strikes: int = 2

    def __post_init__(self) -> None:
        if self.strike_k < 1:
            raise ValueError("strike_k must be >= 1")
        if self.strike_window_s <= 0:
            raise ValueError("strike_window_s must be > 0")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")
        if self.max_strikes < 1:
            raise ValueError("max_strikes must be >= 1")


@dataclass
class DomainHealth:
    """One node's domain ledger (mutable, checkpointable)."""

    node: int
    state: str = HEALTHY
    #: Recent worker-quarantine strikes: ``[time_s, worker_id]`` pairs,
    #: pruned to the correlation window.
    strikes: list = field(default_factory=list)
    #: Domain-quarantine entries so far (probe-failure strike count).
    probe_strikes: int = 0
    quarantines: int = 0
    cooldown_until_s: float = 0.0

    def to_json(self) -> dict:
        return {
            "node": self.node,
            "state": self.state,
            "strikes": [[t, w] for t, w in self.strikes],
            "probe_strikes": self.probe_strikes,
            "quarantines": self.quarantines,
            "cooldown_until_s": self.cooldown_until_s,
        }

    @classmethod
    def from_json(cls, data: dict) -> "DomainHealth":
        return cls(
            node=int(data["node"]),
            state=data["state"],
            strikes=[[float(t), int(w)] for t, w in data["strikes"]],
            probe_strikes=int(data["probe_strikes"]),
            quarantines=int(data["quarantines"]),
            cooldown_until_s=float(data["cooldown_until_s"]),
        )


class DomainBoard:
    """Per-node domain breakers fed by correlated worker strikes.

    Same observe/decide/actuate split as :class:`HealthBoard`: the board
    counts strikes and answers ``should this node trip?``; the event
    loop sweeps the node's workers and schedules the *single* domain
    probe (one probe per domain, not per worker — the whole point of
    recognizing the correlation).
    """

    def __init__(self, policy: DomainPolicy) -> None:
        self.policy = policy
        self.domains: dict[int, DomainHealth] = {}
        self.quarantines = 0
        self.reinstated = 0
        self.retired = 0
        #: Per-node quarantine entries, for the report scorecard.
        self.by_domain: dict[int, int] = {}

    def tracker(self, node: int) -> DomainHealth:
        if node not in self.domains:
            self.domains[node] = DomainHealth(node)
        return self.domains[node]

    # ------------------------------------------------------------------ #
    # Observations
    # ------------------------------------------------------------------ #

    def observe_strike(self, node: int, worker_id: int, now: float) -> bool:
        """Record a worker-level quarantine on ``node``; returns True
        when ``strike_k`` distinct workers struck within the window and
        the domain should trip."""
        dh = self.tracker(node)
        dh.strikes = [
            [t, w]
            for t, w in dh.strikes
            if now - t <= self.policy.strike_window_s
        ]
        dh.strikes.append([now, worker_id])
        distinct = {w for _, w in dh.strikes}
        return dh.state == HEALTHY and len(distinct) >= self.policy.strike_k

    # ------------------------------------------------------------------ #
    # Breaker transitions
    # ------------------------------------------------------------------ #

    def quarantine(self, node: int, now: float) -> DomainHealth:
        dh = self.tracker(node)
        dh.state = QUARANTINED
        dh.probe_strikes += 1
        dh.cooldown_until_s = now + self.policy.cooldown_s
        dh.quarantines += 1
        self.quarantines += 1
        self.by_domain[node] = self.by_domain.get(node, 0) + 1
        return dh

    def start_probe(self, node: int) -> None:
        self.tracker(node).state = PROBING

    def reinstate(self, node: int) -> None:
        dh = self.tracker(node)
        dh.state = HEALTHY
        dh.strikes = []
        dh.probe_strikes = 0
        self.reinstated += 1

    def retire_sick(self, node: int) -> None:
        self.tracker(node).state = RETIRED_SICK
        self.retired += 1

    # ------------------------------------------------------------------ #
    # Pool views
    # ------------------------------------------------------------------ #

    def state(self, node: int) -> str:
        dh = self.domains.get(node)
        return dh.state if dh is not None else HEALTHY

    def is_serving(self, node: int) -> bool:
        return self.state(node) == HEALTHY

    def n_quarantined(self) -> int:
        return sum(
            1 for dh in self.domains.values()
            if dh.state in (QUARANTINED, PROBING)
        )

    def summary(self) -> dict:
        return {
            "domain_quarantines": self.quarantines,
            "domain_reinstated": self.reinstated,
            "domain_retired": self.retired,
            "quarantines_by_domain": {
                str(n): self.by_domain[n] for n in sorted(self.by_domain)
            },
        }

    # ------------------------------------------------------------------ #
    # Campaign-checkpoint round trip (resume preserves quarantines)
    # ------------------------------------------------------------------ #

    def to_json(self) -> dict:
        return {
            "quarantines": self.quarantines,
            "reinstated": self.reinstated,
            "retired": self.retired,
            "by_domain": {str(n): c for n, c in sorted(self.by_domain.items())},
            "domains": [self.domains[n].to_json() for n in sorted(self.domains)],
        }

    @classmethod
    def from_json(cls, policy: DomainPolicy, data: dict) -> "DomainBoard":
        board = cls(policy)
        board.quarantines = int(data["quarantines"])
        board.reinstated = int(data["reinstated"])
        board.retired = int(data["retired"])
        board.by_domain = {
            int(n): int(c) for n, c in data["by_domain"].items()
        }
        for dd in data["domains"]:
            dh = DomainHealth.from_json(dd)
            board.domains[dh.node] = dh
        return board


@dataclass(frozen=True)
class HedgePolicy:
    """When a running batch earns a speculative replica."""

    enabled: bool = False
    #: Hedge when elapsed time exceeds this multiple of the drain-model
    #: estimate taken at dispatch (the model-relative threshold).
    trigger_factor: float = 1.5
    #: Refresh-point boundaries of the *loser* batch — the cancellation
    #: lands at the next one (the earliest consistent abandon point).
    refresh_points: int = 4
    #: Measured batches required before the estimate is trustworthy
    #: enough to hedge against (the configured hint is not a model).
    min_samples: int = 1

    def __post_init__(self) -> None:
        if self.trigger_factor <= 1.0:
            raise ValueError("trigger_factor must be > 1")
        if self.refresh_points < 1:
            raise ValueError("refresh_points must be >= 1")
        if self.min_samples < 0:
            raise ValueError("min_samples must be >= 0")


@dataclass(frozen=True)
class BrownoutPolicy:
    """Pressure thresholds for the explicit overload levels.

    Pressure is the estimated time to drain the current backlog across
    the serving pool (batches in the queue x the EWMA batch estimate /
    serving workers) — the same quantity behind retry-after hints, so
    the levels speak the service's own units.
    """

    enabled: bool = False
    #: Pressure at which LOW requests are shed with a retry-after.
    shed_low_at_s: float = 4e-3
    #: Pressure at which batches dispatch at a degraded precision tier.
    degrade_at_s: float = 8e-3
    #: Pressure at which NORMAL (and LOW) admissions are refused; HIGH
    #: is still admitted until queue capacity itself runs out.
    reject_at_s: float = 16e-3
    #: A level releases only once pressure falls below ``hysteresis``
    #: times its threshold — no flapping at the boundary.
    hysteresis: float = 0.5

    def __post_init__(self) -> None:
        if not 0 < self.shed_low_at_s <= self.degrade_at_s <= self.reject_at_s:
            raise ValueError(
                "thresholds must satisfy 0 < shed_low <= degrade <= reject"
            )
        if not 0.0 < self.hysteresis <= 1.0:
            raise ValueError("hysteresis must be in (0, 1]")

    def threshold(self, level: int) -> float:
        return {
            BROWNOUT_SHED_LOW: self.shed_low_at_s,
            BROWNOUT_DEGRADE: self.degrade_at_s,
            BROWNOUT_REJECT: self.reject_at_s,
        }[level]


class BrownoutController:
    """The load-level state machine.

    Escalation is immediate (overload is now); release is hysteretic and
    one level at a time (a recovering service must not oscillate between
    shedding and serving at the boundary pressure).
    """

    def __init__(self, policy: BrownoutPolicy) -> None:
        self.policy = policy
        self.level = BROWNOUT_NORMAL
        #: ``(time_s, level, pressure_s)`` — every level change.
        self.transitions: list[tuple[float, int, float]] = []
        self.shed = 0
        self.brownout_rejected = 0

    @property
    def max_level(self) -> int:
        return max(
            (level for _, level, _ in self.transitions), default=self.level
        )

    def _supported(self, pressure_s: float) -> int:
        """Highest level the pressure calls for outright."""
        for level in (BROWNOUT_REJECT, BROWNOUT_DEGRADE, BROWNOUT_SHED_LOW):
            if pressure_s >= self.policy.threshold(level):
                return level
        return BROWNOUT_NORMAL

    def update(self, now: float, pressure_s: float) -> int:
        """Fold one pressure reading; returns the (possibly new) level."""
        target = self._supported(pressure_s)
        new = self.level
        if target > self.level:
            new = target
        elif self.level > BROWNOUT_NORMAL and pressure_s < (
            self.policy.threshold(self.level) * self.policy.hysteresis
        ):
            new = self.level - 1
        if new != self.level:
            self.level = new
            self.transitions.append((now, new, pressure_s))
        return self.level

    def summary(self) -> dict:
        return {
            "final_level": BROWNOUT_NAMES[self.level],
            "max_level": BROWNOUT_NAMES[self.max_level],
            "shed": self.shed,
            "brownout_rejected": self.brownout_rejected,
            "transitions": [
                {
                    "time_us": round(t * 1e6, 3),
                    "level": BROWNOUT_NAMES[level],
                    "pressure_us": round(p * 1e6, 3),
                }
                for t, level, p in self.transitions
            ],
        }

    # ------------------------------------------------------------------ #
    # Campaign-checkpoint round trip: the level is *state*, not something
    # recomputable at restore — a resumed scheduler facing the restored
    # backlog must keep shedding, not rediscover the overload from
    # NORMAL one admission at a time.
    # ------------------------------------------------------------------ #

    def to_json(self) -> dict:
        return {
            "level": self.level,
            "shed": self.shed,
            "brownout_rejected": self.brownout_rejected,
            "transitions": [
                [t, level, p] for t, level, p in self.transitions
            ],
        }

    @classmethod
    def from_json(
        cls, policy: BrownoutPolicy, data: dict
    ) -> "BrownoutController":
        ctl = cls(policy)
        ctl.level = int(data["level"])
        ctl.shed = int(data["shed"])
        ctl.brownout_rejected = int(data["brownout_rejected"])
        ctl.transitions = [
            (float(t), int(level), float(p))
            for t, level, p in data["transitions"]
        ]
        return ctl
