"""Struct-of-arrays views of scheduler hot-path state.

The scorecard pass (:meth:`ServiceReport.collect`) used to make ~15
separate list-comprehension sweeps over the request records — each one
chasing ``record.request.attribute`` pointers through two dataclasses
per element.  For a daemon campaign the records list is touched at every
checkpoint commit and at final report time, so the pointer chasing is
pure overhead.

:class:`RecordColumns` transposes the array-of-structs into columnar
NumPy arrays in **one** pass: every later aggregate (counts, masks,
percentile inputs, per-tenant slices, throughput windows) is a
vectorized expression over the columns.  The numbers are bit-identical
to the record-sweep formulation — counts are exact, percentile inputs
are the same multisets, and no floating-point *accumulation* is
reordered — which the golden daemon report pins byte-for-byte.
"""

from __future__ import annotations

import numpy as np

from .request import COMPLETED, FAILED, QUEUED, REJECTED, RUNNING, RequestRecord

__all__ = ["RecordColumns"]

#: Stable state encoding for the columnar view.
STATE_CODES = {QUEUED: 0, RUNNING: 1, COMPLETED: 2, FAILED: 3, REJECTED: 4}
_COMPLETED = STATE_CODES[COMPLETED]
_FAILED = STATE_CODES[FAILED]
_REJECTED = STATE_CODES[REJECTED]


class RecordColumns:
    """Columnar (SoA) snapshot of a list of request records.

    ``None`` timestamps are carried as NaN with a parallel validity
    mask, so "never dispatched" and "dispatched at t=0" stay distinct.
    """

    __slots__ = (
        "n",
        "state",
        "wait_s",
        "has_wait",
        "latency_s",
        "has_latency",
        "completed_s",
        "has_completed_s",
        "priority",
        "has_deadline",
        "met_deadline",
        "attempts",
        "shed",
        "degraded",
        "tenant",
    )

    def __init__(self, records: list[RequestRecord]) -> None:
        n = len(records)
        self.n = n
        state = np.empty(n, dtype=np.int8)
        wait = np.full(n, np.nan)
        latency = np.full(n, np.nan)
        completed_s = np.full(n, np.nan)
        priority = np.empty(n, dtype=np.int64)
        has_deadline = np.zeros(n, dtype=bool)
        met = np.zeros(n, dtype=bool)
        attempts = np.empty(n, dtype=np.int64)
        shed = np.zeros(n, dtype=bool)
        degraded = np.zeros(n, dtype=bool)
        tenant: list[str | None] = [None] * n
        # The one pass: every record's fields read exactly once.
        for i, rec in enumerate(records):
            req = rec.request
            state[i] = STATE_CODES[rec.state]
            if rec.dispatched_s is not None:
                wait[i] = rec.dispatched_s - req.arrival_s
            if rec.completed_s is not None:
                completed_s[i] = rec.completed_s
                latency[i] = rec.completed_s - req.arrival_s
            priority[i] = req.priority
            if req.deadline_s is not None:
                has_deadline[i] = True
                if rec.state == COMPLETED and rec.completed_s <= req.deadline_s:
                    met[i] = True
            elif rec.state == COMPLETED:
                met[i] = True  # no SLO => trivially honoured
            attempts[i] = rec.attempts
            shed[i] = rec.shed
            degraded[i] = rec.degraded
            tenant[i] = req.tenant
        self.state = state
        self.wait_s = wait
        self.has_wait = ~np.isnan(wait)
        self.latency_s = latency
        self.has_latency = ~np.isnan(latency)
        self.completed_s = completed_s
        self.has_completed_s = ~np.isnan(completed_s)
        self.priority = priority
        self.has_deadline = has_deadline
        self.met_deadline = met
        self.attempts = attempts
        self.shed = shed
        self.degraded = degraded
        self.tenant = tenant

    # ------------------------------------------------------------------ #
    # Masks and counts (all exact integer work)
    # ------------------------------------------------------------------ #

    @property
    def completed(self) -> np.ndarray:
        return self.state == _COMPLETED

    @property
    def failed(self) -> np.ndarray:
        return self.state == _FAILED

    @property
    def rejected(self) -> np.ndarray:
        return self.state == _REJECTED

    @staticmethod
    def count(mask: np.ndarray) -> int:
        return int(np.count_nonzero(mask))

    def retries(self) -> int:
        """Dispatches beyond each request's first."""
        if self.n == 0:
            return 0
        return int(np.maximum(self.attempts - 1, 0).sum())

    def tenant_mask(self, name: str | None) -> np.ndarray:
        """Rows belonging to one tenant (string identity, not position)."""
        return np.fromiter(
            (t == name for t in self.tenant), dtype=bool, count=self.n
        )

    # ------------------------------------------------------------------ #
    # Percentile inputs (sorted float lists, same multisets as the
    # record-sweep comprehensions they replace)
    # ------------------------------------------------------------------ #

    def sorted_waits(self) -> list[float]:
        return np.sort(self.wait_s[self.has_wait]).tolist()

    def sorted_latencies(self, mask: np.ndarray | None = None) -> list[float]:
        sel = self.completed & self.has_latency
        if mask is not None:
            sel &= mask
        return np.sort(self.latency_s[sel]).tolist()

    def latencies_in_order(self, mask: np.ndarray) -> list[float]:
        """Unsorted (record-order) latency slice — for callers that sort
        downstream."""
        return self.latency_s[self.completed & self.has_latency & mask].tolist()

    # ------------------------------------------------------------------ #
    # Throughput windows
    # ------------------------------------------------------------------ #

    def window_counts(self, window_s: float, n_windows: int) -> list[int]:
        """Completions bucketed into fixed windows of the campaign."""
        times = self.completed_s[self.completed & self.has_completed_s]
        if times.size == 0:
            return [0] * n_windows
        idx = np.minimum((times / window_s).astype(np.int64), n_windows - 1)
        return np.bincount(idx, minlength=n_windows).tolist()
