"""Multi-tenant capacity control: quotas and weighted-fair scheduling.

A shared cluster serving several analysis campaigns at once needs two
promises the single-stream daemon cannot make:

* **Isolation** — one tenant's burst must not consume another tenant's
  capacity.  Each tenant gets a token bucket (burst size + refill rate):
  admission spends a token, an empty bucket refuses the request with an
  *honest* retry-after derived from the bucket's refill time — when the
  next token actually exists — rather than the queue-drain estimate,
  which says when the *cluster* has room, not when the *tenant* does.
* **Fairness** — backlogged tenants share dispatch in proportion to
  their configured weights.  The scheduler keeps a start-time
  fair-queuing virtual clock per tenant: dispatching a batch of ``n``
  requests advances the tenant's clock by ``n / weight``, and the next
  dispatch goes to the backlogged tenant with the smallest clock.  A
  tenant that went idle re-enters at the system virtual time (the
  minimum backlogged clock), so it cannot bank credit while idle and
  then starve everyone else — and under saturation the service shares
  converge to the weight ratios.

Both mechanisms are deterministic state machines in model time: the
bucket levels, virtual clocks and per-tenant counters serialize into the
campaign checkpoint, so a resumed scheduler neither double-charges a
tenant for work already admitted nor forgets how far each clock ran.

Everything here is inert unless a :class:`TenancyPolicy` with at least
one tenant is configured — tenancy-free schedules stay byte-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "TenantSpec",
    "TenancyPolicy",
    "TokenBucket",
    "WeightedFairScheduler",
    "TenantRegistry",
]


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's contract: identity, fair share, and quota."""

    name: str
    #: Relative dispatch share under contention (3.0 vs 1.0 = 3:1).
    weight: float = 1.0
    #: Sustained admission rate in requests per model second
    #: (``None`` = unmetered).
    quota_qps: float | None = None
    #: Bucket capacity: how many requests may arrive back-to-back before
    #: the refill rate gates admission.  Defaults to ``quota_qps`` worth
    #: of one second when metered.
    quota_burst: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ValueError("tenant weight must be > 0")
        if self.quota_qps is not None and self.quota_qps <= 0:
            raise ValueError("quota_qps must be > 0 when set")
        if self.quota_burst is not None and self.quota_burst < 1:
            raise ValueError("quota_burst must be >= 1 when set")

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "weight": self.weight,
            "quota_qps": self.quota_qps,
            "quota_burst": self.quota_burst,
        }

    @classmethod
    def from_json(cls, data: dict) -> "TenantSpec":
        return cls(
            name=data["name"],
            weight=float(data["weight"]),
            quota_qps=data["quota_qps"],
            quota_burst=data["quota_burst"],
        )


@dataclass(frozen=True)
class TenancyPolicy:
    """The set of tenants the service arbitrates between.

    An empty policy (no tenants) disables the whole subsystem — the
    inert-when-off contract every daemon-era feature honours.
    """

    tenants: tuple[TenantSpec, ...] = ()

    def __post_init__(self) -> None:
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")

    @property
    def enabled(self) -> bool:
        return bool(self.tenants)

    @classmethod
    def build(
        cls,
        names,
        *,
        weights=None,
        quota_qps: float | None = None,
        quota_burst: float | None = None,
    ) -> "TenancyPolicy":
        """Convenience constructor from parallel name/weight lists (the
        shape the CLI flags arrive in).  ``quota_qps``/``quota_burst``
        apply to every tenant uniformly."""
        names = list(names)
        if weights is None:
            weights = [1.0] * len(names)
        weights = [float(w) for w in weights]
        if len(weights) != len(names):
            raise ValueError(
                f"{len(names)} tenant(s) but {len(weights)} weight(s)"
            )
        return cls(
            tenants=tuple(
                TenantSpec(
                    name=n,
                    weight=w,
                    quota_qps=quota_qps,
                    quota_burst=quota_burst,
                )
                for n, w in zip(names, weights)
            )
        )


class TokenBucket:
    """A deterministic token bucket in model time.

    The bucket holds up to ``burst`` tokens and refills continuously at
    ``rate_qps`` tokens per model second.  :meth:`try_consume` spends a
    token if one is available; :meth:`retry_after_s` quotes exactly how
    long until the bucket next holds a full token — the *honest*
    retry-after a quota reject carries, as opposed to the drain
    estimator's cluster-backlog quote.
    """

    def __init__(
        self,
        rate_qps: float,
        burst: float,
        *,
        tokens: float | None = None,
        last_refill_s: float = 0.0,
    ) -> None:
        if rate_qps <= 0:
            raise ValueError("rate_qps must be > 0")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate_qps = rate_qps
        self.burst = burst
        self.tokens = burst if tokens is None else tokens
        self.last_refill_s = last_refill_s

    def refill(self, now: float) -> None:
        """Advance the bucket to ``now`` (monotone: an out-of-order
        timestamp neither refunds nor drains)."""
        if now <= self.last_refill_s:
            return
        self.tokens = min(
            self.burst, self.tokens + (now - self.last_refill_s) * self.rate_qps
        )
        self.last_refill_s = now

    def try_consume(self, now: float, n: float = 1.0) -> bool:
        self.refill(now)
        if self.tokens >= n:
            self.tokens -= n
            return True
        return False

    def retry_after_s(self, now: float, n: float = 1.0) -> float:
        """Model seconds until ``n`` tokens exist — when a retry of the
        just-refused request is expected to pass the quota."""
        self.refill(now)
        deficit = n - self.tokens
        if deficit <= 0:
            return 0.0
        return deficit / self.rate_qps

    def to_json(self) -> dict:
        return {
            "rate_qps": self.rate_qps,
            "burst": self.burst,
            "tokens": self.tokens,
            "last_refill_s": self.last_refill_s,
        }

    @classmethod
    def from_json(cls, data: dict) -> "TokenBucket":
        return cls(
            float(data["rate_qps"]),
            float(data["burst"]),
            tokens=float(data["tokens"]),
            last_refill_s=float(data["last_refill_s"]),
        )


class WeightedFairScheduler:
    """Start-time fair queuing across tenants.

    Each tenant carries a virtual clock; serving ``cost`` units of a
    tenant's work advances its clock by ``cost / weight``.  The next
    dispatch goes to the backlogged tenant with the smallest clock (name
    as the deterministic tie-break), so under sustained backlog the
    service shares converge to the weight ratios, and under equal
    weights no tenant can starve another.

    The system virtual time ``vt`` — the minimum clock among backlogged
    tenants at each pick — pulls a re-awakening tenant's clock forward:
    idle time banks no credit.
    """

    def __init__(self, weights: dict[str, float]) -> None:
        if not weights:
            raise ValueError("need at least one tenant weight")
        for name, w in weights.items():
            if w <= 0:
                raise ValueError(f"weight for {name!r} must be > 0")
        self.weights = dict(weights)
        self.virtual: dict[str, float] = {name: 0.0 for name in weights}
        self.vt = 0.0

    def pick(self, backlogged) -> str:
        """The tenant whose turn it is, among ``backlogged`` names."""
        candidates = [c for c in backlogged if c in self.virtual]
        if not candidates:
            raise ValueError("no known tenants among candidates")
        self.vt = max(self.vt, min(self.virtual[c] for c in candidates))
        for c in candidates:
            self.virtual[c] = max(self.virtual[c], self.vt)
        return min(candidates, key=lambda c: (self.virtual[c], c))

    def charge(self, name: str, cost: float) -> None:
        """Account ``cost`` units of service (batch size) to ``name``."""
        if cost < 0:
            raise ValueError("cost must be >= 0")
        self.virtual[name] += cost / self.weights[name]

    def to_json(self) -> dict:
        return {"virtual": dict(self.virtual), "vt": self.vt}

    def restore(self, data: dict) -> None:
        for name, v in data.get("virtual", {}).items():
            if name in self.virtual:
                self.virtual[name] = float(v)
        self.vt = float(data.get("vt", 0.0))


class _TenantState:
    """Mutable per-tenant ledger (bucket + counters)."""

    __slots__ = ("bucket", "admitted", "quota_rejected", "shed", "low_seen")

    def __init__(self, bucket: TokenBucket | None) -> None:
        self.bucket = bucket
        self.admitted = 0
        self.quota_rejected = 0
        #: LOW requests shed under brownout, attributed to this tenant.
        self.shed = 0
        #: LOW arrivals seen while the brownout held at SHED_LOW — the
        #: denominator of the weight-proportional shedding ratio.
        self.low_seen = 0


class TenantRegistry:
    """The live tenancy state machine the service consults.

    Owns the per-tenant token buckets, the weighted-fair clocks and the
    per-tenant counters; serializes the lot for the campaign checkpoint
    so fairness survives a scheduler crash.
    """

    def __init__(self, policy: TenancyPolicy) -> None:
        if not policy.enabled:
            raise ValueError("TenantRegistry needs at least one tenant")
        self.policy = policy
        self.order = tuple(t.name for t in policy.tenants)
        self._states: dict[str, _TenantState] = {}
        for spec in policy.tenants:
            bucket = None
            if spec.quota_qps is not None:
                burst = (
                    spec.quota_burst
                    if spec.quota_burst is not None
                    else max(1.0, spec.quota_qps)
                )
                bucket = TokenBucket(spec.quota_qps, burst)
            self._states[spec.name] = _TenantState(bucket)
        self.wfq = WeightedFairScheduler(
            {t.name: t.weight for t in policy.tenants}
        )
        self._max_weight = max(t.weight for t in policy.tenants)

    def __contains__(self, name) -> bool:
        return name in self._states

    def weight(self, name: str) -> float:
        return self.wfq.weights[name]

    # ------------------------------------------------------------------ #
    # Admission (quota)
    # ------------------------------------------------------------------ #

    def admit(self, name: str, now: float) -> float | None:
        """Charge one token; ``None`` = admitted, else the honest
        retry-after (model seconds until the bucket refills a token)."""
        st = self._states[name]
        if st.bucket is None or st.bucket.try_consume(now):
            st.admitted += 1
            return None
        st.quota_rejected += 1
        return st.bucket.retry_after_s(now)

    # ------------------------------------------------------------------ #
    # Brownout (weight-proportional LOW shedding)
    # ------------------------------------------------------------------ #

    def shed_low(self, name: str) -> bool:
        """Whether to shed this tenant's LOW arrival under SHED_LOW.

        The heaviest tenant keeps every LOW request; a tenant at half
        its weight keeps every other one — sheds are proportional to
        ``1 - weight / max_weight``, paced deterministically through a
        per-tenant arrival counter instead of a coin flip."""
        st = self._states[name]
        keep_ratio = self.weight(name) / self._max_weight
        st.low_seen += 1
        keep = (
            math.floor(st.low_seen * keep_ratio)
            > math.floor((st.low_seen - 1) * keep_ratio)
        )
        if not keep:
            st.shed += 1
        return not keep

    def note_shed(self, name: str) -> None:
        """Attribute a brownout refusal (REJECT level, where everyone
        below HIGH sheds regardless of weight) to its tenant."""
        self._states[name].shed += 1

    # ------------------------------------------------------------------ #
    # Scorecard
    # ------------------------------------------------------------------ #

    def counters(self) -> dict:
        return {
            name: {
                "admitted": st.admitted,
                "quota_rejected": st.quota_rejected,
                "shed": st.shed,
            }
            for name, st in self._states.items()
        }

    def summary(self) -> dict:
        """The tenancy block the per-tenant scorecard builds on."""
        return {
            "weights": dict(self.wfq.weights),
            "counters": self.counters(),
        }

    # ------------------------------------------------------------------ #
    # Campaign-checkpoint round trip
    # ------------------------------------------------------------------ #

    def to_json(self) -> dict:
        return {
            "buckets": {
                name: st.bucket.to_json()
                for name, st in self._states.items()
                if st.bucket is not None
            },
            "wfq": self.wfq.to_json(),
            "counters": {
                name: {
                    "admitted": st.admitted,
                    "quota_rejected": st.quota_rejected,
                    "shed": st.shed,
                    "low_seen": st.low_seen,
                }
                for name, st in self._states.items()
            },
        }

    def restore(self, data: dict) -> None:
        """Adopt a checkpointed tenancy state: bucket levels and refill
        clocks verbatim (no re-charge, no refund), fairness clocks and
        counters as committed."""
        for name, bucket_json in data.get("buckets", {}).items():
            if name in self._states:
                self._states[name].bucket = TokenBucket.from_json(bucket_json)
        self.wfq.restore(data.get("wfq", {}))
        for name, c in data.get("counters", {}).items():
            if name in self._states:
                st = self._states[name]
                st.admitted = int(c.get("admitted", 0))
                st.quota_rejected = int(c.get("quota_rejected", 0))
                st.shed = int(c.get("shed", 0))
                st.low_seen = int(c.get("low_seen", 0))
