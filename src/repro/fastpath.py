"""Runtime switch for the raw-speed fast paths.

The hot-path refactor (memoized perf-model evaluation, incrementally
sorted admission queue) is behavior-preserving — every number it
produces is bit-identical to the legacy formulation — so a single
process can run either side.  That is the point: the throughput
benchmark measures *before* and *after* on the same machine in the same
process, and CI guards the ratio.

* ``REPRO_FASTPATH=0`` in the environment starts the process on the
  legacy paths (everything recomputed from scratch, full re-sorts).
* :func:`set_enabled` flips at runtime — the benchmark harness brackets
  its "before" measurement with it.  Flipping also clears the memo
  caches so a disabled window never serves stale-warm state and an
  enabled window starts cold.

Code gates on :func:`enabled` per *operation*, never at import, so the
toggle is always honoured.  This knob selects between two equivalent
CPU implementations; the numba/NumPy kernel choice is the separate
``REPRO_NO_JIT`` knob (:mod:`repro.jit`).
"""

from __future__ import annotations

import os

__all__ = ["enabled", "set_enabled", "register_cache"]

_ENABLED = os.environ.get("REPRO_FASTPATH", "").strip() != "0"

#: Memo caches (dict-like, must support ``.clear()``) registered by the
#: modules that gate on this switch; cleared on every toggle.
_CACHES: list = []


def enabled() -> bool:
    """Whether the fast paths are live."""
    return _ENABLED


def set_enabled(flag: bool) -> None:
    """Switch fast paths on/off at runtime (clears registered caches)."""
    global _ENABLED
    _ENABLED = bool(flag)
    for cache in _CACHES:
        cache.clear()


def register_cache(cache) -> None:
    """Register a memo cache to be cleared whenever the switch flips."""
    _CACHES.append(cache)
