"""Profiler-style reports from a GPU timeline (an nvprof for the model).

Aggregates a :class:`~repro.gpu.streams.Timeline`'s op record into the
table every CUDA developer lives in: per-kernel call counts, total time,
share of the schedule, bytes moved, and achieved bandwidth — making it
obvious *where* a solver configuration spends its model time (dslash vs
BLAS vs PCIe vs waiting on the network).

The second half of the module profiles the *host*, not the model:
:func:`hotspot_profile` runs the saturated scheduler campaign under
``cProfile`` with per-phase wall-time attribution — the evidence trail
behind the raw-speed refactor (``repro profile --hotspots``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.streams import TimelineOp
from .report import format_table

__all__ = [
    "ProfileRow",
    "profile_ops",
    "profile_solve",
    "render_profile",
    "hotspot_profile",
    "render_hotspots",
]


@dataclass
class ProfileRow:
    """Aggregated statistics for one operation name-group."""

    name: str
    kind: str
    calls: int
    total_s: float
    nbytes: int
    flops: int

    @property
    def bandwidth_gbs(self) -> float:
        return self.nbytes / self.total_s / 1e9 if self.total_s > 0 else 0.0

    @property
    def gflops(self) -> float:
        return self.flops / self.total_s / 1e9 if self.total_s > 0 else 0.0


def _group(name: str) -> str:
    """Collapse per-instance suffixes: 'face_d2h[3][backward][1]' ->
    'face_d2h'."""
    return name.split("[")[0]


def profile_ops(ops: list[TimelineOp]) -> list[ProfileRow]:
    """Aggregate ops by name group, sorted by total time (descending)."""
    acc: dict[str, ProfileRow] = {}
    for op in ops:
        key = _group(op.name)
        row = acc.get(key)
        if row is None:
            acc[key] = ProfileRow(
                name=key, kind=op.kind, calls=1, total_s=op.duration,
                nbytes=op.nbytes, flops=op.flops,
            )
        else:
            row.calls += 1
            row.total_s += op.duration
            row.nbytes += op.nbytes
            row.flops += op.flops
    return sorted(acc.values(), key=lambda r: -r.total_s)


def profile_solve(
    dims: tuple[int, int, int, int],
    mode: str = "single-half",
    *,
    n_gpus: int = 2,
    overlap: bool = True,
    iterations: int = 10,
    rank: int = 0,
) -> list[TimelineOp]:
    """Run a timing-only solve and return one rank's solver-window ops.

    The profiling analogue of :func:`repro.core.invert_model`: same
    schedule, but the raw timeline comes back for analysis.
    """
    from ..comms.mpi_sim import SimMPI
    from ..comms.qmp import QMPMachine
    from ..core.dslash import DeviceSchurOperator
    from ..core.interface import PRECISION_MODES
    from ..core.solvers.bicgstab import bicgstab_solve
    from ..gpu.device import VirtualGPU
    from ..lattice.geometry import LatticeGeometry

    full_prec, sloppy_prec = PRECISION_MODES[mode]
    geometry = LatticeGeometry(dims)
    slicing = geometry.slice_time(n_gpus)

    def body(comm):
        gpu = VirtualGPU(execute=False, enforce_memory=False, name=f"gpu{comm.rank}")
        comm.bind_timeline(gpu.timeline)
        qmp = QMPMachine(comm)
        local = slicing.locals[comm.rank]
        op_full = DeviceSchurOperator.setup(
            gpu, qmp, local, None, None, 0.1, precision=full_prec, overlap=overlap
        )
        op_sloppy = (
            op_full
            if sloppy_prec is full_prec
            else DeviceSchurOperator.setup(
                gpu, qmp, local, None, None, 0.1,
                precision=sloppy_prec, overlap=overlap,
            )
        )
        b = op_full.make_spinor("b")
        x = op_full.make_spinor("x")
        i0 = gpu.timeline.op_count
        bicgstab_solve(
            op_full, op_sloppy, b, x, tol=1e-7, delta=0.1, maxiter=1,
            fixed_iterations=iterations,
        )
        return gpu.timeline.ops[i0:]

    return SimMPI(n_gpus).run(body)[rank]


def hotspot_profile(
    n_requests: int = 1024,
    *,
    top: int = 15,
    fast: bool | None = None,
    **campaign_kwargs,
) -> dict:
    """CPU hotspots of the saturated scheduler campaign.

    Runs the shared hot campaign (:func:`repro.bench.harness.hot_campaign`,
    the same workload the throughput benchmark times) under ``cProfile``
    and reports the top ``top`` functions by cumulative wall time plus a
    per-phase attribution (workload build / campaign / report render /
    packed-record encode), each phase timed with ``perf_counter``.

    ``fast`` pins the :mod:`repro.fastpath` switch for the run (``None``
    keeps the process's current setting), so ``--hotspots`` can show
    either the legacy profile that motivated the refactor or the
    refactored one.
    """
    import cProfile
    import pstats
    import time as _time

    from .. import codec, fastpath
    from ..service import SolveService
    from .harness import hot_campaign

    before = fastpath.enabled()
    if fast is not None:
        fastpath.set_enabled(fast)
    try:
        phases: list[tuple[str, float]] = []
        t0 = _time.perf_counter()
        config, workload = hot_campaign(n_requests, **campaign_kwargs)
        service = SolveService(config)
        t1 = _time.perf_counter()
        phases.append(("build workload + service", t1 - t0))

        profiler = cProfile.Profile()
        profiler.enable()
        campaign = service.run(workload)
        profiler.disable()
        t2 = _time.perf_counter()
        phases.append(("run campaign (profiled)", t2 - t1))

        report_json = campaign.report.render_json()
        t3 = _time.perf_counter()
        phases.append(("collect + render report", t3 - t2))

        packed = campaign.report.to_record_bytes()
        t4 = _time.perf_counter()
        phases.append(("encode packed telemetry", t4 - t3))
    finally:
        fastpath.set_enabled(before)

    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    total_s = t4 - t0
    rows = []
    for func, (cc, nc, tt, ct, _callers) in sorted(
        stats.stats.items(), key=lambda kv: -kv[1][3]
    ):
        filename, line, name = func
        if name.startswith("<") and filename == "~":
            continue
        rows.append(
            {
                "function": name,
                "where": f"{filename.rsplit('/', 1)[-1]}:{line}",
                "calls": nc,
                "tottime_ms": round(tt * 1e3, 3),
                "cumtime_ms": round(ct * 1e3, 3),
            }
        )
        if len(rows) >= top:
            break
    return {
        "fastpath": fastpath.enabled() if fast is None else bool(fast),
        "requests": n_requests,
        "completed": campaign.report.to_json()["completed"],
        "total_wall_s": round(total_s, 6),
        "wall_rps": round(n_requests / total_s, 1),
        "report_bytes_json": len(report_json.encode()),
        "report_bytes_packed": len(packed),
        "packed_magic_ok": codec.is_packed(packed),
        "phases": [
            {"phase": name, "wall_ms": round(dt * 1e3, 3)}
            for name, dt in phases
        ],
        "hotspots": rows,
    }


def render_hotspots(prof: dict) -> str:
    """The ``repro profile --hotspots`` table pair."""
    lines = [
        f"{prof['requests']} requests "
        f"({'fast' if prof['fastpath'] else 'legacy'} path): "
        f"{prof['total_wall_s'] * 1e3:.1f} ms wall, "
        f"{prof['wall_rps']:.0f} req/s; packed report "
        f"{prof['report_bytes_packed']} B vs {prof['report_bytes_json']} B "
        "JSON",
        "",
        format_table(
            ["phase", "wall (ms)"],
            [[p["phase"], f"{p['wall_ms']:.3f}"] for p in prof["phases"]],
        ),
        "",
        format_table(
            ["function", "where", "calls", "tottime (ms)", "cumtime (ms)"],
            [
                [
                    r["function"],
                    r["where"],
                    r["calls"],
                    f"{r['tottime_ms']:.3f}",
                    f"{r['cumtime_ms']:.3f}",
                ]
                for r in prof["hotspots"]
            ],
        ),
    ]
    return "\n".join(lines)


def render_profile(ops: list[TimelineOp], *, top: int | None = None) -> str:
    """A profiler table for a timeline window."""
    rows = profile_ops(ops)
    busy = sum(r.total_s for r in rows)
    if top is not None:
        rows = rows[:top]
    table = format_table(
        ["name", "kind", "calls", "time (ms)", "share", "GB/s", "Gflops"],
        [
            [
                r.name,
                r.kind,
                r.calls,
                f"{r.total_s * 1e3:.3f}",
                f"{r.total_s / busy:6.1%}" if busy else "-",
                f"{r.bandwidth_gbs:.1f}" if r.nbytes else "-",
                f"{r.gflops:.1f}" if r.flops else "-",
            ]
            for r in rows
        ],
    )
    return table
