"""Profiler-style reports from a GPU timeline (an nvprof for the model).

Aggregates a :class:`~repro.gpu.streams.Timeline`'s op record into the
table every CUDA developer lives in: per-kernel call counts, total time,
share of the schedule, bytes moved, and achieved bandwidth — making it
obvious *where* a solver configuration spends its model time (dslash vs
BLAS vs PCIe vs waiting on the network).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.streams import TimelineOp
from .report import format_table

__all__ = ["ProfileRow", "profile_ops", "profile_solve", "render_profile"]


@dataclass
class ProfileRow:
    """Aggregated statistics for one operation name-group."""

    name: str
    kind: str
    calls: int
    total_s: float
    nbytes: int
    flops: int

    @property
    def bandwidth_gbs(self) -> float:
        return self.nbytes / self.total_s / 1e9 if self.total_s > 0 else 0.0

    @property
    def gflops(self) -> float:
        return self.flops / self.total_s / 1e9 if self.total_s > 0 else 0.0


def _group(name: str) -> str:
    """Collapse per-instance suffixes: 'face_d2h[3][backward][1]' ->
    'face_d2h'."""
    return name.split("[")[0]


def profile_ops(ops: list[TimelineOp]) -> list[ProfileRow]:
    """Aggregate ops by name group, sorted by total time (descending)."""
    acc: dict[str, ProfileRow] = {}
    for op in ops:
        key = _group(op.name)
        row = acc.get(key)
        if row is None:
            acc[key] = ProfileRow(
                name=key, kind=op.kind, calls=1, total_s=op.duration,
                nbytes=op.nbytes, flops=op.flops,
            )
        else:
            row.calls += 1
            row.total_s += op.duration
            row.nbytes += op.nbytes
            row.flops += op.flops
    return sorted(acc.values(), key=lambda r: -r.total_s)


def profile_solve(
    dims: tuple[int, int, int, int],
    mode: str = "single-half",
    *,
    n_gpus: int = 2,
    overlap: bool = True,
    iterations: int = 10,
    rank: int = 0,
) -> list[TimelineOp]:
    """Run a timing-only solve and return one rank's solver-window ops.

    The profiling analogue of :func:`repro.core.invert_model`: same
    schedule, but the raw timeline comes back for analysis.
    """
    from ..comms.mpi_sim import SimMPI
    from ..comms.qmp import QMPMachine
    from ..core.dslash import DeviceSchurOperator
    from ..core.interface import PRECISION_MODES
    from ..core.solvers.bicgstab import bicgstab_solve
    from ..gpu.device import VirtualGPU
    from ..lattice.geometry import LatticeGeometry

    full_prec, sloppy_prec = PRECISION_MODES[mode]
    geometry = LatticeGeometry(dims)
    slicing = geometry.slice_time(n_gpus)

    def body(comm):
        gpu = VirtualGPU(execute=False, enforce_memory=False, name=f"gpu{comm.rank}")
        comm.bind_timeline(gpu.timeline)
        qmp = QMPMachine(comm)
        local = slicing.locals[comm.rank]
        op_full = DeviceSchurOperator.setup(
            gpu, qmp, local, None, None, 0.1, precision=full_prec, overlap=overlap
        )
        op_sloppy = (
            op_full
            if sloppy_prec is full_prec
            else DeviceSchurOperator.setup(
                gpu, qmp, local, None, None, 0.1,
                precision=sloppy_prec, overlap=overlap,
            )
        )
        b = op_full.make_spinor("b")
        x = op_full.make_spinor("x")
        i0 = gpu.timeline.op_count
        bicgstab_solve(
            op_full, op_sloppy, b, x, tol=1e-7, delta=0.1, maxiter=1,
            fixed_iterations=iterations,
        )
        return gpu.timeline.ops[i0:]

    return SimMPI(n_gpus).run(body)[rank]


def render_profile(ops: list[TimelineOp], *, top: int | None = None) -> str:
    """A profiler table for a timeline window."""
    rows = profile_ops(ops)
    busy = sum(r.total_s for r in rows)
    if top is not None:
        rows = rows[:top]
    table = format_table(
        ["name", "kind", "calls", "time (ms)", "share", "GB/s", "Gflops"],
        [
            [
                r.name,
                r.kind,
                r.calls,
                f"{r.total_s * 1e3:.3f}",
                f"{r.total_s / busy:6.1%}" if busy else "-",
                f"{r.bandwidth_gbs:.1f}" if r.nbytes else "-",
                f"{r.gflops:.1f}" if r.flops else "-",
            ]
            for r in rows
        ],
    )
    return table
