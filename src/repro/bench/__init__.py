"""Benchmark harness: regenerate every table and figure of the paper."""

from .figures import (
    ALL_FIGURES,
    cpu_comparison,
    fig4a,
    fig4b,
    fig5a,
    fig5b,
    fig6,
    fig7,
    memory_footprint,
    table1,
)
from .harness import (
    FIXED_ITERATIONS,
    ScalingPoint,
    propagator_benchmark,
    run_scaling_point,
    sweep_gpus,
)
from .report import Experiment, Series, format_table

__all__ = [
    "ALL_FIGURES",
    "table1",
    "fig4a",
    "fig4b",
    "fig5a",
    "fig5b",
    "fig6",
    "fig7",
    "cpu_comparison",
    "memory_footprint",
    "ScalingPoint",
    "run_scaling_point",
    "sweep_gpus",
    "propagator_benchmark",
    "FIXED_ITERATIONS",
    "Experiment",
    "Series",
    "format_table",
]
