"""ASCII Gantt rendering of a GPU timeline.

Turns the discrete-event record of a :class:`~repro.gpu.streams.Timeline`
into a stream-by-stream text chart, making the paper's communication
strategies *visible*: the overlapped dslash shows the interior kernel on
stream 0 running under the face copies on the side streams, while the
non-overlapped variant is one long serial chain.

Glyphs: ``#`` kernel, ``<`` device-to-host copy, ``>`` host-to-device
copy, ``=`` host work, ``.`` host waiting, ``!`` injected fault time
(retry backoff, late arrival, or corruption NACK/resend penalties from a
chaos run's fault plan).
"""

from __future__ import annotations

from ..gpu.streams import TimelineOp

__all__ = ["render_gantt", "render_recovery_lanes"]

_GLYPH = {"kernel": "#", "d2h": "<", "h2d": ">", "host": "=", "wait": "."}


def render_gantt(
    ops: list[TimelineOp],
    *,
    width: int = 96,
    label_width: int = 10,
    include_host: bool = True,
) -> str:
    """Render timeline ops as an ASCII Gantt chart, one row per stream.

    ``width`` is the number of time columns; each op paints its glyph over
    its [start, end) span (minimum one column so latency-bound ops stay
    visible).
    """
    if not ops:
        return "(empty timeline)"
    t0 = min(op.start for op in ops)
    t1 = max(op.end for op in ops)
    span = max(t1 - t0, 1e-12)

    def col(t: float) -> int:
        return min(width - 1, int((t - t0) / span * width))

    rows: dict[str, list[str]] = {}
    order: list[str] = []

    def row(name: str) -> list[str]:
        if name not in rows:
            rows[name] = [" "] * width
            order.append(name)
        return rows[name]

    for op in ops:
        if op.kind in ("host", "wait"):
            if not include_host:
                continue
            name = "host"
        else:
            name = f"stream {op.stream}"
        glyph = "!" if op.fault else _GLYPH.get(op.kind, "?")
        lo = col(op.start)
        hi = max(col(op.end), lo + 1)
        r = row(name)
        for c in range(lo, hi):
            r[c] = glyph

    # Streams sorted numerically, host last.
    def key(name: str):
        return (1, 0) if name == "host" else (0, int(name.split()[-1]))

    lines = [
        f"{name:<{label_width}}|{''.join(rows[name])}|"
        for name in sorted(order, key=key)
    ]
    header = (
        f"{'':<{label_width}} 0"
        + " " * (width - len(f"{span * 1e6:.0f} us") - 2)
        + f"{span * 1e6:.0f} us"
    )
    legend = (
        "  # kernel   < d2h copy   > h2d copy   = host   . wait"
        "   ! fault/corruption"
    )
    return "\n".join([header] + lines + [legend])


# ------------------------------------------------------------------------ #
# Recovery lanes (self-healing solves)
# ------------------------------------------------------------------------ #

_EVENT_MARK = {
    "rank_failure": "x",
    "relaunch": "R",
    "resume": ">",
    "restart": "o",
    "solver_switch": "s",
    "precision_escalation": "^",
    "checkpoint_restore": "c",
    "checkpoint_fallback": "f",
}


def render_recovery_lanes(events) -> str:
    """Render a recovery ledger as one text lane per attempt.

    ``events`` is the ``recovery_events`` list of an
    :class:`~repro.core.quda.InvertResult` (or a chaos report): rank
    failures, relaunches, checkpoint resumes, and breakdown-ladder rungs
    in decision order.  The output is deterministic for a given
    fault-plan seed, so it can be asserted byte-for-byte in tests.
    """
    if not events:
        return "(healthy solve: no recovery events)"
    lanes: dict[int, list] = {}
    for ev in events:
        lanes.setdefault(ev.attempt, []).append(ev)
    lines = []
    for attempt in sorted(lanes):
        marks = "".join(_EVENT_MARK.get(ev.kind, "?") for ev in lanes[attempt])
        lines.append(f"attempt {attempt}  [{marks}]")
        for ev in lanes[attempt]:
            lines.append(f"    {ev.render()}")
    legend = (
        "  x rank failure   R relaunch   > resume   o restart   "
        "s solver switch   ^ precision up   c checkpoint restore   "
        "f checkpoint fallback"
    )
    return "\n".join(lines + [legend])
