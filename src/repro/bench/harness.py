"""Experiment harness: run solver configurations and report sustained Gflops.

The measurement protocol follows Section VII-A: performance numbers are
sustained "effective Gflops" (no gauge-reconstruction flops counted),
quoted as averages over propagator-style solves.  Paper-scale lattices run
through :func:`repro.core.invert_model` (timing-only; exact schedule, no
array data); small lattices can run fully numerically through
:func:`repro.core.invert` with the weak-field configurations of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..comms.cluster import ClusterSpec
from ..core import invert, invert_model, paper_invert_param
from ..core.interface import QudaInvertParam
from ..gpu.memory import DeviceOutOfMemoryError
from ..gpu.specs import GTX285, GPUSpec

__all__ = [
    "ScalingPoint",
    "run_scaling_point",
    "sweep_gpus",
    "propagator_benchmark",
    "oom_cause",
]

#: Iterations per timing-only measurement.  The sustained rate is a
#: steady-state quantity, so a modest fixed count suffices; reliable
#: updates fire on the same cadence the functional runs exhibit.
FIXED_ITERATIONS = 40


@dataclass
class ScalingPoint:
    """One (configuration, GPU count) measurement."""

    n_gpus: int
    gflops: float | None  # None => did not fit in device memory
    model_time: float | None = None


def oom_cause(exc: BaseException) -> bool:
    """Whether a SimMPI failure was a device OOM (expected for some
    configurations, e.g. mixed precision on 4 GPUs — Section VII-C)."""
    seen = set()
    while exc is not None and id(exc) not in seen:
        if isinstance(exc, DeviceOutOfMemoryError):
            return True
        seen.add(id(exc))
        exc = exc.__cause__ or exc.__context__
    return False


def run_scaling_point(
    dims: tuple[int, int, int, int],
    mode: str,
    n_gpus: int,
    *,
    overlap: bool = True,
    cluster: ClusterSpec | None = None,
    gpu_spec: GPUSpec = GTX285,
    fixed_iterations: int = FIXED_ITERATIONS,
    solver: str = "bicgstab",
) -> ScalingPoint:
    """One timing-only solve; returns sustained Gflops or an OOM marker."""
    inv = paper_invert_param(
        mode,
        overlap_comms=overlap,
        fixed_iterations=fixed_iterations,
        solver=solver,
    )
    try:
        res = invert_model(
            dims, inv, n_gpus=n_gpus, cluster=cluster, gpu_spec=gpu_spec
        )
    except RuntimeError as exc:
        if oom_cause(exc):
            return ScalingPoint(n_gpus=n_gpus, gflops=None)
        raise
    return ScalingPoint(
        n_gpus=n_gpus,
        gflops=res.stats.sustained_gflops,
        model_time=res.stats.model_time,
    )


def sweep_gpus(
    dims_for: "callable",
    mode: str,
    gpu_counts: list[int],
    **kwargs,
) -> list[ScalingPoint]:
    """Run a scaling sweep; ``dims_for(n)`` gives the lattice at each count
    (constant for strong scaling, growing-T for weak scaling)."""
    return [
        run_scaling_point(dims_for(n), mode, n, **kwargs) for n in gpu_counts
    ]


def propagator_benchmark(
    dims: tuple[int, int, int, int] = (4, 4, 4, 8),
    mode: str = "single-half",
    n_gpus: int = 2,
    n_solves: int = 6,
    seed: int = 2010,
    mass: float = 0.2,
    **invert_kwargs,
):
    """The paper's functional measurement: "performing 6 linear solves for
    each test (one for each of the 3 color components of the upper 2 spin
    components), with the quoted performance results given by averages
    over these solves" — on a weak-field configuration.

    Returns ``(mean Gflops, per-solve InvertResults)``.
    """
    from ..lattice import LatticeGeometry, point_source, weak_field_gauge

    rng = np.random.default_rng(seed)
    geo = LatticeGeometry(dims)
    gauge = weak_field_gauge(geo, rng, noise=0.1)
    inv = paper_invert_param(mode, mass=mass)
    results = []
    sources = [(s, c) for s in range(2) for c in range(3)][:n_solves]
    for spin, color in sources:
        src = point_source(geo, site=0, spin=spin, color=color)
        results.append(invert(gauge, src, inv, n_gpus=n_gpus, **invert_kwargs))
    mean_gflops = float(
        np.mean([r.stats.sustained_gflops for r in results])
    )
    return mean_gflops, results
