"""Experiment harness: run solver configurations and report sustained Gflops.

The measurement protocol follows Section VII-A: performance numbers are
sustained "effective Gflops" (no gauge-reconstruction flops counted),
quoted as averages over propagator-style solves.  Paper-scale lattices run
through :func:`repro.core.invert_model` (timing-only; exact schedule, no
array data); small lattices can run fully numerically through
:func:`repro.core.invert` with the weak-field configurations of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from dataclasses import field as dataclasses_field

import numpy as np

from ..comms.cluster import ClusterSpec
from ..comms.faults import FaultEvent, FaultPlan, IntegrityPolicy, RankFailedError
from ..comms.mpi_sim import CommStats
from ..core import RecoveryEvent, RetryPolicy, invert, invert_model, paper_invert_param
from ..gpu.memory import DeviceOutOfMemoryError
from ..gpu.specs import GTX285, GPUSpec

__all__ = [
    "ScalingPoint",
    "run_scaling_point",
    "sweep_gpus",
    "propagator_benchmark",
    "oom_cause",
    "ChaosReport",
    "chaos_solve",
    "chaos_invert",
    "service_benchmark",
    "throughput_benchmark",
    "write_service_bench",
    "capacity_sweep",
    "render_capacity_map",
]

#: Iterations per timing-only measurement.  The sustained rate is a
#: steady-state quantity, so a modest fixed count suffices; reliable
#: updates fire on the same cadence the functional runs exhibit.
FIXED_ITERATIONS = 40


@dataclass
class ScalingPoint:
    """One (configuration, GPU count) measurement."""

    n_gpus: int
    gflops: float | None  # None => did not fit in device memory
    model_time: float | None = None


def oom_cause(exc: BaseException) -> bool:
    """Whether a SimMPI failure was a device OOM (expected for some
    configurations, e.g. mixed precision on 4 GPUs — Section VII-C)."""
    seen = set()
    while exc is not None and id(exc) not in seen:
        if isinstance(exc, DeviceOutOfMemoryError):
            return True
        seen.add(id(exc))
        exc = exc.__cause__ or exc.__context__
    return False


def run_scaling_point(
    dims: tuple[int, int, int, int],
    mode: str,
    n_gpus: int,
    *,
    overlap: bool = True,
    cluster: ClusterSpec | None = None,
    gpu_spec: GPUSpec = GTX285,
    fixed_iterations: int = FIXED_ITERATIONS,
    solver: str = "bicgstab",
) -> ScalingPoint:
    """One timing-only solve; returns sustained Gflops or an OOM marker."""
    inv = paper_invert_param(
        mode,
        overlap_comms=overlap,
        fixed_iterations=fixed_iterations,
        solver=solver,
    )
    try:
        res = invert_model(
            dims, inv, n_gpus=n_gpus, cluster=cluster, gpu_spec=gpu_spec
        )
    except RuntimeError as exc:
        if oom_cause(exc):
            return ScalingPoint(n_gpus=n_gpus, gflops=None)
        raise
    return ScalingPoint(
        n_gpus=n_gpus,
        gflops=res.stats.sustained_gflops,
        model_time=res.stats.model_time,
    )


def sweep_gpus(
    dims_for: "callable",
    mode: str,
    gpu_counts: list[int],
    **kwargs,
) -> list[ScalingPoint]:
    """Run a scaling sweep; ``dims_for(n)`` gives the lattice at each count
    (constant for strong scaling, growing-T for weak scaling)."""
    return [
        run_scaling_point(dims_for(n), mode, n, **kwargs) for n in gpu_counts
    ]


def propagator_benchmark(
    dims: tuple[int, int, int, int] = (4, 4, 4, 8),
    mode: str = "single-half",
    n_gpus: int = 2,
    n_solves: int = 6,
    seed: int = 2010,
    mass: float = 0.2,
    **invert_kwargs,
):
    """The paper's functional measurement: "performing 6 linear solves for
    each test (one for each of the 3 color components of the upper 2 spin
    components), with the quoted performance results given by averages
    over these solves" — on a weak-field configuration.

    Returns ``(mean Gflops, per-solve InvertResults)``.
    """
    from ..lattice import LatticeGeometry, point_source, weak_field_gauge

    rng = np.random.default_rng(seed)
    geo = LatticeGeometry(dims)
    gauge = weak_field_gauge(geo, rng, noise=0.1)
    inv = paper_invert_param(mode, mass=mass)
    results = []
    sources = [(s, c) for s in range(2) for c in range(3)][:n_solves]
    for spin, color in sources:
        src = point_source(geo, site=0, spin=spin, color=color)
        results.append(invert(gauge, src, inv, n_gpus=n_gpus, **invert_kwargs))
    mean_gflops = float(
        np.mean([r.stats.sustained_gflops for r in results])
    )
    return mean_gflops, results


# ------------------------------------------------------------------------ #
# Chaos runs (fault-injected solves)
# ------------------------------------------------------------------------ #


@dataclass
class ChaosReport:
    """Outcome of one fault-injected solve (success or structured failure).

    Everything here is a function of (lattice, plan seed, communication
    pattern) — model times, retry counts and the fault schedule are all
    byte-reproducible across runs and platforms.
    """

    plan: FaultPlan
    completed: bool
    failure: RankFailedError | None
    model_time: float | None  # solver model time (None if the run died)
    gflops: float | None
    retries: int  # transient send failures survived, summed over ranks
    injected_delay_s: float  # total fault model time, summed over ranks
    fault_events: list[FaultEvent]
    comm_stats: list[CommStats]
    # --- self-healing accounting (zero unless a RetryPolicy is enabled) --- #
    recoveries: int = 0  # worlds relaunched after a rank failure
    restarts: int = 0  # breakdown-ladder rungs taken
    wasted_iterations: int = 0
    lost_time_s: float = 0.0  # failed attempts + retry backoff
    recovery_events: list[RecoveryEvent] = dataclasses_field(default_factory=list)
    final_ranks: int | None = None  # world size of the attempt that finished
    # Functional chaos runs only (``chaos_invert``):
    converged: bool | None = None
    true_residual: float | None = None
    # --- data integrity (silent-corruption protection) ----------------- #
    corruptions_detected: int = 0  # checksum mismatches + invariant hits
    corruptions_corrected: int = 0  # repaired by resend / checkpoint restore
    resends: int = 0  # NACK-triggered retransmissions, summed over ranks
    integrity_overhead_s: float = 0.0  # hash/verify model time, max over ranks


def _rank_failure(exc: BaseException) -> RankFailedError | None:
    """The RankFailedError at the root of a SimMPI failure, if any."""
    seen = set()
    while exc is not None and id(exc) not in seen:
        if isinstance(exc, RankFailedError):
            return exc
        seen.add(id(exc))
        exc = exc.__cause__ or exc.__context__
    return None


def _failed_report(plan: FaultPlan, exc: BaseException) -> ChaosReport | None:
    """A structured death report, or None if ``exc`` was not a rank failure."""
    failure = _rank_failure(exc)
    if failure is None:
        return None
    events = list(getattr(exc, "fault_events", []))
    return ChaosReport(
        plan=plan, completed=False, failure=failure, model_time=None,
        gflops=None,
        retries=sum(1 for e in events if e.kind == "send_retry"),
        injected_delay_s=sum(e.delay_s for e in events),
        fault_events=events, comm_stats=[],
        corruptions_detected=sum(
            1 for e in events if e.kind == "corruption_detected"
        ),
        resends=sum(1 for e in events if e.kind == "nack_resend"),
    )


def _completed_report(plan: FaultPlan, res) -> ChaosReport:
    """A success report from an :class:`~repro.core.quda.InvertResult`."""
    return ChaosReport(
        plan=plan,
        completed=True,
        failure=None,
        model_time=res.stats.model_time,
        gflops=res.stats.sustained_gflops,
        retries=sum(s.retries for s in res.comm_stats),
        injected_delay_s=sum(s.fault_delay_s for s in res.comm_stats),
        fault_events=res.fault_events,
        comm_stats=res.comm_stats,
        recoveries=res.stats.recoveries,
        restarts=res.stats.restarts,
        wasted_iterations=res.stats.wasted_iterations,
        lost_time_s=res.stats.lost_time,
        recovery_events=res.recovery_events,
        final_ranks=len(res.comm_stats) or None,
        converged=res.stats.converged if res.true_residual is not None else None,
        true_residual=res.true_residual,
        corruptions_detected=res.stats.corruptions_detected,
        corruptions_corrected=res.stats.corruptions_corrected,
        resends=sum(s.resends for s in res.comm_stats),
        integrity_overhead_s=res.stats.integrity_overhead,
    )


def chaos_solve(
    dims: tuple[int, int, int, int],
    mode: str,
    n_gpus: int,
    plan: FaultPlan,
    *,
    overlap: bool = True,
    cluster: ClusterSpec | None = None,
    gpu_spec: GPUSpec = GTX285,
    fixed_iterations: int = FIXED_ITERATIONS,
    solver: str = "bicgstab",
    retry_policy: RetryPolicy | None = None,
    integrity: IntegrityPolicy | None = None,
) -> ChaosReport:
    """One timing-only solve under a fault plan.

    Jitter/retry plans complete (later); lethal plans (stall/crash) end
    in a structured :class:`~repro.comms.faults.RankFailedError`, which
    is reported rather than raised — graceful degradation is the point
    of a chaos run.  With a ``retry_policy`` the solve instead relaunches
    over the survivors and resumes from its last refresh-point
    checkpoint, and the report carries the recovery accounting.
    """
    inv = paper_invert_param(
        mode, overlap_comms=overlap, fixed_iterations=fixed_iterations,
        solver=solver, retry_policy=retry_policy,
    )
    try:
        res = invert_model(
            dims, inv, n_gpus=n_gpus, cluster=cluster, gpu_spec=gpu_spec,
            enforce_memory=False, fault_plan=plan, integrity=integrity,
        )
    except RuntimeError as exc:
        report = _failed_report(plan, exc)
        if report is None:
            raise
        return report
    return _completed_report(plan, res)


def chaos_invert(
    dims: tuple[int, int, int, int],
    mode: str,
    n_gpus: int,
    plan: FaultPlan,
    *,
    mass: float = 0.2,
    seed: int = 31,
    noise: float = 0.15,
    overlap: bool = True,
    cluster: ClusterSpec | None = None,
    gpu_spec: GPUSpec = GTX285,
    solver: str = "bicgstab",
    retry_policy: RetryPolicy | None = None,
    integrity: IntegrityPolicy | None = None,
) -> ChaosReport:
    """One *functional* solve (real numerics) under a fault plan.

    The acceptance test for self-healing solves: a weak-field
    configuration, a random source, a fault plan that kills a rank
    mid-solve — with a ``retry_policy`` the report must come back
    ``completed`` *and* ``converged`` with the true residual verified
    against the host reference operator.
    """
    from ..lattice import LatticeGeometry, random_spinor, weak_field_gauge

    rng = np.random.default_rng(seed)
    geo = LatticeGeometry(dims)
    gauge = weak_field_gauge(geo, rng, noise=noise)
    src = random_spinor(geo, rng)
    inv = paper_invert_param(
        mode, mass=mass, overlap_comms=overlap, solver=solver,
        retry_policy=retry_policy,
    )
    try:
        res = invert(
            gauge, src, inv, n_gpus=n_gpus, cluster=cluster,
            gpu_spec=gpu_spec, fault_plan=plan, integrity=integrity,
        )
    except RuntimeError as exc:
        report = _failed_report(plan, exc)
        if report is None:
            raise
        return report
    return _completed_report(plan, res)


# --------------------------------------------------------------------- #
# Solve-service benchmark (closed-loop, batched vs unbatched)
# --------------------------------------------------------------------- #

def service_benchmark(
    n_requests: int = 64,
    *,
    dims: tuple[int, int, int, int] = (16, 16, 16, 64),
    mode: str = "single-half",
    workers: int = 2,
    ranks: int = 2,
    max_batch: int = 8,
    rate_rps: float = 2000.0,
    iterations: int = 10,
    seed: int = 2010,
) -> dict:
    """Serve one synthetic campaign twice — multi-RHS batching on
    (``max_batch``) versus off (batch size 1) — and report both
    scorecards plus the throughput ratio.

    Setup (gauge upload, ghost-zone allocation, operator construction)
    is paid once per *batch*, so the batched schedule completes the same
    campaign in less model time; the margin grows with lattice volume
    because the setup transfers scale with the gauge field while the
    per-iteration cost is amortized over right-hand sides.
    """
    from ..service import (
        BatchPolicy,
        ServiceConfig,
        SolveService,
        synthetic_workload,
    )

    workload = synthetic_workload(
        n_requests, seed=seed, rate_rps=rate_rps, dims=dims, mode=mode
    )

    def serve(batch: int) -> dict:
        config = ServiceConfig(
            queue_capacity=max(n_requests, 1),
            policy=BatchPolicy(max_batch=batch),
            n_workers=workers,
            ranks_per_worker=ranks,
            fixed_iterations=iterations,
        )
        return SolveService(config).run(workload).report.to_json()

    batched = serve(max_batch)
    unbatched = serve(1)
    speedup = (
        batched["throughput_rps"] / unbatched["throughput_rps"]
        if unbatched["throughput_rps"]
        else float("inf")
    )
    return {
        "campaign": {
            "requests": n_requests,
            "dims": list(dims),
            "mode": mode,
            "workers": workers,
            "ranks_per_worker": ranks,
            "max_batch": max_batch,
            "rate_rps": rate_rps,
            "iterations": iterations,
            "seed": seed,
        },
        "batched": batched,
        "unbatched": unbatched,
        "batched_vs_unbatched_throughput": round(speedup, 4),
    }


def residency_benchmark(
    n_requests: int = 48,
    *,
    dims: tuple[int, int, int, int] = (16, 16, 16, 64),
    mode: str = "single-half",
    workers: int = 2,
    ranks: int = 2,
    n_configs: int = 2,
    max_batch: int = 8,
    rate_rps: float = 2000.0,
    iterations: int = 10,
    seed: int = 2010,
) -> dict:
    """Serve one ``n_configs``-configuration campaign twice — gauge
    residency on (*warm pool*: batches route to a worker whose device
    already holds the configuration, the upload is charged only on a
    miss) versus off (*cold*: every batch pays the host→device gauge
    upload) — and report both scorecards plus the makespan ratio.

    With two configurations interleaving over two workers, the warm run
    settles into one-config-per-worker affinity and most batches are
    residency hits; the cold run re-uploads on every batch.  The shared
    tunecache is enabled in both runs, so the measured margin isolates
    the residency credit.
    """
    from ..service import (
        BatchPolicy,
        PlacementPolicy,
        ServiceConfig,
        SolveService,
        synthetic_workload,
    )

    workload = synthetic_workload(
        n_requests,
        seed=seed,
        rate_rps=rate_rps,
        dims=dims,
        mode=mode,
        n_configs=n_configs,
    )

    def serve(residency: bool) -> dict:
        config = ServiceConfig(
            queue_capacity=max(n_requests, 1),
            policy=BatchPolicy(max_batch=max_batch),
            n_workers=workers,
            ranks_per_worker=ranks,
            fixed_iterations=iterations,
            placement=PlacementPolicy(residency=residency),
        )
        return SolveService(config).run(workload).report.to_json()

    warm = serve(True)
    cold = serve(False)
    ratio = (
        cold["makespan_us"] / warm["makespan_us"]
        if warm["makespan_us"]
        else float("inf")
    )
    return {
        "campaign": {
            "requests": n_requests,
            "dims": list(dims),
            "mode": mode,
            "workers": workers,
            "ranks_per_worker": ranks,
            "configs": n_configs,
            "max_batch": max_batch,
            "rate_rps": rate_rps,
            "iterations": iterations,
            "seed": seed,
        },
        "warm": warm,
        "cold": cold,
        "cold_vs_warm_makespan": round(ratio, 4),
    }


def daemon_benchmark(
    n_requests: int = 96,
    *,
    dims: tuple[int, int, int, int] = (8, 8, 8, 32),
    mode: str = "single-half",
    ranks: int = 2,
    max_batch: int = 8,
    base_rps: float = 300.0,
    burst_rps: float = 12000.0,
    burst_start_s: float = 0.01,
    burst_len_s: float = 0.01,
    iterations: int = 10,
    seed: int = 11,
) -> dict:
    """Stream one seeded bursty campaign through the daemon twice —
    refresh-boundary preemption on versus off — on an elastic pool, and
    report both scorecards plus the HIGH-priority p99 ratio.

    The burst drives the autoscaler up and the quiet tail back down
    (both runs share the scale trajectory: preemption does not change
    arrival accounting); preemption lets HIGH arrivals claim a worker at
    the next refresh boundary instead of queueing behind a full LOW
    batch, so the HIGH p99 improves while LOW pays the resume overhead.
    """
    from ..service import (
        BatchPolicy,
        ElasticPolicy,
        PreemptionPolicy,
        ServiceConfig,
        SolveService,
        bursty_workload,
    )

    def serve(preempt: bool) -> dict:
        config = ServiceConfig(
            queue_capacity=max(4 * n_requests, 64),
            policy=BatchPolicy(max_batch=max_batch),
            n_workers=1,
            ranks_per_worker=ranks,
            fixed_iterations=iterations,
            preemption=PreemptionPolicy(enabled=preempt),
            elastic=ElasticPolicy(min_workers=1, max_workers=6),
        )
        workload = bursty_workload(
            n_requests,
            seed=seed,
            base_rps=base_rps,
            burst_rps=burst_rps,
            burst_start_s=burst_start_s,
            burst_len_s=burst_len_s,
            dims=dims,
            mode=mode,
            priority_mix=(0.2, 0.3, 0.5),
        )
        return SolveService(config).serve(workload).report.to_json()

    preempt_on = serve(True)
    preempt_off = serve(False)
    p99_on = preempt_on["priority_latency"]["high"]["p99_us"]
    p99_off = preempt_off["priority_latency"]["high"]["p99_us"]
    return {
        "campaign": {
            "requests": n_requests,
            "dims": list(dims),
            "mode": mode,
            "ranks_per_worker": ranks,
            "max_batch": max_batch,
            "base_rps": base_rps,
            "burst_rps": burst_rps,
            "burst_start_ms": burst_start_s * 1e3,
            "burst_len_ms": burst_len_s * 1e3,
            "iterations": iterations,
            "seed": seed,
        },
        "preempt_on": preempt_on,
        "preempt_off": preempt_off,
        "high_p99_off_vs_on": (
            round(p99_off / p99_on, 4) if p99_on else float("inf")
        ),
    }


def resilience_benchmark(
    n_requests: int = 64,
    *,
    dims: tuple[int, int, int, int] = (4, 4, 4, 8),
    mode: str = "double-half",
    ranks: int = 2,
    workers: int = 3,
    max_batch: int = 8,
    base_rps: float = 1500.0,
    burst_rps: float = 12000.0,
    burst_start_s: float = 1e-3,
    burst_len_s: float = 3e-3,
    deadline_slack_s: float = 0.3,
    straggler_factor: float = 3.0,
    iterations: int = 10,
    seed: int = 23,
) -> dict:
    """The PR-7 acceptance campaign: one seeded overloaded bursty stream
    served twice — resilience (breaker + hedging + brownout) on versus
    off — against the same hostile pool: worker 0 flaky (one planned
    crash), worker 2 a ``straggler_factor``x straggler.

    With resilience on, the breaker quarantines the flaky worker and
    reinstates it after a clean probe, hedged replicas rescue straggling
    batches, and the brownout controller sheds LOW under the burst
    instead of blowing every deadline — so the HIGH p99 must be strictly
    better and the SLO attainment no worse than the undefended run,
    while *both* runs terminate every admitted request.
    """
    from ..comms.faults import FaultPlan, WorkerFaultPlan
    from ..service import (
        BatchPolicy,
        BrownoutPolicy,
        HealthPolicy,
        HedgePolicy,
        ServiceConfig,
        SolveService,
        bursty_workload,
    )

    def serve(resilient: bool) -> dict:
        config = ServiceConfig(
            queue_capacity=max(4 * n_requests, 64),
            policy=BatchPolicy(max_batch=max_batch),
            n_workers=workers,
            ranks_per_worker=ranks,
            fixed_iterations=iterations,
            max_retries=2,
            fault_plan=FaultPlan(seed=3).with_stall(
                0, after_s=0.0, mode="crash"
            ),
            chaos_workers=(0,),
            worker_faults=WorkerFaultPlan().with_straggler(
                2, factor=straggler_factor
            ),
            # One hard failure trips the breaker; the soft slow signal
            # is muted (slow_ratio) so the known straggler is handled by
            # hedging, not by repeatedly parking a third of the pool.
            health=HealthPolicy(
                enabled=True, min_samples=1, trip_rate=0.5,
                cooldown_s=1e-3, slow_ratio=1e3,
            ) if resilient else None,
            hedge=HedgePolicy(enabled=True) if resilient else None,
            # Thresholds scaled to this campaign's ~50 ms batches: LOW
            # sheds at about one queued batch per worker, precision
            # degrades at two, and only a three-deep backlog refuses
            # NORMAL traffic.
            brownout=BrownoutPolicy(
                enabled=True,
                shed_low_at_s=60e-3,
                degrade_at_s=120e-3,
                reject_at_s=240e-3,
            ) if resilient else None,
        )
        workload = bursty_workload(
            n_requests,
            seed=seed,
            base_rps=base_rps,
            burst_rps=burst_rps,
            burst_start_s=burst_start_s,
            burst_len_s=burst_len_s,
            dims=dims,
            mode=mode,
            priority_mix=(0.25, 0.5, 0.25),
            deadline_slack_s=deadline_slack_s,
        )
        return SolveService(config).serve(workload).report.to_json()

    on = serve(True)
    off = serve(False)
    p99_on = on["priority_latency"]["high"]["p99_us"]
    p99_off = off["priority_latency"]["high"]["p99_us"]
    return {
        "campaign": {
            "requests": n_requests,
            "dims": list(dims),
            "mode": mode,
            "workers": workers,
            "ranks_per_worker": ranks,
            "max_batch": max_batch,
            "base_rps": base_rps,
            "burst_rps": burst_rps,
            "burst_start_ms": burst_start_s * 1e3,
            "burst_len_ms": burst_len_s * 1e3,
            "deadline_slack_ms": deadline_slack_s * 1e3,
            "straggler_factor": straggler_factor,
            "iterations": iterations,
            "seed": seed,
        },
        "resilience_on": on,
        "resilience_off": off,
        "high_p99_off_vs_on": (
            round(p99_off / p99_on, 4) if p99_on else float("inf")
        ),
    }


def domain_resilience_benchmark(
    n_requests: int = 64,
    *,
    dims: tuple[int, int, int, int] = (4, 4, 4, 8),
    mode: str = "double-half",
    ranks: int = 2,
    nodes: int = 3,
    workers_per_node: int = 3,
    racks: int = 3,
    max_batch: int = 4,
    base_rps: float = 1500.0,
    burst_rps: float = 12000.0,
    burst_start_s: float = 1e-3,
    burst_len_s: float = 3e-3,
    kill_node: int = 1,
    kill_at_s: float = 2e-3,
    partition_rack: int = 2,
    partition_at_s: float = 3e-3,
    heal_mean_s: float = 2e-3,
    iterations: int = 10,
    n_configs: int = 4,
    seed: int = 11,
) -> dict:
    """The PR-8 acceptance campaign: one seeded bursty stream served
    twice against the same correlated faults — a *silent* node kill plus
    a switch partition — with the failure-domain layer on versus off.

    Both runs carry the full per-worker resilience stack (breaker,
    hedging); the ablation isolates exactly the domain features.  OFF
    must discover the dead node one worker at a time (each keeps
    attracting traffic until its own ledger trips); ON escalates the
    second correlated strike into a whole-node quarantine, so its
    time-to-isolate is strictly lower and its HIGH p99 no worse, while
    both runs terminate every admitted request.  A separate mini-run
    crashes the scheduler after the node hosting the primary checkpoint
    replica dies and must resume from the cross-domain mirror.
    """
    from ..comms.cluster import Topology
    from ..comms.faults import DomainFaultPlan
    from ..service import (
        BatchPolicy,
        DomainPolicy,
        HealthPolicy,
        HedgePolicy,
        MirroredCheckpointStore,
        SchedulerCrash,
        ServiceConfig,
        SolveService,
        bursty_workload,
    )

    topology = Topology(
        n_nodes=nodes, workers_per_node=workers_per_node, n_racks=racks
    )
    faults = (
        DomainFaultPlan(seed=seed)
        .with_node_kill(kill_node, at_s=kill_at_s)
        .with_partition(
            partition_rack, at_s=partition_at_s, mean_heal_s=heal_mean_s
        )
    )

    def config(domain_aware: bool, checkpoint_every: int = 1000000):
        return ServiceConfig(
            queue_capacity=max(4 * n_requests, 64),
            policy=BatchPolicy(max_batch=max_batch),
            n_workers=topology.n_workers,
            ranks_per_worker=ranks,
            fixed_iterations=iterations,
            max_retries=4,
            seed=seed,
            topology=topology,
            domain_faults=faults,
            domain_health=(
                DomainPolicy(enabled=True, strike_k=2, cooldown_s=2e-3)
                if domain_aware
                else None
            ),
            anti_affinity=domain_aware,
            health=HealthPolicy(
                enabled=True, min_samples=1, trip_rate=0.5,
                cooldown_s=1e-3, slow_ratio=1e3,
            ),
            hedge=HedgePolicy(enabled=True),
            checkpoint_every=checkpoint_every,
        )

    def workload():
        return bursty_workload(
            n_requests,
            seed=seed,
            base_rps=base_rps,
            burst_rps=burst_rps,
            burst_start_s=burst_start_s,
            burst_len_s=burst_len_s,
            dims=dims,
            mode=mode,
            priority_mix=(0.25, 0.5, 0.25),
            deadline_slack_s=0.5,
            n_configs=n_configs,
        )

    on = SolveService(config(True)).serve(workload()).report.to_json()
    off = SolveService(config(False)).serve(workload()).report.to_json()
    isolate_on = on["domains"]["isolation_ms"].get(str(kill_node))
    isolate_off = off["domains"]["isolation_ms"].get(str(kill_node))
    p99_on = on["priority_latency"]["high"]["p99_us"]
    p99_off = off["priority_latency"]["high"]["p99_us"]

    # Cross-domain checkpoint replication: the primary replica lives on
    # the node the kill takes out; the scheduler then crashes and must
    # come back from the mirror with nothing lost.
    store = MirroredCheckpointStore(
        primary_domain=kill_node,
        mirror_domain=(kill_node + 1) % nodes,
    )
    try:
        SolveService(config(True, checkpoint_every=2)).serve(
            workload(), checkpoint=store, crash_at_s=kill_at_s + 2e-3
        )
        mirror_report = None  # pragma: no cover - crash always fires
    except SchedulerCrash as crash:
        mirror_report = (
            SolveService(config(True, checkpoint_every=2))
            .resume(workload(), checkpoint=crash.store)
            .report.to_json()
        )

    return {
        "campaign": {
            "requests": n_requests,
            "dims": list(dims),
            "mode": mode,
            "topology": str(topology),
            "ranks_per_worker": ranks,
            "max_batch": max_batch,
            "base_rps": base_rps,
            "burst_rps": burst_rps,
            "burst_start_ms": burst_start_s * 1e3,
            "burst_len_ms": burst_len_s * 1e3,
            "kill_node": kill_node,
            "kill_at_ms": kill_at_s * 1e3,
            "partition_rack": partition_rack,
            "partition_at_ms": partition_at_s * 1e3,
            "heal_mean_ms": heal_mean_s * 1e3,
            "iterations": iterations,
            "n_configs": n_configs,
            "seed": seed,
        },
        "domain_on": on,
        "domain_off": off,
        "time_to_isolate_ms_on": isolate_on,
        "time_to_isolate_ms_off": isolate_off,
        "isolate_off_vs_on": (
            round(isolate_off / isolate_on, 4)
            if isolate_on and isolate_off
            else None
        ),
        "high_p99_off_vs_on": (
            round(p99_off / p99_on, 4) if p99_on else float("inf")
        ),
        "mirror_resume": {
            "mirror_restores": (
                mirror_report["domains"]["mirror_restores"]
                if mirror_report
                else 0
            ),
            "checkpoint_restores": (
                mirror_report["checkpoint_restores"] if mirror_report else 0
            ),
            "failed": mirror_report["failed"] if mirror_report else None,
        },
    }


def capacity_sweep(
    n_requests: int = 192,
    *,
    dims: tuple[int, int, int, int] = (4, 4, 4, 8),
    mode: str = "double-half",
    ranks: int = 2,
    max_batch: int = 4,
    rates: tuple[float, ...] = (40.0, 80.0, 160.0, 320.0),
    workers: tuple[int, ...] = (2, 4),
    deadline_slack_s: float = 0.15,
    iterations: int = 10,
    seed: int = 31,
) -> dict:
    """The multi-tenant saturation map: arrival rate x tenant mix x
    worker count, one seeded streaming campaign per cell.

    Each cell serves the same Poisson request stream split across two
    tenants under weighted-fair dispatch (the ``equal`` mix at 1:1
    weights, the ``weighted_3to1`` mix at 3:1) and reports SLO
    attainment, throughput/goodput, the per-tenant completion shares,
    and the no-lost-requests check.  Per (mix, workers) series the
    *knee* is the highest swept rate whose SLO attainment still holds
    ``slo_floor`` — beyond it the service is saturated and attainment
    degrades monotonically with offered load, which is the capacity
    contract the CI smoke job pins.
    """
    from ..service import (
        BatchPolicy,
        ServiceConfig,
        SolveService,
        TenancyPolicy,
        stream_workload,
    )

    slo_floor = 0.95
    mixes = {
        "equal": ("atlas", "bell", (1.0, 1.0)),
        "weighted_3to1": ("atlas", "bell", (3.0, 1.0)),
    }
    cells = []
    for mix_name, (a, b, mix_weights) in mixes.items():
        for n_workers in workers:
            for rate in rates:
                config = ServiceConfig(
                    queue_capacity=max(4 * n_requests, 64),
                    policy=BatchPolicy(max_batch=max_batch),
                    n_workers=n_workers,
                    ranks_per_worker=ranks,
                    fixed_iterations=iterations,
                    seed=seed,
                    tenancy=TenancyPolicy.build(
                        (a, b), weights=mix_weights
                    ),
                )
                workload = stream_workload(
                    n_requests,
                    seed=seed,
                    rate_rps=rate,
                    dims=dims,
                    mode=mode,
                    priority_mix=(0.0, 1.0, 0.0),
                    deadline_slack_s=deadline_slack_s,
                    tenants=(a, b),
                )
                result = SolveService(config).serve(workload)
                rep = result.report.to_json()
                # Fairness shows while *both* tenants are backlogged: a
                # finite campaign eventually serves everyone, so whole-run
                # completion counts just mirror the arrival mix.  Count
                # completions inside the arrival window instead — while
                # load keeps arriving, the completion shares are the
                # dispatch shares WFQ controls.
                last_arrival = max(
                    r.request.arrival_s for r in result.records
                )
                in_window = {
                    name: sum(
                        1
                        for r in result.records
                        if r.request.tenant == name
                        and r.completed_s is not None
                        and r.state == "completed"
                        and r.completed_s <= last_arrival
                    )
                    for name in rep["tenants"]
                }
                served = sum(in_window.values())
                cells.append(
                    {
                        "mix": mix_name,
                        "workers": n_workers,
                        "rate_rps": rate,
                        "slo_attainment": rep["slo_attainment"],
                        "throughput_rps": rep["throughput_rps"],
                        "goodput_rps": rep["goodput_rps"],
                        "completed": rep["completed"],
                        "failed": rep["failed"],
                        "rejected": rep["rejected"],
                        "lost": rep["requests"]
                        - rep["completed"]
                        - rep["failed"]
                        - rep["rejected"],
                        "tenants": {
                            name: {
                                "weight_share": t["weight_share"],
                                "completed": t["completed"],
                                "completed_in_window": in_window[name],
                                # The fairness signal: this tenant's slice
                                # of the work served while load was still
                                # arriving, which WFQ drives toward
                                # weight_share under sustained backlog.
                                "share": (
                                    round(in_window[name] / served, 4)
                                    if served
                                    else 0.0
                                ),
                                "goodput_rps": t["goodput_rps"],
                                "quota_rejected": t["quota_rejected"],
                            }
                            for name, t in rep["tenants"].items()
                        },
                    }
                )
    knees = []
    for mix_name in mixes:
        for n_workers in workers:
            series = [
                c
                for c in cells
                if c["mix"] == mix_name and c["workers"] == n_workers
            ]
            holding = [
                c["rate_rps"]
                for c in series
                if c["slo_attainment"] >= slo_floor
            ]
            knees.append(
                {
                    "mix": mix_name,
                    "workers": n_workers,
                    "knee_rate_rps": max(holding) if holding else None,
                }
            )
    # Aggregate fairness over *deep* overload (rate >= 4x the series
    # knee): WFQ shares converge to weights only while every tenant's
    # demand exceeds its allocation, and single cells are quantized to
    # batch granularity — summing in-window completions across the
    # saturated cells is the statistically honest share estimate.
    fairness = {}
    for mix_name, (a, b, mix_weights) in mixes.items():
        used = []
        for k in knees:
            if k["mix"] != mix_name or k["knee_rate_rps"] is None:
                continue
            used.extend(
                c
                for c in cells
                if c["mix"] == mix_name
                and c["workers"] == k["workers"]
                and c["rate_rps"] >= 4 * k["knee_rate_rps"]
            )
        counts = {
            name: sum(c["tenants"][name]["completed_in_window"] for c in used)
            for name in (a, b)
        }
        total = sum(counts.values())
        shares = {
            name: (counts[name] / total if total else 0.0) for name in counts
        }
        weight_shares = {
            a: mix_weights[0] / sum(mix_weights),
            b: mix_weights[1] / sum(mix_weights),
        }
        normalized = [
            shares[name] / weight_shares[name] if shares[name] else 0.0
            for name in counts
        ]
        fairness[mix_name] = {
            "cells_used": len(used),
            "completed_in_window": counts,
            "shares": {n: round(s, 4) for n, s in shares.items()},
            "weight_shares": weight_shares,
            # max/min of share/weight_share: 1.0 = perfectly weighted-fair.
            "imbalance": (
                round(max(normalized) / min(normalized), 4)
                if all(n > 0 for n in normalized)
                else float("inf")
            ),
        }
    return {
        "campaign": {
            "requests": n_requests,
            "dims": list(dims),
            "mode": mode,
            "ranks_per_worker": ranks,
            "max_batch": max_batch,
            "rates_rps": list(rates),
            "workers": list(workers),
            "deadline_slack_ms": deadline_slack_s * 1e3,
            "iterations": iterations,
            "seed": seed,
            "slo_floor": slo_floor,
        },
        "cells": cells,
        "knees": knees,
        "fairness": fairness,
    }


def hot_campaign(
    n_requests: int = 1024,
    *,
    dims: tuple[int, int, int, int] = (4, 4, 4, 8),
    rate_rps: float = 20000.0,
    max_batch: int = 4,
    workers: int = 2,
    ranks: int = 2,
    queue_capacity: int = 4096,
    iterations: int = 10,
    seed: int = 7,
):
    """The saturated scheduler campaign both raw-speed tools share.

    A high arrival rate against a small lattice keeps the backlog deep
    for the whole run, so wall-clock time is dominated by the scheduler
    hot path (ordering, batch selection, placement, perf-model
    evaluation) rather than by the simulated solves — exactly the code
    the raw-speed refactor targets.  Returns ``(config, workload)``;
    the same seed always yields the same campaign.
    """
    from ..service import (
        BatchPolicy,
        ServiceConfig,
        synthetic_workload,
    )

    config = ServiceConfig(
        queue_capacity=queue_capacity,
        policy=BatchPolicy(max_batch=max_batch),
        n_workers=workers,
        ranks_per_worker=ranks,
        fixed_iterations=iterations,
    )
    workload = synthetic_workload(
        n_requests, seed=seed, rate_rps=rate_rps, dims=dims
    )
    return config, workload


def throughput_benchmark(
    n_requests: int = 1024,
    *,
    warmup_requests: int = 48,
    repeats: int = 3,
    **campaign_kwargs,
) -> dict:
    """Wall-clock requests/second of the hot campaign, legacy vs fast.

    Unlike every other benchmark in this module this one measures *wall*
    time, not model time: the raw-speed refactor is behavior-preserving
    (byte-identical reports — asserted here), so the only thing it can
    change is how fast the host CPU gets through the schedule.  Protocol:

    * both sides run in one process via :func:`repro.fastpath.set_enabled`
      (flipping clears the memo caches, so "fast" starts cold);
    * a small warm-up campaign per side is excluded from timing;
    * the ``repeats`` rounds **interleave** the two sides (legacy, fast,
      legacy, fast, ...) so a drift in machine speed across the
      benchmark window cancels out of the ratio;
    * each side is the **best** of its rounds (wall benchmarks take the
      minimum — anything slower is interference, not the code);
    * only the dimensionless ``speedup`` is comparable across machines;
      the absolute rps numbers are recorded for context.
    """
    import time as _time

    from .. import fastpath
    from ..service import SolveService

    def measure(n: int) -> tuple[float, str]:
        config, workload = hot_campaign(n, **campaign_kwargs)
        t0 = _time.perf_counter()
        campaign = SolveService(config).run(workload)
        elapsed = _time.perf_counter() - t0
        return n / elapsed, campaign.report.render_json()

    before = fastpath.enabled()
    sides = {
        "before": {"rps": 0.0, "report": None},
        "after": {"rps": 0.0, "report": None},
    }
    try:
        for _ in range(repeats):
            for name, flag in (("before", False), ("after", True)):
                fastpath.set_enabled(flag)
                # Toggling cleared the memo caches: re-warm outside the
                # timed window every round so both sides are measured
                # steady-state.
                measure(warmup_requests)
                rps, rendered = measure(n_requests)
                if rps > sides[name]["rps"]:
                    sides[name]["rps"] = rps
                sides[name]["report"] = rendered
    finally:
        fastpath.set_enabled(before)
    if sides["before"]["report"] != sides["after"]["report"]:
        raise AssertionError(
            "fastpath changed the campaign report — the throughput "
            "comparison would be measuring a behavior change, not speed"
        )
    config, _ = hot_campaign(n_requests, **campaign_kwargs)
    return {
        "campaign": {
            "requests": n_requests,
            "warmup_requests": warmup_requests,
            "repeats": repeats,
            "queue_capacity": config.queue_capacity,
            "max_batch": config.policy.max_batch,
            "workers": config.n_workers,
            "ranks_per_worker": config.ranks_per_worker,
            "iterations": config.fixed_iterations,
            **{
                k: (list(v) if isinstance(v, tuple) else v)
                for k, v in campaign_kwargs.items()
            },
        },
        "reports_identical": True,
        "before_rps": round(sides["before"]["rps"], 1),
        "after_rps": round(sides["after"]["rps"], 1),
        "speedup": round(sides["after"]["rps"] / sides["before"]["rps"], 2),
    }


def render_capacity_map(cap: dict) -> str:
    """Human-readable saturation map (the ``--capacity-sweep`` output)."""
    lines = [
        f"capacity sweep: {cap['campaign']['requests']} requests/cell, "
        f"rates {cap['campaign']['rates_rps']} rps, "
        f"workers {cap['campaign']['workers']}, "
        f"SLO floor {cap['campaign']['slo_floor']:.2f}",
        f"{'mix':<14} {'workers':>7} {'rate':>7} {'SLO':>7} "
        f"{'goodput':>8} {'shares (vs weights)':>24}",
    ]
    for c in cap["cells"]:
        shares = ", ".join(
            f"{name} {t['share'] * 100:.0f}%/{t['weight_share'] * 100:.0f}%"
            for name, t in sorted(c["tenants"].items())
        )
        lines.append(
            f"{c['mix']:<14} {c['workers']:>7} {c['rate_rps']:>7.0f} "
            f"{c['slo_attainment'] * 100:>6.1f}% "
            f"{c['goodput_rps']:>8.1f} {shares:>24}"
        )
    for k in cap["knees"]:
        knee = (
            f"{k['knee_rate_rps']:.0f} rps"
            if k["knee_rate_rps"] is not None
            else "below sweep range"
        )
        lines.append(
            f"knee [{k['mix']} @ {k['workers']} worker(s)]: {knee}"
        )
    for mix_name, f in cap.get("fairness", {}).items():
        shares = ", ".join(
            f"{name} {s * 100:.1f}%" for name, s in sorted(f["shares"].items())
        )
        lines.append(
            f"fairness [{mix_name}]: {shares} over {f['cells_used']} "
            f"saturated cell(s), imbalance {f['imbalance']:.3f}"
        )
    return "\n".join(lines)


def write_service_bench(path: str = "BENCH_service.json", **kwargs) -> dict:
    """Run :func:`service_benchmark` plus the gauge-residency ablation
    (:func:`residency_benchmark`), the daemon-era preemption/elastic
    benchmark (:func:`daemon_benchmark`), and the resilience-era
    failure-domain benchmark (:func:`resilience_benchmark`), and write
    the machine-readable scorecard (wait percentiles, throughput, batch
    occupancy, warm- vs cold-pool makespans, HIGH-p99 preemption margin,
    scale events, breaker/hedging/brownout ledgers) to ``path``."""
    import json

    result = service_benchmark(**kwargs)
    result["residency_ablation"] = residency_benchmark()
    result["daemon"] = daemon_benchmark()
    result["resilience"] = resilience_benchmark()
    result["domain_resilience"] = domain_resilience_benchmark()
    result["capacity_map"] = capacity_sweep()
    # Wall-clock (not model-time) raw-speed scorecard; only its
    # dimensionless ``speedup`` is machine-portable.  The campaign
    # reports are not embedded (byte-identity is asserted inside).
    result["throughput"] = throughput_benchmark()
    with open(path, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return result
