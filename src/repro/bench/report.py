"""Reporting utilities: fixed-width tables and paper-vs-measured records.

Every figure/table driver in :mod:`repro.bench.figures` returns one
:class:`Experiment` containing its :class:`Series` rows plus the paper's
reference values, so EXPERIMENTS.md and the bench output are generated
from a single source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Series", "Experiment", "format_table"]


@dataclass
class Series:
    """One curve of a figure: (x, y) pairs with a label."""

    label: str
    x: list[float]
    y: list[float | None]

    def at(self, x_value: float) -> float | None:
        try:
            return self.y[self.x.index(x_value)]
        except ValueError:
            return None


@dataclass
class Experiment:
    """One reproduced table/figure with its paper reference points."""

    exp_id: str  # e.g. "fig5a"
    title: str
    x_label: str
    y_label: str
    series: list[Series] = field(default_factory=list)
    #: (series label, x, paper value, tolerance note) reference points
    #: read off the paper's figures for the comparison report.
    paper_points: list[tuple[str, float, float]] = field(default_factory=list)
    notes: str = ""

    def series_by_label(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"{self.exp_id}: no series {label!r}")

    def comparison_rows(self) -> list[tuple[str, float, float, float | None, float | None]]:
        """(label, x, paper, measured, ratio) for every reference point."""
        rows = []
        for label, x, paper in self.paper_points:
            measured = self.series_by_label(label).at(x)
            ratio = None if (measured is None or paper == 0) else measured / paper
            rows.append((label, x, paper, measured, ratio))
        return rows

    def render(self) -> str:
        """Fixed-width text rendering of the whole experiment."""
        lines = [f"== {self.exp_id}: {self.title} ==", ""]
        xs = sorted({x for s in self.series for x in s.x})
        header = [f"{self.x_label:>12s}"] + [f"{s.label:>26s}" for s in self.series]
        lines.append(" ".join(header))
        for x in xs:
            row = [f"{x:>12g}"]
            for s in self.series:
                v = s.at(x)
                row.append(f"{'-':>26s}" if v is None else f"{v:>26.1f}")
            lines.append(" ".join(row))
        if self.paper_points:
            lines += ["", f"paper-vs-measured ({self.y_label}):"]
            for label, x, paper, measured, ratio in self.comparison_rows():
                m = "-" if measured is None else f"{measured:9.1f}"
                r = "-" if ratio is None else f"{ratio:5.2f}x"
                lines.append(
                    f"  {label:<34s} @ {x:>5g}: paper {paper:9.1f}  measured {m}  ratio {r}"
                )
        if self.notes:
            lines += ["", self.notes]
        return "\n".join(lines)


def format_table(headers: list[str], rows: list[list[object]]) -> str:
    """Render a simple fixed-width table."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    def fmt(row):
        return "  ".join(str(c).rjust(w) for c, w in zip(row, widths))

    sep = "  ".join("-" * w for w in widths)
    return "\n".join([fmt(headers), sep] + [fmt(r) for r in rows])
