"""Drivers regenerating every table and figure of the paper's evaluation.

Each ``fig*()``/``table*()`` function runs the corresponding experiment on
the simulated cluster and returns an :class:`~repro.bench.report.Experiment`
holding the measured series *and* the paper's reference values (read off
the published figures; the paper prints few exact numbers), so the bench
output and EXPERIMENTS.md can show paper-vs-measured side by side.

We do not expect to match absolute numbers — the substrate is a calibrated
simulator, not the 9g cluster — but the *shape* must hold: who wins, by
roughly what factor, and where the crossovers fall.  The shape assertions
live in ``tests/bench/`` and ``benchmarks/``.
"""

from __future__ import annotations

from ..comms.cluster import ClusterSpec
from ..gpu.perfmodel import DEFAULT_PARAMS, pcie_time
from ..gpu.specs import TABLE_I, XEON_E5530
from .harness import FIXED_ITERATIONS, ScalingPoint, run_scaling_point
from .report import Experiment, Series, format_table

__all__ = [
    "table1",
    "fig4a",
    "fig4b",
    "fig5a",
    "fig5b",
    "fig6",
    "fig7",
    "cpu_comparison",
    "memory_footprint",
    "ALL_FIGURES",
]

#: GPU counts of the paper's scaling studies ("for up to 32 GPUs").
GPU_COUNTS = [1, 2, 4, 8, 16, 32]


def _sweep(
    dims_for,
    mode: str,
    gpu_counts,
    *,
    overlap: bool,
    cluster: ClusterSpec | None = None,
    iterations: int = FIXED_ITERATIONS,
) -> Series:
    label = f"{mode}{'' if overlap else ', not overlapped'}"
    points: list[ScalingPoint] = [
        run_scaling_point(
            dims_for(n), mode, n, overlap=overlap, cluster=cluster,
            fixed_iterations=iterations,
        )
        for n in gpu_counts
    ]
    return Series(
        label=label,
        x=[p.n_gpus for p in points],
        y=[p.gflops for p in points],
    )


# ------------------------------------------------------------------------ #
# Table I
# ------------------------------------------------------------------------ #


def table1() -> str:
    """Reproduce Table I (specifications of representative NVIDIA cards)."""
    rows = [
        [
            s.name,
            s.cores,
            s.bandwidth_gbs,
            s.gflops_sp,
            "N/A" if s.gflops_dp is None else s.gflops_dp,
            s.ram_gib,
        ]
        for s in TABLE_I.values()
    ]
    return format_table(
        ["Card", "Cores", "GB/s", "Gflops 32-bit", "Gflops 64-bit", "GiB RAM"],
        rows,
    )


# ------------------------------------------------------------------------ #
# Fig. 4 — weak scaling
# ------------------------------------------------------------------------ #


def fig4a(iterations: int = FIXED_ITERATIONS) -> Experiment:
    """Weak scaling, V = 32^4 sites per GPU (Fig. 4(a)).

    Overlapped communications ("as this performed fastest in weak scaling
    tests").  Double modes are absent: "we were unable to fit the double
    precision ... problems into device memory" at this local volume.
    """
    dims_for = lambda n: (32, 32, 32, 32 * n)  # noqa: E731
    exp = Experiment(
        exp_id="fig4a",
        title="Weak scaling, 32^4 sites/GPU",
        x_label="GPUs",
        y_label="sustained Gflops",
        series=[
            _sweep(dims_for, m, GPU_COUNTS, overlap=True, iterations=iterations)
            for m in ("single", "single-half")
        ],
        paper_points=[
            ("single", 32, 3350.0),
            ("single-half", 32, 4750.0),  # "we have reached ... 4.75 Tflops"
        ],
        notes="Paper: near-linear scaling; 4.75 Tflops at 32 GPUs in mixed "
        "single-half precision (Section VII-B).",
    )
    return exp


def fig4b(iterations: int = FIXED_ITERATIONS) -> Experiment:
    """Weak scaling, V = 24^3 x 32 sites per GPU (Fig. 4(b)).

    All four precision modes; "the mixed double-half precision performance
    ... is nearly identical to that of the single-half precision case."
    """
    dims_for = lambda n: (24, 24, 24, 32 * n)  # noqa: E731
    exp = Experiment(
        exp_id="fig4b",
        title="Weak scaling, 24^3 x 32 sites/GPU",
        x_label="GPUs",
        y_label="sustained Gflops",
        series=[
            _sweep(dims_for, m, GPU_COUNTS, overlap=True, iterations=iterations)
            for m in ("single", "double", "single-half", "double-half")
        ],
        paper_points=[
            ("single", 32, 2550.0),
            ("double", 32, 1100.0),
            ("single-half", 32, 3550.0),
            ("double-half", 32, 3500.0),
        ],
        notes="Paper: both mixed modes nearly identical and well above the "
        "uniform modes.",
    )
    return exp


# ------------------------------------------------------------------------ #
# Fig. 5 — strong scaling
# ------------------------------------------------------------------------ #


def fig5a(iterations: int = FIXED_ITERATIONS) -> Experiment:
    """Strong scaling, V = 32^3 x 256 (Fig. 5(a)).

    Four strategy/precision curves plus the deliberately-bad NUMA series.
    Mixed precision cannot run below 8 GPUs ("this increase in memory
    footprint means that at least 8 GPUs are needed"); uniform single fits
    on 4 — the sweep reports those infeasible points as missing.
    """
    dims = (32, 32, 32, 256)
    dims_for = lambda n: dims  # noqa: E731
    counts = [4, 8, 16, 32]
    series = []
    for mode in ("single", "single-half"):
        for overlap in (False, True):
            series.append(
                _sweep(dims_for, mode, counts, overlap=overlap, iterations=iterations)
            )
    numa = _sweep(
        dims_for,
        "single-half",
        counts,
        overlap=True,
        cluster=ClusterSpec(numa_policy="wrong"),
        iterations=iterations,
    )
    numa.label = "single-half, bad NUMA placement"
    series.append(numa)
    return Experiment(
        exp_id="fig5a",
        title="Strong scaling, 32^3 x 256",
        x_label="GPUs",
        y_label="sustained Gflops",
        series=series,
        paper_points=[
            ("single, not overlapped", 32, 1900.0),
            ("single", 32, 2300.0),
            ("single-half, not overlapped", 32, 2600.0),
            ("single-half", 32, 3100.0),  # "we sustained over 3 Tflops"
            ("single-half, bad NUMA placement", 32, 2700.0),
        ],
        notes="Paper: overlap increasingly helps with GPU count; mixed "
        "precision needs >= 8 GPUs (memory); bad NUMA binding costs "
        "~10-15%.",
    )


def fig5b(iterations: int = FIXED_ITERATIONS) -> Experiment:
    """Strong scaling, V = 24^3 x 128 (Fig. 5(b)) — the overlap anomaly.

    "We seem to gain little from overlapping communication and computation
    in the mixed precision solver ... the mixed precision performance
    reaches a plateau" — caused by the ~50 us cudaMemcpyAsync latency
    (Fig. 7) dominating at small local volumes.
    """
    dims_for = lambda n: (24, 24, 24, 128)  # noqa: E731
    series = []
    for mode in ("single", "single-half"):
        for overlap in (False, True):
            series.append(
                _sweep(dims_for, mode, GPU_COUNTS, overlap=overlap, iterations=iterations)
            )
    return Experiment(
        exp_id="fig5b",
        title="Strong scaling, 24^3 x 128",
        x_label="GPUs",
        y_label="sustained Gflops",
        series=series,
        paper_points=[
            ("single, not overlapped", 32, 1050.0),
            ("single", 32, 1250.0),
            ("single-half, not overlapped", 32, 1400.0),
            ("single-half", 32, 1100.0),
        ],
        notes="Paper: beyond ~8 GPUs the overlapped mixed solver stops "
        "gaining — the async-copy latency penalty; the non-overlapped "
        "variant is faster at this volume.",
    )


def fig6(iterations: int = FIXED_ITERATIONS) -> Experiment:
    """Strong scaling of all four precision modes, 24^3 x 128,
    non-overlapped (Fig. 6).

    "Uniform double precision exhibits the best strong scaling of all
    because this kernel is less bandwidth bound due to the much lower
    double precision peak performance of the GTX 285."
    """
    dims_for = lambda n: (24, 24, 24, 128)  # noqa: E731
    series = [
        _sweep(dims_for, m, GPU_COUNTS, overlap=False, iterations=iterations)
        for m in ("single", "single-half", "double", "double-half")
    ]
    return Experiment(
        exp_id="fig6",
        title="Strong scaling, 24^3 x 128, all precisions, not overlapped",
        x_label="GPUs",
        y_label="sustained Gflops",
        series=series,
        paper_points=[
            ("single, not overlapped", 32, 1100.0),
            ("single-half, not overlapped", 32, 1450.0),
            ("double, not overlapped", 32, 700.0),
            ("double-half, not overlapped", 32, 1400.0),
        ],
        notes="Paper: half-precision mixed modes beat both uniform modes; "
        "double has the flattest (best) scaling curve.",
    )


# ------------------------------------------------------------------------ #
# Fig. 7 — PCIe latency microbenchmark
# ------------------------------------------------------------------------ #


def fig7() -> Experiment:
    """Transfer-time microbenchmark (Fig. 7): cudaMemcpy vs
    cudaMemcpyAsync, both directions, 1 KiB - 256 KiB."""
    sizes = [2**k for k in range(10, 19)]  # 1K .. 256K
    series = []
    for asynchronous in (False, True):
        for direction in ("d2h", "h2d"):
            name = "cudaMemcpyAsync" if asynchronous else "cudaMemcpy"
            times = [
                pcie_time(DEFAULT_PARAMS, n, direction, asynchronous=asynchronous)
                * 1e6
                for n in sizes
            ]
            series.append(
                Series(
                    label=f"{name} - {'device to host' if direction == 'd2h' else 'host to device'}",
                    x=[float(s) for s in sizes],
                    y=times,
                )
            )
    return Experiment(
        exp_id="fig7",
        title="PCIe transfer-time microbenchmark",
        x_label="message bytes",
        y_label="transfer time (us)",
        series=series,
        paper_points=[
            ("cudaMemcpy - device to host", 1024.0, 11.0),
            ("cudaMemcpyAsync - device to host", 1024.0, 48.0),
            ("cudaMemcpy - device to host", 262144.0, 77.0),
            ("cudaMemcpy - host to device", 262144.0, 59.0),
        ],
        notes="Paper: ~11 us synchronous latency vs just under 50 us "
        "asynchronous; different d2h/h2d slopes (early-revision Intel "
        "5520 chipset).",
    )


# ------------------------------------------------------------------------ #
# Text-level results
# ------------------------------------------------------------------------ #


def cpu_comparison(iterations: int = FIXED_ITERATIONS) -> Experiment:
    """Section VII-C: the 9q CPU baseline vs 32 GPUs on 32^3 x 256.

    "On a 16-node partition of the 9q cluster we obtained 255 Gflops in
    single precision using highly optimized SSE routines ... on 16 nodes
    and 32 GPUs we sustained over 3 Tflops which is over a factor of 10
    faster."
    """
    gpu_point = run_scaling_point(
        (32, 32, 32, 256), "single-half", 32, overlap=True,
        fixed_iterations=iterations,
    )
    cpu_gflops = XEON_E5530.sustained_gflops(16)
    return Experiment(
        exp_id="cpu",
        title="16 nodes: 128 Nehalem cores (9q) vs 32 GTX 285 GPUs (9g)",
        x_label="configuration",
        y_label="sustained Gflops",
        series=[
            Series("9q CPU partition (SSE, single)", [0.0], [cpu_gflops]),
            Series("9g GPU partition (mixed single-half)", [1.0], [gpu_point.gflops]),
            Series(
                "speedup (x)",
                [2.0],
                [None if gpu_point.gflops is None else gpu_point.gflops / cpu_gflops],
            ),
        ],
        paper_points=[
            ("9q CPU partition (SSE, single)", 0.0, 255.0),
            ("9g GPU partition (mixed single-half)", 1.0, 3100.0),
            ("speedup (x)", 2.0, 12.2),
        ],
        notes="Paper: 'over a factor of 10 faster than observed without "
        "the GPUs'.",
    )


def memory_footprint() -> Experiment:
    """Section VII-C memory feasibility for 32^3 x 256 on 2 GiB cards:
    uniform single fits on 4 GPUs; mixed single-half needs at least 8."""
    dims = (32, 32, 32, 256)
    series = []
    for mode in ("single", "single-half", "double", "double-half"):
        fits: list[float | None] = []
        for n in [2, 4, 8, 16, 32]:
            point = run_scaling_point(dims, mode, n, fixed_iterations=1)
            fits.append(None if point.gflops is None else 1.0)
        series.append(Series(mode, [2, 4, 8, 16, 32], fits))
    return Experiment(
        exp_id="memory",
        title="Device-memory feasibility, 32^3 x 256 on 2 GiB GTX 285s "
        "(1 = fits, missing = out of memory)",
        x_label="GPUs",
        y_label="fits",
        series=series,
        paper_points=[
            ("single", 4, 1.0),  # "can be solved ... already on 4 GPUs"
            ("single-half", 8, 1.0),  # "at least 8 GPUs are needed"
        ],
        notes="Paper: the mixed-precision solver stores both precisions' "
        "data, pushing the minimum partition from 4 to 8 GPUs.",
    )


#: Registry used by the bench suite and EXPERIMENTS.md generator.
ALL_FIGURES = {
    "fig4a": fig4a,
    "fig4b": fig4b,
    "fig5a": fig5a,
    "fig5b": fig5b,
    "fig6": fig6,
    "fig7": fig7,
    "cpu": cpu_comparison,
    "memory": memory_footprint,
}
