"""Construction of the clover term ``A_x`` from the gauge field.

The Sheikholeslami-Wohlert ("clover") improvement term of paper eq. (2) is

    A_x = (c_sw / 2) * sum_{mu < nu} sigma_munu (x) Fhat_munu(x)

where ``Fhat_munu`` is the Hermitian lattice field-strength tensor obtained
from the four "clover leaf" plaquettes around ``x`` and ``sigma_munu =
(i/2)[gamma_mu, gamma_nu]``.

In a chiral basis (gamma_5 diagonal — DeGrand-Rossi here), every
``sigma_munu`` is block diagonal over the two chiralities, so ``A_x``
decomposes into two Hermitian 6x6 blocks: "Each clover matrix has a
Hermitian block diagonal, anti-Hermitian block off-diagonal structure, and
can be fully described by 72 real numbers" (paper footnote 1).  We build
the blocks directly and also provide the packed 72-real representation the
GPU layout uses.
"""

from __future__ import annotations

import numpy as np

from .geometry import NDIM, LatticeGeometry
from . import gamma as _gamma
from . import su3
from .fields import CloverField, GaugeField, apply_chiral_blocks

__all__ = [
    "field_strength",
    "make_clover",
    "clover_apply",
    "pack_clover",
    "unpack_clover",
    "CLOVER_REALS_PER_SITE",
]


def clover_apply(clover: CloverField, psi: np.ndarray) -> np.ndarray:
    """``A psi`` on raw spinor data — the hot per-iteration entry point.

    Thin alias over :func:`repro.lattice.fields.apply_chiral_blocks`,
    which dispatches to the compiled site-block loop
    (:mod:`repro.lattice.hotloops`) when numba is live and the einsum
    reference otherwise.
    """
    return apply_chiral_blocks(clover.data, psi)

#: Real numbers needed to describe one clover matrix (paper footnote 1).
CLOVER_REALS_PER_SITE = 72

# The six (mu, nu) planes with mu < nu.
_PLANES: tuple[tuple[int, int], ...] = tuple(
    (mu, nu) for mu in range(NDIM) for nu in range(mu + 1, NDIM)
)


def field_strength(gauge: GaugeField, mu: int, nu: int) -> np.ndarray:
    """Hermitian clover-leaf field strength ``Fhat_munu``, shape ``(V, 3, 3)``.

    Averages the four plaquette "leaves" in the (mu, nu) plane around each
    site and takes the anti-Hermitian traceless part times ``-i``:

        Q = leaf1 + leaf2 + leaf3 + leaf4
        Fhat = -i/8 (Q - Q^dag)

    ``Fhat`` vanishes identically on the free field (all links 1), is
    Hermitian, and transforms covariantly (``Fhat -> g Fhat g^dag``), which
    the tests verify.
    """
    geo = gauge.geometry
    u = gauge.data
    fwd = geo.neighbor_fwd
    bwd = geo.neighbor_bwd
    adj = su3.adjoint

    u_mu, u_nu = u[mu], u[nu]
    # Hoist every repeated neighbor gather: fancy indexing copies the
    # whole link array, and the four leaves reuse several of them (the
    # x-mu and x-nu gathers each appear three times below).  Same
    # arithmetic, same matmul order — the results are bit-identical.
    u_mu_bwd_mu = u_mu[bwd[mu]]
    u_nu_bwd_nu = u_nu[bwd[nu]]
    u_mu_fwd_nu = u_mu[fwd[nu]]

    # Leaf 1: x -> x+mu -> x+mu+nu -> x+nu -> x
    leaf = u_mu @ u_nu[fwd[mu]] @ adj(u_mu_fwd_nu) @ adj(u_nu)
    # Leaf 2: x -> x+nu -> x+nu-mu -> x-mu -> x
    leaf = leaf + u_nu @ adj(u_mu_fwd_nu[bwd[mu]]) @ adj(u_nu[bwd[mu]]) @ u_mu_bwd_mu
    # Leaf 3: x -> x-mu -> x-mu-nu -> x-nu -> x
    leaf = leaf + adj(u_mu_bwd_mu) @ adj(u_nu[bwd[mu]][bwd[nu]]) @ u_mu_bwd_mu[
        bwd[nu]
    ] @ u_nu_bwd_nu
    # Leaf 4: x -> x-nu -> x-nu+mu -> x+mu -> x
    leaf = leaf + adj(u_nu_bwd_nu) @ u_mu[bwd[nu]] @ u_nu_bwd_nu[fwd[mu]] @ adj(u_mu)

    return -0.125j * (leaf - adj(leaf))


def make_clover(gauge: GaugeField, c_sw: float = 1.0) -> CloverField:
    """Build the clover field ``A`` on ``gauge``'s lattice.

    The result is stored as two 6x6 Hermitian chiral blocks per site
    (spin-major flattening of (2 spins x 3 colors)); see
    :class:`repro.lattice.fields.CloverField`.
    """
    geo = gauge.geometry
    v = geo.volume
    blocks = np.zeros((v, 2, 6, 6), dtype=np.complex128)
    half = np.s_[0:2], np.s_[2:4]
    for mu, nu in _PLANES:
        sigma = np.asarray(_gamma.sigma_munu(mu, nu, _gamma.DEGRAND_ROSSI))
        # In the chiral basis sigma_munu must be block diagonal; guard the
        # convention rather than silently producing a wrong clover term.
        off = max(
            float(np.max(np.abs(sigma[0:2, 2:4]))),
            float(np.max(np.abs(sigma[2:4, 0:2]))),
        )
        if off > 1e-12:  # pragma: no cover - basis is chiral by construction
            raise RuntimeError("sigma_munu not chiral-block diagonal")
        f = field_strength(gauge, mu, nu)
        for chirality, sl in enumerate(half):
            s_block = sigma[sl, sl]  # (2, 2) spin block
            # kron over (spin, color) with spin-major flattening:
            # block[(s,a),(t,b)] = s_block[s,t] * f[a,b]
            blocks[:, chirality] += (c_sw / 2.0) * np.einsum(
                "st,xab->xsatb", s_block, f
            ).reshape(v, 6, 6)
    return CloverField(geo, blocks)


def pack_clover(clover: CloverField) -> np.ndarray:
    """Pack chiral blocks into 72 reals per site, shape ``(V, 72)``.

    Layout per chiral block (36 reals): the 6 real diagonal entries
    followed by the 15 strictly-lower-triangular complex entries
    (re, im interleaved), column-major within the triangle — the dense
    Hermitian storage QUDA streams through the GPU.
    """
    v = clover.data.shape[0]
    out = np.empty((v, CLOVER_REALS_PER_SITE), dtype=np.float64)
    tri = np.tril_indices(6, k=-1)
    for chirality in range(2):
        block = clover.data[:, chirality]
        base = chirality * 36
        out[:, base : base + 6] = np.real(
            block[:, np.arange(6), np.arange(6)]
        )
        lower = block[:, tri[0], tri[1]]  # (V, 15) complex
        out[:, base + 6 : base + 36 : 2] = lower.real
        out[:, base + 7 : base + 36 : 2] = lower.imag
    return out


def unpack_clover(geometry: LatticeGeometry, packed: np.ndarray) -> CloverField:
    """Inverse of :func:`pack_clover` (Hermiticity restored exactly)."""
    v = packed.shape[0]
    if packed.shape != (v, CLOVER_REALS_PER_SITE):
        raise ValueError(f"expected shape (V, 72), got {packed.shape}")
    blocks = np.zeros((v, 2, 6, 6), dtype=np.complex128)
    tri = np.tril_indices(6, k=-1)
    for chirality in range(2):
        base = chirality * 36
        diag = packed[:, base : base + 6]
        blocks[:, chirality, np.arange(6), np.arange(6)] = diag
        lower = packed[:, base + 6 : base + 36 : 2] + 1j * packed[
            :, base + 7 : base + 36 : 2
        ]
        blocks[:, chirality, tri[0], tri[1]] = lower
        blocks[:, chirality, tri[1], tri[0]] = np.conj(lower)
    return CloverField(geometry, blocks)
