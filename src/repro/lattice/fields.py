"""Lattice field containers (host-side, "CPU order").

These are the reference representations that application code (Chroma, in
the paper's stack) hands to the library: spacetime index slowest-varying
container axis, internal indices (spin, color) trailing.  The virtual-GPU
layer reorders them into the coalescing-friendly GPU layout of paper
eqs. (3)-(5) (see :mod:`repro.gpu.layout`).

* :class:`SpinorField` — one complex 4(spin) x 3(color) "color-spinor" per
  site: 24 real numbers apiece.
* :class:`GaugeField` — one SU(3) link matrix per (direction, site); the
  matrix ``U_mu(x)`` lives on the link from ``x`` to ``x + mu_hat`` and is
  stored at site ``x`` (paper Section V-B).
* :class:`CloverField` — the clover term ``A_x``: two 6x6 Hermitian chiral
  blocks per site (72 real numbers, paper footnote 1), stored as
  ``(V, 2, 6, 6)`` complex with the 6 = (2 spins x 3 colors) within a
  chirality, spin-major.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .geometry import NDIM, LatticeGeometry
from .su3 import NCOLOR
from .gamma import NSPIN
from . import hotloops

__all__ = [
    "SpinorField",
    "GaugeField",
    "CloverField",
    "spinor_like",
    "zeros_spinor",
]


def _check_geometry_shape(
    geometry: LatticeGeometry, data: np.ndarray, expected_tail: tuple[int, ...], axis: int
) -> None:
    if data.shape[axis] != geometry.volume:
        raise ValueError(
            f"field volume {data.shape[axis]} does not match geometry "
            f"volume {geometry.volume}"
        )
    if tuple(data.shape[axis + 1 :]) != expected_tail:
        raise ValueError(
            f"expected trailing shape {expected_tail}, got {data.shape[axis + 1:]}"
        )


@dataclass
class SpinorField:
    """A color-spinor field: ``data`` has shape ``(V, 4, 3)`` complex.

    ``basis`` records which spin basis the components are expressed in
    (see :mod:`repro.lattice.gamma`); operators must be applied in a
    matching basis, and the library checks this where it is cheap to do so.
    """

    geometry: LatticeGeometry
    data: np.ndarray
    basis: str = "degrand_rossi"

    def __post_init__(self) -> None:
        self.data = np.ascontiguousarray(self.data)
        if not np.iscomplexobj(self.data):
            raise TypeError("spinor data must be complex")
        _check_geometry_shape(self.geometry, self.data, (NSPIN, NCOLOR), axis=0)

    # -- vector-space helpers (host reference; device BLAS lives in core) --

    def copy(self) -> "SpinorField":
        return SpinorField(self.geometry, self.data.copy(), self.basis)

    def zeros_like(self) -> "SpinorField":
        return SpinorField(self.geometry, np.zeros_like(self.data), self.basis)

    def norm2(self) -> float:
        """Squared 2-norm over all sites and internal components."""
        return float(np.vdot(self.data, self.data).real)

    def dot(self, other: "SpinorField") -> complex:
        """Global inner product ``<self | other>`` (conjugate-linear in self)."""
        self._check_compatible(other)
        return complex(np.vdot(self.data, other.data))

    def axpy(self, a: complex, x: "SpinorField") -> None:
        """In-place ``self += a * x`` (in-place per the optimization guide)."""
        self._check_compatible(x)
        self.data += a * x.data

    def to_basis(self, basis: str) -> "SpinorField":
        """Rotate the spin components to another basis."""
        from . import gamma as _g

        if basis == self.basis:
            return self.copy()
        # psi_nr = S psi_dr ; going back uses S^dagger.
        s = _g.nr_transform()
        mat = s if basis == _g.NONRELATIVISTIC else np.conj(s.T)
        out = np.einsum("ab,vbc->vac", mat, self.data)
        return SpinorField(self.geometry, out, basis)

    def _check_compatible(self, other: "SpinorField") -> None:
        if other.geometry.dims != self.geometry.dims:
            raise ValueError("spinor fields live on different lattices")
        if other.basis != self.basis:
            raise ValueError(
                f"spin basis mismatch: {self.basis} vs {other.basis}"
            )


@dataclass
class GaugeField:
    """A gauge (link) field: ``data`` has shape ``(4, V, 3, 3)`` complex.

    ``data[mu, x]`` is ``U_mu(x)``, the SU(3) matrix on the link from ``x``
    to ``x + mu_hat``.
    """

    geometry: LatticeGeometry
    data: np.ndarray

    def __post_init__(self) -> None:
        self.data = np.ascontiguousarray(self.data)
        if self.data.shape[0] != NDIM:
            raise ValueError(f"expected leading direction axis of {NDIM}")
        _check_geometry_shape(self.geometry, self.data, (NCOLOR, NCOLOR), axis=1)

    def copy(self) -> "GaugeField":
        return GaugeField(self.geometry, self.data.copy())

    def plaquette(self) -> float:
        """Average plaquette ``Re tr(U_munu) / 3`` over all sites and planes.

        A cheap scalar invariant: exactly 1.0 on the free field, slightly
        below 1.0 on the paper's weak-field configurations, and gauge
        invariant (handy in tests).
        """
        from . import su3

        geo = self.geometry
        fwd = geo.neighbor_fwd
        total = 0.0
        n_planes = 0
        for mu in range(NDIM):
            for nu in range(mu + 1, NDIM):
                u_mu = self.data[mu]
                u_nu_fwd = self.data[nu][fwd[mu]]
                u_mu_fwd = self.data[mu][fwd[nu]]
                u_nu = self.data[nu]
                plaq = u_mu @ u_nu_fwd @ su3.adjoint(u_mu_fwd) @ su3.adjoint(u_nu)
                total += float(np.mean(su3.trace(plaq).real)) / NCOLOR
                n_planes += 1
        return total / n_planes


@dataclass
class CloverField:
    """The clover term ``A_x`` in chiral-block storage.

    ``data`` has shape ``(V, 2, 6, 6)`` complex: for each site, two
    Hermitian 6x6 blocks (upper/lower chirality), each acting on the
    (2 spin x 3 color) components of that chirality with spin-major
    flattening.  72 real numbers per site, as in the paper's footnote 1.

    ``inverse_data``, when present, caches the blockwise inverse used by
    the even-odd preconditioned operator (``A_oo^{-1}``).
    """

    geometry: LatticeGeometry
    data: np.ndarray
    inverse_data: np.ndarray | None = None

    BLOCK = NSPIN // 2 * NCOLOR  # 6

    def __post_init__(self) -> None:
        self.data = np.ascontiguousarray(self.data)
        _check_geometry_shape(self.geometry, self.data, (2, self.BLOCK, self.BLOCK), axis=0)

    def copy(self) -> "CloverField":
        inv = None if self.inverse_data is None else self.inverse_data.copy()
        return CloverField(self.geometry, self.data.copy(), inv)

    def hermiticity_violation(self) -> float:
        """``max |A - A^dag|`` over all blocks (should be ~1e-15)."""
        diff = self.data - np.conj(np.swapaxes(self.data, -1, -2))
        return float(np.max(np.abs(diff)))

    def compute_inverse(self) -> np.ndarray:
        """Blockwise 6x6 inverses, cached on the field.

        QUDA likewise precomputes the inverse clover term once per
        configuration for use in the even-odd preconditioned operator.
        """
        if self.inverse_data is None:
            self.inverse_data = np.linalg.inv(self.data)
        return self.inverse_data

    def apply(self, psi: np.ndarray) -> np.ndarray:
        """Apply ``A`` sitewise to spinor data of shape ``(V, 4, 3)``.

        The chiral blocks act on spin components (0, 1) and (2, 3)
        respectively.
        """
        return apply_chiral_blocks(self.data, psi)

    def apply_inverse(self, psi: np.ndarray) -> np.ndarray:
        """Apply ``A^{-1}`` sitewise (computing the inverse on first use)."""
        return apply_chiral_blocks(self.compute_inverse(), psi)


def apply_chiral_blocks(blocks: np.ndarray, psi: np.ndarray) -> np.ndarray:
    """Apply per-site chiral 6x6 blocks to spinor data ``(V, 4, 3)``.

    ``blocks`` has shape ``(V, 2, 6, 6)``.  Works for any leading volume as
    long as the two arrays agree.  Dispatches to the compiled site-block
    loop when numba is live, the einsum reference otherwise.
    """
    v = psi.shape[0]
    if blocks.shape[0] != v:
        raise ValueError("clover blocks and spinor have different volumes")
    if hotloops.JIT_ENABLED:  # pragma: no cover - numba not in test image
        out = np.zeros_like(psi)
        hotloops.clover_apply_loops(
            np.ascontiguousarray(blocks),
            np.ascontiguousarray(psi),
            out,
        )
        return out
    half = psi.reshape(v, 2, CloverField.BLOCK)
    out = np.einsum("vcab,vcb->vca", blocks, half)
    return out.reshape(psi.shape)


def zeros_spinor(geometry: LatticeGeometry, basis: str = "degrand_rossi") -> SpinorField:
    """A zero spinor field on ``geometry``."""
    return SpinorField(
        geometry, np.zeros((geometry.volume, NSPIN, NCOLOR), dtype=np.complex128), basis
    )


def spinor_like(ref: SpinorField, data: np.ndarray) -> SpinorField:
    """Wrap raw data as a spinor field with ``ref``'s geometry and basis."""
    return SpinorField(ref.geometry, data, ref.basis)
