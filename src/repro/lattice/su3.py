"""SU(3) color-matrix algebra on batched NumPy arrays.

All functions operate on arrays whose last two axes are the 3x3 color
matrix, with arbitrary leading batch axes — e.g. a gauge field stores one
matrix per (direction, site).  Everything is vectorized; no per-site Python
loops (the hpc-parallel guides' first rule).

Two pieces here are load-bearing for the paper:

* **2-row (12-number) gauge compression** (Section V-C1): QUDA stores only
  the first two rows of each link matrix and reconstructs the third row in
  registers as the conjugate of the cross product of the first two.  We
  implement exactly that (``compress_rows`` / ``reconstruct_rows``) and the
  virtual-GPU kernels account the reduced memory traffic while the paper's
  "effective Gflops" convention *excludes* the reconstruction flops.

* **Re-unitarization**, used to build the paper's *weak-field
  configurations* ("starting with all link matrices set to the identity,
  mixing in a small amount of random noise, and re-unitarizing the links to
  bring the links back to the SU(3) manifold", Section VII-A).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "NCOLOR",
    "identity",
    "multiply",
    "adjoint",
    "trace",
    "det",
    "reunitarize",
    "random_su3",
    "random_algebra",
    "expi_hermitian",
    "compress_rows",
    "reconstruct_rows",
    "max_unitarity_violation",
]

#: Number of colors. QCD has gauge group SU(3).
NCOLOR = 3

_COMPLEX = np.complex128


def identity(shape: tuple[int, ...] = (), dtype=_COMPLEX) -> np.ndarray:
    """Batch of identity matrices with leading axes ``shape``."""
    out = np.zeros(shape + (NCOLOR, NCOLOR), dtype=dtype)
    out[..., np.arange(NCOLOR), np.arange(NCOLOR)] = 1.0
    return out


def multiply(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Batched matrix product ``a @ b``."""
    return a @ b


def adjoint(a: np.ndarray) -> np.ndarray:
    """Hermitian conjugate, batched: swap the matrix axes and conjugate."""
    return np.conj(np.swapaxes(a, -1, -2))


def trace(a: np.ndarray) -> np.ndarray:
    """Batched trace over the color indices."""
    return np.trace(a, axis1=-2, axis2=-1)


def det(a: np.ndarray) -> np.ndarray:
    """Batched determinant."""
    return np.linalg.det(a)


def _normalize(v: np.ndarray) -> np.ndarray:
    norm = np.sqrt(np.sum(np.abs(v) ** 2, axis=-1, keepdims=True))
    return v / norm


def _cross_conj(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``conj(a x b)`` — the third row of an SU(3) matrix given the first two.

    For a special unitary matrix the rows form an orthonormal triad with
    ``row2 = conj(row0 x row1)``; this identity is what makes the 12-number
    compression exact.
    """
    c = np.empty_like(a)
    c[..., 0] = a[..., 1] * b[..., 2] - a[..., 2] * b[..., 1]
    c[..., 1] = a[..., 2] * b[..., 0] - a[..., 0] * b[..., 2]
    c[..., 2] = a[..., 0] * b[..., 1] - a[..., 1] * b[..., 0]
    return np.conj(c)


def reunitarize(u: np.ndarray) -> np.ndarray:
    """Project batched 3x3 matrices back onto the SU(3) manifold.

    Row-wise Gram-Schmidt: normalize the first row, orthonormalize the
    second against it, and *derive* the third as ``conj(row0 x row1)``,
    which fixes ``det = 1`` exactly (up to roundoff).  This is the standard
    lattice-QCD reunitarization and the one used to make weak-field
    configurations.
    """
    out = np.empty_like(u, dtype=_COMPLEX)
    r0 = _normalize(u[..., 0, :].astype(_COMPLEX))
    r1 = u[..., 1, :].astype(_COMPLEX)
    overlap = np.sum(np.conj(r0) * r1, axis=-1, keepdims=True)
    r1 = _normalize(r1 - overlap * r0)
    out[..., 0, :] = r0
    out[..., 1, :] = r1
    out[..., 2, :] = _cross_conj(r0, r1)
    return out


def random_su3(rng: np.random.Generator, shape: tuple[int, ...] = ()) -> np.ndarray:
    """Random SU(3) matrices (approximately Haar) with leading axes ``shape``.

    Draws a complex Gaussian matrix and reunitarizes.  Exact Haar measure is
    irrelevant for every use in this package (correctness tests and
    synthetic configurations); what matters is that the result is exactly
    special unitary.
    """
    z = rng.standard_normal(shape + (NCOLOR, NCOLOR)) + 1j * rng.standard_normal(
        shape + (NCOLOR, NCOLOR)
    )
    return reunitarize(z)


def random_algebra(
    rng: np.random.Generator, shape: tuple[int, ...] = (), scale: float = 1.0
) -> np.ndarray:
    """Random traceless Hermitian matrices (elements of the su(3) algebra)."""
    z = rng.standard_normal(shape + (NCOLOR, NCOLOR)) + 1j * rng.standard_normal(
        shape + (NCOLOR, NCOLOR)
    )
    h = 0.5 * (z + adjoint(z))
    tr = trace(h)[..., None, None] / NCOLOR
    return scale * (h - tr * identity(shape))


def expi_hermitian(h: np.ndarray) -> np.ndarray:
    """``exp(i h)`` for batched Hermitian ``h`` via eigendecomposition.

    Exactly unitary (up to roundoff); used to build gauge transformations
    for covariance tests.
    """
    w, v = np.linalg.eigh(h)
    phase = np.exp(1j * w)
    return (v * phase[..., None, :]) @ adjoint(v)


def compress_rows(u: np.ndarray) -> np.ndarray:
    """12-number gauge compression: keep only the first two rows.

    Returns an array with shape ``(..., 2, 3)``.  Storage drops from 18 to
    12 real numbers per link, cutting gauge-field memory traffic by a third
    (Section V-C1).
    """
    return u[..., :2, :].copy()


def reconstruct_rows(c: np.ndarray) -> np.ndarray:
    """Rebuild full SU(3) matrices from their first two rows.

    The inverse of :func:`compress_rows`; exact for special unitary input.
    The flops spent here are the "extra work done to reconstruct the third
    row" that the paper's effective-Gflops convention excludes.
    """
    if c.shape[-2:] != (2, NCOLOR):
        raise ValueError(f"expected trailing shape (2, 3), got {c.shape[-2:]}")
    out = np.empty(c.shape[:-2] + (NCOLOR, NCOLOR), dtype=c.dtype)
    out[..., 0, :] = c[..., 0, :]
    out[..., 1, :] = c[..., 1, :]
    out[..., 2, :] = _cross_conj(c[..., 0, :], c[..., 1, :])
    return out


def max_unitarity_violation(u: np.ndarray) -> float:
    """``max |U U^dag - 1|`` over the batch — a quick sanity metric."""
    uu = u @ adjoint(u)
    return float(np.max(np.abs(uu - identity(u.shape[:-2], dtype=uu.dtype))))
