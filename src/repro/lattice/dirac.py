"""Reference (host-side) Wilson and Wilson-clover Dirac operators.

This is the trusted, fully vectorized NumPy implementation of paper eq. (2):

    M = -1/2 D + (4 + m + A)

with the hopping (nearest-neighbor stencil) term

    (D psi)(x) = sum_mu [ P(-)mu U_mu(x)        psi(x + mu_hat)
                        + P(+)mu U_mu(x-mu)^dag psi(x - mu_hat) ] ,

``P(+/-)mu = 1 +/- gamma_mu``, and ``A`` the clover term.  Every other
implementation in the package (single virtual GPU, multi-GPU with either
communication strategy, any precision) is validated against this one.

The spin contractions use precomputed 4x4 projector matrices and
``einsum``; the site gathers use the geometry's neighbor tables.  The
fermion boundary phases (antiperiodic time) are folded in via the
geometry's phase tables so the kernel stays branch-free.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .geometry import NDIM, LatticeGeometry
from . import gamma as _gamma
from . import su3
from . import hotloops
from .fields import CloverField, GaugeField, SpinorField

__all__ = [
    "hopping_term",
    "hopping_term_reference",
    "WilsonCloverOperator",
    "apply_gamma5",
]


def _projector_stack(basis: str, sgn: int) -> tuple[np.ndarray, np.ndarray]:
    """``(P(-sgn)mu, P(+sgn)mu)`` stacked over mu, for the loop kernel."""
    minus = np.stack([_gamma.projector(mu, -sgn, basis) for mu in range(NDIM)])
    plus = np.stack([_gamma.projector(mu, +sgn, basis) for mu in range(NDIM)])
    return minus, plus


def hopping_term(
    gauge: GaugeField, psi: SpinorField, *, dagger: bool = False
) -> np.ndarray:
    """Apply the nearest-neighbor stencil ``D`` (or ``D^dag``) to ``psi``.

    Returns raw spinor data of shape ``(V, 4, 3)``.  ``D^dag`` swaps the
    roles of ``P(+)`` and ``P(-)`` (equivalently ``gamma_5 D gamma_5``).

    Dispatch: the compiled loop kernel when numba is live
    (:data:`repro.jit.JIT_ENABLED`), the vectorized einsum reference
    otherwise — same arithmetic per site term, so the two agree to
    rounding (pinned by ``tests/lattice/test_hotloops.py``).
    """
    if hotloops.JIT_ENABLED:  # pragma: no cover - numba not in test image
        geo = gauge.geometry
        if psi.geometry.dims != geo.dims:
            raise ValueError("gauge and spinor live on different lattices")
        sgn = -1 if dagger else +1
        proj_minus, proj_plus = _projector_stack(psi.basis, sgn)
        out = np.zeros_like(psi.data)
        hotloops.hopping_term_loops(
            gauge.data,
            psi.data,
            geo.neighbor_fwd,
            geo.neighbor_bwd,
            geo.boundary_phase_fwd,
            geo.boundary_phase_bwd,
            proj_minus,
            proj_plus,
            out,
        )
        return out
    return hopping_term_reference(gauge, psi, dagger=dagger)


def hopping_term_reference(
    gauge: GaugeField, psi: SpinorField, *, dagger: bool = False
) -> np.ndarray:
    """The trusted vectorized NumPy stencil (einsum over site gathers)."""
    geo = gauge.geometry
    if psi.geometry.dims != geo.dims:
        raise ValueError("gauge and spinor live on different lattices")
    basis = psi.basis
    fwd = geo.neighbor_fwd
    bwd = geo.neighbor_bwd
    ph_fwd = geo.boundary_phase_fwd
    ph_bwd = geo.boundary_phase_bwd
    u = gauge.data
    p = psi.data
    out = np.zeros_like(p)
    sgn = -1 if dagger else +1
    for mu in range(NDIM):
        p_minus = _gamma.projector(mu, -sgn, basis)
        p_plus = _gamma.projector(mu, +sgn, basis)
        # Forward gather: U_mu(x) psi(x + mu_hat), projected with P(-)mu.
        psi_fwd = p[fwd[mu]] * ph_fwd[mu][:, None, None]
        u_psi = np.einsum("xab,xsb->xsa", u[mu], psi_fwd)
        out += np.einsum("st,xta->xsa", p_minus, u_psi)
        # Backward gather: U_mu(x - mu_hat)^dag psi(x - mu_hat), with P(+)mu.
        psi_bwd = p[bwd[mu]] * ph_bwd[mu][:, None, None]
        u_back = su3.adjoint(u[mu][bwd[mu]])
        u_psi = np.einsum("xab,xsb->xsa", u_back, psi_bwd)
        out += np.einsum("st,xta->xsa", p_plus, u_psi)
    return out


def apply_gamma5(psi: SpinorField) -> SpinorField:
    """``gamma_5 psi`` in the spinor's own basis."""
    g5 = _gamma.gamma5(psi.basis)
    out = np.einsum("st,xta->xsa", g5, psi.data)
    return SpinorField(psi.geometry, out, psi.basis)


@dataclass
class WilsonCloverOperator:
    """The Wilson-clover matrix ``M`` of paper eq. (2) (host reference).

    Parameters
    ----------
    gauge:
        The link field.
    mass:
        The bare quark mass parameter ``m``; the sitewise diagonal is
        ``(4 + m + A_x)``.  The mass "controls the condition number of the
        matrix, and hence the convergence of iterative solvers" (paper
        Section II).
    clover:
        The clover term ``A`` (may be ``None`` for plain Wilson).
    """

    gauge: GaugeField
    mass: float
    clover: CloverField | None = None

    @property
    def geometry(self) -> LatticeGeometry:
        return self.gauge.geometry

    @property
    def diag_coeff(self) -> float:
        """The constant part of the site diagonal, ``4 + m``."""
        return 4.0 + self.mass

    def apply(self, psi: SpinorField, *, dagger: bool = False) -> SpinorField:
        """``M psi`` (or ``M^dag psi``).

        ``M^dag = gamma_5 M gamma_5`` for Wilson-clover; we exploit this to
        share the stencil code (the clover and mass terms are Hermitian and
        commute with ``gamma_5``... the clover term commutes because it is
        chiral-block diagonal).
        """
        hop = hopping_term(self.gauge, psi, dagger=dagger)
        out = self.diag_coeff * psi.data - 0.5 * hop
        if self.clover is not None:
            out += self.clover.apply(psi.data)
        return SpinorField(psi.geometry, out, psi.basis)

    def apply_normal(self, psi: SpinorField) -> SpinorField:
        """``M^dag M psi`` — the SPD operator used by CGNE/CGNR."""
        return self.apply(self.apply(psi), dagger=True)

    # -- flat-vector interface for the host Krylov solvers ----------------

    def as_linear_operator(self, *, dagger: bool = False):
        """Return ``f(vec) -> vec`` acting on flattened spinor data."""
        geo = self.geometry
        basis = "degrand_rossi"

        def matvec(v: np.ndarray) -> np.ndarray:
            psi = SpinorField(geo, v.reshape(-1, 4, 3), basis)
            return self.apply(psi, dagger=dagger).data.reshape(-1)

        return matvec

    def flops_per_site(self, *, effective: bool = True) -> int:
        """Nominal flop count per site for one application of ``M``.

        ``effective=True`` uses the paper's convention (Section VII-A):
        3696 flops per site for Wilson-clover — the count that does *not*
        include the extra work to reconstruct the third gauge row.  Plain
        Wilson is 1824 (2 x 912/parity in QUDA counting... we keep the
        standard 1320 Wilson-dslash + mass/accumulate convention scaled to
        the full operator: 1824).
        """
        if self.clover is not None:
            return 3696 if effective else 3696 + 8 * 66  # + 8 row recons
        return 1824 if effective else 1824 + 8 * 66
