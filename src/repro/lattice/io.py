"""Configuration and propagator storage (an ILDG-flavoured NPZ format).

Production LQCD runs on "thousands of configurations" (paper Section I),
generated on leadership machines and analyzed elsewhere — which requires
a durable interchange format.  The community standard is ILDG/SciDAC LIME
records with metadata and checksums; this module provides the same
*guarantees* on a NumPy container:

* a format-versioned header with the lattice dimensions, boundary
  conditions, and free-form provenance metadata;
* CRC32 data checksums verified on load (silent corruption of an archive
  of expensive configurations is the nightmare scenario);
* plaquette stamping for gauge fields — the traditional quick integrity
  check: the loader recomputes it and refuses mismatches.
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path

import numpy as np

from .fields import GaugeField, SpinorField
from .geometry import LatticeGeometry

__all__ = [
    "save_gauge",
    "load_gauge",
    "save_spinor",
    "load_spinor",
    "ConfigurationError",
]

FORMAT_VERSION = 1


class ConfigurationError(RuntimeError):
    """Raised for corrupt, mismatched, or unsupported stored fields."""


def _checksum(data: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(data).view(np.uint8))


def _header(geometry: LatticeGeometry, kind: str, metadata: dict | None) -> str:
    return json.dumps(
        {
            "format_version": FORMAT_VERSION,
            "kind": kind,
            "dims": list(geometry.dims),
            "antiperiodic_t": geometry.antiperiodic_t,
            "metadata": metadata or {},
        }
    )


def _read_header(archive, path: Path, kind: str) -> dict:
    try:
        header = json.loads(str(archive["header"]))
    except KeyError:
        raise ConfigurationError(f"{path}: missing header record") from None
    if header.get("format_version") != FORMAT_VERSION:
        raise ConfigurationError(
            f"{path}: unsupported format version {header.get('format_version')}"
        )
    if header.get("kind") != kind:
        raise ConfigurationError(
            f"{path}: expected a {kind} record, found {header.get('kind')!r}"
        )
    return header


def save_gauge(
    path: str | Path,
    gauge: GaugeField,
    metadata: dict | None = None,
) -> None:
    """Write a gauge configuration with checksum and plaquette stamp."""
    path = Path(path)
    np.savez_compressed(
        path,
        header=_header(gauge.geometry, "gauge", metadata),
        links=gauge.data,
        checksum=np.uint32(_checksum(gauge.data)),
        plaquette=np.float64(gauge.plaquette()),
    )


def load_gauge(path: str | Path) -> tuple[GaugeField, dict]:
    """Load a gauge configuration; verifies checksum and plaquette.

    Returns ``(gauge, metadata)``.
    """
    path = Path(path)
    with np.load(_npz_path(path), allow_pickle=False) as archive:
        header = _read_header(archive, path, "gauge")
        links = archive["links"]
        if int(archive["checksum"]) != _checksum(links):
            raise ConfigurationError(f"{path}: checksum mismatch (corrupt data)")
        geometry = LatticeGeometry(
            tuple(header["dims"]), antiperiodic_t=header["antiperiodic_t"]
        )
        gauge = GaugeField(geometry, links)
        stored_plaq = float(archive["plaquette"])
        if abs(gauge.plaquette() - stored_plaq) > 1e-10:
            raise ConfigurationError(
                f"{path}: plaquette mismatch (stored {stored_plaq:.12f})"
            )
        return gauge, header["metadata"]


def save_spinor(
    path: str | Path,
    spinor: SpinorField,
    metadata: dict | None = None,
) -> None:
    """Write a spinor field (source or solution) with checksum."""
    path = Path(path)
    np.savez_compressed(
        path,
        header=_header(spinor.geometry, "spinor", metadata),
        basis=spinor.basis,
        data=spinor.data,
        checksum=np.uint32(_checksum(spinor.data)),
    )


def load_spinor(path: str | Path) -> tuple[SpinorField, dict]:
    """Load a spinor field; verifies the checksum."""
    path = Path(path)
    with np.load(_npz_path(path), allow_pickle=False) as archive:
        header = _read_header(archive, path, "spinor")
        data = archive["data"]
        if int(archive["checksum"]) != _checksum(data):
            raise ConfigurationError(f"{path}: checksum mismatch (corrupt data)")
        geometry = LatticeGeometry(
            tuple(header["dims"]), antiperiodic_t=header["antiperiodic_t"]
        )
        return SpinorField(geometry, data, str(archive["basis"])), header["metadata"]


def _npz_path(path: Path) -> Path:
    """np.savez appends .npz; accept paths with or without it."""
    if path.exists():
        return path
    with_ext = path.with_name(path.name + ".npz")
    if with_ext.exists():
        return with_ext
    raise FileNotFoundError(path)
