"""Adaptive multigrid for the Wilson-clover operator (paper future work).

"We are also interested in porting more modern algorithms to the GPUs
such as the adaptive multigrid solver discussed in [24] to speed up
computations even further" (Section VIII; [24] = Brannick, Brower, Clark,
Osborn, Rebbi, PRL 100, 041601).  This module implements that algorithm's
two-level form on the host reference operator:

* **Adaptive setup** — near-null vectors are *discovered*, not assumed:
  random vectors are relaxed toward the null space of ``M`` (steepest
  descent on ``|M x|^2``), which leaves them rich in the low modes that
  make the system ill-conditioned at light quark mass.
* **Chirality-split block prolongator** — each null vector contributes
  its two chiral halves (``gamma_5`` eigencomponents) separately, and the
  columns are orthonormalized *per spacetime block* (the aggregation),
  giving the sparse, local prolongator ``P`` of [24].  ``gamma_5``-
  compatibility is what lets the coarse operator inherit the fine
  operator's structure.
* **Galerkin coarse operator** — ``A_c = P^dag M P``, assembled
  explicitly and solved directly (dense LU) at the small sizes a 2-level
  method produces here.
* **MR smoother + V-cycle preconditioner**, applied inside an outer
  **FGMRES** (flexible GMRES — the standard outer solver for adaptive MG,
  since the cycle is a mildly nonlinear preconditioner).

The payoff the paper is after — elimination of critical slowing down in
the quark mass — is demonstrated in ``benchmarks/bench_multigrid.py``:
as ``m`` approaches its critical value the BiCGstab iteration count
blows up while the MG-preconditioned iteration count stays nearly flat.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.linalg

from .dirac import WilsonCloverOperator
from .fields import SpinorField
from .gamma import gamma5
from .geometry import LatticeGeometry
from .hostsolve import SolveResult

__all__ = ["BlockGeometry", "AdaptiveMultigrid", "fgmres"]

#: Internal (spin x color x complex) degrees of freedom per site.
_DOF = 12


@dataclass(frozen=True)
class BlockGeometry:
    """Aggregation of the lattice into spacetime blocks."""

    geometry: LatticeGeometry
    block_dims: tuple[int, int, int, int]

    def __post_init__(self) -> None:
        for d, b in zip(self.geometry.dims, self.block_dims):
            if b < 1 or d % b:
                raise ValueError(
                    f"block dims {self.block_dims} do not tile lattice "
                    f"{self.geometry.dims}"
                )

    @property
    def n_blocks(self) -> int:
        n = 1
        for d, b in zip(self.geometry.dims, self.block_dims):
            n *= d // b
        return n

    @property
    def sites_per_block(self) -> int:
        return self.geometry.volume // self.n_blocks

    def block_index(self) -> np.ndarray:
        """Block id of every site, shape ``(V,)``."""
        coords = self.geometry.coords
        dims = self.geometry.dims
        idx = np.zeros(self.geometry.volume, dtype=np.int64)
        stride = 1
        for mu in range(4):
            idx += (coords[:, mu] // self.block_dims[mu]) * stride
            stride *= dims[mu] // self.block_dims[mu]
        return idx

    def block_sites(self) -> list[np.ndarray]:
        """Site lists per block (each of ``sites_per_block`` sites)."""
        idx = self.block_index()
        order = np.argsort(idx, kind="stable")
        return np.split(order, self.n_blocks)


def fgmres(
    apply_a,
    b: np.ndarray,
    *,
    preconditioner=None,
    tol: float = 1e-8,
    restart: int = 20,
    maxiter: int = 400,
) -> SolveResult:
    """Flexible GMRES(restart) — the outer Krylov method of adaptive MG.

    ``preconditioner(v) -> z`` may vary between applications (flexible);
    ``None`` gives plain restarted GMRES.  Counts *preconditioned matrix
    applications* as iterations.
    """
    n = b.size
    x = np.zeros_like(b)
    bnorm = float(np.linalg.norm(b))
    target = tol * bnorm if bnorm > 0 else tol
    history = []
    total_iters = 0
    rnorm = bnorm
    while total_iters < maxiter:
        r = b - apply_a(x)
        rnorm = float(np.linalg.norm(r))
        history.append(rnorm)
        if rnorm <= target:
            return SolveResult(x, total_iters, rnorm, True, history)
        m = restart
        V = np.zeros((m + 1, n), dtype=complex)
        Z = np.zeros((m, n), dtype=complex)
        H = np.zeros((m + 1, m), dtype=complex)
        V[0] = r / rnorm
        g = np.zeros(m + 1, dtype=complex)
        g[0] = rnorm
        k_used = 0
        for k in range(m):
            if total_iters >= maxiter:
                break
            z = V[k] if preconditioner is None else preconditioner(V[k])
            Z[k] = z
            w = apply_a(z)
            total_iters += 1
            for i in range(k + 1):
                H[i, k] = np.vdot(V[i], w)
                w -= H[i, k] * V[i]
            H[k + 1, k] = np.linalg.norm(w)
            k_used = k + 1
            if abs(H[k + 1, k]) < 1e-30:
                break
            V[k + 1] = w / H[k + 1, k]
            # Residual estimate via least squares on the small system.
            y, res, *_ = np.linalg.lstsq(
                H[: k + 2, : k + 1], g[: k + 2], rcond=None
            )
            est = np.linalg.norm(g[: k + 2] - H[: k + 2, : k + 1] @ y)
            history.append(float(est))
            if est <= target:
                break
        y, *_ = np.linalg.lstsq(H[: k_used + 1, :k_used], g[: k_used + 1], rcond=None)
        x = x + Z[:k_used].T @ y
    r = b - apply_a(x)
    rnorm = float(np.linalg.norm(r))
    history.append(rnorm)
    return SolveResult(x, total_iters, rnorm, rnorm <= target, history)


@dataclass
class AdaptiveMultigrid:
    """A two-level adaptive multigrid preconditioner for ``M``.

    Parameters
    ----------
    op:
        The fine-level Wilson-clover operator.
    block_dims:
        Spacetime aggregate size (must tile the lattice); [24] uses 4^4
        blocks in production, 2^4 here for the small test lattices.
    n_nullvecs:
        Near-null vectors to compute; each contributes 2 chiral columns.
    setup_iters:
        Relaxation steps per null vector during the adaptive setup.
    n_pre, n_post:
        MR smoothing steps before/after the coarse-grid correction.
    """

    op: WilsonCloverOperator
    block_dims: tuple[int, int, int, int] = (2, 2, 2, 2)
    n_nullvecs: int = 4
    setup_iters: int = 50
    n_pre: int = 2
    n_post: int = 2
    seed: int = 7
    blocks: BlockGeometry = field(init=False)
    #: Per-block orthonormal bases, shape (n_blocks, block_dof, n_cols).
    _basis: np.ndarray = field(init=False, repr=False)
    _block_sites: list[np.ndarray] = field(init=False, repr=False)
    _coarse_lu: tuple = field(init=False, repr=False)
    coarse_dim: int = field(init=False)

    def __post_init__(self) -> None:
        self.blocks = BlockGeometry(self.op.geometry, self.block_dims)
        self._block_sites = self.blocks.block_sites()
        null_vecs = self._adaptive_setup()
        self._build_prolongator(null_vecs)
        self._build_coarse_operator()

    # ------------------------------------------------------------------ #
    # Setup
    # ------------------------------------------------------------------ #

    def _matvec(self, v: np.ndarray, dagger: bool = False) -> np.ndarray:
        psi = SpinorField(self.op.geometry, v.reshape(-1, 4, 3))
        return self.op.apply(psi, dagger=dagger).data.reshape(-1)

    def _adaptive_setup(self) -> np.ndarray:
        """Relax random vectors toward the near-null space of ``M``.

        Steepest descent on ``|M x|^2`` (x <- x - a M^dag M x with the
        optimal line-search a); the high modes of M^dag M die fastest,
        leaving the troublesome low modes — adaptivity in the sense of
        [24]: the method *finds* what smooth error looks like.
        """
        rng = np.random.default_rng(self.seed)
        vecs = []
        for _ in range(self.n_nullvecs):
            x = rng.standard_normal(self.op.geometry.volume * 12) + 1j * (
                rng.standard_normal(self.op.geometry.volume * 12)
            )
            x /= np.linalg.norm(x)
            for _ in range(self.setup_iters):
                mx = self._matvec(x)
                g = self._matvec(mx, dagger=True)  # grad of |Mx|^2 (up to 2)
                mg = self._matvec(g)
                denom = np.vdot(mg, mg).real
                if denom == 0:
                    break
                a = np.vdot(mg, mx) / denom
                x = x - a * g
                x /= np.linalg.norm(x)
            vecs.append(x)
        return np.stack(vecs, axis=1)  # (fine_dof, n_nullvecs)

    def _build_prolongator(self, null_vecs: np.ndarray) -> None:
        """Chirality-split, blockwise-orthonormal prolongator columns."""
        geo = self.op.geometry
        g5 = np.asarray(gamma5("degrand_rossi"))
        p_plus = 0.5 * (np.eye(4) + g5)
        p_minus = 0.5 * (np.eye(4) - g5)
        cols = []
        for k in range(null_vecs.shape[1]):
            v = null_vecs[:, k].reshape(geo.volume, 4, 3)
            cols.append(np.einsum("st,xta->xsa", p_plus, v).reshape(-1))
            cols.append(np.einsum("st,xta->xsa", p_minus, v).reshape(-1))
        cols = np.stack(cols, axis=1)  # (fine_dof, 2*Nv)
        n_cols = cols.shape[1]
        bdof = self.blocks.sites_per_block * _DOF
        basis = np.zeros((self.blocks.n_blocks, bdof, n_cols), dtype=complex)
        full = cols.reshape(geo.volume, _DOF, n_cols)
        for b, sites in enumerate(self._block_sites):
            local = full[sites].reshape(bdof, n_cols)
            # Blockwise QR orthonormalization (rank deficiency guarded by
            # the random setup; Q columns span the local null-vector space).
            q, _ = np.linalg.qr(local)
            basis[b] = q[:, :n_cols]
        self._basis = basis
        self.coarse_dim = self.blocks.n_blocks * n_cols

    def _build_coarse_operator(self) -> None:
        """Galerkin: ``A_c = P^dag M P``, assembled column by column."""
        nc = self.coarse_dim
        a_c = np.zeros((nc, nc), dtype=complex)
        for j in range(nc):
            e = np.zeros(nc, dtype=complex)
            e[j] = 1.0
            a_c[:, j] = self.restrict(self._matvec(self.prolong(e)))
        self._coarse_lu = scipy.linalg.lu_factor(a_c)
        self._coarse_matrix = a_c

    # ------------------------------------------------------------------ #
    # Grid-transfer operators
    # ------------------------------------------------------------------ #

    def prolong(self, coarse: np.ndarray) -> np.ndarray:
        """``P coarse``: coarse coefficients -> fine vector."""
        geo = self.op.geometry
        n_cols = self._basis.shape[2]
        c = coarse.reshape(self.blocks.n_blocks, n_cols)
        fine = np.zeros((geo.volume, _DOF), dtype=complex)
        for b, sites in enumerate(self._block_sites):
            local = self._basis[b] @ c[b]
            fine[sites] = local.reshape(sites.size, _DOF)
        return fine.reshape(-1)

    def restrict(self, fine: np.ndarray) -> np.ndarray:
        """``P^dag fine``: fine vector -> coarse coefficients."""
        geo = self.op.geometry
        n_cols = self._basis.shape[2]
        f = fine.reshape(geo.volume, _DOF)
        out = np.zeros((self.blocks.n_blocks, n_cols), dtype=complex)
        for b, sites in enumerate(self._block_sites):
            local = f[sites].reshape(-1)
            out[b] = np.conj(self._basis[b].T) @ local
        return out.reshape(-1)

    # ------------------------------------------------------------------ #
    # The V-cycle preconditioner
    # ------------------------------------------------------------------ #

    def _smooth(self, x: np.ndarray, b: np.ndarray, steps: int) -> np.ndarray:
        """Minimal-residual relaxation: x += a r with a = <Mr, r>/|Mr|^2."""
        for _ in range(steps):
            r = b - self._matvec(x)
            mr = self._matvec(r)
            denom = np.vdot(mr, mr).real
            if denom == 0:
                break
            x = x + (np.vdot(mr, r) / denom) * r
        return x

    def vcycle(self, r: np.ndarray) -> np.ndarray:
        """Apply the 2-level preconditioner to a residual vector."""
        e = self._smooth(np.zeros_like(r), r, self.n_pre)
        defect = r - self._matvec(e)
        coarse = scipy.linalg.lu_solve(self._coarse_lu, self.restrict(defect))
        e = e + self.prolong(coarse)
        return self._smooth(e, r, self.n_post)

    # ------------------------------------------------------------------ #
    # Solver front end
    # ------------------------------------------------------------------ #

    def solve(
        self, b: SpinorField, *, tol: float = 1e-8, maxiter: int = 400
    ) -> SolveResult:
        """Solve ``M x = b`` with MG-preconditioned FGMRES."""
        result = fgmres(
            self._matvec,
            b.data.reshape(-1),
            preconditioner=self.vcycle,
            tol=tol,
            maxiter=maxiter,
        )
        return result
