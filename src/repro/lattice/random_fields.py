"""Synthetic gauge configurations, sources, and gauge transformations.

The paper's scaling study used *weak-field configurations*: "Such
configurations are made by starting with all link matrices set to the
identity, mixing in a small amount of random noise, and re-unitarizing the
links to bring the links back to the SU(3) manifold" (Section VII-A).  We
implement exactly that recipe, plus fully random configurations (for
stress-testing correctness), point sources (the propagator workload), and
random gauge transformations (for covariance tests).
"""

from __future__ import annotations

import numpy as np

from .geometry import NDIM, LatticeGeometry
from . import su3
from .fields import GaugeField, SpinorField
from .gamma import DEGRAND_ROSSI, NSPIN
from .su3 import NCOLOR

__all__ = [
    "unit_gauge",
    "weak_field_gauge",
    "random_gauge",
    "random_spinor",
    "point_source",
    "random_gauge_transform",
    "transform_gauge",
    "transform_spinor",
]


def unit_gauge(geometry: LatticeGeometry) -> GaugeField:
    """The free field: every link the identity (plaquette exactly 1)."""
    data = su3.identity((NDIM, geometry.volume))
    return GaugeField(geometry, data)


def weak_field_gauge(
    geometry: LatticeGeometry,
    rng: np.random.Generator,
    noise: float = 0.1,
) -> GaugeField:
    """A weak-field configuration per the paper's recipe (Section VII-A).

    ``U = reunitarize(1 + noise * G)`` with ``G`` complex Gaussian.  The
    links stay close to the identity, so solvers converge quickly, but the
    matrix is a genuine (non-trivial) Wilson-clover operator; the paper
    emphasizes that the physical parameters "control only the number of
    iterations to convergence", not the execution rate.
    """
    shape = (NDIM, geometry.volume)
    g = rng.standard_normal(shape + (NCOLOR, NCOLOR)) + 1j * rng.standard_normal(
        shape + (NCOLOR, NCOLOR)
    )
    data = su3.reunitarize(su3.identity(shape) + noise * g)
    return GaugeField(geometry, data)


def random_gauge(geometry: LatticeGeometry, rng: np.random.Generator) -> GaugeField:
    """A completely random SU(3) configuration (maximally disordered)."""
    return GaugeField(geometry, su3.random_su3(rng, (NDIM, geometry.volume)))


def random_spinor(
    geometry: LatticeGeometry,
    rng: np.random.Generator,
    basis: str = DEGRAND_ROSSI,
) -> SpinorField:
    """Gaussian random source spinor, unit-normalized."""
    shape = (geometry.volume, NSPIN, NCOLOR)
    data = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    data /= np.sqrt(np.vdot(data, data).real)
    return SpinorField(geometry, data, basis)


def point_source(
    geometry: LatticeGeometry,
    site: int = 0,
    spin: int = 0,
    color: int = 0,
    basis: str = DEGRAND_ROSSI,
) -> SpinorField:
    """A delta-function source: 1 at one (site, spin, color), else 0.

    The propagator workload of the paper's measurements performs "6 linear
    solves for each test (one for each of the 3 color components of the
    upper 2 spin components)" — i.e. six point sources.
    """
    data = np.zeros((geometry.volume, NSPIN, NCOLOR), dtype=np.complex128)
    data[site, spin, color] = 1.0
    return SpinorField(geometry, data, basis)


def random_gauge_transform(
    geometry: LatticeGeometry, rng: np.random.Generator
) -> np.ndarray:
    """A random local gauge rotation ``g(x)``, shape ``(V, 3, 3)``."""
    return su3.random_su3(rng, (geometry.volume,))


def transform_gauge(gauge: GaugeField, g: np.ndarray) -> GaugeField:
    """Apply a gauge transformation: ``U_mu(x) -> g(x) U_mu(x) g(x+mu)^dag``."""
    geo = gauge.geometry
    fwd = geo.neighbor_fwd
    out = np.empty_like(gauge.data)
    g_adj = su3.adjoint(g)
    for mu in range(NDIM):
        out[mu] = g @ gauge.data[mu] @ g_adj[fwd[mu]]
    return GaugeField(geo, out)


def transform_spinor(psi: SpinorField, g: np.ndarray) -> SpinorField:
    """Apply a gauge transformation to a spinor: ``psi(x) -> g(x) psi(x)``."""
    data = np.einsum("xab,xsb->xsa", g, psi.data)
    return SpinorField(psi.geometry, data, psi.basis)
