"""Euclidean gamma matrices, spin projectors, and the non-relativistic basis.

QUDA works in the DeGrand-Rossi (chiral) basis, but applies a similarity
transformation to a "non-relativistic" basis in which the temporal spin
projectors ``P(+/-)4 = 1 +/- gamma_4`` are *diagonal* (paper eq. (6)).  The
payoff, quoted directly from Section V-C2 / VI-C, is that "only 12 real
numbers need be loaded when gathering neighboring spinors in the temporal
direction" — i.e. the temporal ghost-zone faces carry half-spinors with no
projection arithmetic, halving the inter-GPU message size.

This module provides:

* the DeGrand-Rossi gamma matrices and ``gamma_5``,
* the unitary change of basis to the non-relativistic basis,
* spin projectors ``P(+/-)mu = 1 +/- gamma_mu`` in either basis, and
* the rank-2 factorization ``P = R @ Q`` (``Q``: 4 spins -> 2 half-spins,
  ``R``: reconstruction) that underlies *all* half-spinor face traffic: a
  gathered face stores ``Q psi`` (12 real numbers per color-spinor), and
  the boundary kernel applies ``R`` after the color multiply.  In the
  non-relativistic basis the temporal ``Q`` degenerates to "copy the upper
  (or lower) two spin components", exactly the paper's footnote 3.

Conventions: Hermitian gammas with ``{gamma_mu, gamma_nu} = 2 delta_munu``;
directions ordered (x, y, z, t); ``gamma_5 = gamma_1 gamma_2 gamma_3
gamma_4`` is diagonal in the DeGrand-Rossi basis.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = [
    "NSPIN",
    "DEGRAND_ROSSI",
    "NONRELATIVISTIC",
    "BASES",
    "gamma_matrices",
    "gamma5",
    "nr_transform",
    "projector",
    "projector_decomposition",
    "sigma_munu",
]

#: Number of spin components of a Dirac spinor.
NSPIN = 4

#: Basis names accepted by every function in this module.
DEGRAND_ROSSI = "degrand_rossi"
NONRELATIVISTIC = "nonrelativistic"
BASES = (DEGRAND_ROSSI, NONRELATIVISTIC)

_I = 1j


def _dr_gammas() -> np.ndarray:
    """The four DeGrand-Rossi gamma matrices, shape (4, 4, 4)."""
    g = np.zeros((4, NSPIN, NSPIN), dtype=np.complex128)
    # gamma_x
    g[0] = [
        [0, 0, 0, _I],
        [0, 0, _I, 0],
        [0, -_I, 0, 0],
        [-_I, 0, 0, 0],
    ]
    # gamma_y
    g[1] = [
        [0, 0, 0, -1],
        [0, 0, 1, 0],
        [0, 1, 0, 0],
        [-1, 0, 0, 0],
    ]
    # gamma_z
    g[2] = [
        [0, 0, _I, 0],
        [0, 0, 0, -_I],
        [-_I, 0, 0, 0],
        [0, _I, 0, 0],
    ]
    # gamma_t — the projector structure of paper eq. (6), left-hand side.
    g[3] = [
        [0, 0, 1, 0],
        [0, 0, 0, 1],
        [1, 0, 0, 0],
        [0, 1, 0, 0],
    ]
    return g


@lru_cache(maxsize=None)
def nr_transform() -> np.ndarray:
    """Unitary ``S`` taking DeGrand-Rossi spinors to the non-relativistic
    basis: ``psi_nr = S psi_dr`` and ``gamma_nr = S gamma_dr S^dag``.

    ``S`` diagonalizes ``gamma_4`` to ``diag(1, 1, -1, -1)``, which turns
    the temporal projectors into the diagonal matrices of eq. (6)'s
    right-hand side.
    """
    s = np.array(
        [
            [1, 0, 1, 0],
            [0, 1, 0, 1],
            [1, 0, -1, 0],
            [0, 1, 0, -1],
        ],
        dtype=np.complex128,
    ) / np.sqrt(2.0)
    return s


def _check_basis(basis: str) -> None:
    if basis not in BASES:
        raise ValueError(f"unknown spin basis {basis!r}; expected one of {BASES}")


@lru_cache(maxsize=None)
def gamma_matrices(basis: str = DEGRAND_ROSSI) -> np.ndarray:
    """All four gamma matrices in ``basis``, shape ``(4, 4, 4)`` (read-only)."""
    _check_basis(basis)
    g = _dr_gammas()
    if basis == NONRELATIVISTIC:
        s = nr_transform()
        g = np.einsum("ab,mbc,dc->mad", s, g, np.conj(s))
    g.setflags(write=False)
    return g


@lru_cache(maxsize=None)
def gamma5(basis: str = DEGRAND_ROSSI) -> np.ndarray:
    """``gamma_5 = gamma_1 gamma_2 gamma_3 gamma_4`` in ``basis`` (read-only)."""
    g = gamma_matrices(basis)
    g5 = g[0] @ g[1] @ g[2] @ g[3]
    g5 = np.ascontiguousarray(g5)
    g5.setflags(write=False)
    return g5


@lru_cache(maxsize=None)
def projector(mu: int, sign: int, basis: str = DEGRAND_ROSSI) -> np.ndarray:
    """Spin projector ``P(sign)mu = 1 + sign * gamma_mu`` (read-only).

    Note the QUDA normalization: ``P+ + P- = 2`` (the factor 1/2 lives in
    the hopping-term prefactor of eq. (2)).
    """
    if sign not in (+1, -1):
        raise ValueError("sign must be +1 or -1")
    g = gamma_matrices(basis)
    p = np.eye(NSPIN, dtype=np.complex128) + sign * g[mu]
    p.setflags(write=False)
    return p


@lru_cache(maxsize=None)
def projector_decomposition(
    mu: int, sign: int, basis: str = DEGRAND_ROSSI
) -> tuple[np.ndarray, np.ndarray]:
    """Rank-2 factorization ``P = R @ Q`` of a spin projector.

    Returns ``(Q, R)`` with ``Q`` of shape (2, 4) and ``R`` of shape (4, 2)
    such that ``R @ Q == projector(mu, sign, basis)`` exactly.

    ``Q psi`` is the *half spinor* sent across a face: 2 spins x 3 colors =
    6 complex = 12 real numbers per site, which is why "only 12 numbers
    need be transferred, regardless of whether or not the projector has
    been diagonalized" (paper footnote 3).  ``R`` is the reconstruction
    applied by the receiving boundary kernel.

    The two rows of ``Q`` are chosen as the two largest-norm linearly
    independent rows of ``P`` — deterministic, and in the non-relativistic
    basis this reduces the temporal ``Q`` to "2x the upper (or lower) two
    components", matching the paper's special case.
    """
    p = np.asarray(projector(mu, sign, basis))
    # Greedy deterministic row selection: largest norms first, keep a row
    # only if it enlarges the span.
    norms = np.linalg.norm(p, axis=1)
    order = np.argsort(-norms, kind="stable")
    rows: list[int] = []
    for r in order:
        trial = p[rows + [int(r)]]
        if np.linalg.matrix_rank(trial, tol=1e-10) == len(rows) + 1:
            rows.append(int(r))
        if len(rows) == 2:
            break
    if len(rows) != 2:  # pragma: no cover - projectors are always rank 2
        raise RuntimeError(f"projector P[{sign:+d}]{mu} is not rank 2")
    rows.sort()
    q = p[rows]
    # Solve P = R Q in the least-squares sense; exact because rowspace(P)
    # equals rowspace(Q).
    r_mat = p @ np.conj(q.T) @ np.linalg.inv(q @ np.conj(q.T))
    # Snap tiny numerical noise so the factorization is clean.
    r_mat[np.abs(r_mat) < 1e-12] = 0.0
    q = q.copy()
    q[np.abs(q) < 1e-12] = 0.0
    q.setflags(write=False)
    r_mat.setflags(write=False)
    return q, r_mat


@lru_cache(maxsize=None)
def sigma_munu(mu: int, nu: int, basis: str = DEGRAND_ROSSI) -> np.ndarray:
    """``sigma_munu = (i/2) [gamma_mu, gamma_nu]`` (read-only, Hermitian).

    Used by the clover term ``A = (c_sw/2) sum_{mu<nu} sigma_munu F_munu``.
    In any chiral basis (gamma_5 diagonal) sigma commutes with gamma_5, so
    the clover matrix is block diagonal in the two chiralities — the origin
    of the "Hermitian block diagonal ... 72 real numbers" structure of the
    paper's footnote 1.
    """
    g = gamma_matrices(basis)
    s = 0.5j * (g[mu] @ g[nu] - g[nu] @ g[mu])
    s = np.ascontiguousarray(s)
    s.setflags(write=False)
    return s
