"""4-dimensional lattice geometry, site indexing, and neighbor tables.

The conventions follow the QUDA / Chroma ecosystem described in the paper:

* The lattice has dimensions ``(X, Y, Z, T)``.  The lexicographic site index
  runs with ``x`` fastest and ``t`` slowest,

      ``i = x + X * (y + Y * (z + Z * t))``

  so that a *timeslice* (all sites with a given ``t``) is a contiguous range
  of ``Vs = X*Y*Z`` sites.  This is exactly the property the paper exploits
  when partitioning the time dimension across GPUs (Section VI-A) and when
  hiding the gauge-field ghost zone in the pad region (Section VI-B).

* Sites are colored *even*/*odd* (red-black) by the parity of
  ``x + y + z + t`` (Section II, Fig. 1).  Within each parity, sites keep
  their relative lexicographic order; this "checkerboard index" is what the
  even-odd preconditioned operator uses.

* Fermion fields are periodic in the three spatial directions and
  antiperiodic in time (the standard thermal boundary condition).  The
  geometry exposes per-direction boundary *phase* tables so the Dirac
  operator can stay branch-free and fully vectorized.

All tables are plain ``numpy`` integer / float arrays so that the reference
operator and the virtual-GPU kernels can use fancy indexing, mirroring how
the CUDA kernels compute neighbor offsets from the thread index via integer
division and modular arithmetic (Section V-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

__all__ = [
    "NDIM",
    "LatticeGeometry",
    "TimeSlicing",
    "GridSlicing",
]

#: Number of spacetime dimensions.  The library is written for 4-D lattices
#: throughout (the Wilson-clover operator of eq. (2) is defined in 4-D).
NDIM = 4

#: Direction indices, in the order used everywhere in this package.
X_DIR, Y_DIR, Z_DIR, T_DIR = 0, 1, 2, 3


def _check_dims(dims: tuple[int, int, int, int]) -> tuple[int, int, int, int]:
    dims = tuple(int(d) for d in dims)
    if len(dims) != NDIM:
        raise ValueError(f"expected {NDIM} lattice dimensions, got {dims!r}")
    if any(d < 2 for d in dims):
        raise ValueError(f"every lattice dimension must be >= 2, got {dims!r}")
    if any(d % 2 for d in dims):
        # Even-odd preconditioning (and the eo site ordering) requires an
        # even number of sites in each direction; all production lattices
        # satisfy this (the paper uses 24^3x128 and 32^3x256).
        raise ValueError(f"every lattice dimension must be even, got {dims!r}")
    return dims


@dataclass(frozen=True)
class LatticeGeometry:
    """Geometry of a 4-D lattice (possibly a time-sliced sublattice).

    Parameters
    ----------
    dims:
        Lattice dimensions ``(X, Y, Z, T)``.
    antiperiodic_t:
        Apply a sign flip to fermion fields crossing the *global* temporal
        boundary (the usual choice in LQCD and the one used by the paper's
        Wilson-clover parameters).
    t_offset:
        Global ``t`` coordinate of this lattice's first timeslice.  For a
        monolithic lattice this is 0; for a time-sliced sublattice living on
        one rank it is the start of the local time extent.  Site parity is
        always computed from *global* coordinates so that a decomposed
        lattice agrees site-by-site with the monolithic one.
    global_t:
        Full temporal extent of the global lattice.  Equal to ``dims[3]``
        for a monolithic lattice.  Used to decide which local boundaries
        coincide with the global (antiperiodic) boundary — the "extra
        constants describing the boundary conditions at the start and end of
        the local volume" of Section VI-B.
    """

    dims: tuple[int, int, int, int]
    antiperiodic_t: bool = True
    t_offset: int = 0
    global_t: int | None = None
    #: For the multi-dimensional decomposition extension (Section VI-A
    #: future work): global ``z`` coordinate of this slab's first z-slice
    #: and the global Z extent.  Zero / local for monolithic lattices and
    #: the paper's time-only decomposition.
    z_offset: int = 0
    global_z: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "dims", _check_dims(self.dims))
        if self.global_t is None:
            object.__setattr__(self, "global_t", self.dims[T_DIR])
        if self.global_z is None:
            object.__setattr__(self, "global_z", self.dims[Z_DIR])
        for name, off, extent, glob in (
            ("time", self.t_offset, self.dims[T_DIR], self.global_t),
            ("z", self.z_offset, self.dims[Z_DIR], self.global_z),
        ):
            if off % 2 and extent != glob:
                # Parity bookkeeping below supports odd offsets too, but an
                # odd split can never arise from an even number of equal
                # slices of an even extent; reject early to catch bugs.
                raise ValueError(f"{name}-slice offset must be even")
            if off + extent > glob:
                raise ValueError(
                    f"local {name} extent {extent} at offset {off} exceeds "
                    f"global {glob}"
                )

    # ------------------------------------------------------------------ #
    # Basic sizes
    # ------------------------------------------------------------------ #

    @property
    def volume(self) -> int:
        """Number of lattice sites ``V = X*Y*Z*T``."""
        x, y, z, t = self.dims
        return x * y * z * t

    @property
    def half_volume(self) -> int:
        """Sites of a single parity, ``V/2``."""
        return self.volume // 2

    @property
    def spatial_volume(self) -> int:
        """Sites in one timeslice, ``Vs = X*Y*Z`` (the pad/face unit of the
        paper's field layout, Section V-B)."""
        x, y, z, _ = self.dims
        return x * y * z

    @property
    def spatial_half_volume(self) -> int:
        """Sites of one parity in one timeslice, ``Vs/2``."""
        return self.spatial_volume // 2

    # ------------------------------------------------------------------ #
    # Coordinates and parity
    # ------------------------------------------------------------------ #

    @cached_property
    def coords(self) -> np.ndarray:
        """Local coordinates of every site: shape ``(V, 4)``, x fastest."""
        x, y, z, t = self.dims
        idx = np.arange(self.volume)
        cx = idx % x
        cy = (idx // x) % y
        cz = (idx // (x * y)) % z
        ct = idx // (x * y * z)
        return np.stack([cx, cy, cz, ct], axis=1)

    @cached_property
    def parity(self) -> np.ndarray:
        """Parity (0 = even, 1 = odd) of every site, from *global* coords."""
        c = self.coords
        return (
            (c[:, 0] + c[:, 1] + c[:, 2] + c[:, 3] + self.t_offset + self.z_offset)
            % 2
        ).astype(np.int8)

    @cached_property
    def sites_of_parity(self) -> tuple[np.ndarray, np.ndarray]:
        """Lexicographic site indices of the even / odd sublattices.

        ``sites_of_parity[p][k]`` is the full-lattice index of the ``k``-th
        site (in lexicographic order) of parity ``p``.
        """
        par = self.parity
        return (np.nonzero(par == 0)[0], np.nonzero(par == 1)[0])

    @cached_property
    def checkerboard_index(self) -> np.ndarray:
        """Map a full-lattice site index to its index within its parity."""
        cb = np.empty(self.volume, dtype=np.int64)
        even, odd = self.sites_of_parity
        cb[even] = np.arange(even.size)
        cb[odd] = np.arange(odd.size)
        return cb

    def index(self, x: int, y: int, z: int, t: int) -> int:
        """Lexicographic index of the site with local coordinates (x,y,z,t)."""
        X, Y, Z, T = self.dims
        if not (0 <= x < X and 0 <= y < Y and 0 <= z < Z and 0 <= t < T):
            raise IndexError(f"coordinates ({x},{y},{z},{t}) outside {self.dims}")
        return x + X * (y + Y * (z + Z * t))

    # ------------------------------------------------------------------ #
    # Neighbor tables
    # ------------------------------------------------------------------ #

    @cached_property
    def neighbor_fwd(self) -> np.ndarray:
        """``neighbor_fwd[mu, i]`` = index of the site at ``x + mu_hat``.

        Wraps periodically at the local boundary (the Dirac operator applies
        boundary phases separately; for a decomposed lattice the wrap is
        replaced by ghost-zone reads at the communication layer).
        """
        return self._neighbors(+1)

    @cached_property
    def neighbor_bwd(self) -> np.ndarray:
        """``neighbor_bwd[mu, i]`` = index of the site at ``x - mu_hat``."""
        return self._neighbors(-1)

    def _neighbors(self, step: int) -> np.ndarray:
        out = np.empty((NDIM, self.volume), dtype=np.int64)
        X, Y, Z, T = self.dims
        c = self.coords
        for mu, extent in enumerate(self.dims):
            cc = c.copy()
            cc[:, mu] = (cc[:, mu] + step) % extent
            out[mu] = (
                cc[:, 0] + X * (cc[:, 1] + Y * (cc[:, 2] + Z * cc[:, 3]))
            )
        return out

    @cached_property
    def boundary_phase_fwd(self) -> np.ndarray:
        """Phase picked up by a spinor fetched from ``x + mu_hat``.

        Shape ``(4, V)`` float64.  Entries are 1 except, for the temporal
        direction with antiperiodic boundary conditions, -1 on sites whose
        forward temporal neighbor crosses the *global* boundary.
        """
        return self._phases(+1)

    @cached_property
    def boundary_phase_bwd(self) -> np.ndarray:
        """Phase picked up by a spinor fetched from ``x - mu_hat``."""
        return self._phases(-1)

    def _phases(self, step: int) -> np.ndarray:
        out = np.ones((NDIM, self.volume), dtype=np.float64)
        if not self.antiperiodic_t:
            return out
        t_local = self.coords[:, T_DIR]
        t_global = t_local + self.t_offset
        if step > 0:
            crossing = t_global == self.global_t - 1
        else:
            crossing = t_global == 0
        out[T_DIR, crossing] = -1.0
        return out

    # ------------------------------------------------------------------ #
    # Even-odd (checkerboard) neighbor tables
    # ------------------------------------------------------------------ #

    @cached_property
    def eo_neighbor_fwd(self) -> tuple[np.ndarray, np.ndarray]:
        """Checkerboarded forward-neighbor tables.

        ``eo_neighbor_fwd[p][mu, k]`` is the checkerboard index (within
        parity ``1-p``) of the forward ``mu`` neighbor of the ``k``-th site
        of parity ``p``.  Used by the parity-restricted hopping term
        ``D_eo`` / ``D_oe`` of the even-odd preconditioned system.
        """
        return self._eo_tables(self.neighbor_fwd)

    @cached_property
    def eo_neighbor_bwd(self) -> tuple[np.ndarray, np.ndarray]:
        """Checkerboarded backward-neighbor tables (see ``eo_neighbor_fwd``)."""
        return self._eo_tables(self.neighbor_bwd)

    def _eo_tables(self, full: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        cb = self.checkerboard_index
        even, odd = self.sites_of_parity
        return (cb[full[:, even]], cb[full[:, odd]])

    # ------------------------------------------------------------------ #
    # Timeslices and decomposition
    # ------------------------------------------------------------------ #

    def timeslice(self, t: int) -> slice:
        """Contiguous site range of local timeslice ``t`` (x-fastest order)."""
        T = self.dims[T_DIR]
        if not 0 <= t < T:
            raise IndexError(f"timeslice {t} outside local extent {T}")
        vs = self.spatial_volume
        return slice(t * vs, (t + 1) * vs)

    def timeslice_sites_of_parity(self, t: int, parity: int) -> np.ndarray:
        """Checkerboard indices (within ``parity``) of sites in timeslice ``t``.

        These are the face sites gathered/scattered by the parallel dslash
        (Section VI-C): ``Vs/2`` sites per parity per timeslice.
        """
        sl = self.timeslice(t)
        sites = np.arange(sl.start, sl.stop)
        mask = self.parity[sites] == parity
        return self.checkerboard_index[sites[mask]]

    def face_half_sites(self, mu: int) -> int:
        """Sites of one parity in one ``mu``-slice: ``V / dims[mu] / 2``."""
        return self.volume // self.dims[mu] // 2

    def boundary_sites_of_parity(self, mu: int, end: int, parity: int) -> np.ndarray:
        """Checkerboard indices of parity sites on a ``mu`` boundary slice.

        ``end = -1`` selects the slice at coordinate 0, ``end = +1`` the
        slice at ``dims[mu] - 1``.  Sites come out in lexicographic order
        of the remaining coordinates — identical enumeration on the
        sending and receiving rank, which is what makes ghost faces
        correspond positionally (the multi-dimensional generalization of
        the Fig. 3 layout).
        """
        if end not in (-1, +1):
            raise ValueError("end must be -1 (low face) or +1 (high face)")
        coord = 0 if end == -1 else self.dims[mu] - 1
        mask = (self.coords[:, mu] == coord) & (self.parity == parity)
        return self.checkerboard_index[np.nonzero(mask)[0]]

    def slice_time(self, n_ranks: int) -> "TimeSlicing":
        """Partition the time dimension into ``n_ranks`` equal slices.

        This is the paper's parallelization strategy (Section VI-A): only
        the time dimension is divided, with the full spatial extent on each
        GPU.  Raises if ``T`` is not divisible into even-sized local slabs.
        """
        T = self.dims[T_DIR]
        if self.t_offset != 0 or self.dims[T_DIR] != self.global_t:
            raise ValueError("can only decompose a monolithic lattice")
        if n_ranks < 1 or T % n_ranks:
            raise ValueError(f"T={T} not divisible by {n_ranks} ranks")
        t_local = T // n_ranks
        if n_ranks > 1 and t_local % 2:
            raise ValueError(
                f"local time extent {t_local} must be even for even-odd "
                f"preconditioning (T={T}, ranks={n_ranks})"
            )
        locals_ = tuple(
            LatticeGeometry(
                dims=(self.dims[0], self.dims[1], self.dims[2], t_local),
                antiperiodic_t=self.antiperiodic_t,
                t_offset=r * t_local,
                global_t=T,
            )
            for r in range(n_ranks)
        )
        return TimeSlicing(global_geometry=self, locals=locals_)

    def slice_grid(self, ranks_z: int, ranks_t: int) -> "GridSlicing":
        """Partition both Z and T over a ``ranks_z x ranks_t`` rank grid.

        The multi-dimensional decomposition of the paper's future work
        (Section VI-A: needed "to scale to hundreds of GPUs or more" and
        "to keep the local surface to volume ratio under control").  Rank
        order: z fastest, ``rank = z_index + ranks_z * t_index``.
        """
        if self.t_offset != 0 or self.z_offset != 0:
            raise ValueError("can only decompose a monolithic lattice")
        Z, T = self.dims[Z_DIR], self.dims[T_DIR]
        for name, extent, ranks in (("Z", Z, ranks_z), ("T", T, ranks_t)):
            if ranks < 1 or extent % ranks:
                raise ValueError(f"{name}={extent} not divisible by {ranks} ranks")
            local = extent // ranks
            if ranks > 1 and local % 2:
                raise ValueError(
                    f"local {name} extent {local} must be even (extent "
                    f"{extent}, ranks {ranks})"
                )
        z_local, t_local = Z // ranks_z, T // ranks_t
        locals_ = tuple(
            LatticeGeometry(
                dims=(self.dims[0], self.dims[1], z_local, t_local),
                antiperiodic_t=self.antiperiodic_t,
                t_offset=tr * t_local,
                global_t=T,
                z_offset=zr * z_local,
                global_z=Z,
            )
            for tr in range(ranks_t)
            for zr in range(ranks_z)
        )
        return GridSlicing(
            global_geometry=self, locals=locals_, ranks_z=ranks_z, ranks_t=ranks_t
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        x, y, z, t = self.dims
        extra = (
            f", t_offset={self.t_offset}, global_t={self.global_t}"
            if self.dims[T_DIR] != self.global_t
            else ""
        )
        return f"LatticeGeometry({x}x{y}x{z}x{t}{extra})"


@dataclass(frozen=True)
class TimeSlicing:
    """A decomposition of a global lattice into per-rank time slabs."""

    global_geometry: LatticeGeometry
    locals: tuple[LatticeGeometry, ...] = field(repr=False)

    @property
    def n_ranks(self) -> int:
        return len(self.locals)

    def local_sites(self, rank: int) -> slice:
        """Global lexicographic site range owned by ``rank`` (contiguous
        because ``t`` runs slowest)."""
        geo = self.locals[rank]
        vs = geo.spatial_volume
        start = geo.t_offset * vs
        return slice(start, start + geo.volume)

    def neighbor_rank(self, rank: int, step: int) -> int:
        """Rank holding the slab in the +t (``step=+1``) or -t direction."""
        return (rank + step) % self.n_ranks

    def scatter(self, full: np.ndarray, rank: int) -> np.ndarray:
        """Extract ``rank``'s slab of a field whose leading axis is sites."""
        return full[self.local_sites(rank)]

    def gather(self, parts: list[np.ndarray]) -> np.ndarray:
        """Reassemble per-rank slabs into a full-lattice field."""
        if len(parts) != self.n_ranks:
            raise ValueError("wrong number of slabs")
        return np.concatenate(parts, axis=0)


@dataclass(frozen=True)
class GridSlicing:
    """A 2-D (Z, T) decomposition of a global lattice (Section VI-A
    future work).  Rank order: z fastest."""

    global_geometry: LatticeGeometry
    locals: tuple[LatticeGeometry, ...] = field(repr=False)
    ranks_z: int
    ranks_t: int

    @property
    def n_ranks(self) -> int:
        return self.ranks_z * self.ranks_t

    def rank_coords(self, rank: int) -> tuple[int, int]:
        """(z index, t index) of a rank in the logical machine grid."""
        return rank % self.ranks_z, rank // self.ranks_z

    def neighbor_rank(self, rank: int, axis: int, step: int) -> int:
        """Neighbouring rank along grid ``axis`` (0 = Z, 1 = T)."""
        zr, tr = self.rank_coords(rank)
        if axis == 0:
            return (zr + step) % self.ranks_z + self.ranks_z * tr
        if axis == 1:
            return zr + self.ranks_z * ((tr + step) % self.ranks_t)
        raise ValueError("axis must be 0 (Z) or 1 (T)")

    def local_site_indices(self, rank: int) -> np.ndarray:
        """Global lexicographic indices owned by ``rank``.

        Not contiguous for ``ranks_z > 1`` (z is not the slowest index) —
        the structural cost of multi-dimensional decomposition the paper
        alludes to.  Ordered to match the local lattice's own lex order.
        """
        geo = self.global_geometry
        local = self.locals[rank]
        c = geo.coords
        z0 = local.z_offset
        t0 = local.t_offset
        mask = (
            (c[:, 2] >= z0)
            & (c[:, 2] < z0 + local.dims[2])
            & (c[:, 3] >= t0)
            & (c[:, 3] < t0 + local.dims[3])
        )
        return np.nonzero(mask)[0]  # global lex order == local lex order

    def local_sites(self, rank: int) -> np.ndarray:
        """Alias of :meth:`local_site_indices` (drop-in for TimeSlicing)."""
        return self.local_site_indices(rank)

    def scatter(self, full: np.ndarray, rank: int) -> np.ndarray:
        return full[self.local_site_indices(rank)]

    def gather(self, parts: list[np.ndarray]) -> np.ndarray:
        if len(parts) != self.n_ranks:
            raise ValueError("wrong number of slabs")
        out = np.empty(
            (self.global_geometry.volume,) + parts[0].shape[1:], dtype=parts[0].dtype
        )
        for rank, part in enumerate(parts):
            out[self.local_site_indices(rank)] = part
        return out
