"""Lattice QCD substrate: geometry, fields, and the reference Wilson-clover
operator (paper Sections II and V).

This subpackage is the "ground truth" layer: a clean, fully vectorized
NumPy implementation of everything the paper's GPU kernels compute.  The
virtual-GPU and multi-GPU layers are validated against it.
"""

from .geometry import NDIM, LatticeGeometry, TimeSlicing
from .fields import CloverField, GaugeField, SpinorField, zeros_spinor
from .dirac import WilsonCloverOperator, apply_gamma5, hopping_term
from .clover import make_clover, pack_clover, unpack_clover
from .evenodd import SchurOperator, dslash_parity, full_to_parity, parity_to_full
from .random_fields import (
    point_source,
    random_gauge,
    random_spinor,
    unit_gauge,
    weak_field_gauge,
)
from .hostsolve import SolveResult, bicgstab, cg, cgne, cgnr

__all__ = [
    "NDIM",
    "LatticeGeometry",
    "TimeSlicing",
    "SpinorField",
    "GaugeField",
    "CloverField",
    "zeros_spinor",
    "WilsonCloverOperator",
    "hopping_term",
    "apply_gamma5",
    "make_clover",
    "pack_clover",
    "unpack_clover",
    "SchurOperator",
    "dslash_parity",
    "full_to_parity",
    "parity_to_full",
    "unit_gauge",
    "weak_field_gauge",
    "random_gauge",
    "random_spinor",
    "point_source",
    "SolveResult",
    "cg",
    "cgne",
    "cgnr",
    "bicgstab",
]

# Future-work extensions (paper Section VIII).
from .montecarlo import Ensemble, heatbath_sweep, overrelaxation_sweep, wilson_action
from .multigrid import AdaptiveMultigrid, BlockGeometry, fgmres

__all__ += [
    "Ensemble",
    "heatbath_sweep",
    "overrelaxation_sweep",
    "wilson_action",
    "AdaptiveMultigrid",
    "BlockGeometry",
    "fgmres",
]

# Analysis-phase toolkit: observables and field storage.
from .measurements import (
    MESON_CHANNELS,
    Propagator,
    compute_propagator,
    meson_correlator,
    polyakov_loop,
    wilson_loop,
)
from .io import load_gauge, load_spinor, save_gauge, save_spinor

__all__ += [
    "Propagator",
    "compute_propagator",
    "meson_correlator",
    "MESON_CHANNELS",
    "wilson_loop",
    "polyakov_loop",
    "save_gauge",
    "load_gauge",
    "save_spinor",
    "load_spinor",
]
