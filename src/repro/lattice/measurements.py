"""Physics observables: the analysis-phase payload of the LQCD workflow.

The paper's introduction frames the whole enterprise: configurations are
generated, then "the solution vectors are used to compute the final
observables of interest".  This module implements the standard observable
toolkit on top of the solver:

* **Quark propagators** — all 12 (spin, color) point-source columns,
  computed through :func:`repro.core.invert_multi` so the device setup is
  amortized exactly as in production (Section VIII).
* **Meson two-point functions** with arbitrary gamma-matrix insertions
  (pion, rho, scalar, axial), via the gamma5-hermiticity trick
  ``S(0, x) = gamma_5 S(x, 0)^dag gamma_5``.
* **Wilson loops** and the **Polyakov loop** — pure-gauge observables
  (they need no solves) used to verify generated ensembles; at strong
  coupling the Wilson loop obeys the area law ``W(R, T) ~ (beta/18)^RT``,
  which the tests check against the Monte Carlo module.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import gamma as _gamma
from . import su3
from .fields import GaugeField
from .geometry import LatticeGeometry, T_DIR
from .random_fields import point_source

__all__ = [
    "Propagator",
    "compute_propagator",
    "meson_correlator",
    "MESON_CHANNELS",
    "wilson_loop",
    "polyakov_loop",
]


@dataclass
class Propagator:
    """A point-to-all quark propagator.

    ``data[x, s, c, s0, c0]`` is the amplitude from source component
    ``(s0, c0)`` at ``source_site`` to ``(s, c)`` at site ``x``.
    """

    geometry: LatticeGeometry
    data: np.ndarray
    source_site: int = 0

    def __post_init__(self) -> None:
        expected = (self.geometry.volume, 4, 3, 4, 3)
        if self.data.shape != expected:
            raise ValueError(f"expected shape {expected}, got {self.data.shape}")

    def column(self, spin: int, color: int) -> np.ndarray:
        """One source component's solution, shape ``(V, 4, 3)``."""
        return self.data[:, :, :, spin, color]


def compute_propagator(
    gauge: GaugeField,
    inv,
    *,
    source_site: int = 0,
    n_gpus: int = 1,
    grid: tuple[int, int] | None = None,
    **invert_kwargs,
) -> Propagator:
    """Solve for all 12 source components (one ``invert_multi`` call).

    ``inv`` is a :class:`repro.core.QudaInvertParam`; extra keyword
    arguments pass through to :func:`repro.core.invert_multi`.
    """
    from ..core import invert_multi

    geometry = gauge.geometry
    sources = [
        point_source(geometry, site=source_site, spin=s, color=c)
        for s in range(4)
        for c in range(3)
    ]
    results = invert_multi(
        gauge, sources, inv, n_gpus=n_gpus, grid=grid, **invert_kwargs
    )
    data = np.zeros((geometry.volume, 4, 3, 4, 3), dtype=np.complex128)
    k = 0
    for s in range(4):
        for c in range(3):
            if not results[k].stats.converged:
                raise RuntimeError(f"column (spin {s}, color {c}) did not converge")
            data[:, :, :, s, c] = results[k].solution.data
            k += 1
    return Propagator(geometry, data, source_site)


#: Interpolating-operator gamma structures for the common meson channels.
def _channels() -> dict[str, np.ndarray]:
    g = _gamma.gamma_matrices(_gamma.DEGRAND_ROSSI)
    g5 = np.asarray(_gamma.gamma5(_gamma.DEGRAND_ROSSI))
    eye = np.eye(4, dtype=complex)
    return {
        "pion": g5,  # pseudoscalar: gamma_5
        "scalar": eye,  # scalar: 1
        "rho_x": np.asarray(g[0]),
        "rho_y": np.asarray(g[1]),
        "rho_z": np.asarray(g[2]),
        "a1_x": np.asarray(g5 @ g[0]),  # axial vector
    }


MESON_CHANNELS = _channels()


def meson_correlator(prop: Propagator, channel: str = "pion") -> np.ndarray:
    """The zero-momentum meson two-point function ``C(t)``.

    With interpolating operator ``qbar Gamma q``, a point source at
    timeslice 0, and the gamma5-hermiticity backward line
    ``S(0, x) = gamma_5 S(x, 0)^dag gamma_5``,

        C(t) = sum_x Tr[ Gamma S(x,0) Gamma gamma_5 S(x,0)^dag gamma_5 ]

    (the same ``Gamma`` at source and sink — Chroma's convention, which
    makes the physical channels come out positive); for the pion this
    reduces to ``sum |S|^2``.  Returns the length-``T`` array of ``C(t)``.
    """
    try:
        gam = MESON_CHANNELS[channel]
    except KeyError:
        raise ValueError(
            f"unknown channel {channel!r}; known: {sorted(MESON_CHANNELS)}"
        ) from None
    geo = prop.geometry
    g5 = np.asarray(_gamma.gamma5(_gamma.DEGRAND_ROSSI))
    corr_site = _meson_contract(prop.data, gam, gam, g5)
    vs = geo.spatial_volume
    T = geo.dims[T_DIR]
    return corr_site.reshape(T, vs).sum(axis=1).real


def _meson_contract(s: np.ndarray, gam: np.ndarray, gbar: np.ndarray, g5: np.ndarray) -> np.ndarray:
    """Per-site meson contraction via 12x12 (spin x color) matrices:

        C(x) = Tr[ Gamma S(x) Gammabar gamma_5 S(x)^dag gamma_5 ] .
    """
    v = s.shape[0]
    s_mat = s.reshape(v, 12, 12)
    gam12 = np.kron(gam, np.eye(3))
    gbar12 = np.kron(gbar, np.eye(3))
    g512 = np.kron(g5, np.eye(3))
    m = gam12 @ s_mat @ gbar12 @ g512 @ np.conj(np.swapaxes(s_mat, 1, 2)) @ g512
    return np.trace(m, axis1=1, axis2=2)


def wilson_loop(gauge: GaugeField, r: int, t: int) -> float:
    """The R x T planar Wilson loop, averaged over sites and the three
    (spatial, temporal) plane orientations.

    ``W(1, 1)`` is the plaquette; at strong coupling ``W(R, T) ~
    (beta/18)^(RT)`` (the area law), at ``beta -> inf`` every loop is 1.
    """
    if r < 1 or t < 1:
        raise ValueError("loop extents must be >= 1")
    geo = gauge.geometry
    total = 0.0
    for i in range(3):  # spatial directions
        line_r = _line(gauge, i, r)  # product of r links in direction i
        line_t = _line(gauge, T_DIR, t)
        # Loop: line_r(x) line_t(x + r i) line_r(x + t T)^dag line_t(x)^dag
        shift_r = _shift_sites(geo, i, r)
        shift_t = _shift_sites(geo, T_DIR, t)
        loop = (
            line_r
            @ line_t[shift_r]
            @ su3.adjoint(line_r[shift_t])
            @ su3.adjoint(line_t)
        )
        total += float(np.mean(su3.trace(loop).real)) / 3.0
    return total / 3.0


def _line(gauge: GaugeField, mu: int, length: int) -> np.ndarray:
    """Path-ordered product of ``length`` links in direction ``mu``:
    ``U_mu(x) U_mu(x+mu) ... U_mu(x+(length-1)mu)``, shape (V, 3, 3)."""
    geo = gauge.geometry
    fwd = geo.neighbor_fwd[mu]
    prod = gauge.data[mu].copy()
    shift = fwd
    for _ in range(length - 1):
        prod = prod @ gauge.data[mu][shift]
        shift = fwd[shift]
    return prod


def _shift_sites(geo: LatticeGeometry, mu: int, n: int) -> np.ndarray:
    """Site index map for a shift of ``n`` steps in direction ``mu``."""
    fwd = geo.neighbor_fwd[mu]
    out = np.arange(geo.volume)
    for _ in range(n):
        out = fwd[out]
    return out


def polyakov_loop(gauge: GaugeField) -> complex:
    """The volume-averaged Polyakov loop: the trace of the temporal link
    product winding around the lattice — 1 on the free field, near zero
    in the confined phase of a thermalized ensemble."""
    geo = gauge.geometry
    T = geo.dims[T_DIR]
    vs = geo.spatial_volume
    loop = _line(gauge, T_DIR, T)[:vs]  # starting points on timeslice 0
    return complex(np.mean(su3.trace(loop)) / 3.0)
