"""Loop-form hot kernels: the numba targets behind the NumPy reference.

Each kernel here is the inner loop the profiler blames when a functional
(``execute=True``) solve runs — the dslash stencil gather/contract, the
clover site-block matvec, and the fused solver reductions.  They are
written in the numba-compatible subset of Python (explicit site loops,
contiguous complex128 arrays, no broadcasting tricks) so that:

* with numba installed, :func:`repro.jit.maybe_njit` compiles them to
  machine code and the dispatchers in :mod:`repro.lattice.dirac`,
  :mod:`repro.lattice.fields` and :mod:`repro.core.blas` route the hot
  calls here;
* without numba (or under ``REPRO_NO_JIT=1``) the same source still
  runs interpreted — far slower than the vectorized NumPy paths, so the
  dispatchers then keep the einsum/vdot forms — but the tests can
  execute it on a small lattice and pin loop-vs-NumPy agreement without
  needing numba in the image.

All kernels take raw arrays, not field objects: numba sees only
ndarrays, and the object-world adapters stay in the caller.
"""

from __future__ import annotations

import numpy as np

from ..jit import JIT_ENABLED, maybe_njit

__all__ = [
    "JIT_ENABLED",
    "hopping_term_loops",
    "clover_apply_loops",
    "norm2_loops",
    "cdot_loops",
    "axpy_norm_loops",
]


@maybe_njit(cache=True)
def hopping_term_loops(
    u: np.ndarray,  # (4, V, 3, 3) complex128 gauge links
    psi: np.ndarray,  # (V, 4, 3) complex128 spinor
    fwd: np.ndarray,  # (4, V) int neighbor tables
    bwd: np.ndarray,  # (4, V) int
    ph_fwd: np.ndarray,  # (4, V) float boundary phases
    ph_bwd: np.ndarray,  # (4, V) float
    proj_minus: np.ndarray,  # (4, 4, 4) complex128: P(-)mu per direction
    proj_plus: np.ndarray,  # (4, 4, 4) complex128: P(+)mu per direction
    out: np.ndarray,  # (V, 4, 3) complex128, zero-initialized
) -> None:
    """The nearest-neighbor stencil ``D psi`` of paper eq. (2), site loop.

    For each direction: gather the forward neighbor, multiply by the
    link and project with ``P(-)mu``; gather the backward neighbor,
    multiply by the adjoint back-link and project with ``P(+)mu``.
    Identical arithmetic order to the einsum reference per site term —
    link matvec first, spin projection second — so the two paths agree
    to rounding.
    """
    volume = psi.shape[0]
    # Per-call scratch: thread-safe (SimMPI rank bodies share the
    # process) and numba-compilable, unlike module-level state.
    scratch_f = np.zeros((4, 3), dtype=np.complex128)
    scratch_b = np.zeros((4, 3), dtype=np.complex128)
    for mu in range(4):
        pm = proj_minus[mu]
        pp = proj_plus[mu]
        for x in range(volume):
            xf = fwd[mu, x]
            xb = bwd[mu, x]
            phf = ph_fwd[mu, x]
            phb = ph_bwd[mu, x]
            # scratch_f[s, a] = sum_b u[mu, x, a, b] * psi[xf, s, b] * phf
            # scratch_b[s, a] = sum_b conj(u[mu, xb, b, a]) * psi[xb, s, b] * phb
            for s in range(4):
                for a in range(3):
                    accf = 0.0 + 0.0j
                    accb = 0.0 + 0.0j
                    for b in range(3):
                        accf += u[mu, x, a, b] * (psi[xf, s, b] * phf)
                        accb += np.conj(u[mu, xb, b, a]) * (psi[xb, s, b] * phb)
                    scratch_f[s, a] = accf
                    scratch_b[s, a] = accb
            for s in range(4):
                for a in range(3):
                    acc = out[x, s, a]
                    for t in range(4):
                        acc += pm[s, t] * scratch_f[t, a]
                        acc += pp[s, t] * scratch_b[t, a]
                    out[x, s, a] = acc


@maybe_njit(cache=True)
def clover_apply_loops(
    blocks: np.ndarray,  # (V, 2, 6, 6) complex128 chiral blocks
    psi: np.ndarray,  # (V, 4, 3) complex128
    out: np.ndarray,  # (V, 4, 3) complex128, accumulated into
) -> None:
    """``out += A psi`` with ``A`` in chiral-block storage.

    Each chirality's 6-vector is the spin-major flattening of the two
    spins x three colors of that chirality (spins (0,1) upper, (2,3)
    lower — the DeGrand-Rossi convention the blocks were built in).
    """
    volume = psi.shape[0]
    for x in range(volume):
        for chirality in range(2):
            s0 = 2 * chirality
            for i in range(6):
                acc = 0.0 + 0.0j
                for j in range(6):
                    acc += blocks[x, chirality, i, j] * psi[
                        x, s0 + j // 3, j % 3
                    ]
                out[x, s0 + i // 3, i % 3] += acc


@maybe_njit(cache=True)
def norm2_loops(x: np.ndarray) -> float:
    """``|x|^2`` over a flat complex array, single pass."""
    acc = 0.0
    flat = x.reshape(-1)
    for i in range(flat.shape[0]):
        v = flat[i]
        acc += v.real * v.real + v.imag * v.imag
    return acc


@maybe_njit(cache=True)
def cdot_loops(x: np.ndarray, y: np.ndarray) -> complex:
    """``<x, y>`` (conjugate-linear in ``x``) over flat arrays."""
    acc = 0.0 + 0.0j
    xf = x.reshape(-1)
    yf = y.reshape(-1)
    for i in range(xf.shape[0]):
        acc += np.conj(xf[i]) * yf[i]
    return acc


@maybe_njit(cache=True)
def axpy_norm_loops(a: complex, x: np.ndarray, y: np.ndarray) -> float:
    """Fused ``y += a x; return |y|^2`` — one pass, no temporary.

    The NumPy form materializes ``a*x + y`` and then reduces it (two
    traffic passes plus an allocation); the compiled loop is the single
    pass the real QUDA kernel makes.
    """
    acc = 0.0
    xf = x.reshape(-1)
    yf = y.reshape(-1)
    for i in range(xf.shape[0]):
        v = yf[i] + a * xf[i]
        yf[i] = v
        acc += v.real * v.real + v.imag * v.imag
    return acc
