"""Host-side (plain NumPy) Krylov solvers — the algorithmic references.

The paper's production solvers (Section V, VI-E) run on the device in the
core package; these are the textbook versions used to validate them:

* :func:`cg` — Conjugate Gradients (Hestenes & Stiefel) for Hermitian
  positive-definite operators.
* :func:`cgne` / :func:`cgnr` — CG on the normal equations, usable on the
  non-Hermitian Wilson-clover matrix (paper Section II).
* :func:`bicgstab` — van der Vorst's BiCGstab, "more commonly, the system
  is solved directly using a non-symmetric method".

Each returns a :class:`SolveResult` with the iterate, iteration count, and
the full residual-norm history (handy for solver-behavior tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = ["SolveResult", "ConvergenceError", "cg", "cgne", "cgnr", "bicgstab"]

Operator = Callable[[np.ndarray], np.ndarray]


class ConvergenceError(RuntimeError):
    """Raised when a solver exhausts ``maxiter`` without reaching ``tol``."""

    def __init__(self, message: str, result: "SolveResult") -> None:
        super().__init__(message)
        self.result = result


@dataclass
class SolveResult:
    """Outcome of a Krylov solve."""

    x: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool
    history: list[float] = field(default_factory=list, repr=False)


def _finish(
    x: np.ndarray,
    iters: int,
    rnorm: float,
    target: float,
    history: list[float],
    raise_on_fail: bool,
    name: str,
) -> SolveResult:
    converged = rnorm <= target
    result = SolveResult(x, iters, rnorm, converged, history)
    if not converged and raise_on_fail:
        raise ConvergenceError(
            f"{name} stalled at |r| = {rnorm:.3e} (target {target:.3e}) "
            f"after {iters} iterations",
            result,
        )
    return result


def cg(
    apply_a: Operator,
    b: np.ndarray,
    *,
    x0: np.ndarray | None = None,
    tol: float = 1e-10,
    maxiter: int = 10_000,
    raise_on_fail: bool = True,
) -> SolveResult:
    """Conjugate gradients for Hermitian positive-definite ``A``.

    ``tol`` is relative: the solve stops when ``|r| <= tol * |b|``.
    """
    b = np.asarray(b)
    x = np.zeros_like(b) if x0 is None else x0.copy()
    r = b - apply_a(x) if x0 is not None else b.copy()
    p = r.copy()
    rr = np.vdot(r, r).real
    bnorm = float(np.linalg.norm(b))
    target = tol * bnorm if bnorm > 0 else tol
    history = [float(np.sqrt(rr))]
    if history[0] <= target:
        return SolveResult(x, 0, history[0], True, history)
    for it in range(1, maxiter + 1):
        ap = apply_a(p)
        alpha = rr / np.vdot(p, ap).real
        x += alpha * p
        r -= alpha * ap
        rr_new = np.vdot(r, r).real
        history.append(float(np.sqrt(rr_new)))
        if np.sqrt(rr_new) <= target:
            return SolveResult(x, it, float(np.sqrt(rr_new)), True, history)
        beta = rr_new / rr
        p = r + beta * p
        rr = rr_new
    return _finish(x, maxiter, history[-1], target, history, raise_on_fail, "CG")


def cgne(
    apply_a: Operator,
    apply_a_dag: Operator,
    b: np.ndarray,
    **kwargs,
) -> SolveResult:
    """CG on the normal equations ``A A^dag y = b``, ``x = A^dag y`` (CGNE)."""
    result = cg(lambda v: apply_a(apply_a_dag(v)), b, **kwargs)
    result.x = apply_a_dag(result.x)
    return result


def cgnr(
    apply_a: Operator,
    apply_a_dag: Operator,
    b: np.ndarray,
    **kwargs,
) -> SolveResult:
    """CG on the normal residual equations ``A^dag A x = A^dag b`` (CGNR)."""
    return cg(lambda v: apply_a_dag(apply_a(v)), apply_a_dag(b), **kwargs)


def bicgstab(
    apply_a: Operator,
    b: np.ndarray,
    *,
    x0: np.ndarray | None = None,
    tol: float = 1e-10,
    maxiter: int = 10_000,
    raise_on_fail: bool = True,
) -> SolveResult:
    """BiCGstab (van der Vorst) for general non-Hermitian ``A``.

    This is the solver the paper benchmarks ("the reliably updated BiCGstab
    solver discussed in [4]"); the reliable-update mixed-precision wrapper
    lives in :mod:`repro.core.solvers.reliable`.
    """
    b = np.asarray(b)
    x = np.zeros_like(b) if x0 is None else x0.copy()
    r = b - apply_a(x) if x0 is not None else b.copy()
    r0 = r.copy()
    rho = alpha = omega = 1.0 + 0.0j
    v = np.zeros_like(b)
    p = np.zeros_like(b)
    bnorm = float(np.linalg.norm(b))
    target = tol * bnorm if bnorm > 0 else tol
    rnorm = float(np.linalg.norm(r))
    history = [rnorm]
    if rnorm <= target:
        return SolveResult(x, 0, rnorm, True, history)
    for it in range(1, maxiter + 1):
        rho_new = np.vdot(r0, r)
        if rho_new == 0:  # breakdown; restart from current residual
            r0 = r.copy()
            rho_new = np.vdot(r0, r)
        beta = (rho_new / rho) * (alpha / omega)
        p = r + beta * (p - omega * v)
        v = apply_a(p)
        alpha = rho_new / np.vdot(r0, v)
        s = r - alpha * v
        snorm = float(np.linalg.norm(s))
        if snorm <= target:
            x += alpha * p
            history.append(snorm)
            return SolveResult(x, it, snorm, True, history)
        t = apply_a(s)
        omega = np.vdot(t, s) / np.vdot(t, t)
        x += alpha * p + omega * s
        r = s - omega * t
        rho = rho_new
        rnorm = float(np.linalg.norm(r))
        history.append(rnorm)
        if rnorm <= target:
            return SolveResult(x, it, rnorm, True, history)
    return _finish(x, maxiter, rnorm, target, history, raise_on_fail, "BiCGstab")
