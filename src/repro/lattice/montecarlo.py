"""Pure-gauge Monte Carlo: the *generation* phase of the LQCD workflow.

The paper's introduction describes lattice QCD as a two-phase computation:
first "one generates thousands of configurations of the strong force
fields", then each configuration is analyzed with the solvers this
library parallelizes.  The conclusion lists gauge generation on GPU
clusters as future work ("Parallelization onto multiple GPUs may make
gauge generation on GPU clusters an interesting and desirable
possibility"); this module supplies that missing phase with the standard
pure-gauge algorithm suite:

* the **Wilson gauge action** ``S = beta * sum_P (1 - Re tr U_P / 3)``,
* the **Cabibbo-Marinari pseudo-heatbath**: each SU(3) link is updated
  through its three SU(2) subgroups, each subgroup drawn from the exact
  local heatbath distribution (Creutz / Kennedy-Pendleton),
* **overrelaxation** sweeps (microcanonical reflections) to decorrelate,
* an :class:`Ensemble` driver with plaquette thermalization tracking.

Updates sweep the lattice checkerboard-by-checkerboard and
direction-by-direction so that every link in a batch has a staple sum
independent of the other links being updated — the standard
parallelizable ordering (and the one a multi-GPU port would use).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .geometry import NDIM, LatticeGeometry
from . import su3
from .fields import GaugeField

__all__ = [
    "staple_sum",
    "wilson_action",
    "su2_heatbath",
    "heatbath_sweep",
    "overrelaxation_sweep",
    "Ensemble",
]

#: The three SU(2) subgroups of SU(3): index pairs (i, j) with i < j.
_SU2_SUBGROUPS = ((0, 1), (0, 2), (1, 2))


def staple_sum(gauge: GaugeField, mu: int) -> np.ndarray:
    """Sum of the six staples around every ``mu`` link, shape ``(V, 3, 3)``.

    Oriented so that ``U_mu(x) @ A`` is the sum of the six plaquettes
    containing the link: the local Boltzmann weight of ``U_mu(x)`` is
    ``exp(+beta/3 * Re tr[U_mu(x) A])``, which is all the heatbath and
    overrelaxation updates need.
    """
    geo = gauge.geometry
    u = gauge.data
    fwd = geo.neighbor_fwd
    bwd = geo.neighbor_bwd
    adj = su3.adjoint
    total = np.zeros((geo.volume, 3, 3), dtype=np.complex128)
    for nu in range(NDIM):
        if nu == mu:
            continue
        # Forward staple: U_nu(x+mu) U_mu(x+nu)^dag U_nu(x)^dag.
        total += u[nu][fwd[mu]] @ adj(u[mu][fwd[nu]]) @ adj(u[nu])
        # Backward staple: U_nu(x+mu-nu)^dag U_mu(x-nu)^dag U_nu(x-nu).
        xm = bwd[nu]
        total += adj(u[nu][fwd[mu]][xm]) @ adj(u[mu][xm]) @ u[nu][xm]
    return total


def wilson_action(gauge: GaugeField, beta: float) -> float:
    """The Wilson gauge action ``beta * sum_P (1 - Re tr U_P / 3)``."""
    n_plaq = 6 * gauge.geometry.volume
    return beta * n_plaq * (1.0 - gauge.plaquette())


def su2_heatbath(k: np.ndarray, beta_eff: float, rng: np.random.Generator) -> np.ndarray:
    """Draw SU(2) matrices from ``dP ~ exp(beta_eff * k * a0/2) dOmega``.

    ``k`` is the per-site magnitude of the embedded SU(2) staple
    projection; returns quaternion components ``(sites, 4)`` =
    ``(a0, a1, a2, a3)``.  Uses Creutz's accept/reject for ``a0`` — exact
    for any coupling — vectorized with a resampling loop.
    """
    n = k.shape[0]
    alpha = np.maximum(beta_eff * k, 1e-12)
    a0 = np.empty(n)
    todo = np.ones(n, dtype=bool)
    # Creutz: a0 = 1 + log(x) / alpha with x uniform in [exp(-2 alpha), 1],
    # accepted with probability sqrt(1 - a0^2).
    while np.any(todo):
        idx = np.nonzero(todo)[0]
        a = alpha[idx]
        x = rng.uniform(np.exp(-2.0 * a), 1.0)
        trial = 1.0 + np.log(x) / a
        accept = rng.uniform(size=idx.size) ** 2 <= 1.0 - trial**2
        a0[idx[accept]] = trial[accept]
        todo[idx[accept]] = False
    # Direction of (a1, a2, a3): uniform on the sphere of radius r.
    r = np.sqrt(np.maximum(0.0, 1.0 - a0**2))
    costh = rng.uniform(-1.0, 1.0, size=n)
    sinth = np.sqrt(1.0 - costh**2)
    phi = rng.uniform(0.0, 2.0 * np.pi, size=n)
    return np.stack(
        [a0, r * sinth * np.cos(phi), r * sinth * np.sin(phi), r * costh], axis=1
    )


def _su2_extract(w: np.ndarray, i: int, j: int) -> tuple[np.ndarray, np.ndarray]:
    """Project the (i, j) 2x2 submatrix of ``w`` onto SU(2)xR+.

    Any 2x2 complex matrix decomposes as ``m = k * q`` with ``q`` in SU(2)
    and ``k >= 0`` via ``q ~ (m + sigma_2 m* sigma_2)``.  Returns the
    quaternion components of ``q`` (sites, 4) and the magnitudes ``k``.
    """
    m00 = w[:, i, i]
    m01 = w[:, i, j]
    m10 = w[:, j, i]
    m11 = w[:, j, j]
    a0 = 0.5 * (m00 + m11).real
    a1 = 0.5 * (m01 + m10).imag
    a2 = 0.5 * (m01 - m10).real
    a3 = 0.5 * (m00 - m11).imag
    quat = np.stack([a0, a1, a2, a3], axis=1)
    k = np.sqrt(np.sum(quat**2, axis=1))
    safe = np.where(k < 1e-300, 1.0, k)
    return quat / safe[:, None], k


def _su2_embed(quat: np.ndarray, i: int, j: int, n: int) -> np.ndarray:
    """Embed quaternions as SU(2) matrices in the (i, j) plane of SU(3)."""
    out = su3.identity((n,))
    a0, a1, a2, a3 = (quat[:, c] for c in range(4))
    out[:, i, i] = a0 + 1j * a3
    out[:, i, j] = a2 + 1j * a1
    out[:, j, i] = -a2 + 1j * a1
    out[:, j, j] = a0 - 1j * a3
    return out


def _quat_mul(p: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Quaternion product in the ``a0 + i a_k sigma_k`` basis (vectorized).

    The basis units ``e_k = i sigma_k`` satisfy ``e_i e_j = -eps_ijk e_k``
    (the *reversed* Hamilton convention), so the vector part is
    ``p0 q_vec + q0 p_vec - p_vec x q_vec``; this makes ``_su2_embed`` a
    group homomorphism, which the tests verify directly.
    """
    a0, a1, a2, a3 = (p[:, c] for c in range(4))
    b0, b1, b2, b3 = (q[:, c] for c in range(4))
    return np.stack(
        [
            a0 * b0 - a1 * b1 - a2 * b2 - a3 * b3,
            a0 * b1 + a1 * b0 - (a2 * b3 - a3 * b2),
            a0 * b2 + a2 * b0 - (a3 * b1 - a1 * b3),
            a0 * b3 + a3 * b0 - (a1 * b2 - a2 * b1),
        ],
        axis=1,
    )


def _quat_conj(q: np.ndarray) -> np.ndarray:
    out = q.copy()
    out[:, 1:] *= -1.0
    return out


def _update_links(
    gauge: GaugeField,
    mu: int,
    sites: np.ndarray,
    rng: np.random.Generator | None,
    beta: float,
    overrelax: bool,
) -> None:
    """Heatbath (or overrelaxation) update of one checkerboard of U_mu."""
    staples = staple_sum(gauge, mu)[sites]
    u = gauge.data[mu][sites]
    for i, j in _SU2_SUBGROUPS:
        w = u @ staples
        v_quat, k = _su2_extract(w, i, j)
        if overrelax:
            # Microcanonical reflection: g = v^dag^2 keeps tr[g w] fixed.
            g_quat = _quat_mul(_quat_conj(v_quat), _quat_conj(v_quat))
        else:
            # Heatbath in this subgroup: new subgroup element q with
            # q * (k v) distributed per the local action => q = h v^dag.
            h = su2_heatbath(k, 2.0 * beta / 3.0, rng)
            g_quat = _quat_mul(h, _quat_conj(v_quat))
        g = _su2_embed(g_quat, i, j, sites.size)
        u = g @ u
    gauge.data[mu][sites] = su3.reunitarize(u)


def heatbath_sweep(gauge: GaugeField, beta: float, rng: np.random.Generator) -> None:
    """One Cabibbo-Marinari pseudo-heatbath sweep over all links.

    Checkerboard-by-checkerboard, direction-by-direction: every link in a
    batch sees a fixed staple environment, so the update is embarrassingly
    parallel within a batch (the ordering a GPU port would exploit).
    """
    geo = gauge.geometry
    for parity in (0, 1):
        sites = geo.sites_of_parity[parity]
        for mu in range(NDIM):
            _update_links(gauge, mu, sites, rng, beta, overrelax=False)


def overrelaxation_sweep(gauge: GaugeField, rng: np.random.Generator) -> None:
    """One microcanonical overrelaxation sweep (action-preserving up to
    the SU(2)-subgroup approximation; decorrelates the ensemble)."""
    geo = gauge.geometry
    for parity in (0, 1):
        sites = geo.sites_of_parity[parity]
        for mu in range(NDIM):
            _update_links(gauge, mu, sites, rng, 0.0, overrelax=True)


@dataclass
class Ensemble:
    """A Markov chain of gauge configurations at coupling ``beta``.

    The usual production mix: each "update" is one heatbath sweep followed
    by ``n_overrelax`` overrelaxation sweeps.
    """

    geometry: LatticeGeometry
    beta: float
    rng: np.random.Generator
    n_overrelax: int = 2
    start: str = "cold"  # 'cold' (unit links) or 'hot' (random)
    gauge: GaugeField = field(init=False)
    plaquette_history: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        from .random_fields import random_gauge, unit_gauge

        if self.start == "cold":
            self.gauge = unit_gauge(self.geometry)
        elif self.start == "hot":
            self.gauge = random_gauge(self.geometry, self.rng)
        else:
            raise ValueError(f"start must be 'cold' or 'hot', got {self.start!r}")
        self.plaquette_history.append(self.gauge.plaquette())

    def update(self, n: int = 1) -> float:
        """Run ``n`` compound updates; returns the latest plaquette."""
        for _ in range(n):
            heatbath_sweep(self.gauge, self.beta, self.rng)
            for _ in range(self.n_overrelax):
                overrelaxation_sweep(self.gauge, self.rng)
            self.plaquette_history.append(self.gauge.plaquette())
        return self.plaquette_history[-1]

    def thermalize(self, n_updates: int = 20) -> float:
        """Discard ``n_updates`` for equilibration; returns the plaquette."""
        return self.update(n_updates)
