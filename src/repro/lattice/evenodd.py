"""Even-odd (red-black) preconditioning of the Wilson-clover system.

"Even-odd (also known as red-black) preconditioning is used to accelerate
the solution finding process, where the nearest neighbor property of the
D matrix is exploited to solve the Schur complement system" (paper
Section II).  Writing ``M = A' - (1/2) D`` with sitewise-diagonal
``A' = (4 + m + A)`` and ordering sites even-first,

    M = [  A'_e      -1/2 D_eo ]
        [ -1/2 D_oe   A'_o     ]

the Schur complement on the even sublattice is

    Mhat = A'_e - (1/4) D_eo A'_o^{-1} D_oe .

Solving ``Mhat x_e = b_e + (1/2) D_eo A'_o^{-1} b_o`` and reconstructing
``x_o = A'_o^{-1} (b_o + (1/2) D_oe x_e)`` gives the full solution at half
the Krylov-space size and roughly twice the solver speed.  "This has no
effect on the overall efficiency since the fields are reordered such that
all components of a given parity are contiguous."

This module provides the parity-restricted hopping term and the Schur
operator as the host reference; the device / multi-GPU implementations are
validated against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .geometry import NDIM, LatticeGeometry
from . import gamma as _gamma
from . import su3
from .fields import CloverField, GaugeField, SpinorField, apply_chiral_blocks

__all__ = [
    "dslash_parity",
    "SchurOperator",
    "full_to_parity",
    "parity_to_full",
]

EVEN, ODD = 0, 1


def full_to_parity(geometry: LatticeGeometry, data: np.ndarray, parity: int) -> np.ndarray:
    """Extract the ``parity`` checkerboard of a full field (leading axis V)."""
    return data[geometry.sites_of_parity[parity]]


def parity_to_full(
    geometry: LatticeGeometry,
    even: np.ndarray,
    odd: np.ndarray,
) -> np.ndarray:
    """Interleave even/odd checkerboards back into full-lattice ordering."""
    out = np.empty((geometry.volume,) + even.shape[1:], dtype=even.dtype)
    e_sites, o_sites = geometry.sites_of_parity
    out[e_sites] = even
    out[o_sites] = odd
    return out


def dslash_parity(
    gauge: GaugeField,
    psi_cb: np.ndarray,
    target_parity: int,
    *,
    basis: str = _gamma.DEGRAND_ROSSI,
    dagger: bool = False,
) -> np.ndarray:
    """Parity-restricted hopping term ``D_{target <- source}``.

    ``psi_cb`` holds the checkerboard of parity ``1 - target_parity``
    (shape ``(V/2, 4, 3)``); the result lives on ``target_parity`` sites.
    This is the kernel QUDA actually runs: the even-odd solver only ever
    applies ``D_eo`` and ``D_oe``.
    """
    geo = gauge.geometry
    target_sites = geo.sites_of_parity[target_parity]
    nbr_fwd = geo.eo_neighbor_fwd[target_parity]
    nbr_bwd = geo.eo_neighbor_bwd[target_parity]
    ph_fwd = geo.boundary_phase_fwd[:, target_sites]
    ph_bwd = geo.boundary_phase_bwd[:, target_sites]
    u = gauge.data
    full_bwd = geo.neighbor_bwd
    out = np.zeros((target_sites.size,) + psi_cb.shape[1:], dtype=psi_cb.dtype)
    sgn = -1 if dagger else +1
    for mu in range(NDIM):
        p_minus = _gamma.projector(mu, -sgn, basis)
        p_plus = _gamma.projector(mu, +sgn, basis)
        # Forward: U_mu at the target site itself.
        psi_f = psi_cb[nbr_fwd[mu]] * ph_fwd[mu][:, None, None]
        u_psi = np.einsum("xab,xsb->xsa", u[mu][target_sites], psi_f)
        out += np.einsum("st,xta->xsa", p_minus, u_psi)
        # Backward: U_mu stored at the source site x - mu_hat.
        psi_b = psi_cb[nbr_bwd[mu]] * ph_bwd[mu][:, None, None]
        u_back = su3.adjoint(u[mu][full_bwd[mu][target_sites]])
        u_psi = np.einsum("xab,xsb->xsa", u_back, psi_b)
        out += np.einsum("st,xta->xsa", p_plus, u_psi)
    return out


@dataclass
class SchurOperator:
    """The even-odd preconditioned Wilson-clover operator ``Mhat``.

    Precomputes the checkerboarded diagonal blocks ``A' = (4 + m) + A`` and
    the inverse of the opposite-parity block (6x6 chiral-block inverses, as
    QUDA does once per configuration).  ``solve_parity`` selects which
    checkerboard carries the preconditioned system (QUDA's MATPC_EVEN_EVEN
    vs MATPC_ODD_ODD).
    """

    gauge: GaugeField
    mass: float
    clover: CloverField | None = None
    basis: str = _gamma.DEGRAND_ROSSI
    #: Parity the preconditioned system lives on (QUDA's MATPC choice):
    #: EVEN gives Mhat = A'_ee - (1/4) D_eo A'_oo^{-1} D_oe, ODD the
    #: mirror image.  Both reconstruct the same full solution.
    solve_parity: int = EVEN
    _diag: list[np.ndarray] = field(init=False, repr=False)
    _diag_inv: list[np.ndarray | None] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        geo = self.gauge.geometry
        coeff = 4.0 + self.mass
        eye = np.zeros((1, 2, 6, 6), dtype=np.complex128)
        eye[0, :, np.arange(6), np.arange(6)] = 1.0
        self._diag = []
        self._diag_inv = [None, None]
        for parity in (EVEN, ODD):
            sites = geo.sites_of_parity[parity]
            block = np.broadcast_to(coeff * eye, (sites.size, 2, 6, 6)).copy()
            if self.clover is not None:
                block += self.clover.data[sites]
            self._diag.append(block)

    @property
    def geometry(self) -> LatticeGeometry:
        return self.gauge.geometry

    @property
    def half_volume(self) -> int:
        return self.geometry.half_volume

    def diag_apply(self, psi_cb: np.ndarray, parity: int) -> np.ndarray:
        """Apply ``A'`` on one checkerboard."""
        return apply_chiral_blocks(self._diag[parity], psi_cb)

    def diag_inverse_apply(self, psi_cb: np.ndarray, parity: int) -> np.ndarray:
        """Apply ``A'^{-1}`` on one checkerboard (inverse cached)."""
        if self._diag_inv[parity] is None:
            self._diag_inv[parity] = np.linalg.inv(self._diag[parity])
        return apply_chiral_blocks(self._diag_inv[parity], psi_cb)

    def apply(self, psi_p: np.ndarray, *, dagger: bool = False) -> np.ndarray:
        """``Mhat psi`` (or its dagger) on the solve-parity checkerboard."""
        p = self.solve_parity
        q = 1 - p
        # Mhat^dag uses the daggered hopping term; the diagonal blocks and
        # their inverses are Hermitian blockwise.
        d_qp = dslash_parity(self.gauge, psi_p, q, basis=self.basis, dagger=dagger)
        tmp = self.diag_inverse_apply(d_qp, q)
        d_pq = dslash_parity(self.gauge, tmp, p, basis=self.basis, dagger=dagger)
        return self.diag_apply(psi_p, p) - 0.25 * d_pq

    # ------------------------------------------------------------------ #
    # Source preparation / solution reconstruction
    # ------------------------------------------------------------------ #

    def prepare_source(self, b: SpinorField) -> tuple[np.ndarray, np.ndarray]:
        """Split ``b`` and fold the other parity into the solve source.

        Returns ``(b_hat, b_q)`` with (for the even-parity default)
        ``b_hat = b_e + (1/2) D_eo A'_o^{-1} b_o``.
        """
        geo = self.geometry
        p = self.solve_parity
        q = 1 - p
        b_p = full_to_parity(geo, b.data, p)
        b_q = full_to_parity(geo, b.data, q)
        tmp = self.diag_inverse_apply(b_q, q)
        b_hat = b_p + 0.5 * dslash_parity(self.gauge, tmp, p, basis=self.basis)
        return b_hat, b_q

    def reconstruct(self, x_p: np.ndarray, b_q: np.ndarray) -> SpinorField:
        """Rebuild the full solution from the preconditioned solve:
        ``x_q = A'_q^{-1} (b_q + (1/2) D_qp x_p)``."""
        p = self.solve_parity
        q = 1 - p
        d_qp = dslash_parity(self.gauge, x_p, q, basis=self.basis)
        x_q = self.diag_inverse_apply(b_q + 0.5 * d_qp, q)
        pair = (x_p, x_q) if p == EVEN else (x_q, x_p)
        full = parity_to_full(self.geometry, *pair)
        return SpinorField(self.geometry, full, self.basis)

    # -- flat-vector interface --------------------------------------------

    def as_linear_operator(self, *, dagger: bool = False, normal: bool = False):
        """``f(vec) -> vec`` over flattened even-checkerboard data."""

        def matvec(v: np.ndarray) -> np.ndarray:
            x = v.reshape(-1, 4, 3)
            if normal:
                y = self.apply(self.apply(x), dagger=True)
            else:
                y = self.apply(x, dagger=dagger)
            return y.reshape(-1)

        return matvec
