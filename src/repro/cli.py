"""Command-line interface: the library's workflow as shell commands.

    python -m repro solve     --dims 8,8,8,16 --mode single-half --gpus 2
    python -m repro generate  --dims 4,4,4,8 --beta 5.7 --updates 10 --out cfg
    python -m repro spectrum  --config cfg.npz --mass 0.3
    python -m repro bench     --figure fig5b
    python -m repro chaos     --seed 7 --gpus 4 --stall 2
    python -m repro experiments --out EXPERIMENTS.md

``solve`` runs the paper's solver on a weak-field (or stored)
configuration; ``generate`` runs the heatbath Monte Carlo; ``spectrum``
computes meson correlators from a stored configuration; ``bench``
regenerates one of the paper's figures; ``experiments`` writes the full
paper-vs-measured report.
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def _dims(text: str) -> tuple[int, int, int, int]:
    parts = tuple(int(p) for p in text.replace("x", ",").split(","))
    if len(parts) != 4:
        raise argparse.ArgumentTypeError("dims must be X,Y,Z,T")
    return parts


def _grid(text: str) -> tuple[int, int]:
    parts = tuple(int(p) for p in text.split(","))
    if len(parts) != 2:
        raise argparse.ArgumentTypeError("grid must be RANKS_Z,RANKS_T")
    return parts


def _mix(text: str) -> tuple[float, float, float]:
    parts = tuple(float(p) for p in text.split(","))
    if len(parts) != 3 or any(p < 0 for p in parts) or not sum(parts):
        raise argparse.ArgumentTypeError(
            "priority mix must be three non-negative weights HIGH,NORMAL,LOW"
        )
    return parts


def _names(text: str) -> tuple[str, ...]:
    parts = tuple(p.strip() for p in text.split(",") if p.strip())
    if not parts:
        raise argparse.ArgumentTypeError("need at least one name")
    return parts


def _floats(text: str) -> tuple[float, ...]:
    try:
        return tuple(float(p) for p in text.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a comma-separated float list: {text!r}")


def _grid_policy(text: str):
    """The serve-side grid knob: 'auto' (score per request), 'time'
    (pin the paper's time-only slicing), or a pinned RANKS_Z,RANKS_T."""
    if text == "auto":
        return "auto"
    if text in ("time", "none"):
        return None
    return _grid(text)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multi-GPU QUDA reproduction (Babich/Clark/Joo, SC'10) "
        "on a simulated cluster.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("solve", help="run one Wilson-clover solve")
    p.add_argument("--dims", type=_dims, default=(8, 8, 8, 16))
    p.add_argument("--mode", default="single-half",
                   choices=["single", "double", "single-half", "double-half"])
    p.add_argument("--gpus", type=int, default=2)
    p.add_argument("--grid", type=_grid, default=None,
                   help="multi-dimensional decomposition: RANKS_Z,RANKS_T")
    p.add_argument("--mass", type=float, default=0.1)
    p.add_argument("--no-overlap", action="store_true",
                   help="disable communication/computation overlap")
    p.add_argument("--config", default=None, help="stored gauge config (.npz)")
    p.add_argument("--seed", type=int, default=2010)

    p = sub.add_parser("generate", help="heatbath gauge generation")
    p.add_argument("--dims", type=_dims, default=(4, 4, 4, 8))
    p.add_argument("--beta", type=float, default=5.7)
    p.add_argument("--updates", type=int, default=10)
    p.add_argument("--start", default="cold", choices=["cold", "hot"])
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--out", default=None, help="save final configuration here")

    p = sub.add_parser("spectrum", help="meson correlators from a config")
    p.add_argument("--config", default=None, help="stored gauge config (.npz)")
    p.add_argument("--dims", type=_dims, default=(4, 4, 4, 8),
                   help="weak-field dims when no --config is given")
    p.add_argument("--mass", type=float, default=0.3)
    p.add_argument("--gpus", type=int, default=2)
    p.add_argument("--channels", default="pion,rho_x")
    p.add_argument("--seed", type=int, default=3)

    p = sub.add_parser("bench", help="regenerate one paper figure")
    p.add_argument("--figure", required=True)
    p.add_argument("--iterations", type=int, default=15)

    p = sub.add_parser(
        "profile", help="per-kernel time breakdown of a (timing-only) solve"
    )
    p.add_argument("--dims", type=_dims, default=(24, 24, 24, 128))
    p.add_argument("--mode", default="single-half",
                   choices=["single", "double", "single-half", "double-half"])
    p.add_argument("--gpus", type=int, default=8)
    p.add_argument("--no-overlap", action="store_true")
    p.add_argument("--iterations", type=int, default=10)
    p.add_argument("--gantt", action="store_true",
                   help="also draw the stream schedule of the window")
    p.add_argument("--hotspots", action="store_true",
                   help="profile the host CPU instead of the model: run "
                   "the saturated scheduler campaign under cProfile with "
                   "per-phase wall-time attribution")
    p.add_argument("--requests", type=int, default=1024,
                   help="campaign size for --hotspots")
    p.add_argument("--top", type=int, default=15,
                   help="hotspot rows to print for --hotspots")
    p.add_argument("--legacy", action="store_true",
                   help="profile the pre-refactor (fastpath-off) code "
                   "paths with --hotspots")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="also write the --hotspots profile as JSON")

    p = sub.add_parser(
        "chaos",
        help="fault-injected solve: deterministic latency jitter, "
        "send retries, rank stalls/crashes, silent data corruption",
    )
    p.add_argument("--seed", type=int, default=7,
                   help="fault-plan seed (same seed => same schedule)")
    p.add_argument("--dims", type=_dims, default=(8, 8, 8, 32))
    p.add_argument("--mode", default="single-half",
                   choices=["single", "double", "single-half", "double-half"])
    p.add_argument("--gpus", type=int, default=4)
    p.add_argument("--iterations", type=int, default=10)
    p.add_argument("--no-overlap", action="store_true")
    p.add_argument("--jitter-prob", type=float, default=0.25,
                   help="per-message chance of extra latency on IB links")
    p.add_argument("--jitter-us", type=float, default=20.0,
                   help="mean of the exponential extra latency")
    p.add_argument("--spike-prob", type=float, default=0.02,
                   help="chance of a large reordering latency spike")
    p.add_argument("--send-fail-prob", type=float, default=0.05,
                   help="transient send-failure chance (retried w/ backoff)")
    p.add_argument("--stall", type=int, default=None, metavar="RANK",
                   help="rank that stops responding mid-solve")
    p.add_argument("--crash", type=int, default=None, metavar="RANK",
                   help="rank that dies loudly mid-solve")
    p.add_argument("--fail-after-us", type=float, default=500.0,
                   help="model time at which the stalled/crashed rank dies")
    p.add_argument("--op-timeout", type=float, default=5.0,
                   help="wall seconds before a blocked op reports the failure")
    p.add_argument("--schedule", action="store_true",
                   help="print the full injected-fault schedule")
    p.add_argument("--recover", action="store_true",
                   help="self-heal: relaunch over the survivors and resume "
                   "from the last refresh-point checkpoint")
    p.add_argument("--max-attempts", type=int, default=2,
                   help="relaunch budget when --recover is given")
    p.add_argument("--no-shrink", action="store_true",
                   help="relaunch at the same rank count instead of "
                   "re-partitioning over the survivors")
    p.add_argument("--functional", action="store_true",
                   help="real numerics on a weak-field configuration "
                   "(verifies the true residual) instead of timing-only")
    p.add_argument("--mass", type=float, default=0.2,
                   help="quark mass for --functional runs")
    p.add_argument("--corrupt", action="store_true",
                   help="inject silent data corruption on in-flight "
                   "payloads (detected/repaired by the integrity layer)")
    p.add_argument("--bitflip-rate", type=float, default=0.02,
                   help="per-message bit-flip chance when --corrupt is given")
    p.add_argument("--scribble-rate", type=float, default=0.0,
                   help="per-message value-scribble chance with --corrupt")
    p.add_argument("--corrupt-bits", type=int, default=1,
                   help="bits flipped per corrupted message")
    p.add_argument("--corrupt-budget", type=int, default=-1,
                   help="max corrupted transmissions per rank (-1 = unlimited)")
    p.add_argument("--resident", type=int, default=None, metavar="RANK",
                   help="scribble over RANK's resident solution field "
                   "mid-solve (caught by the invariant monitors)")
    p.add_argument("--resident-after-us", type=float, default=2000.0,
                   help="model time of the resident corruption")
    p.add_argument("--resident-scale", type=float, default=1e4,
                   help="scribble magnitude relative to the field's own "
                   "largest entry (big enough to trip the invariant "
                   "monitors; small perturbations are absorbed)")
    p.add_argument("--no-verify", action="store_true",
                   help="disable checksum verification (demonstrates the "
                   "silent-corruption failure mode)")
    p.add_argument("--max-resend", type=int, default=3,
                   help="NACK/resend budget per corrupted message")

    p = sub.add_parser(
        "serve",
        help="run the solve service: queued, batched, SLO-aware campaign "
        "scheduling over a pool of simulated multi-GPU workers",
    )
    p.add_argument("--requests", type=int, default=32,
                   help="synthetic campaign size (solver calls)")
    p.add_argument("--workers", type=int, default=2,
                   help="worker pool size (each an n-rank SimMPI cluster)")
    p.add_argument("--ranks", type=int, default=2,
                   help="GPUs (ranks) per worker")
    p.add_argument("--dims", type=_dims, default=(8, 8, 8, 32))
    p.add_argument("--mode", default="single-half",
                   choices=["single", "double", "single-half", "double-half"])
    p.add_argument("--mass", type=float, default=0.2)
    p.add_argument("--rate", type=float, default=2000.0,
                   help="arrival rate (requests per model second)")
    p.add_argument("--configs", type=int, default=1,
                   help="distinct gauge configurations in the campaign "
                   "(only same-config requests share a batch)")
    p.add_argument("--batch-max", type=int, default=8,
                   help="multi-RHS batch size cap (1 disables batching)")
    p.add_argument("--batch-wait-us", type=float, default=500.0,
                   help="batching window: max model time a batch head waits")
    p.add_argument("--queue-capacity", type=int, default=64,
                   help="admission queue bound (beyond it: reject with "
                   "retry-after)")
    p.add_argument("--max-retries", type=int, default=1,
                   help="re-dispatches after a worker failure before a "
                   "request fails terminally")
    p.add_argument("--deadline-ms", type=float, default=None,
                   help="per-request SLO slack in model ms (goodput metric)")
    p.add_argument("--iterations", type=int, default=15,
                   help="solver iterations per request (timing-only mode)")
    p.add_argument("--seed", type=int, default=2010)
    p.add_argument("--functional", action="store_true",
                   help="real numerics on weak-field configurations "
                   "instead of the timing-only schedule")
    p.add_argument("--chaos", action="store_true",
                   help="inject a rank crash into one worker mid-campaign")
    p.add_argument("--crash-worker", type=int, default=0,
                   help="worker hit by the chaos crash")
    p.add_argument("--crash-rank", type=int, default=1,
                   help="rank of that worker's cluster that dies")
    p.add_argument("--fail-after-us", type=float, default=500.0,
                   help="model time into a batch at which the rank dies")
    p.add_argument("--recover", action="store_true",
                   help="worker-level self-healing (checkpoint resume over "
                   "survivors) instead of service-level re-dispatch")
    p.add_argument("--max-attempts", type=int, default=2,
                   help="worker relaunch budget when --recover is given")
    p.add_argument("--grid", type=_grid_policy, default="auto",
                   metavar="auto|time|RANKS_Z,RANKS_T",
                   help="process-grid policy: 'auto' scores every feasible "
                   "decomposition per request with the perf model, 'time' "
                   "pins the paper's time-only slicing, RANKS_Z,RANKS_T "
                   "pins one grid")
    p.add_argument("--no-residency", action="store_true",
                   help="disable gauge-resident routing (every batch "
                   "re-uploads its configuration)")
    p.add_argument("--no-tunecache", action="store_true",
                   help="disable the shared tunecache (per-batch retuning, "
                   "uncharged, as before the placement layer)")
    p.add_argument("--tunecache", default=None, metavar="PATH",
                   help="persist the shared tunecache as JSON at PATH: "
                   "loaded before the campaign if present, saved after, so "
                   "the autotune sweep amortizes across campaigns")
    p.add_argument("--trace", type=int, default=None, metavar="REQ_ID",
                   help="print one request's full lifecycle trace")
    p.add_argument("--json", default=None,
                   help="also write the report as JSON to this path")
    # ---- daemon mode -------------------------------------------------- #
    p.add_argument("--stream", action="store_true",
                   help="daemon mode: requests arrive over an open channel "
                   "(lazy seeded Poisson source) instead of a precomputed "
                   "list; the scheduler runs until the channel closes and "
                   "every admitted request is terminal")
    p.add_argument("--duration-ms", type=float, default=None,
                   help="close the arrival channel after this much model "
                   "time (with --stream; combines with --requests)")
    p.add_argument("--burst-rate", type=float, default=None,
                   help="bursty arrivals: rate inside the burst window "
                   "(base rate comes from --rate; implies --stream)")
    p.add_argument("--burst-start-ms", type=float, default=0.0,
                   help="model time the burst window opens")
    p.add_argument("--burst-len-ms", type=float, default=0.0,
                   help="burst window length in model ms")
    p.add_argument("--priority-mix", type=_mix, default=None,
                   metavar="HIGH,NORMAL,LOW",
                   help="arrival priority mix as three weights "
                   "(default 0.1,0.7,0.2)")
    p.add_argument("--preempt", action="store_true",
                   help="LOW batches yield to waiting HIGH arrivals at "
                   "refresh-point boundaries and later resume from "
                   "checkpoint")
    p.add_argument("--refresh-points", type=int, default=4,
                   help="refresh boundaries per batch a preempted solve "
                   "may yield at")
    p.add_argument("--resume-overhead-us", type=float, default=100.0,
                   help="model time to reload a preempted batch's "
                   "checkpoint on resume")
    p.add_argument("--elastic", action="store_true",
                   help="scale the worker pool against the measured "
                   "arrival rate (--workers is the starting size)")
    p.add_argument("--min-workers", type=int, default=1)
    p.add_argument("--max-workers", type=int, default=8)
    p.add_argument("--spinup-us", type=float, default=2000.0,
                   help="model time between a scale-up decision and the "
                   "new worker taking traffic")
    p.add_argument("--checkpoint", default=None, metavar="PATH",
                   help="commit the campaign checkpoint to PATH at every "
                   "batch boundary (scheduler self-healing)")
    p.add_argument("--crash-scheduler-at-ms", type=float, default=None,
                   help="kill the scheduler at this model time, then "
                   "resume from the campaign checkpoint (supervisor "
                   "pattern); exits non-zero unless the resumed run "
                   "restores from checkpoint and terminates every "
                   "admitted request")
    # ---- resilience --------------------------------------------------- #
    p.add_argument("--health", action="store_true",
                   help="per-worker health tracking + circuit breaker: "
                   "flaky workers are quarantined, probed after a "
                   "cooldown, and reinstated or retired")
    p.add_argument("--cooldown-us", type=float, default=2000.0,
                   help="quarantine cooldown before the probe batch")
    p.add_argument("--hedge", action="store_true",
                   help="straggler hedging: a batch running past the "
                   "model-relative threshold earns a replica on an idle "
                   "worker; first completion wins")
    p.add_argument("--hedge-factor", type=float, default=1.5,
                   help="hedge when elapsed exceeds this multiple of the "
                   "dispatch-time drain estimate")
    p.add_argument("--brownout", action="store_true",
                   help="graceful brownout under overload: shed LOW with "
                   "retry-after, degrade batch precision, reject NORMAL "
                   "— HIGH is served until capacity itself is gone")
    p.add_argument("--kill-worker-at-ms", type=float, default=None,
                   help="kill a whole worker at this model time "
                   "(correlated failure; its in-flight requests "
                   "re-dispatch)")
    p.add_argument("--kill-worker", type=int, default=0,
                   help="worker id the --kill-worker-at-ms kill hits")
    p.add_argument("--straggler-factor", type=float, default=None,
                   help="slow one worker's solves by this factor "
                   "(> 1; the fault straggler hedging exists for)")
    p.add_argument("--straggler-worker", type=int, default=1,
                   help="worker id the --straggler-factor slowdown hits")
    # ---- failure domains ---------------------------------------------- #
    p.add_argument("--topology", default=None, metavar="NODESxGPUS[@RACKS]",
                   help="failure-domain hierarchy, e.g. 3x2@3: workers map "
                   "onto nodes, nodes onto racks (switches); enables "
                   "correlated faults, domain quarantine, anti-affinity "
                   "and mirrored checkpoints")
    p.add_argument("--kill-node-at-ms", type=float, default=None,
                   help="silently kill a whole node at this model time: "
                   "its workers stop answering but the scheduler is not "
                   "told — the health stack must infer the loss")
    p.add_argument("--kill-node", type=int, default=0,
                   help="node id the --kill-node-at-ms kill hits")
    p.add_argument("--partition-switch-at-ms", type=float, default=None,
                   help="partition a whole rack (switch failure) at this "
                   "model time; it heals after a seeded interval")
    p.add_argument("--partition-rack", type=int, default=0,
                   help="rack id the --partition-switch-at-ms hits")
    p.add_argument("--heal-ms", type=float, default=2.0,
                   help="mean model time before a partitioned rack heals")
    p.add_argument("--domain-quarantine", action="store_true",
                   help="escalate k-of-n correlated worker strikes into a "
                   "whole-domain quarantine (one probe per node, not per "
                   "worker)")
    p.add_argument("--anti-affinity", action="store_true",
                   help="place warm-pool and hedge replicas in a different "
                   "failure domain than the primary whenever possible")
    # ---- multi-tenancy ------------------------------------------------- #
    p.add_argument("--tenants", type=_names, default=None, metavar="A,B,...",
                   help="tenant names sharing the service; enables "
                   "per-tenant quotas, weighted-fair dispatch, and the "
                   "per-tenant scorecard")
    p.add_argument("--tenant-weights", type=_floats, default=None,
                   metavar="W,W,...",
                   help="fair-share weights, one per tenant "
                   "(default: equal)")
    p.add_argument("--tenant-mix", type=_floats, default=None,
                   metavar="P,P,...",
                   help="arrival mix across tenants as weights "
                   "(default: uniform)")
    p.add_argument("--quota-qps", type=float, default=None,
                   help="per-tenant token-bucket refill rate (requests "
                   "per model second; default: unmetered)")
    p.add_argument("--quota-burst", type=int, default=None,
                   help="per-tenant token-bucket capacity (back-to-back "
                   "arrivals before the refill rate gates admission; "
                   "default: one second of --quota-qps)")
    p.add_argument("--capacity-sweep", action="store_true",
                   help="instead of one campaign, sweep arrival rate x "
                   "tenant mix x worker count and print the saturation "
                   "map (the SLO-attainment knee); honours --json")

    p = sub.add_parser("experiments", help="write the full EXPERIMENTS.md")
    p.add_argument("--out", default="EXPERIMENTS.md")
    p.add_argument("--iterations", type=int, default=40)
    return parser


def _cmd_solve(args) -> int:
    from .core import invert, paper_invert_param
    from .lattice import random_spinor, weak_field_gauge
    from .lattice.geometry import LatticeGeometry
    from .lattice.io import load_gauge

    rng = np.random.default_rng(args.seed)
    if args.config:
        gauge, meta = load_gauge(args.config)
        print(f"loaded {args.config}: dims {gauge.geometry.dims}, "
              f"plaquette {gauge.plaquette():.4f}, metadata {meta}")
    else:
        geo = LatticeGeometry(args.dims)
        gauge = weak_field_gauge(geo, rng, noise=0.1)
    source = random_spinor(gauge.geometry, rng)
    inv = paper_invert_param(
        args.mode, mass=args.mass, overlap_comms=not args.no_overlap
    )
    res = invert(gauge, source, inv, n_gpus=args.gpus, grid=args.grid)
    ranks = args.grid[0] * args.grid[1] if args.grid else args.gpus
    print(f"solved on {ranks} virtual GPUs "
          f"({'grid ' + str(args.grid) if args.grid else 'time-sliced'})")
    print(f"  converged:      {res.stats.converged}")
    print(f"  iterations:     {res.stats.iterations} "
          f"({res.stats.reliable_updates} reliable updates)")
    print(f"  true residual:  {res.true_residual:.3e}")
    print(f"  model time:     {res.stats.model_time * 1e3:.2f} ms")
    print(f"  sustained rate: {res.stats.sustained_gflops:.1f} effective Gflops")
    return 0 if res.stats.converged else 1


def _cmd_generate(args) -> int:
    from .lattice.geometry import LatticeGeometry
    from .lattice.io import save_gauge
    from .lattice.montecarlo import Ensemble

    ens = Ensemble(
        LatticeGeometry(args.dims),
        beta=args.beta,
        rng=np.random.default_rng(args.seed),
        start=args.start,
    )
    for step in range(args.updates):
        plaq = ens.update(1)
        print(f"update {step + 1:3d}: plaquette {plaq:.5f}")
    if args.out:
        save_gauge(args.out, ens.gauge, metadata={
            "beta": args.beta, "updates": args.updates, "start": args.start,
        })
        print(f"saved configuration to {args.out}.npz")
    return 0


def _cmd_spectrum(args) -> int:
    from .core import paper_invert_param
    from .lattice import weak_field_gauge
    from .lattice.geometry import LatticeGeometry
    from .lattice.io import load_gauge
    from .lattice.measurements import compute_propagator, meson_correlator

    rng = np.random.default_rng(args.seed)
    if args.config:
        gauge, _ = load_gauge(args.config)
    else:
        gauge = weak_field_gauge(LatticeGeometry(args.dims), rng, noise=0.1)
    inv = paper_invert_param("single-half", mass=args.mass)
    print("computing the 12 propagator columns ...")
    prop = compute_propagator(gauge, inv, n_gpus=args.gpus)
    channels = args.channels.split(",")
    correlators = {ch: meson_correlator(prop, ch) for ch in channels}
    T = gauge.geometry.dims[3]
    header = "  t " + "".join(f"{ch:>14s}" for ch in channels)
    print(header)
    for t in range(T // 2):
        row = f" {t:2d} " + "".join(
            f"{correlators[ch][t]:14.6e}" for ch in channels
        )
        print(row)
    return 0


def _cmd_bench(args) -> int:
    from .bench.figures import ALL_FIGURES

    if args.figure not in ALL_FIGURES:
        print(f"unknown figure {args.figure!r}; available: "
              f"{', '.join(ALL_FIGURES)}", file=sys.stderr)
        return 2
    driver = ALL_FIGURES[args.figure]
    try:
        exp = driver(iterations=args.iterations)
    except TypeError:
        exp = driver()
    print(exp.render())
    return 0


def _cmd_profile(args) -> int:
    from .bench.profile import profile_solve, render_profile
    from .bench.trace import render_gantt

    if args.hotspots:
        import json as _json

        from .bench.profile import hotspot_profile, render_hotspots

        prof = hotspot_profile(
            args.requests,
            top=args.top,
            fast=False if args.legacy else None,
            iterations=args.iterations,
        )
        print(render_hotspots(prof))
        if args.json:
            with open(args.json, "w") as fh:
                _json.dump(prof, fh, indent=2, sort_keys=True)
                fh.write("\n")
        return 0

    ops = profile_solve(
        args.dims,
        args.mode,
        n_gpus=args.gpus,
        overlap=not args.no_overlap,
        iterations=args.iterations,
    )
    span = max(o.end for o in ops) - min(o.start for o in ops)
    print(
        f"{args.iterations} iterations of {args.mode} on {args.gpus} GPUs "
        f"({args.dims[0]}x{args.dims[1]}x{args.dims[2]}x{args.dims[3]}, "
        f"{'overlapped' if not args.no_overlap else 'not overlapped'}): "
        f"{span * 1e3:.2f} ms\n"
    )
    print(render_profile(ops))
    if args.gantt:
        print()
        print(render_gantt(ops))
    return 0


def _cmd_chaos(args) -> int:
    from .bench.harness import chaos_invert, chaos_solve
    from .bench.trace import render_recovery_lanes
    from .comms import FaultPlan, IntegrityPolicy, LinkFaults, format_schedule
    from .core import RetryPolicy

    try:
        corrupt = dict(
            bitflip_prob=args.bitflip_rate if args.corrupt else 0.0,
            scribble_prob=args.scribble_rate if args.corrupt else 0.0,
            bitflip_bits=args.corrupt_bits,
        )
        plan = FaultPlan(
            seed=args.seed,
            ib=LinkFaults(args.jitter_prob, args.jitter_us * 1e-6,
                          args.spike_prob, 10 * args.jitter_us * 1e-6,
                          **corrupt),
            shm=LinkFaults(args.jitter_prob, args.jitter_us * 1e-7,
                           args.spike_prob, args.jitter_us * 1e-6,
                           **corrupt),
            send_fail_prob=args.send_fail_prob,
            op_timeout_s=args.op_timeout,
            corrupt_budget=args.corrupt_budget,
        )
        if args.resident is not None:
            plan = plan.with_resident_corruption(
                args.resident, after_s=args.resident_after_us * 1e-6,
                scale=args.resident_scale,
            )
        integrity = None
        if args.no_verify:
            integrity = IntegrityPolicy.off()
        elif args.corrupt or args.resident is not None:
            integrity = IntegrityPolicy(max_resend=args.max_resend)
        if args.stall is not None:
            plan = plan.with_stall(args.stall, after_s=args.fail_after_us * 1e-6)
        if args.crash is not None:
            plan = plan.with_stall(
                args.crash, after_s=args.fail_after_us * 1e-6, mode="crash"
            )
        policy = None
        if args.recover:
            policy = RetryPolicy(
                max_attempts=args.max_attempts, shrink=not args.no_shrink
            )
        print(f"fault plan: {plan.describe()}")
        if args.functional:
            report = chaos_invert(
                args.dims, args.mode, args.gpus, plan,
                mass=args.mass, overlap=not args.no_overlap,
                retry_policy=policy, integrity=integrity,
            )
        else:
            report = chaos_solve(
                args.dims, args.mode, args.gpus, plan,
                overlap=not args.no_overlap, fixed_iterations=args.iterations,
                retry_policy=policy, integrity=integrity,
            )
    except ValueError as exc:
        print(f"repro chaos: error: {exc}")
        return 2
    n_events = len(report.fault_events)
    print(f"injected faults: {n_events} events, {report.retries} send "
          f"retries, {report.injected_delay_s * 1e6:.3f} us extra model time")
    corruption_requested = args.corrupt or args.resident is not None
    # Wire corruption (checksummed envelopes) must be detected
    # deterministically; resident corruption is caught by magnitude-
    # sensitive invariant monitors, so it does not gate the exit code —
    # a perturbation small enough to be absorbed by the Krylov iteration
    # is benign by construction.
    injected_wire = sum(
        1 for e in report.fault_events
        if e.kind in ("bitflip", "scribble", "coll_corrupt")
    )
    injected_corruptions = injected_wire + sum(
        1 for e in report.fault_events if e.kind == "resident_corrupt"
    )
    if corruption_requested:
        print(f"data integrity: {injected_corruptions} corruption(s) injected, "
              f"{report.corruptions_detected} detected, "
              f"{report.corruptions_corrected} corrected, "
              f"{report.resends} resend(s), "
              f"{report.integrity_overhead_s * 1e6:.3f} us verify overhead")
    if args.schedule or not report.completed:
        print(format_schedule(report.fault_events))
    if args.recover:
        print("recovery ledger:")
        print(render_recovery_lanes(report.recovery_events))
        if report.recoveries:
            print(f"recovered: {report.recoveries} relaunch(es), "
                  f"{report.wasted_iterations} iterations wasted, "
                  f"{report.lost_time_s * 1e6:.3f} us lost, "
                  f"finished on {report.final_ranks} rank(s)")
    if report.completed:
        print(f"solver completed: model time {report.model_time * 1e6:.3f} us "
              f"({report.gflops:.1f} effective Gflops)")
        # Injected corruption that sailed through an enabled integrity
        # layer undetected is itself a failure of the protection.
        silent = (
            corruption_requested
            and not args.no_verify
            and injected_wire > 0
            and report.corruptions_detected == 0
        )
        if silent:
            print("data integrity FAILED: corruption injected but none "
                  "detected", file=sys.stderr)
        if args.functional:
            print(f"  converged:     {report.converged}")
            print(f"  true residual: {report.true_residual:.3e}")
            return 0 if report.converged and not silent else 1
        return 1 if silent else 0
    print(f"solver died: {report.failure}")
    return 1


def _cmd_serve(args) -> int:
    from .comms import DomainFaultPlan, FaultPlan, Topology, WorkerFaultPlan
    from .core import RetryPolicy
    from .service import (
        BatchPolicy,
        BrownoutPolicy,
        CampaignCheckpointStore,
        DomainPolicy,
        ElasticPolicy,
        HealthPolicy,
        HedgePolicy,
        MirroredCheckpointStore,
        PlacementPolicy,
        PreemptionPolicy,
        SchedulerCrash,
        ServiceConfig,
        ServiceInvariantError,
        SharedTuneCache,
        SolveService,
        TenancyPolicy,
        bursty_workload,
        stream_workload,
        synthetic_workload,
    )

    if args.capacity_sweep:
        from .bench.harness import capacity_sweep, render_capacity_map

        cap = capacity_sweep()
        print(render_capacity_map(cap))
        if args.json:
            import json as _json

            with open(args.json, "w") as fh:
                _json.dump(cap, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"wrote {args.json}")
        return 0

    if not args.tenants and (
        args.tenant_weights or args.tenant_mix or args.quota_qps
    ):
        print("repro serve: error: tenant options require --tenants")
        return 2

    streaming = (
        args.stream
        or args.burst_rate is not None
        or args.duration_ms is not None
        or args.crash_scheduler_at_ms is not None
    )
    crashed = False
    try:
        fault_plan = None
        chaos_workers: tuple[int, ...] = ()
        if args.chaos:
            fault_plan = FaultPlan(seed=args.seed).with_stall(
                args.crash_rank,
                after_s=args.fail_after_us * 1e-6,
                mode="crash",
            )
            chaos_workers = (args.crash_worker,)
        retry_policy = None
        if args.recover:
            retry_policy = RetryPolicy(max_attempts=args.max_attempts)
        worker_faults = None
        if args.kill_worker_at_ms is not None or args.straggler_factor:
            worker_faults = WorkerFaultPlan()
            if args.kill_worker_at_ms is not None:
                worker_faults = worker_faults.with_kill(
                    args.kill_worker, at_s=args.kill_worker_at_ms * 1e-3
                )
            if args.straggler_factor:
                worker_faults = worker_faults.with_straggler(
                    args.straggler_worker, factor=args.straggler_factor
                )
        topology = (
            Topology.parse(args.topology) if args.topology is not None else None
        )
        domain_faults = None
        if args.kill_node_at_ms is not None or args.partition_switch_at_ms is not None:
            domain_faults = DomainFaultPlan(seed=args.seed)
            if args.kill_node_at_ms is not None:
                domain_faults = domain_faults.with_node_kill(
                    args.kill_node, at_s=args.kill_node_at_ms * 1e-3
                )
            if args.partition_switch_at_ms is not None:
                domain_faults = domain_faults.with_partition(
                    args.partition_rack,
                    at_s=args.partition_switch_at_ms * 1e-3,
                    mean_heal_s=args.heal_ms * 1e-3,
                )
        config = ServiceConfig(
            queue_capacity=args.queue_capacity,
            policy=BatchPolicy(
                max_batch=args.batch_max,
                max_wait_s=args.batch_wait_us * 1e-6,
            ),
            n_workers=args.workers,
            ranks_per_worker=args.ranks,
            max_retries=args.max_retries,
            functional=args.functional,
            fixed_iterations=args.iterations,
            fault_plan=fault_plan,
            chaos_workers=chaos_workers,
            retry_policy=retry_policy,
            seed=args.seed,
            placement=PlacementPolicy(
                grid=args.grid,
                residency=not args.no_residency,
                tunecache=not args.no_tunecache,
            ),
            preemption=PreemptionPolicy(
                enabled=args.preempt,
                refresh_points=args.refresh_points,
                resume_overhead_s=args.resume_overhead_us * 1e-6,
            ),
            elastic=(
                ElasticPolicy(
                    min_workers=args.min_workers,
                    max_workers=args.max_workers,
                    spinup_s=args.spinup_us * 1e-6,
                )
                if args.elastic
                else None
            ),
            health=(
                HealthPolicy(enabled=True, cooldown_s=args.cooldown_us * 1e-6)
                if args.health
                else None
            ),
            hedge=(
                HedgePolicy(enabled=True, trigger_factor=args.hedge_factor)
                if args.hedge
                else None
            ),
            brownout=BrownoutPolicy(enabled=True) if args.brownout else None,
            worker_faults=worker_faults,
            topology=topology,
            domain_faults=domain_faults,
            domain_health=(
                DomainPolicy(enabled=True) if args.domain_quarantine else None
            ),
            anti_affinity=args.anti_affinity,
            tenancy=(
                TenancyPolicy.build(
                    args.tenants,
                    weights=args.tenant_weights,
                    quota_qps=args.quota_qps,
                    quota_burst=args.quota_burst,
                )
                if args.tenants
                else None
            ),
        )
        tune_cache = None
        if args.tunecache and not args.no_tunecache and os.path.exists(
            args.tunecache
        ):
            tune_cache = SharedTuneCache.load(args.tunecache)
            print(
                f"tunecache: loaded {len(tune_cache)} entr(ies) "
                f"from {args.tunecache}"
            )
        shape = dict(
            seed=args.seed,
            dims=args.dims,
            mode=args.mode,
            mass=args.mass,
            n_configs=args.configs,
            deadline_slack_s=(
                args.deadline_ms * 1e-3 if args.deadline_ms is not None else None
            ),
        )
        if args.priority_mix is not None:
            shape["priority_mix"] = args.priority_mix
        if args.tenants:
            shape["tenants"] = args.tenants
            shape["tenant_mix"] = args.tenant_mix
        duration_s = (
            args.duration_ms * 1e-3 if args.duration_ms is not None else None
        )

        def make_workload():
            """The arrival source; deterministic, so a resumed scheduler
            can regenerate it and skip the consumed prefix."""
            if args.burst_rate is not None:
                return bursty_workload(
                    args.requests,
                    base_rps=args.rate,
                    burst_rps=args.burst_rate,
                    burst_start_s=args.burst_start_ms * 1e-3,
                    burst_len_s=args.burst_len_ms * 1e-3,
                    duration_s=duration_s,
                    **shape,
                )
            if streaming:
                return stream_workload(
                    args.requests,
                    rate_rps=args.rate,
                    duration_s=duration_s,
                    **shape,
                )
            return synthetic_workload(args.requests, rate_rps=args.rate, **shape)

        if args.chaos:
            plan = fault_plan.reseeded(args.crash_worker)
            print(
                f"chaos: worker {args.crash_worker} runs under {plan.describe()}"
            )
        if worker_faults is not None:
            for kill in worker_faults.kills:
                print(f"faults: worker {kill.worker_id} dies at "
                      f"{kill.at_s * 1e3:.3f} ms")
            for straggler in worker_faults.stragglers:
                print(f"faults: worker {straggler.worker_id} straggles "
                      f"at {straggler.factor:.1f}x")
        if domain_faults is not None:
            for nk in domain_faults.node_kills:
                print(f"faults: node {nk.node} dies silently at "
                      f"{nk.at_s * 1e3:.3f} ms")
            for sp in domain_faults.partitions:
                print(f"faults: rack {sp.rack} partitions at "
                      f"{sp.at_s * 1e3:.3f} ms, heals at "
                      f"{domain_faults.heal_time(sp) * 1e3:.3f} ms")
        store = None
        if args.checkpoint or args.crash_scheduler_at_ms is not None:
            if topology is not None and topology.n_nodes > 1:
                # The checkpoint replicates across two domains; a node
                # loss that hosted the primary restores from the mirror.
                store = MirroredCheckpointStore(
                    CampaignCheckpointStore(args.checkpoint),
                    primary_domain=0,
                    mirror_domain=topology.n_nodes - 1,
                )
            else:
                store = CampaignCheckpointStore(args.checkpoint)
        service = SolveService(config, tune_cache=tune_cache)
        if streaming:
            crash_at_s = (
                args.crash_scheduler_at_ms * 1e-3
                if args.crash_scheduler_at_ms is not None
                else None
            )
            try:
                result = service.serve(
                    make_workload(), checkpoint=store, crash_at_s=crash_at_s
                )
            except SchedulerCrash as exc:
                # Supervisor pattern: a fresh scheduler process restores
                # the campaign from the last verified commit; the workers
                # (and their device-resident gauges) survived the crash.
                crashed = True
                print(f"daemon: {exc}; resuming from campaign checkpoint")
                service = SolveService(config, tune_cache=tune_cache)
                result = service.resume(make_workload(), checkpoint=exc.store)
        else:
            result = service.run(make_workload())
    except ValueError as exc:
        print(f"repro serve: error: {exc}")
        return 2
    except ServiceInvariantError as exc:
        print(f"repro serve: INVARIANT VIOLATED: {exc}", file=sys.stderr)
        return 1
    print(result.report.render())
    if args.tunecache and service.placement.tune_cache is not None:
        service.placement.tune_cache.save(args.tunecache)
        print(
            f"tunecache: saved {len(service.placement.tune_cache)} "
            f"entr(ies) to {args.tunecache}"
        )
    if args.trace is not None:
        try:
            rec = result.record_for(args.trace)
        except KeyError:
            print(f"repro serve: no request {args.trace} in this campaign",
                  file=sys.stderr)
            return 2
        print(f"\nlifecycle of request {args.trace}:")
        print(rec.render_trace())
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(result.report.render_json() + "\n")
        print(f"wrote {args.json}")
    report = result.report
    # Every admitted request must be terminal (the service itself raises
    # on a lost request); without chaos, any terminal failure is a bug.
    accounted = report.completed + report.failed + report.rejected
    if accounted != report.n_requests:
        print(f"repro serve: {report.n_requests - accounted} request(s) "
              "unaccounted for", file=sys.stderr)
        return 1
    chaosy = (
        args.chaos
        or args.kill_worker_at_ms is not None
        or args.kill_node_at_ms is not None
        or args.partition_switch_at_ms is not None
    )
    if not chaosy and report.failed:
        print(f"repro serve: {report.failed} failure(s) without chaos",
              file=sys.stderr)
        return 1
    if crashed and not report.checkpoint_restores:
        print("repro serve: scheduler crashed but the resumed run reports "
              "no checkpoint restore", file=sys.stderr)
        return 1
    return 0


def _cmd_experiments(args) -> int:
    from .bench.experiments_md import generate

    with open(args.out, "w") as fh:
        fh.write(generate(iterations=args.iterations))
    print(f"wrote {args.out}")
    return 0


_COMMANDS = {
    "solve": _cmd_solve,
    "generate": _cmd_generate,
    "spectrum": _cmd_spectrum,
    "bench": _cmd_bench,
    "profile": _cmd_profile,
    "chaos": _cmd_chaos,
    "serve": _cmd_serve,
    "experiments": _cmd_experiments,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
