"""Packed binary records + the one canonical-encoding helper.

Every durable byte stream in the package used to be canonical JSON with
an ad-hoc ``json.dumps(..., sort_keys=True, separators=...)`` at each
call site — solve checkpoints, campaign checkpoints, report artifacts —
and profiling shows the encode/decode cost riding the scheduler's hot
path (a daemon checkpoints at every batch boundary).  This module
replaces that with:

* :func:`canonical_bytes` / :func:`pretty_json` — the *single* home of
  the two JSON shapes the repo emits (canonical for hashing/stable
  bytes, pretty for humans).  Every former ad-hoc call site routes here,
  so the canonical convention cannot drift between writers.
* A **packed binary record** format — ``struct``-packed tagged values
  behind a versioned, CRC32-protected frame — used for SimMPI envelope
  payload digests, solve/campaign checkpoints, and telemetry records.
  Typically 2-4x smaller and several times faster to encode than the
  JSON it replaces, while JSON remains the debug/inspection format
  (``decode_auto`` accepts either, so old JSON artifacts keep
  restoring).

Frame layout (16-byte fixed header, little-endian)::

    magic   4s   b"RPB1"
    version u8   format version (currently 1)
    kind    u8   record kind (KIND_*)
    flags   u16  reserved, must be zero
    length  u32  payload byte count
    crc32   u32  CRC32 of the payload bytes

A torn buffer raises :class:`TruncatedRecord`; a bit-flipped payload
raises :class:`ChecksumMismatch`; an unknown frame raises
:class:`UnknownFormat`.  Nothing ever decodes silently wrong — the same
contract the PR-3 integrity layer enforces on the wire.

Value encoding is a minimal tagged scheme (None/bool/int/float/str/
bytes/list/dict/ndarray).  Dict insertion order is preserved, floats are
IEEE-754 binary64 verbatim, so ``encode(decode(b)) == b`` for every
well-formed buffer — the property tests pin this round trip.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Any

import numpy as np

__all__ = [
    "CodecError",
    "TruncatedRecord",
    "ChecksumMismatch",
    "UnknownFormat",
    "canonical_bytes",
    "canonical_dumps",
    "pretty_json",
    "MAGIC",
    "VERSION",
    "KIND_ENVELOPE",
    "KIND_CHECKPOINT",
    "KIND_CAMPAIGN",
    "KIND_TELEMETRY",
    "KIND_GENERIC",
    "KIND_NAMES",
    "pack_value",
    "unpack_value",
    "encode_record",
    "decode_record",
    "is_packed",
    "decode_auto",
]


class CodecError(ValueError):
    """Base class: a buffer failed to decode as a packed record."""


class TruncatedRecord(CodecError):
    """The buffer ends before the frame or a value completes."""


class ChecksumMismatch(CodecError):
    """The payload's CRC32 disagrees with the frame header."""


class UnknownFormat(CodecError):
    """Wrong magic, unsupported version, or an unknown value tag."""


# --------------------------------------------------------------------- #
# Canonical / pretty JSON — the single encoding helper (all former
# ad-hoc json.dumps call sites route through these two).
# --------------------------------------------------------------------- #


def canonical_dumps(obj: Any) -> str:
    """Canonical JSON text: sorted keys, no whitespace.

    The one convention every deterministic-bytes writer shares; two
    writers of the same state produce the same string by construction.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def canonical_bytes(obj: Any) -> bytes:
    """:func:`canonical_dumps` encoded to UTF-8 (the hashing form)."""
    return canonical_dumps(obj).encode()


def pretty_json(obj: Any) -> str:
    """Human-facing JSON: sorted keys, 2-space indent."""
    return json.dumps(obj, indent=2, sort_keys=True)


# --------------------------------------------------------------------- #
# Packed binary records
# --------------------------------------------------------------------- #

MAGIC = b"RPB1"
VERSION = 1

KIND_ENVELOPE = 1
KIND_CHECKPOINT = 2
KIND_CAMPAIGN = 3
KIND_TELEMETRY = 4
KIND_GENERIC = 5

KIND_NAMES = {
    KIND_ENVELOPE: "envelope",
    KIND_CHECKPOINT: "checkpoint",
    KIND_CAMPAIGN: "campaign",
    KIND_TELEMETRY: "telemetry",
    KIND_GENERIC: "generic",
}

_HEADER = struct.Struct("<4sBBHII")

# Value tags (one byte each).
_T_NONE = b"N"
_T_TRUE = b"T"
_T_FALSE = b"F"
_T_INT64 = b"i"
_T_BIGINT = b"I"
_T_FLOAT = b"d"
_T_STR = b"s"
_T_BYTES = b"b"
_T_LIST = b"l"
_T_DICT = b"m"
_T_NDARRAY = b"a"

_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_U32 = struct.Struct("<I")

_I64_MIN = -(2**63)
_I64_MAX = 2**63 - 1


def pack_value(obj: Any, out: bytearray | None = None) -> bytes:
    """Encode one value to packed bytes (no frame).

    Deterministic: equal values (same types, same dict order) always
    produce equal bytes.  Tuples encode as lists; numpy scalars as their
    Python equivalents; ndarrays carry dtype + shape + raw data.
    """
    buf = bytearray() if out is None else out
    _pack_into(obj, buf)
    return bytes(buf)


def _pack_into(obj: Any, buf: bytearray) -> None:
    if obj is None:
        buf += _T_NONE
    elif obj is True:
        buf += _T_TRUE
    elif obj is False:
        buf += _T_FALSE
    elif isinstance(obj, (int, np.integer)) and not isinstance(obj, bool):
        v = int(obj)
        if _I64_MIN <= v <= _I64_MAX:
            buf += _T_INT64
            buf += _I64.pack(v)
        else:
            raw = v.to_bytes((v.bit_length() + 8) // 8, "little", signed=True)
            buf += _T_BIGINT
            buf += _U32.pack(len(raw))
            buf += raw
    elif isinstance(obj, (float, np.floating)):
        buf += _T_FLOAT
        buf += _F64.pack(float(obj))
    elif isinstance(obj, str):
        raw = obj.encode()
        buf += _T_STR
        buf += _U32.pack(len(raw))
        buf += raw
    elif isinstance(obj, (bytes, bytearray, memoryview)):
        raw = bytes(obj)
        buf += _T_BYTES
        buf += _U32.pack(len(raw))
        buf += raw
    elif isinstance(obj, (list, tuple)):
        buf += _T_LIST
        buf += _U32.pack(len(obj))
        for item in obj:
            _pack_into(item, buf)
    elif isinstance(obj, dict):
        buf += _T_DICT
        buf += _U32.pack(len(obj))
        for key, value in obj.items():
            if not isinstance(key, str):
                raise TypeError(
                    f"packed dict keys must be str, got {type(key).__name__}"
                )
            raw = key.encode()
            buf += _U32.pack(len(raw))
            buf += raw
            _pack_into(value, buf)
    elif isinstance(obj, np.ndarray):
        if obj.dtype == object:
            raise TypeError("object-dtype arrays are not packable")
        dt = obj.dtype.str.encode()  # e.g. b"<c16" — endianness explicit
        arr = np.ascontiguousarray(obj)
        raw = arr.tobytes()
        buf += _T_NDARRAY
        buf += _U32.pack(len(dt))
        buf += dt
        buf += _U32.pack(arr.ndim)
        for dim in arr.shape:
            buf += _I64.pack(dim)
        buf += _U32.pack(len(raw))
        buf += raw
    else:
        raise TypeError(f"cannot pack value of type {type(obj).__name__}")


class _Cursor:
    """Bounds-checked reader: every short read is a TruncatedRecord."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes, pos: int = 0) -> None:
        self.data = data
        self.pos = pos

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.data):
            raise TruncatedRecord(
                f"need {n} byte(s) at offset {self.pos}, "
                f"have {len(self.data) - self.pos}"
            )
        out = self.data[self.pos : end]
        self.pos = end
        return out

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]


def unpack_value(data: bytes) -> Any:
    """Decode one packed value (no frame); the whole buffer must be
    consumed — trailing garbage raises :class:`UnknownFormat`."""
    cur = _Cursor(data)
    obj = _unpack_from(cur)
    if cur.pos != len(data):
        raise UnknownFormat(
            f"{len(data) - cur.pos} trailing byte(s) after packed value"
        )
    return obj


def _unpack_from(cur: _Cursor) -> Any:
    tag = cur.take(1)
    if tag == _T_NONE:
        return None
    if tag == _T_TRUE:
        return True
    if tag == _T_FALSE:
        return False
    if tag == _T_INT64:
        return _I64.unpack(cur.take(8))[0]
    if tag == _T_BIGINT:
        raw = cur.take(cur.u32())
        return int.from_bytes(raw, "little", signed=True)
    if tag == _T_FLOAT:
        return _F64.unpack(cur.take(8))[0]
    if tag == _T_STR:
        return cur.take(cur.u32()).decode()
    if tag == _T_BYTES:
        return cur.take(cur.u32())
    if tag == _T_LIST:
        n = cur.u32()
        return [_unpack_from(cur) for _ in range(n)]
    if tag == _T_DICT:
        n = cur.u32()
        out: dict[str, Any] = {}
        for _ in range(n):
            key = cur.take(cur.u32()).decode()
            out[key] = _unpack_from(cur)
        return out
    if tag == _T_NDARRAY:
        dt = np.dtype(cur.take(cur.u32()).decode())
        ndim = cur.u32()
        shape = tuple(_I64.unpack(cur.take(8))[0] for _ in range(ndim))
        raw = cur.take(cur.u32())
        return np.frombuffer(raw, dtype=dt).reshape(shape).copy()
    raise UnknownFormat(f"unknown value tag {tag!r} at offset {cur.pos - 1}")


def encode_record(obj: Any, kind: int = KIND_GENERIC) -> bytes:
    """Frame + packed payload: the durable form of one record."""
    if kind not in KIND_NAMES:
        raise ValueError(f"unknown record kind {kind}")
    payload = pack_value(obj)
    header = _HEADER.pack(
        MAGIC, VERSION, kind, 0, len(payload), zlib.crc32(payload) & 0xFFFFFFFF
    )
    return header + payload


def is_packed(data: bytes) -> bool:
    """Whether ``data`` starts with the packed-record magic."""
    return data[: len(MAGIC)] == MAGIC


def decode_record(
    data: bytes, *, expect_kind: int | None = None
) -> tuple[int, Any]:
    """``(kind, value)`` from a framed record, validating everything.

    Raises :class:`TruncatedRecord` on short buffers,
    :class:`ChecksumMismatch` on payload damage, :class:`UnknownFormat`
    on bad magic/version/kind, and ``ValueError`` when ``expect_kind``
    is given and disagrees.
    """
    if len(data) < _HEADER.size:
        raise TruncatedRecord(
            f"buffer of {len(data)} byte(s) shorter than the "
            f"{_HEADER.size}-byte frame header"
        )
    magic, version, kind, flags, length, crc = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise UnknownFormat(f"bad magic {magic!r} (expected {MAGIC!r})")
    if version != VERSION:
        raise UnknownFormat(f"unsupported record version {version}")
    if kind not in KIND_NAMES:
        raise UnknownFormat(f"unknown record kind {kind}")
    if flags != 0:
        raise UnknownFormat(f"reserved flags set ({flags:#06x})")
    payload = data[_HEADER.size :]
    if len(payload) < length:
        raise TruncatedRecord(
            f"payload truncated: header promises {length} byte(s), "
            f"buffer holds {len(payload)}"
        )
    if len(payload) > length:
        raise UnknownFormat(
            f"{len(payload) - length} trailing byte(s) after the payload"
        )
    actual = zlib.crc32(payload) & 0xFFFFFFFF
    if actual != crc:
        raise ChecksumMismatch(
            f"payload checksum mismatch: {actual:#010x} != {crc:#010x}"
        )
    if expect_kind is not None and kind != expect_kind:
        raise ValueError(
            f"expected a {KIND_NAMES[expect_kind]} record, "
            f"got {KIND_NAMES[kind]}"
        )
    return kind, unpack_value(payload)


def decode_auto(data: bytes, *, expect_kind: int | None = None) -> Any:
    """Decode a packed record **or** legacy JSON bytes.

    The escape hatch that keeps every pre-codec artifact readable: a
    buffer with the packed magic goes through the full validating frame
    decode; anything else must parse as UTF-8 JSON.  Damage in a packed
    buffer still raises the structured codec errors — only the *format*
    is auto-detected, never the validity.
    """
    if is_packed(data):
        return decode_record(data, expect_kind=expect_kind)[1]
    try:
        return json.loads(data.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise UnknownFormat(f"neither a packed record nor JSON: {exc}") from exc
