"""Storage precisions, including 16-bit fixed-point "half" (Section V-C3).

QUDA accelerates its bandwidth-bound kernels by *precision truncation*:
fields may be stored in 16-bit fixed point ("half precision") and expanded
to 32-bit floats on read via the texture unit's
``cudaReadModeNormalizedFloat`` mode, which maps a signed int16 to a float
in [-1, 1].

* **Gauge links** fit the format directly: unitarity bounds every element
  by 1 in magnitude.
* **Spinors** need a scale: QUDA stores each color-spinor as 6 ``short4``
  vectors plus a single ``float`` normalization shared by all 24 real
  components ("a spinor is stored as 6 short4 arrays and a single float
  normalization array").  The shared norm is justified because the matrix
  mixes all spin/color components of a site (paper footnote 2).

This module implements the encode/decode pair and quantization-error
bounds; the texture-cache read path is modelled in
:mod:`repro.gpu.texture`.
"""

from __future__ import annotations

import enum

import numpy as np

__all__ = [
    "Precision",
    "HALF_SCALE",
    "quantize_normalized",
    "dequantize_normalized",
    "quantize_block",
    "dequantize_block",
    "half_roundtrip_bound",
]

#: Largest representable magnitude of a signed 16-bit normalized value.
HALF_SCALE = 32767.0


class Precision(enum.Enum):
    """Field storage precision.

    ``value`` is the storage bytes per real number.  Note ``HALF`` is fixed
    point, not IEEE fp16: the decode is ``int16 / 32767 -> [-1, 1]`` as in
    CUDA's normalized texture reads.
    """

    DOUBLE = 8
    SINGLE = 4
    HALF = 2

    @property
    def real_bytes(self) -> int:
        return self.value

    @property
    def storage_dtype(self) -> np.dtype:
        return {
            Precision.DOUBLE: np.dtype(np.float64),
            Precision.SINGLE: np.dtype(np.float32),
            Precision.HALF: np.dtype(np.int16),
        }[self]

    @property
    def compute_dtype(self) -> np.dtype:
        """Arithmetic dtype: half-precision fields compute in float32."""
        return {
            Precision.DOUBLE: np.dtype(np.float64),
            Precision.SINGLE: np.dtype(np.float32),
            Precision.HALF: np.dtype(np.float32),
        }[self]

    @property
    def complex_compute_dtype(self) -> np.dtype:
        return {
            Precision.DOUBLE: np.dtype(np.complex128),
            Precision.SINGLE: np.dtype(np.complex64),
            Precision.HALF: np.dtype(np.complex64),
        }[self]

    @property
    def needs_norm(self) -> bool:
        """Whether spinor/clover storage carries a per-site norm array."""
        return self is Precision.HALF

    @property
    def vector_length(self) -> int:
        """Optimal short-vector length ``Nvec`` (Section V-B).

        QUDA found float4 optimal in single and double2 in double — both 16
        bytes; half uses short4 (8 bytes, paired with the norm array).
        """
        return {Precision.DOUBLE: 2, Precision.SINGLE: 4, Precision.HALF: 4}[self]

    @classmethod
    def parse(cls, name: "str | Precision") -> "Precision":
        if isinstance(name, cls):
            return name
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError(
                f"unknown precision {name!r}; expected double/single/half"
            ) from None


def quantize_normalized(values: np.ndarray) -> np.ndarray:
    """Encode reals in [-1, 1] as int16 (CUDA normalized-read convention).

    Used for gauge links, whose elements are bounded by unitarity.  Values
    that stray infinitesimally outside [-1, 1] from roundoff are clipped.
    """
    scaled = np.clip(values, -1.0, 1.0) * HALF_SCALE
    return np.round(scaled).astype(np.int16)


def dequantize_normalized(stored: np.ndarray) -> np.ndarray:
    """Decode int16 to float32 in [-1, 1]."""
    return stored.astype(np.float32) / np.float32(HALF_SCALE)


def quantize_block(
    reals: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Encode per-site blocks of reals with a shared per-site norm.

    ``reals`` has shape ``(sites, n)``; returns ``(int16 (sites, n),
    float32 norms (sites,))`` with ``decoded = int16 / 32767 * norm``.
    Sites that are exactly zero get norm 0 (and decode to exact zeros).
    """
    if reals.ndim != 2:
        raise ValueError(f"expected (sites, n) reals, got shape {reals.shape}")
    norms = np.max(np.abs(reals), axis=1).astype(np.float32)
    # The ratio must be formed in float64 against the *stored* (float32)
    # norm: the decoded levels are q * norm32 / 32767, so rounding the
    # exact ratio w.r.t. norm32 lands on the nearest level at any scale.
    safe = np.where(norms == 0.0, np.float32(1.0), norms).astype(np.float64)
    ratio = np.clip(reals / safe[:, None] * HALF_SCALE, -HALF_SCALE, HALF_SCALE)
    return np.round(ratio).astype(np.int16), norms


def dequantize_block(stored: np.ndarray, norms: np.ndarray) -> np.ndarray:
    """Decode ``quantize_block`` output.

    The product ``int16 * float32-norm`` is exact in float64 (16 + 24
    significant bits), so decoding in double incurs a single rounding.
    Decoding in float32 instead would add ~``eps32 * norm`` of noise on
    top of the rounding error, breaking the half-step roundtrip bound at
    scales where that noise is comparable to half a quantization step.
    """
    return stored.astype(np.float64) * norms.astype(np.float64)[:, None] / HALF_SCALE


def half_roundtrip_bound(norms: np.ndarray) -> float:
    """Worst-case absolute error of one encode/decode pass.

    Rounding to the nearest of 2*32767 levels of ``[-norm, norm]`` gives
    ``|err| <= norm / (2 * 32767)`` per component.
    """
    return float(np.max(norms)) / (2.0 * HALF_SCALE)
