"""Hardware specifications: paper Table I plus GT200 architectural limits.

The six representative NVIDIA cards of Table I are reproduced verbatim as
:data:`TABLE_I`; the test bed card (GeForce GTX 285) carries the extra
GT200 architecture constants from Section III that the occupancy model and
the partition-camping model need:

* 240 cores in 30 multiprocessors of 8 cores each; warp size 32; up to
  1024 resident threads per multiprocessor,
* 16,384 single-precision registers (8,192 in double precision) and
  16 KiB of shared memory per multiprocessor,
* a 512-bit memory bus split into 8 partitions of 256-byte granularity
  (the origin of partition camping), and
* a single copy engine — overlapped PCIe transfers serialize, and
  bidirectional transfer is a Fermi feature (paper footnote 4).

The CPU reference (dual Intel Xeon E5530 "Nehalem" as in the JLab 9g/9q
nodes) is included for the Section VII-C comparison: "we obtained 255
Gflops in single precision using highly optimized SSE routines, which
corresponds to approximately 2 Gflops per CPU core".
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GPUSpec", "CPUSpec", "TABLE_I", "GTX285", "XEON_E5530", "get_gpu"]


@dataclass(frozen=True)
class GPUSpec:
    """Specification of one graphics card (paper Table I row).

    Bandwidths are GB/s, compute rates Gflops, memory GiB — exactly the
    units of Table I.
    """

    name: str
    cores: int
    bandwidth_gbs: float
    gflops_sp: float
    gflops_dp: float | None  # N/A for pre-GT200 cards
    ram_gib: float

    # Architecture constants (defaults are GT200-generation values).
    multiprocessors: int = 30
    warp_size: int = 32
    max_threads_per_mp: int = 1024
    max_blocks_per_mp: int = 8
    registers_per_mp_sp: int = 16384
    registers_per_mp_dp: int = 8192
    shared_memory_bytes: int = 16 * 1024
    constant_cache_bytes: int = 8 * 1024
    memory_partitions: int = 8
    partition_width_bytes: int = 256
    copy_engines: int = 1
    bidirectional_pcie: bool = False

    @property
    def ram_bytes(self) -> int:
        return int(self.ram_gib * 2**30)

    def peak_flops(self, precision_bytes: int) -> float:
        """Peak Gflops for a given arithmetic width (half runs at SP rate)."""
        if precision_bytes == 8:
            if self.gflops_dp is None:
                raise ValueError(f"{self.name} has no double-precision support")
            return self.gflops_dp
        return self.gflops_sp


@dataclass(frozen=True)
class CPUSpec:
    """A conventional CPU node, for the Section VII-C comparison."""

    name: str
    cores_per_node: int
    gflops_per_core_sustained: float
    memory_gib: float = 48.0  # the 9g/9q node main-memory size

    def sustained_gflops(self, n_nodes: int) -> float:
        return n_nodes * self.cores_per_node * self.gflops_per_core_sustained


def _card(name, cores, bw, sp, dp, ram, **kw) -> GPUSpec:
    return GPUSpec(name, cores, bw, sp, dp, ram, **kw)


#: Paper Table I, verbatim.  GTX 285 RAM is listed as "1.0 - 2.0"; the 9g
#: cluster cards have 2 GiB (Section VII-A), which is what we record.
TABLE_I: dict[str, GPUSpec] = {
    s.name: s
    for s in (
        _card("GeForce 8800 GTX", 128, 86.4, 518.0, None, 0.75, multiprocessors=16),
        _card("Tesla C870", 128, 76.8, 518.0, None, 1.5, multiprocessors=16),
        _card("GeForce GTX 285", 240, 159.0, 1062.0, 88.0, 2.0),
        _card("Tesla C1060", 240, 102.0, 933.0, 78.0, 4.0),
        _card(
            "GeForce GTX 480",
            480,
            177.0,
            1345.0,
            168.0,
            1.5,
            multiprocessors=15,
            max_threads_per_mp=1536,
            copy_engines=1,
            bidirectional_pcie=True,
        ),
        _card(
            "Tesla C2050",
            448,
            144.0,
            1030.0,
            515.0,
            3.0,
            multiprocessors=14,
            max_threads_per_mp=1536,
            copy_engines=2,
            bidirectional_pcie=True,
        ),
    )
}

#: The paper's test bed card: 2 GiB GeForce GTX 285 (Section VII-A).
GTX285 = TABLE_I["GeForce GTX 285"]

#: The 9g/9q node CPU: two quad-core Xeon E5530 at 2.4 GHz; the paper's
#: measured sustained LQCD rate is ~2 Gflops/core with SSE.
XEON_E5530 = CPUSpec("2x Intel Xeon E5530", cores_per_node=8, gflops_per_core_sustained=2.0)


def get_gpu(name: str) -> GPUSpec:
    """Look up a Table I card by name."""
    try:
        return TABLE_I[name]
    except KeyError:
        known = ", ".join(TABLE_I)
        raise KeyError(f"unknown GPU {name!r}; Table I lists: {known}") from None
