"""Device kernels: the Wilson-clover dslash with ghost-zone support.

These are the virtual-GPU analogues of QUDA's CUDA kernels.  Each kernel

1. performs the real arithmetic on the device fields' working arrays
   (skipped in timing-only mode), and
2. reports its exact memory traffic and flop count to the GPU timeline,
   which converts them to model time via the bandwidth roofline.

Traffic/flop accounting is derived from first principles and reproduces
the paper's quoted arithmetic intensity exactly: with 2-row gauge
compression (12 reals/link), full spinor loads for the six spatial
neighbors (24 reals), half-spinor loads for the two temporal neighbors
(12 reals — the non-relativistic basis trick of Section V-C2), a fused
clover multiply (72 reals) and a fused accumulate, the two kernels of one
even-odd preconditioned matrix application move 744 reals (= 2976 bytes
single precision) and execute 3696 flops per site — the numbers of
Section V-A.

Kernel regions implement the overlap strategy of Section VI-D: the
*interior* region touches no ghost data and can run while faces are in
flight; the *boundary* region (the local boundary slices of every
partitioned direction) reads the spinor end zone and the gauge ghosts.

**Multi-dimensional decomposition** (Section VI-A future work): the
kernel accepts any subset of the partitionable directions {Z, T} via the
``partitioned`` argument — ``True`` keeps the paper's temporal-only
meaning.  Each partitioned direction contributes its own pair of ghost
faces; the Wilson stencil is strictly nearest-neighbor per direction, so
no corner exchanges are needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from ..lattice import gamma as _gamma
from ..lattice import su3
from ..lattice.geometry import LatticeGeometry, NDIM, T_DIR
from .device import VirtualGPU
from .fields import (
    BACKWARD,
    FORWARD,
    DeviceCloverField,
    DeviceGaugeField,
    DeviceSpinorField,
    HALF_SPINOR_REALS,
)
from .precision import Precision

__all__ = [
    "DslashTables",
    "DslashTableCounts",
    "FaceTables",
    "dslash_tables",
    "dslash_table_counts",
    "dslash_kernel",
    "clover_kernel",
    "gather_face_kernel",
    "project_face",
    "normalize_partitioned",
    "DSLASH_FLOPS_PER_SITE",
    "CLOVER_FLOPS_PER_SITE",
    "XPAY_FLOPS_PER_SITE",
    "dslash_site_bytes",
]

#: Standard LQCD operation counts per processed site (QUDA conventions;
#: these are the counts behind the paper's "effective Gflops").
DSLASH_FLOPS_PER_SITE = 1320
CLOVER_FLOPS_PER_SITE = 504
XPAY_FLOPS_PER_SITE = 48

REGIONS = ("full", "interior", "boundary")

#: Directions this implementation can partition (Z and T; the paper's
#: asymmetric production lattices make X/Y splits pointless).
PARTITIONABLE = (2, 3)


def normalize_partitioned(partitioned) -> tuple[int, ...]:
    """``False`` -> (), ``True`` -> (T,), or an explicit direction tuple."""
    if partitioned is True:
        return (T_DIR,)
    if partitioned is False or partitioned is None:
        return ()
    dirs = tuple(sorted(set(int(m) for m in partitioned)))
    for mu in dirs:
        if mu not in PARTITIONABLE:
            raise ValueError(
                f"direction {mu} cannot be partitioned (supported: "
                f"{PARTITIONABLE})"
            )
    return dirs


@dataclass(frozen=True)
class FaceTables:
    """Boundary bookkeeping for one partitioned direction."""

    mu: int
    #: Masks over the target checkerboard rows: on the low (coord == 0)
    #: or high (coord == dims[mu]-1) boundary slice.
    on_low: np.ndarray
    on_high: np.ndarray
    #: Source-parity cb indices of the low/high face slices, lex order —
    #: what the sender packs for its -mu / +mu neighbor.
    gather_low: np.ndarray
    gather_high: np.ndarray
    #: For each low/high boundary *target*, the position of its site
    #: within the full boundary slice's lex enumeration — the index into
    #: the gauge ghost slice (which carries both parities).
    gauge_pos_low: np.ndarray
    gauge_pos_high: np.ndarray


@dataclass(frozen=True)
class DslashTables:
    """Precomputed index tables for one (geometry, target parity) pair.

    The CUDA kernels derive all of this from the thread index with integer
    arithmetic against constants in the constant cache (Section V-A); we
    precompute it once per geometry, which is the same cost amortization.
    """

    geometry: LatticeGeometry
    target_parity: int
    # Full-lattice indices of the target-parity sites, cb order.
    tgt_sites: np.ndarray
    # (4, Vh) neighbor cb indices into the source parity.
    nbr_fwd: np.ndarray
    nbr_bwd: np.ndarray
    # (4, Vh) boundary phases at the target sites.
    ph_fwd: np.ndarray
    ph_bwd: np.ndarray
    # (4, Vh) full-lattice indices of x - mu_hat (for the backward links).
    bwd_sites: np.ndarray
    # Per-direction face tables for the partitionable directions.
    faces: dict[int, FaceTables] = field(repr=False)
    _rows_cache: dict = field(default_factory=dict, repr=False)

    @property
    def n_sites(self) -> int:
        return self.tgt_sites.size

    def face(self, mu: int) -> FaceTables:
        try:
            return self.faces[mu]
        except KeyError:
            raise ValueError(
                f"direction {mu} cannot be partitioned (supported: "
                f"{PARTITIONABLE})"
            ) from None

    # -- legacy temporal-only accessors (the paper's decomposition) ------- #

    @property
    def on_first(self) -> np.ndarray:
        return self.face(T_DIR).on_low

    @property
    def on_last(self) -> np.ndarray:
        return self.face(T_DIR).on_high

    @property
    def gather_first(self) -> np.ndarray:
        return self.face(T_DIR).gather_low

    @property
    def gather_last(self) -> np.ndarray:
        return self.face(T_DIR).gather_high

    @property
    def face_sites(self) -> int:
        return self.face(T_DIR).gather_low.size

    @property
    def interior_rows(self) -> np.ndarray:
        return self.rows_for("interior", (T_DIR,))

    @property
    def boundary_rows(self) -> np.ndarray:
        return self.rows_for("boundary", (T_DIR,))

    @property
    def all_rows(self) -> np.ndarray:
        return self.rows_for("full", (T_DIR,))

    # -- region row sets --------------------------------------------------- #

    def rows_for(self, region: str, dirs: tuple[int, ...]) -> np.ndarray:
        """Target rows of a kernel region given the partitioned dirs."""
        if region not in REGIONS:
            raise ValueError(f"unknown region {region!r}; expected one of {REGIONS}")
        key = (region, dirs)
        if key not in self._rows_cache:
            if region == "full" or not dirs:
                rows = np.arange(self.n_sites)
                if region == "interior" and dirs == ():
                    rows = np.arange(self.n_sites)
                if region == "boundary" and not dirs:
                    rows = np.arange(0)
            else:
                on_boundary = np.zeros(self.n_sites, dtype=bool)
                for mu in dirs:
                    f = self.face(mu)
                    on_boundary |= f.on_low | f.on_high
                rows = (
                    np.nonzero(~on_boundary)[0]
                    if region == "interior"
                    else np.nonzero(on_boundary)[0]
                )
            self._rows_cache[key] = rows
        return self._rows_cache[key]

    def rows(self, region: str) -> np.ndarray:
        """Legacy temporal-only region rows."""
        return self.rows_for(region, (T_DIR,))


@dataclass(frozen=True)
class _SizedRows:
    """Row-count stand-in: timing-only kernels need only ``.size``."""

    size: int


@dataclass(frozen=True)
class DslashTableCounts:
    """Counts-only drop-in for :class:`DslashTables` (timing-only mode).

    Paper-scale lattices (32^3 x 256 over 32 ranks) would need gigabytes
    of int64 index tables; the timing model only ever consumes row
    *counts*, which are pure arithmetic on the geometry.
    """

    geometry: LatticeGeometry
    target_parity: int
    n_sites: int

    def face_half_sites(self, mu: int) -> int:
        return self.geometry.face_half_sites(mu)

    @property
    def face_sites(self) -> int:
        return self.face_half_sites(T_DIR)

    @property
    def gather_first(self) -> _SizedRows:
        return _SizedRows(self.face_sites)

    @property
    def gather_last(self) -> _SizedRows:
        return _SizedRows(self.face_sites)

    def rows_for(self, region: str, dirs: tuple[int, ...]) -> _SizedRows:
        if region not in REGIONS:
            raise ValueError(f"unknown region {region!r}; expected one of {REGIONS}")
        if region == "full" or not dirs:
            n = self.n_sites if region != "boundary" else 0
            return _SizedRows(n)
        # Interior = sites off-boundary in every partitioned direction;
        # each even-extent sub-box splits its parity exactly in half.
        frac_num, frac_den = 1, 1
        for mu in dirs:
            d = self.geometry.dims[mu]
            frac_num *= d - 2
            frac_den *= d
        interior = self.geometry.volume * frac_num // frac_den // 2
        if region == "interior":
            return _SizedRows(interior)
        return _SizedRows(self.n_sites - interior)

    def rows(self, region: str) -> _SizedRows:
        return self.rows_for(region, (T_DIR,))


@lru_cache(maxsize=64)
def dslash_table_counts(
    geometry: LatticeGeometry, target_parity: int
) -> DslashTableCounts:
    """Counts-only tables (see :class:`DslashTableCounts`)."""
    return DslashTableCounts(
        geometry=geometry,
        target_parity=target_parity,
        n_sites=geometry.half_volume,
    )


def _face_tables(geometry: LatticeGeometry, target_parity: int, mu: int) -> FaceTables:
    tgt_sites = geometry.sites_of_parity[target_parity]
    coord = geometry.coords[tgt_sites, mu]
    high = geometry.dims[mu] - 1
    on_low = coord == 0
    on_high = coord == high
    source_parity = 1 - target_parity
    # Position within the full boundary slice (both parities), lex order:
    # rank of the site among all slice sites, computable by dropping the
    # mu coordinate from the lex index.
    def slice_pos(mask, which_coord):
        sites = tgt_sites[mask]
        c = geometry.coords[sites]
        dims = geometry.dims
        pos = np.zeros(sites.size, dtype=np.int64)
        stride = 1
        for nu in range(NDIM):
            if nu == mu:
                continue
            pos += c[:, nu] * stride
            stride *= dims[nu]
        return pos

    return FaceTables(
        mu=mu,
        on_low=on_low,
        on_high=on_high,
        gather_low=geometry.boundary_sites_of_parity(mu, -1, source_parity),
        gather_high=geometry.boundary_sites_of_parity(mu, +1, source_parity),
        gauge_pos_low=slice_pos(on_low, 0),
        gauge_pos_high=slice_pos(on_high, high),
    )


@lru_cache(maxsize=64)
def dslash_tables(geometry: LatticeGeometry, target_parity: int) -> DslashTables:
    """Build (and cache) the index tables for one kernel configuration."""
    if target_parity not in (0, 1):
        raise ValueError("parity must be 0 or 1")
    tgt_sites = geometry.sites_of_parity[target_parity]
    return DslashTables(
        geometry=geometry,
        target_parity=target_parity,
        tgt_sites=tgt_sites,
        nbr_fwd=geometry.eo_neighbor_fwd[target_parity],
        nbr_bwd=geometry.eo_neighbor_bwd[target_parity],
        ph_fwd=geometry.boundary_phase_fwd[:, tgt_sites],
        ph_bwd=geometry.boundary_phase_bwd[:, tgt_sites],
        bwd_sites=geometry.neighbor_bwd[:, tgt_sites],
        faces={
            mu: _face_tables(geometry, target_parity, mu) for mu in PARTITIONABLE
        },
    )


# ---------------------------------------------------------------------- #
# Traffic accounting
# ---------------------------------------------------------------------- #


def dslash_site_bytes(
    spinor_precision: Precision,
    gauge: DeviceGaugeField,
    *,
    fused_clover: bool,
    fused_xpay: bool,
) -> int:
    """Device-memory bytes per processed site for the fused dslash kernel.

    Derivation (single precision, compressed gauge, clover + xpay fused):
    8x12 (links) + 6x24 + 2x12 (spinors; temporal reads are half spinors
    in the non-relativistic basis) + 72 (clover) + 24 (accumulate read)
    + 24 (write) = 384 reals = 1536 bytes; together with the companion
    clover-inverse dslash kernel (360 reals) an even-odd matrix
    application moves the paper's 744 reals = 2976 bytes per site.
    """
    rb = spinor_precision.real_bytes
    reals = 6 * 24 + 2 * HALF_SPINOR_REALS + 24  # neighbor loads + write
    if fused_clover:
        reals += 72
    if fused_xpay:
        reals += 24
    nbytes = reals * rb + 8 * gauge.matvec_link_bytes()
    if spinor_precision.needs_norm:
        # float32 norms: 8 neighbor reads + write (+ clover / xpay reads).
        norm_reads = 8 + 1 + (1 if fused_clover else 0) + (1 if fused_xpay else 0)
        nbytes += 4 * norm_reads
    return nbytes


def _dslash_flops(*, fused_clover: bool, fused_xpay: bool) -> int:
    flops = DSLASH_FLOPS_PER_SITE
    if fused_clover:
        flops += CLOVER_FLOPS_PER_SITE
    if fused_xpay:
        flops += XPAY_FLOPS_PER_SITE
    return flops


# ---------------------------------------------------------------------- #
# Face gather (sender side)
# ---------------------------------------------------------------------- #


def project_face(
    tables: DslashTables,
    src: DeviceSpinorField,
    direction: str,
    *,
    mu: int = T_DIR,
    dagger: bool = False,
) -> tuple[np.ndarray | None, np.ndarray | None]:
    """Pure numerics of the face projection (no timeline charge).

    In the non-relativistic basis the *temporal* projection is a component
    selection (the face blocks are contiguous within each layout block,
    Fig. 2/3), so the paper's code extracts temporal faces with plain
    cudaMemcpy calls and no gather kernel; non-temporal faces of the
    multi-dimensional extension are strided and need a pack kernel, which
    the exchange code charges separately.  Returns ``(None, None)`` in
    timing-only mode.
    """
    f = tables.face(mu) if src.gpu.execute else None
    if direction == BACKWARD:
        sign = -1
        rows = f.gather_low if f is not None else None
    elif direction == FORWARD:
        sign = +1
        rows = f.gather_high if f is not None else None
    else:
        raise ValueError(f"unknown face direction {direction!r}")
    if dagger:
        sign = -sign
    if not src.gpu.execute:
        return None, None
    q, _ = _gamma.projector_decomposition(mu, sign, src.basis)
    cdtype = src.precision.complex_compute_dtype
    halves = np.einsum("ht,xta->xha", q.astype(cdtype), src.working()[rows])
    norms = None
    if src.precision.needs_norm:
        flat_abs = np.maximum(np.abs(halves.real), np.abs(halves.imag))
        norms = flat_abs.reshape(rows.size, -1).max(axis=1).astype(np.float32)
    return halves, norms


def gather_face_kernel(
    gpu: VirtualGPU,
    tables: DslashTables,
    src: DeviceSpinorField,
    direction: str,
    *,
    mu: int = T_DIR,
    dagger: bool = False,
    stream: int = 0,
    occupancy: float = 1.0,
) -> tuple[np.ndarray | None, np.ndarray | None]:
    """Project and pack one face of ``src`` for transfer (Section VI-C).

    ``direction=BACKWARD`` packs the local low slice, projected with
    ``Q(-mu)`` — destined for the -mu neighbor, which will use it in its
    *forward* gather ``P(-mu) U psi``.  ``direction=FORWARD`` packs the
    high slice with ``Q(+mu)``.  A dagger dslash swaps the signs.

    Returns ``(halves, norms)``: complex half-spinors ``(faces, 2, 3)``
    and, for half-precision fields, their per-site norms (``None``
    otherwise; both ``None`` in timing-only mode).
    """
    if direction not in (BACKWARD, FORWARD):
        raise ValueError(f"unknown face direction {direction!r}")
    n_face = src.faces.get(mu, 0)
    # Traffic: read full spinors of the face, write projected halves.
    rb = src.precision.real_bytes
    nbytes = n_face * ((24 + HALF_SPINOR_REALS) * rb)
    if src.precision.needs_norm:
        nbytes += n_face * 8  # read + write norms
    # Spin projection arithmetic is ~free in the NR basis; count the
    # general 12-real projection (2 flops per output real).
    flops = n_face * 2 * HALF_SPINOR_REALS
    gpu.launch(
        f"gather_face[{mu}][{direction}]",
        src.precision,
        bytes_moved=nbytes,
        flops=flops,
        stream=stream,
        occupancy=occupancy,
    )
    return project_face(tables, src, direction, mu=mu, dagger=dagger)


# ---------------------------------------------------------------------- #
# The dslash kernel
# ---------------------------------------------------------------------- #


def dslash_kernel(
    gpu: VirtualGPU,
    tables: DslashTables,
    gauge: DeviceGaugeField,
    src: DeviceSpinorField,
    dst: DeviceSpinorField,
    *,
    region: str = "full",
    partitioned=False,
    dagger: bool = False,
    clover: DeviceCloverField | None = None,
    clover_target: str = "result",
    xpay: tuple[complex, DeviceSpinorField] | None = None,
    stream: int = 0,
    occupancy: float = 1.0,
    camping: bool = False,
) -> None:
    """Apply the hopping term to ``src`` and write ``dst`` (one parity).

    The two fusion patterns of QUDA's even-odd operator are supported:

    * ``clover_target="result"`` (inner kernel):
      ``dst = x? + a? * ( A @ (D src) )`` — pass ``A'^{-1}_oo`` to build
      the odd temporary of the preconditioned matrix.
    * ``clover_target="xpay"`` (outer kernel, requires ``xpay=(a, x)``):
      ``dst = A @ x + a * (D src)`` — pass ``A'_ee`` and ``a = -1/4`` to
      finish ``Mhat psi = A'_e psi - (1/4) D_eo A'^{-1}_oo D_oe psi``.

    ``partitioned`` selects the decomposed directions: ``True`` is the
    paper's temporal-only slicing; a tuple like ``(2, 3)`` activates the
    multi-dimensional extension.  Ghost data is read from ``src``'s end
    zone (the transferred field is the dslash *source*) and the gauge
    ghost slices; ``region`` selects full/interior/boundary rows so the
    overlap strategy can split the work (Section VI-D2).
    """
    if clover_target not in ("result", "xpay"):
        raise ValueError(f"bad clover_target {clover_target!r}")
    if clover_target == "xpay" and (clover is None or xpay is None):
        raise ValueError("clover_target='xpay' requires both clover and xpay")
    dirs = normalize_partitioned(partitioned)
    rows = tables.rows_for(region, dirs)
    nbytes = rows.size * dslash_site_bytes(
        src.precision, gauge, fused_clover=clover is not None, fused_xpay=xpay is not None
    )
    flops = rows.size * _dslash_flops(
        fused_clover=clover is not None, fused_xpay=xpay is not None
    )
    gpu.launch(
        f"dslash[{region}]",
        src.precision,
        bytes_moved=nbytes,
        flops=flops,
        stream=stream,
        occupancy=occupancy,
        camping=camping,
    )
    if not gpu.execute or rows.size == 0:
        return

    basis = src.basis
    sgn = -1 if dagger else +1
    body = src.working()
    cdtype = src.precision.complex_compute_dtype
    out = np.zeros((rows.size, 4, 3), dtype=cdtype)

    for mu in range(NDIM):
        p_minus = _gamma.projector(mu, -sgn, basis)
        p_plus = _gamma.projector(mu, +sgn, basis)
        ph_f = tables.ph_fwd[mu][rows]
        ph_b = tables.ph_bwd[mu][rows]
        u_mu = gauge.links(mu)

        if mu not in dirs:
            # Plain local periodic wrap.
            u_here = u_mu[tables.tgt_sites[rows]]
            psi_f = body[tables.nbr_fwd[mu][rows]] * ph_f[:, None, None]
            out += np.einsum("st,xab,xtb->xsa", p_minus, u_here, psi_f, optimize=True)
            u_back = su3.adjoint(u_mu[tables.bwd_sites[mu][rows]])
            psi_b = body[tables.nbr_bwd[mu][rows]] * ph_b[:, None, None]
            out += np.einsum("st,xab,xtb->xsa", p_plus, u_back, psi_b, optimize=True)
            continue

        f = tables.face(mu)
        on_low = f.on_low[rows]
        on_high = f.on_high[rows]
        # Forward gather, local part (everything not on the high slice).
        loc = ~on_high
        u_here = u_mu[tables.tgt_sites[rows[loc]]]
        psi_f = body[tables.nbr_fwd[mu][rows[loc]]] * ph_f[loc][:, None, None]
        out[loc] += np.einsum("st,xab,xtb->xsa", p_minus, u_here, psi_f, optimize=True)
        # Forward gather from the +mu ghost: R(-mu) [U_mu(x) @ Q(-mu) psi].
        if np.any(on_high):
            _, r_minus = _gamma.projector_decomposition(mu, -sgn, basis)
            pos = _positions_within(f.on_high, rows, on_high)
            halves = src.get_ghost(FORWARD, mu=mu)[pos].astype(cdtype)
            u_here = u_mu[tables.tgt_sites[rows[on_high]]]
            u_h = np.einsum("xab,xhb->xha", u_here, halves, optimize=True)
            out[on_high] += ph_f[on_high][:, None, None] * np.einsum(
                "sh,xha->xsa", r_minus, u_h, optimize=True
            )
        # Backward gather, local part.
        loc = ~on_low
        u_back = su3.adjoint(u_mu[tables.bwd_sites[mu][rows[loc]]])
        psi_b = body[tables.nbr_bwd[mu][rows[loc]]] * ph_b[loc][:, None, None]
        out[loc] += np.einsum("st,xab,xtb->xsa", p_plus, u_back, psi_b, optimize=True)
        # Backward gather from the -mu ghost: R(+mu) [U_ghost^dag @ Q(+mu)
        # psi], the ghost links from the neighbor's high slice
        # (Section VI-B, generalized per direction).
        if np.any(on_low):
            _, r_plus = _gamma.projector_decomposition(mu, +sgn, basis)
            pos = _positions_within(f.on_low, rows, on_low)
            halves = src.get_ghost(BACKWARD, mu=mu)[pos].astype(cdtype)
            gpos = f.gauge_pos_low[_mask_rank(f.on_low, rows[on_low])]
            u_back = su3.adjoint(gauge.ghost_links(mu)[gpos])
            u_h = np.einsum("xab,xhb->xha", u_back, halves, optimize=True)
            out[on_low] += ph_b[on_low][:, None, None] * np.einsum(
                "sh,xha->xsa", r_plus, u_h, optimize=True
            )

    # ----- fused epilogue: clover multiply and accumulate ---------------- #
    if clover is not None and clover_target == "result":
        out = clover.apply_rows(out, rows)
    if xpay is not None:
        coeff, x_field = xpay
        x_rows = x_field.working()[rows]
        if clover is not None and clover_target == "xpay":
            x_rows = clover.apply_rows(x_rows, rows)
        out = x_rows + np.asarray(coeff, dtype=cdtype) * out

    # Region-partial writes merge into the destination body.
    if region == "full":
        full = np.zeros((tables.n_sites, 4, 3), dtype=cdtype)
        full[rows] = out
        dst.set_working(full)
    else:
        merged = np.array(dst.working(), dtype=cdtype, copy=True)
        merged[rows] = out
        dst.set_working(merged)


def _positions_within(face_mask: np.ndarray, rows: np.ndarray, sub_mask: np.ndarray) -> np.ndarray:
    """Ghost-array positions of the selected boundary targets.

    The ghost face is ordered by the boundary slice's lex enumeration; the
    k-th target-parity site on the slice (in cb order) pairs with the k-th
    ghost entry (the ordering argument of Fig. 3, per direction).  Given
    the full boundary mask over all target rows and the subset actually
    processed (``rows[sub_mask]``), return each one's ordinal on the face.
    """
    ordinal = np.cumsum(face_mask) - 1  # per target row: rank on the face
    return ordinal[rows[sub_mask]]


def _mask_rank(face_mask: np.ndarray, selected_rows: np.ndarray) -> np.ndarray:
    """Ordinal of ``selected_rows`` among the True entries of ``face_mask``."""
    ordinal = np.cumsum(face_mask) - 1
    return ordinal[selected_rows]


def clover_kernel(
    gpu: VirtualGPU,
    clover: DeviceCloverField,
    src: DeviceSpinorField,
    dst: DeviceSpinorField,
    *,
    stream: int = 0,
    occupancy: float = 1.0,
) -> None:
    """Standalone sitewise clover multiply: ``dst = A src``."""
    rb = src.precision.real_bytes
    nbytes = src.sites * ((24 + 24) * rb) + src.sites * clover.site_bytes()
    if src.precision.needs_norm:
        nbytes += src.sites * 8
    gpu.launch(
        "clover",
        src.precision,
        bytes_moved=nbytes,
        flops=src.sites * CLOVER_FLOPS_PER_SITE,
        stream=stream,
        occupancy=occupancy,
    )
    if gpu.execute:
        dst.set_working(clover.apply(src.working()))
