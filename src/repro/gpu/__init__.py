"""Virtual GPU substrate: the CUDA device QUDA runs on, simulated.

No physical GPU is available in this reproduction, so this subpackage
substitutes a *virtual* device that preserves what the paper's results
actually depend on:

* **Functional behaviour** — device fields really hold data (including
  genuine int16 fixed-point storage for half precision) and the kernels
  really compute, in NumPy; every correctness property of the CUDA code
  is exercised for real.
* **Structural behaviour** — the blocked/padded field layout of
  eqs. (3)-(5), ghost zones in the pad and end zone, partition camping,
  device-memory capacity (2 GiB GTX 285), one compute engine + one copy
  engine, stream ordering, sync-vs-async copy latencies.
* **Performance shape** — a calibrated bandwidth/latency roofline
  (:mod:`repro.gpu.perfmodel`) converts the kernels' exact byte/flop
  accounting into model time on a discrete-event timeline, reproducing
  the scaling behaviour of the paper's figures.
"""

from .device import VirtualGPU
from .fields import (
    BACKWARD,
    FORWARD,
    DeviceCloverField,
    DeviceGaugeField,
    DeviceSpinorField,
)
from .layout import FieldLayout
from .memory import DeviceAllocator, DeviceBuffer, DeviceOutOfMemoryError
from .perfmodel import DEFAULT_PARAMS, PerfModelParams
from .precision import Precision
from .specs import GTX285, TABLE_I, XEON_E5530, CPUSpec, GPUSpec, get_gpu
from .streams import Event, Timeline, TimelineOp

__all__ = [
    "VirtualGPU",
    "DeviceSpinorField",
    "DeviceGaugeField",
    "DeviceCloverField",
    "BACKWARD",
    "FORWARD",
    "FieldLayout",
    "DeviceAllocator",
    "DeviceBuffer",
    "DeviceOutOfMemoryError",
    "PerfModelParams",
    "DEFAULT_PARAMS",
    "Precision",
    "GPUSpec",
    "CPUSpec",
    "GTX285",
    "XEON_E5530",
    "TABLE_I",
    "get_gpu",
    "Timeline",
    "TimelineOp",
    "Event",
]
