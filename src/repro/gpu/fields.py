"""Device-resident field containers at any storage precision.

Each device field pairs

* a *logical* NumPy backing store (complex arrays for float precisions;
  genuine ``int16`` plus ``float32`` norms for half precision, so that
  quantization error is physically present in the numerics), with
* a :class:`~repro.gpu.layout.FieldLayout` describing its true on-device
  shape — blocked, padded, end-zoned per paper eqs. (4)-(5) — which is
  what the allocator charges against the 2 GiB card and what the traffic
  accounting of the kernels is derived from.

The layout's pack/unpack bijection is tested exhaustively in
``tests/gpu/test_layout.py``; storing the working data logically (rather
than permuted) keeps the NumPy kernels vectorized without changing any
observable: bytes, addresses, and numerics all follow the real layout.

Ghost storage follows the paper:

* **Spinor fields** carry an *end zone* holding the two transferred
  half-spinor faces (12 real numbers per face site, Section VI-C) plus,
  in half precision, a ``2 * faces`` norm end zone.
* **Gauge fields** receive their ghost timeslice inside the *pad* region
  (Section VI-B) — here a dedicated ghost array whose bytes were already
  part of the padded allocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .device import VirtualGPU
from .layout import (
    CLOVER_REALS,
    GAUGE_REALS_COMPRESSED,
    GAUGE_REALS_FULL,
    SPINOR_REALS,
    FieldLayout,
    matrices_to_reals,
    reals_to_matrices,
    reals_to_spinor,
    spinor_to_reals,
)
from .precision import (
    Precision,
    dequantize_block,
    dequantize_normalized,
    quantize_block,
    quantize_normalized,
)

__all__ = [
    "DeviceSpinorField",
    "DeviceGaugeField",
    "DeviceCloverField",
    "BACKWARD",
    "FORWARD",
]

#: Face direction labels: BACKWARD = the face at local t = 0 (received
#: from the -t neighbor), FORWARD = the face at local t = T_loc - 1.
BACKWARD, FORWARD = "backward", "forward"

#: Reals in one projected half-spinor (2 spins x 3 colors, complex).
HALF_SPINOR_REALS = 12


@dataclass
class DeviceSpinorField:
    """A spinor field on one virtual GPU.

    Parameters
    ----------
    sites:
        Body sites (half volume for checkerboarded solver fields).
    face_sites:
        Sites per temporal ghost face (0 on a single GPU).  The end zone
        holds ``2 * face_sites`` half-spinors: the P+4 half first, then
        the P-4 half, matching Fig. 3.
    pad_sites:
        Layout pad (one spatial volume in QUDA).
    """

    gpu: VirtualGPU
    sites: int
    precision: Precision
    face_sites: int = 0
    pad_sites: int = 0
    basis: str = "degrand_rossi"
    label: str = "spinor"
    #: Multi-dimensional decomposition (Section VI-A future work): map
    #: from partitioned direction index to face sites.  Supersedes
    #: ``face_sites`` (which remains the temporal-only shorthand).
    faces: dict[int, int] | None = None
    layout: FieldLayout = field(init=False)

    T_DIR = 3

    def __post_init__(self) -> None:
        if self.faces is None:
            self.faces = {self.T_DIR: self.face_sites} if self.face_sites else {}
        self.faces = {mu: n for mu, n in self.faces.items() if n > 0}
        self.face_sites = self.faces.get(self.T_DIR, 0)
        total_faces = sum(self.faces.values())
        self.layout = FieldLayout(
            sites=self.sites,
            internal_reals=SPINOR_REALS,
            nvec=self.precision.vector_length,
            pad_sites=self.pad_sites,
            endzone_reals=2 * total_faces * HALF_SPINOR_REALS,
        )
        nbytes = self.layout.nbytes(self.precision)
        ghost_keys = [
            (mu, d) for mu in self.faces for d in (BACKWARD, FORWARD)
        ]
        if self.precision.needs_norm:
            # Body norms + the 2*Vs norm end zone (Section VI-C).
            nbytes += (self.sites + 2 * total_faces) * 4
            self._store = self.gpu.allocator.alloc_bytes(
                nbytes, (self.sites, SPINOR_REALS), np.int16,
                f"{self.gpu.name}:{self.label}[half]",
            )
            self._norms = self.gpu.empty_like_field((self.sites,), np.float32)
            self._ghost = {
                key: self.gpu.empty_like_field(
                    (self.faces[key[0]], HALF_SPINOR_REALS), np.int16
                )
                for key in ghost_keys
            }
            self._ghost_norms = {
                key: self.gpu.empty_like_field((self.faces[key[0]],), np.float32)
                for key in ghost_keys
            }
        else:
            self._store = self.gpu.allocator.alloc_bytes(
                nbytes,
                (self.sites, 4, 3),
                self.precision.complex_compute_dtype,
                f"{self.gpu.name}:{self.label}[{self.precision.name.lower()}]",
            )
            self._norms = None
            self._ghost = {
                key: self.gpu.empty_like_field(
                    (self.faces[key[0]], 2, 3), self.precision.complex_compute_dtype
                )
                for key in ghost_keys
            }
            self._ghost_norms = {key: None for key in ghost_keys}

    # ------------------------------------------------------------------ #
    # Body data
    # ------------------------------------------------------------------ #

    @property
    def nbytes(self) -> int:
        return self._store.nbytes

    @property
    def body_bytes(self) -> int:
        """Device bytes of the body data alone (for traffic accounting)."""
        n = self.sites * SPINOR_REALS * self.precision.real_bytes
        if self.precision.needs_norm:
            n += self.sites * 4
        return n

    def set(self, data: np.ndarray) -> None:
        """Upload complex spinor data ``(sites, 4, 3)`` (quantizing)."""
        if not self.gpu.execute:
            return
        if data.shape != (self.sites, 4, 3):
            raise ValueError(f"expected {(self.sites, 4, 3)}, got {data.shape}")
        if self.precision.needs_norm:
            reals = spinor_to_reals(data)
            self._store.array[...], self._norms[...] = quantize_block(reals)
        else:
            self._store.array[...] = data

    def get(self) -> np.ndarray:
        """Download as complex128 ``(sites, 4, 3)`` (dequantizing)."""
        self._require_execute()
        if self.precision.needs_norm:
            reals = dequantize_block(self._store.array, self._norms)
            return reals_to_spinor(reals.astype(np.float64))
        return self._store.array.astype(np.complex128)

    def working(self) -> np.ndarray:
        """The array kernels compute on: complex, in compute dtype.

        For half precision this performs the texture-style decode; results
        written back must go through :meth:`set_working`.
        """
        self._require_execute()
        if self.precision.needs_norm:
            reals = dequantize_block(self._store.array, self._norms)
            return reals_to_spinor(reals).astype(np.complex64)
        return self._store.array

    def set_working(self, data: np.ndarray) -> None:
        """Store kernel output (re-quantizing for half precision)."""
        self.set(data)

    def zero(self) -> None:
        if not self.gpu.execute:
            return
        self._store.array[...] = 0
        if self._norms is not None:
            self._norms[...] = 0

    def copy_from(self, other: "DeviceSpinorField") -> None:
        """Precision-converting copy (the mixed-precision solver's tool)."""
        if other.sites != self.sites:
            raise ValueError("site count mismatch in spinor copy")
        if not self.gpu.execute:
            return
        self.set(other.get())

    # ------------------------------------------------------------------ #
    # Ghost end zone
    # ------------------------------------------------------------------ #

    def set_ghost(
        self,
        direction: str,
        halves: np.ndarray,
        norms: np.ndarray | None = None,
        mu: int = T_DIR,
    ) -> None:
        """Store a received face into the end zone.

        ``halves``: complex half-spinors ``(faces[mu], 2, 3)``.  For half
        precision the face was transferred quantized; pass its norms.
        ``mu`` selects the partitioned direction (temporal by default).
        """
        if not self.gpu.execute:
            return
        n = self.faces[mu]
        key = (mu, direction)
        if halves.shape != (n, 2, 3):
            raise ValueError(f"expected {(n, 2, 3)}, got {halves.shape}")
        if self.precision.needs_norm:
            reals = matrices_to_reals(halves)
            if norms is None:
                self._ghost[key][...], self._ghost_norms[key][...] = quantize_block(
                    reals
                )
            else:
                safe = np.where(norms == 0.0, 1.0, norms).astype(np.float32)
                scaled = reals / safe[:, None] * 32767.0
                self._ghost[key][...] = np.round(scaled).astype(np.int16)
                self._ghost_norms[key][...] = norms
        else:
            self._ghost[key][...] = halves

    def get_ghost(self, direction: str, mu: int = T_DIR) -> np.ndarray:
        """Read a face from the end zone as complex compute-dtype data."""
        self._require_execute()
        key = (mu, direction)
        if self.precision.needs_norm:
            reals = dequantize_block(self._ghost[key], self._ghost_norms[key])
            return reals_to_matrices(reals, 2, 3).astype(np.complex64)
        return self._ghost[key]

    def face_message_bytes(self, mu: int = T_DIR) -> int:
        """Wire size of one face: 12 reals/site (+ norms in half)."""
        sites = self.faces.get(mu, 0)
        n = sites * HALF_SPINOR_REALS * self.precision.real_bytes
        if self.precision.needs_norm:
            n += sites * 4
        return n

    def _require_execute(self) -> None:
        if not self.gpu.execute:
            raise RuntimeError(
                "field data is not materialized in timing-only mode"
            )

    def release(self) -> None:
        self.gpu.free(self._store)


@dataclass
class DeviceGaugeField:
    """The link field on one virtual GPU.

    ``compressed`` selects 2-row (12-real) storage with in-kernel
    reconstruction (Section V-C1) — QUDA's default, and the paper's
    operation-count convention excludes the reconstruction flops.

    The temporal ghost slice (``U_t`` links of the previous rank's last
    timeslice, ``ghost_sites`` of them) lives in the pad region per
    Section VI-B; it is transferred once at initialization because "the
    link matrices are constant throughout the execution of the linear
    solver".
    """

    gpu: VirtualGPU
    sites: int
    precision: Precision
    compressed: bool = True
    ghost_sites: int = 0
    pad_sites: int = 0
    label: str = "gauge"
    #: Multi-dimensional decomposition: map from partitioned direction to
    #: ghost-slice sites.  Supersedes ``ghost_sites`` (temporal shorthand).
    #: The temporal ghost hides in the pad (Section VI-B); additional
    #: directions need dedicated buffers, accounted explicitly.
    ghosts: dict[int, int] | None = None
    layout: FieldLayout = field(init=False)

    T_DIR = 3

    def __post_init__(self) -> None:
        if self.ghosts is None:
            self.ghosts = {self.T_DIR: self.ghost_sites} if self.ghost_sites else {}
        self.ghosts = {mu: n for mu, n in self.ghosts.items() if n > 0}
        self.ghost_sites = self.ghosts.get(self.T_DIR, 0)
        reals = GAUGE_REALS_COMPRESSED if self.compressed else GAUGE_REALS_FULL
        if self.pad_sites < self.ghosts.get(self.T_DIR, 0):
            # QUDA's pad (one spatial volume) is "exactly the correct size
            # to store the additional gauge field slice".
            raise ValueError(
                f"gauge ghost ({self.ghosts[self.T_DIR]} sites) does not fit "
                f"in the pad ({self.pad_sites} sites)"
            )
        self.layout = FieldLayout(
            sites=self.sites,
            internal_reals=reals,
            nvec=self.precision.vector_length
            if reals % self.precision.vector_length == 0
            else 2,
            pad_sites=self.pad_sites,
        )
        rows = 2 if self.compressed else 3
        nbytes = 4 * self.layout.nbytes(self.precision)  # one block set per mu
        # Non-temporal ghosts live outside the pad: account their bytes.
        for mu, n in self.ghosts.items():
            if mu != self.T_DIR:
                nbytes += n * reals * self.precision.real_bytes
        dtype = (
            np.int16 if self.precision.needs_norm else self.precision.complex_compute_dtype
        )
        shape = (
            (4, self.sites, rows * 6)
            if self.precision.needs_norm
            else (4, self.sites, rows, 3)
        )
        self._store = self.gpu.allocator.alloc_bytes(
            nbytes, shape, dtype, f"{self.gpu.name}:{self.label}"
        )
        self._ghost = {
            mu: self.gpu.empty_like_field(
                (n, rows * 6) if self.precision.needs_norm else (n, rows, 3), dtype
            )
            for mu, n in self.ghosts.items()
        }

    @property
    def nbytes(self) -> int:
        return self._store.nbytes

    def matvec_link_bytes(self) -> int:
        """Bytes of one link matrix as stored (traffic accounting)."""
        reals = GAUGE_REALS_COMPRESSED if self.compressed else GAUGE_REALS_FULL
        return reals * self.precision.real_bytes

    # ------------------------------------------------------------------ #

    def _encode(self, matrices: np.ndarray) -> np.ndarray:
        """Complex link matrices -> stored representation."""
        from ..lattice import su3

        rows = su3.compress_rows(matrices) if self.compressed else matrices
        if self.precision.needs_norm:
            # Unitarity bounds every element by 1: direct fixed point.
            flat = matrices_to_reals(rows.reshape(rows.shape[0], -1, 3))
            return quantize_normalized(flat)
        return rows.astype(self.precision.complex_compute_dtype)

    def _decode(self, stored: np.ndarray) -> np.ndarray:
        """Stored representation -> full complex link matrices."""
        from ..lattice import su3

        rows_n = 2 if self.compressed else 3
        if self.precision.needs_norm:
            reals = dequantize_normalized(stored)
            rows = reals_to_matrices(reals, rows_n, 3).astype(np.complex64)
        else:
            rows = stored
        return su3.reconstruct_rows(rows) if self.compressed else rows

    def set(self, data: np.ndarray) -> None:
        """Upload links ``(4, sites, 3, 3)`` complex."""
        if not self.gpu.execute:
            return
        if data.shape != (4, self.sites, 3, 3):
            raise ValueError(f"expected {(4, self.sites, 3, 3)}, got {data.shape}")
        for mu in range(4):
            self._store.array[mu] = self._encode(data[mu])

    def links(self, mu: int) -> np.ndarray:
        """Full (reconstructed, decoded) link matrices for direction mu."""
        self._require_execute()
        return self._decode(self._store.array[mu])

    def set_ghost(self, links: np.ndarray, mu: int = T_DIR) -> None:
        """Store the ``mu`` gauge ghost slice (done once at init)."""
        if not self.gpu.execute:
            return
        n = self.ghosts[mu]
        if links.shape != (n, 3, 3):
            raise ValueError(f"expected {(n, 3, 3)}, got {links.shape}")
        self._ghost[mu][...] = self._encode(links)

    def ghost_links(self, mu: int = T_DIR) -> np.ndarray:
        """The decoded ghost slice (U_mu of the -mu neighbor's last slice)."""
        self._require_execute()
        return self._decode(self._ghost[mu])

    def ghost_message_bytes(self, mu: int = T_DIR) -> int:
        reals = GAUGE_REALS_COMPRESSED if self.compressed else GAUGE_REALS_FULL
        return self.ghosts.get(mu, 0) * reals * self.precision.real_bytes

    def _require_execute(self) -> None:
        if not self.gpu.execute:
            raise RuntimeError("field data is not materialized in timing-only mode")

    def release(self) -> None:
        self.gpu.free(self._store)


@dataclass
class DeviceCloverField:
    """Per-site chiral 6x6 blocks (the clover term or its inverse).

    Stored as the packed 72 reals per site (paper footnote 1); half
    precision quantizes the packed block with a shared per-site norm, as
    QUDA does.
    """

    gpu: VirtualGPU
    sites: int
    precision: Precision
    label: str = "clover"
    layout: FieldLayout = field(init=False)

    def __post_init__(self) -> None:
        self.layout = FieldLayout(
            sites=self.sites,
            internal_reals=CLOVER_REALS,
            nvec=self.precision.vector_length,
        )
        nbytes = self.layout.nbytes(self.precision)
        if self.precision.needs_norm:
            nbytes += self.sites * 4
            self._store = self.gpu.allocator.alloc_bytes(
                nbytes, (self.sites, CLOVER_REALS), np.int16,
                f"{self.gpu.name}:{self.label}[half]",
            )
            self._norms = self.gpu.empty_like_field((self.sites,), np.float32)
        else:
            self._store = self.gpu.allocator.alloc_bytes(
                nbytes,
                (self.sites, 2, 6, 6),
                self.precision.complex_compute_dtype,
                f"{self.gpu.name}:{self.label}[{self.precision.name.lower()}]",
            )
            self._norms = None

    @property
    def nbytes(self) -> int:
        return self._store.nbytes

    def site_bytes(self) -> int:
        n = CLOVER_REALS * self.precision.real_bytes
        if self.precision.needs_norm:
            n += 4
        return n

    def set(self, blocks: np.ndarray) -> None:
        """Upload chiral blocks ``(sites, 2, 6, 6)`` complex."""
        if not self.gpu.execute:
            return
        if blocks.shape != (self.sites, 2, 6, 6):
            raise ValueError(f"expected {(self.sites, 2, 6, 6)}, got {blocks.shape}")
        if self.precision.needs_norm:
            packed = _pack_blocks(blocks)
            self._store.array[...], self._norms[...] = quantize_block(packed)
        else:
            self._store.array[...] = blocks

    def blocks(self) -> np.ndarray:
        """Decoded chiral blocks in compute dtype."""
        self._require_execute()
        if self.precision.needs_norm:
            packed = dequantize_block(self._store.array, self._norms)
            return _unpack_blocks(packed.astype(np.float64)).astype(np.complex64)
        return self._store.array

    def apply(self, psi: np.ndarray) -> np.ndarray:
        """Blockwise apply to spinor data ``(sites, 4, 3)``."""
        from ..lattice.fields import apply_chiral_blocks

        return apply_chiral_blocks(self.blocks(), psi)

    def apply_rows(self, psi_rows: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """Apply the blocks of a site subset to matching spinor rows.

        Used by the fused dslash kernels, whose region may cover only the
        interior or boundary rows.
        """
        from ..lattice.fields import apply_chiral_blocks

        return apply_chiral_blocks(self.blocks()[rows], psi_rows)

    def _require_execute(self) -> None:
        if not self.gpu.execute:
            raise RuntimeError("field data is not materialized in timing-only mode")

    def release(self) -> None:
        self.gpu.free(self._store)


def _pack_blocks(blocks: np.ndarray) -> np.ndarray:
    """Chiral blocks ``(V, 2, 6, 6)`` -> 72 reals/site (Hermitian packing)."""
    v = blocks.shape[0]
    out = np.empty((v, CLOVER_REALS), dtype=np.float64)
    tri = np.tril_indices(6, k=-1)
    for c in range(2):
        base = 36 * c
        out[:, base : base + 6] = np.real(blocks[:, c, np.arange(6), np.arange(6)])
        lower = blocks[:, c, tri[0], tri[1]]
        out[:, base + 6 : base + 36 : 2] = lower.real
        out[:, base + 7 : base + 36 : 2] = lower.imag
    return out


def _unpack_blocks(packed: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_pack_blocks`."""
    v = packed.shape[0]
    blocks = np.zeros((v, 2, 6, 6), dtype=np.complex128)
    tri = np.tril_indices(6, k=-1)
    for c in range(2):
        base = 36 * c
        blocks[:, c, np.arange(6), np.arange(6)] = packed[:, base : base + 6]
        lower = packed[:, base + 6 : base + 36 : 2] + 1j * packed[
            :, base + 7 : base + 36 : 2
        ]
        blocks[:, c, tri[0], tri[1]] = lower
        blocks[:, c, tri[1], tri[0]] = np.conj(lower)
    return blocks
