"""The QUDA device field layout: paper eqs. (3)-(5) and Fig. 2.

A lattice field with ``Nint`` internal real numbers per site is stored on
the device as ``Nint / Nvec`` *blocks* of short vectors:

    i_new = Nvec * ( stride * floor(n / Nvec) + x ) + n mod Nvec      (5)

where ``x`` is the site index, ``n`` the internal index, ``Nvec`` the
short-vector length (float4 in single, double2 in double — 16 bytes
either way), and ``stride = V + pad``.  Successive threads (sites) then
read successive 16-byte vectors, giving coalesced memory transactions.

The pad of one spatial volume ``Vs = X*Y*Z`` serves two purposes:

1. it breaks the stride pattern that causes *partition camping* for
   certain problem sizes (Section III / V-B), and
2. it is "exactly the correct size to store the additional gauge field
   slice" — the gauge ghost zone of the multi-GPU code hides entirely in
   the padding (Section VI-B, Fig. 2).

Spinor fields additionally carry an *end zone* appended after the last
block: the two transferred faces of the multi-GPU spinor ghost
(Section VI-C, Fig. 3), deliberately *outside* the blocked body so that
reduction kernels can exclude it without double counting.

Everything here is pure index arithmetic plus vectorized ``pack``/
``unpack`` converters between host ("CPU order", eq. (3)) and device
order; the tests verify the mapping is a bijection for every supported
``(Nint, Nvec, pad, precision)`` combination.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from .specs import GPUSpec
from .precision import Precision

__all__ = [
    "FieldLayout",
    "spinor_to_reals",
    "reals_to_spinor",
    "matrices_to_reals",
    "reals_to_matrices",
    "SPINOR_REALS",
    "GAUGE_REALS_FULL",
    "GAUGE_REALS_COMPRESSED",
    "CLOVER_REALS",
]

#: Internal reals per site for each field species (paper Section V-B).
SPINOR_REALS = 24
GAUGE_REALS_FULL = 18
GAUGE_REALS_COMPRESSED = 12
CLOVER_REALS = 72


@dataclass(frozen=True)
class FieldLayout:
    """Device layout of one field: block/stride geometry of eq. (5).

    Parameters
    ----------
    sites:
        Number of body sites ``V`` (for checkerboarded fields this is the
        half volume).
    internal_reals:
        ``Nint``: 24 for spinors, 12/18 for (compressed/full) gauge per
        direction, 72 for clover.
    nvec:
        Short-vector length.  Must divide ``internal_reals``.
    pad_sites:
        Pad between blocks, in sites.  QUDA uses one spatial volume.
    endzone_reals:
        Extra reals appended after the body (the spinor ghost end zone).
    """

    sites: int
    internal_reals: int
    nvec: int
    pad_sites: int = 0
    endzone_reals: int = 0

    def __post_init__(self) -> None:
        if self.internal_reals % self.nvec:
            raise ValueError(
                f"Nvec={self.nvec} must divide Nint={self.internal_reals}"
            )
        if min(self.sites, self.internal_reals, self.nvec) <= 0:
            raise ValueError("sites, internal_reals and nvec must be positive")
        if self.pad_sites < 0 or self.endzone_reals < 0:
            raise ValueError("pad and end zone must be non-negative")

    # ------------------------------------------------------------------ #
    # Geometry
    # ------------------------------------------------------------------ #

    @property
    def n_blocks(self) -> int:
        """Number of short-vector blocks, ``Nint / Nvec`` (Fig. 2)."""
        return self.internal_reals // self.nvec

    @property
    def stride(self) -> int:
        """Sites per block including pad: the ``(T+1) Vs`` of eq. (5)."""
        return self.sites + self.pad_sites

    @property
    def body_reals(self) -> int:
        return self.n_blocks * self.stride * self.nvec

    @property
    def total_reals(self) -> int:
        return self.body_reals + self.endzone_reals

    def nbytes(self, precision: Precision) -> int:
        """Device bytes of the stored field (norm arrays accounted by the
        field wrapper, not here)."""
        return self.total_reals * precision.real_bytes

    def index(self, x: int, n: int) -> int:
        """Eq. (5): flat device index of internal real ``n`` at site ``x``."""
        if not 0 <= x < self.sites:
            raise IndexError(f"site {x} outside body [0, {self.sites})")
        if not 0 <= n < self.internal_reals:
            raise IndexError(f"internal index {n} outside [0, {self.internal_reals})")
        return self.nvec * (self.stride * (n // self.nvec) + x) + n % self.nvec

    # ------------------------------------------------------------------ #
    # Pack / unpack (vectorized)
    # ------------------------------------------------------------------ #

    @cached_property
    def _scatter_index(self) -> np.ndarray:
        """Device index for every (site, internal) pair, shape (V, Nint)."""
        x = np.arange(self.sites)[:, None]
        n = np.arange(self.internal_reals)[None, :]
        return self.nvec * (self.stride * (n // self.nvec) + x) + n % self.nvec

    def pack(self, host: np.ndarray, dtype=np.float64) -> np.ndarray:
        """Host order ``(V, Nint)`` reals -> flat device array.

        Pad regions and end zone are zero-initialized (the multi-GPU layer
        fills them with ghost data separately).
        """
        if host.shape != (self.sites, self.internal_reals):
            raise ValueError(
                f"expected host shape {(self.sites, self.internal_reals)}, "
                f"got {host.shape}"
            )
        flat = np.zeros(self.total_reals, dtype=dtype)
        flat[self._scatter_index] = host
        return flat

    def unpack(self, flat: np.ndarray) -> np.ndarray:
        """Flat device array -> host order ``(V, Nint)`` reals."""
        if flat.shape != (self.total_reals,):
            raise ValueError(
                f"expected flat shape ({self.total_reals},), got {flat.shape}"
            )
        return flat[self._scatter_index]

    # ------------------------------------------------------------------ #
    # Pad (gauge ghost) region and end zone
    # ------------------------------------------------------------------ #

    @cached_property
    def _pad_index(self) -> np.ndarray:
        """Device index of every (pad site, internal) pair, (pad, Nint)."""
        if self.pad_sites == 0:
            return np.empty((0, self.internal_reals), dtype=np.int64)
        x = self.sites + np.arange(self.pad_sites)[:, None]
        n = np.arange(self.internal_reals)[None, :]
        return self.nvec * (self.stride * (n // self.nvec) + x) + n % self.nvec

    def write_pad(self, flat: np.ndarray, ghost: np.ndarray) -> None:
        """Store ghost sites in the pad region (gauge ghost, Section VI-B).

        ``ghost`` has host order ``(pad_sites, Nint)``.  The kernel then
        addresses ghost site ``k`` exactly like body site ``V + k`` — "the
        gauge field array indices are set to the padded region".
        """
        if ghost.shape != (self.pad_sites, self.internal_reals):
            raise ValueError(
                f"expected ghost shape {(self.pad_sites, self.internal_reals)}, "
                f"got {ghost.shape}"
            )
        flat[self._pad_index] = ghost

    def read_pad(self, flat: np.ndarray) -> np.ndarray:
        """Read back the pad region in host order (for tests/debugging)."""
        return flat[self._pad_index]

    def endzone(self, flat: np.ndarray) -> np.ndarray:
        """View of the end zone (the spinor ghost faces, Section VI-C)."""
        if self.endzone_reals == 0:
            return flat[self.total_reals :]  # empty view
        return flat[self.body_reals :]

    # ------------------------------------------------------------------ #
    # Partition camping (Section III / V-B)
    # ------------------------------------------------------------------ #

    def block_stride_bytes(self, precision: Precision) -> int:
        """Bytes between the starts of successive blocks."""
        return self.stride * self.nvec * precision.real_bytes

    def partition_camping(self, precision: Precision, spec: GPUSpec) -> bool:
        """Whether this layout stresses only a subset of memory partitions.

        Successive 256-byte regions round-robin over the 8 partitions
        (GT200).  If the block stride is a multiple of the full partition
        cycle (8 x 256 bytes), the same-numbered vector of every block
        lands in the same partition and the concurrent block streams
        "camp" on it — the effect hits exactly the power-of-two-ish
        production volumes (Section V-B).  QUDA's cure is the pad, whose
        presence staggers the streams; we model "padded => no camping"
        (the pad size is chosen by the library to break the alignment).
        """
        if self.pad_sites > 0:
            return False
        cycle = spec.memory_partitions * spec.partition_width_bytes
        return self.block_stride_bytes(precision) % cycle == 0


# ---------------------------------------------------------------------- #
# Host <-> flat-real conversions for each field species
# ---------------------------------------------------------------------- #


def spinor_to_reals(data: np.ndarray) -> np.ndarray:
    """Complex spinor data ``(V, 4, 3)`` -> reals ``(V, 24)``.

    Internal ordering: spin major, then color, then (re, im) — the
    ordering is a private convention; only its consistency matters.
    """
    v = data.shape[0]
    out = np.empty((v, SPINOR_REALS), dtype=np.float64)
    flat = data.reshape(v, 12)
    out[:, 0::2] = flat.real
    out[:, 1::2] = flat.imag
    return out


def reals_to_spinor(reals: np.ndarray) -> np.ndarray:
    """Inverse of :func:`spinor_to_reals`."""
    v = reals.shape[0]
    flat = reals[:, 0::2] + 1j * reals[:, 1::2]
    return flat.reshape(v, 4, 3)


def matrices_to_reals(data: np.ndarray) -> np.ndarray:
    """Complex matrices ``(V, r, c)`` -> reals ``(V, 2*r*c)`` (row major)."""
    v = data.shape[0]
    n = data.shape[1] * data.shape[2]
    out = np.empty((v, 2 * n), dtype=np.float64)
    flat = data.reshape(v, n)
    out[:, 0::2] = flat.real
    out[:, 1::2] = flat.imag
    return out


def reals_to_matrices(reals: np.ndarray, rows: int, cols: int) -> np.ndarray:
    """Inverse of :func:`matrices_to_reals`."""
    v = reals.shape[0]
    flat = reals[:, 0::2] + 1j * reals[:, 1::2]
    return flat.reshape(v, rows, cols)
