"""The virtual GPU: specs + memory + execution timeline in one object.

A :class:`VirtualGPU` stands in for one CUDA device (plus its controlling
host process).  It combines

* a :class:`~repro.gpu.specs.GPUSpec` (GTX 285 by default — the paper's
  test bed),
* a :class:`~repro.gpu.memory.DeviceAllocator` enforcing the card's
  2 GiB capacity,
* a :class:`~repro.gpu.streams.Timeline` with CUDA stream/engine
  semantics, and
* the calibrated :class:`~repro.gpu.perfmodel.PerfModelParams`.

``execute`` selects *functional* mode (kernels really compute, on NumPy
arrays) or *timing-only* mode (kernels advance the timeline with exact
byte/flop accounting but never touch data) — the latter lets the bench
harness run the paper-scale 32^3 x 256 lattice that no laptop could
iterate numerically.  Both modes produce identical model times, which the
tests assert.

``numa_ok`` records whether the owning process is bound to the socket
that hosts this GPU's PCIe bus (Section VII-D); transfers from a mis-bound
process are slower, reproducing the maroon curve of Fig. 5(a).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .memory import DeviceAllocator, DeviceBuffer
from .perfmodel import DEFAULT_PARAMS, PerfModelParams, kernel_time, pcie_time
from .precision import Precision
from .specs import GTX285, GPUSpec
from .streams import Timeline, TimelineOp

__all__ = ["VirtualGPU"]


@dataclass
class VirtualGPU:
    """One simulated CUDA device and its host-process timeline."""

    spec: GPUSpec = GTX285
    params: PerfModelParams = field(default_factory=lambda: DEFAULT_PARAMS)
    execute: bool = True
    numa_ok: bool = True
    enforce_memory: bool = True
    name: str = "gpu0"
    allocator: DeviceAllocator = field(init=False)
    timeline: Timeline = field(init=False)

    def __post_init__(self) -> None:
        self.allocator = DeviceAllocator(
            capacity_bytes=self.spec.ram_bytes if self.enforce_memory else None,
            execute=self.execute,
        )
        self.timeline = Timeline(
            params=self.params, copy_engines=self.spec.copy_engines
        )

    # ------------------------------------------------------------------ #
    # Memory
    # ------------------------------------------------------------------ #

    def alloc(self, shape, dtype, label: str) -> DeviceBuffer:
        return self.allocator.alloc(shape, dtype, f"{self.name}:{label}")

    def free(self, buf: DeviceBuffer) -> None:
        self.allocator.free(buf)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def launch(
        self,
        name: str,
        precision: Precision,
        *,
        bytes_moved: int,
        flops: int,
        stream: int = 0,
        occupancy: float = 1.0,
        camping: bool = False,
    ) -> TimelineOp:
        """Launch a kernel with model duration from the roofline model."""
        duration = kernel_time(
            self.spec,
            self.params,
            precision,
            bytes_moved,
            flops,
            occupancy=occupancy,
            camping=camping,
        )
        return self.timeline.submit_kernel(
            name, duration, stream=stream, nbytes=bytes_moved, flops=flops
        )

    def memcpy(
        self,
        name: str,
        direction: str,
        nbytes: int,
        *,
        stream: int = 0,
        asynchronous: bool = False,
    ) -> TimelineOp:
        """A PCIe transfer; duration per the Fig. 7 latency/bandwidth model."""
        duration = pcie_time(
            self.params,
            nbytes,
            direction,
            asynchronous=asynchronous,
            numa_ok=self.numa_ok,
        )
        return self.timeline.submit_copy(
            name, direction, nbytes, duration, stream=stream, asynchronous=asynchronous
        )

    # Convenience passthroughs -------------------------------------------

    def stream_synchronize(self, stream: int = 0) -> None:
        self.timeline.stream_synchronize(stream)

    def device_synchronize(self) -> None:
        self.timeline.device_synchronize()

    @property
    def elapsed(self) -> float:
        return self.timeline.elapsed

    # ------------------------------------------------------------------ #
    # Functional-mode helper
    # ------------------------------------------------------------------ #

    def compute(self, fn, *args, **kwargs):
        """Run ``fn`` only in functional mode (numerics), else skip.

        Kernels call this for their NumPy body so that timing-only runs
        share one code path with functional runs.
        """
        if self.execute:
            return fn(*args, **kwargs)
        return None

    def empty_like_field(self, shape, dtype) -> np.ndarray:
        """Scratch host array in functional mode, placeholder otherwise."""
        return np.zeros(shape, dtype=dtype) if self.execute else np.zeros(0, dtype=dtype)
