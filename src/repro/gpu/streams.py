"""CUDA-like execution timeline: streams, events, and engine contention.

The multi-GPU paper lives and dies by *when* things run, not just what
they compute, so the virtual GPU carries a discrete-event timeline that
assigns a start and end model-time to every operation while the NumPy
numerics (optionally) execute underneath.  The model captures the GT200
execution rules that shape the paper's results:

* **One compute engine** — concurrent kernels are a Fermi feature; on the
  GTX 285 kernels serialize globally even across streams.  The overlap
  strategy of Section VI-D2 therefore overlaps the interior *kernel* with
  *copies*, never kernel with kernel.
* **One copy engine** — PCIe transfers serialize with each other, and
  bidirectional transfer is also Fermi-only ("The Fermi architecture
  improves upon this model by allowing for bidirectional transfers",
  footnote 4).
* **Streams order operations**: two operations on the same stream
  execute in issue order; operations on different streams may overlap
  subject to engine availability.  ``cudaStreamSynchronize`` blocks the
  host until a stream drains — exactly the synchronization point the
  paper inserts before message passing ("the streams responsible for
  gathering the faces to the host must be synchronized ... before message
  passing can take place").
* **Sync vs async copies** have very different latencies (Fig. 7); a
  synchronous ``cudaMemcpy`` additionally blocks the host and (as used
  here, on the default stream) waits for previously launched kernels.

The host itself is modelled as a sequential timeline: submitting work
costs a few microseconds; blocking calls advance host time to the
operation's completion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .perfmodel import PerfModelParams, DEFAULT_PARAMS

__all__ = ["TimelineOp", "Timeline", "Event"]

#: The default stream (CUDA stream 0).
DEFAULT_STREAM = 0


@dataclass(frozen=True)
class TimelineOp:
    """One completed operation on the device/host timeline."""

    name: str
    kind: str  # 'kernel' | 'h2d' | 'd2h' | 'host' | 'wait'
    stream: int
    start: float
    end: float
    nbytes: int = 0
    flops: int = 0
    #: Time injected by fault injection (retry backoff, late arrival)
    #: rather than modelled healthy execution — rendered distinctly in
    #: the Gantt trace so chaos runs are visually diagnosable.
    fault: bool = False

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class Event:
    """A recorded timestamp on a stream (cudaEvent analogue)."""

    time: float
    stream: int


@dataclass
class Timeline:
    """Discrete-event schedule for one GPU and its host process."""

    params: PerfModelParams = field(default_factory=lambda: DEFAULT_PARAMS)
    #: Copy engines: 1 on GT200 (all transfers serialize); 2 on Fermi
    #: parts like the Tesla C2050, where h2d and d2h proceed
    #: bidirectionally (paper footnote 4).
    copy_engines: int = 1
    record_ops: bool = True
    host_time: float = 0.0
    _stream_ready: dict[int, float] = field(default_factory=dict)
    _compute_free: float = 0.0
    _copy_free: dict[str, float] = field(default_factory=dict)
    ops: list[TimelineOp] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _stream(self, stream: int) -> float:
        return self._stream_ready.get(stream, 0.0)

    def _engine(self, direction: str) -> str:
        """Which copy engine serves a transfer direction."""
        return direction if self.copy_engines >= 2 else "all"

    def _record(self, op: TimelineOp) -> TimelineOp:
        if self.record_ops:
            self.ops.append(op)
        return op

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #

    def submit_kernel(
        self,
        name: str,
        duration: float,
        *,
        stream: int = DEFAULT_STREAM,
        nbytes: int = 0,
        flops: int = 0,
    ) -> TimelineOp:
        """Asynchronously launch a kernel.

        The kernel starts when its stream is ready *and* the (single)
        compute engine is free; the host only pays the submission cost.
        """
        self.host_time += self.params.submit_overhead_s
        start = max(self.host_time, self._stream(stream), self._compute_free)
        end = start + duration
        self._stream_ready[stream] = end
        self._compute_free = end
        return self._record(
            TimelineOp(name, "kernel", stream, start, end, nbytes, flops)
        )

    def submit_copy(
        self,
        name: str,
        direction: str,
        nbytes: int,
        duration: float,
        *,
        stream: int = DEFAULT_STREAM,
        asynchronous: bool = False,
    ) -> TimelineOp:
        """A PCIe transfer (``direction`` in {'h2d', 'd2h'}).

        Synchronous copies block the host until completion (cudaMemcpy);
        asynchronous copies return immediately (cudaMemcpyAsync) and
        complete when both their stream and the copy engine allow.
        """
        if direction not in ("h2d", "d2h"):
            raise ValueError(f"bad copy direction {direction!r}")
        self.host_time += self.params.submit_overhead_s
        engine = self._engine(direction)
        start = max(
            self.host_time, self._stream(stream), self._copy_free.get(engine, 0.0)
        )
        end = start + duration
        self._stream_ready[stream] = end
        self._copy_free[engine] = end
        if not asynchronous:
            self.host_time = end
        return self._record(TimelineOp(name, direction, stream, start, end, nbytes))

    def host_busy(
        self, name: str, duration: float, *, fault: bool = False
    ) -> TimelineOp:
        """Host-side work (buffer packing, MPI library time, ...)."""
        start = self.host_time
        self.host_time += duration
        return self._record(
            TimelineOp(name, "host", -1, start, self.host_time, fault=fault)
        )

    def host_wait_until(self, t: float, name: str = "wait", *, fault: bool = False) -> None:
        """Block the host until model time ``t`` (e.g. a message arrival)."""
        if t > self.host_time:
            self._record(
                TimelineOp(name, "wait", -1, self.host_time, t, fault=fault)
            )
            self.host_time = t

    # ------------------------------------------------------------------ #
    # Synchronization
    # ------------------------------------------------------------------ #

    def record_event(self, stream: int = DEFAULT_STREAM) -> Event:
        """cudaEventRecord: capture the stream's current completion time."""
        return Event(self._stream(stream), stream)

    def stream_wait_event(self, stream: int, event: Event) -> None:
        """cudaStreamWaitEvent: future work on ``stream`` waits for event."""
        self._stream_ready[stream] = max(self._stream(stream), event.time)

    def stream_synchronize(self, stream: int = DEFAULT_STREAM) -> None:
        """cudaStreamSynchronize: block the host until the stream drains."""
        self.host_wait_until(self._stream(stream), f"sync(stream {stream})")

    def device_synchronize(self) -> None:
        """cudaThreadSynchronize: block the host until everything drains."""
        latest = max(
            [
                self._compute_free,
                *self._copy_free.values(),
                *self._stream_ready.values(),
            ],
            default=0.0,
        )
        self.host_wait_until(latest, "sync(device)")

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    @property
    def elapsed(self) -> float:
        """Host wall-clock so far (model seconds)."""
        return self.host_time

    def busy_time(self, kind: str) -> float:
        """Total time attributed to one op kind ('kernel', 'h2d', ...)."""
        return sum(op.duration for op in self.ops if op.kind == kind)

    @property
    def op_count(self) -> int:
        """Number of ops recorded so far (a snapshot for flop windows)."""
        return len(self.ops)

    def flops_since(self, index: int) -> int:
        """Total flops of ops recorded at or after ``index``.

        The solvers use (op_count, flops_since) pairs to attribute flops
        to one solve, excluding setup (gauge upload, ghost exchange).
        """
        return sum(op.flops for op in self.ops[index:])

    def reset_clock(self) -> None:
        """Zero all clocks but keep parameters (between bench repetitions)."""
        self.host_time = 0.0
        self._stream_ready.clear()
        self._compute_free = 0.0
        self._copy_free.clear()
        self.ops.clear()
