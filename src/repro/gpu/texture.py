"""Texture-unit read emulation (Section V-C3).

QUDA reads gauge and spinor fields through the read-only texture cache,
using ``cudaReadModeNormalizedFloat``: "a signed 16-bit (or even 8-bit)
integer read in from device memory will be automatically converted to a
32-bit floating point number in the range [-1, 1]".  This module provides
that decode path — the one functional behaviour of the texture unit the
half-precision implementation relies on — plus the element-type read mode
for float fields.

The *performance* effects of the texture cache are folded into the
per-precision bandwidth-efficiency factors of
:mod:`repro.gpu.perfmodel`; here we care about numerics only.
"""

from __future__ import annotations

import enum

import numpy as np

from .precision import dequantize_normalized

__all__ = ["ReadMode", "texture_read"]


class ReadMode(enum.Enum):
    """CUDA texture read modes (the two the paper's kernels use)."""

    ELEMENT_TYPE = "cudaReadModeElementType"
    NORMALIZED_FLOAT = "cudaReadModeNormalizedFloat"


def texture_read(
    stored: np.ndarray,
    mode: ReadMode,
    *,
    norms: np.ndarray | None = None,
) -> np.ndarray:
    """Fetch field data "through the texture unit".

    ``ELEMENT_TYPE`` returns float data unchanged (float32/float64
    textures); ``NORMALIZED_FLOAT`` decodes int16 to float32 in [-1, 1]
    and, when a per-site ``norms`` array is supplied (the spinor case),
    applies the shared rescaling — the texture unit's "rescaling
    capability" of Section III.
    """
    if mode is ReadMode.ELEMENT_TYPE:
        if stored.dtype == np.int16:
            raise TypeError("int16 storage requires NORMALIZED_FLOAT read mode")
        return stored
    if stored.dtype != np.int16:
        raise TypeError(
            f"NORMALIZED_FLOAT decodes int16 storage, got {stored.dtype}"
        )
    decoded = dequantize_normalized(stored)
    if norms is not None:
        decoded = decoded * norms.astype(np.float32).reshape(
            norms.shape + (1,) * (decoded.ndim - norms.ndim)
        )
    return decoded
