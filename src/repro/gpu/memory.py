"""Device memory accounting: allocation, capacity, and OOM behaviour.

"Memory constraints on current GPU devices limit the problem sizes that can
be tackled" — the entire motivation of the paper.  Two results depend on
faithful memory accounting:

* the 32^3 x 256 lattice does not fit on a single 2 GiB GTX 285 at all
  (hence multi-GPU), and
* "the mixed precision solver must store data for both the single and half
  precision solves, and this increase in memory footprint means that at
  least 8 GPUs are needed to solve this system", while "the uniform single
  precision solver ... can be solved (at a performance cost) already on 4
  GPUs" (Section VII-C).

:class:`DeviceAllocator` therefore tracks every allocation with a label
and raises :class:`DeviceOutOfMemoryError` with a breakdown when the
capacity of the card is exceeded; the memory-footprint bench
(`benchmarks/bench_memory_footprint.py`) reproduces the 4-vs-8 GPU result
from exactly this accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["DeviceOutOfMemoryError", "DeviceBuffer", "DeviceAllocator"]

#: CUDA allocations are aligned generously; 256 B matches the GT200
#: partition width and texture alignment requirements.
ALIGNMENT = 256


class DeviceOutOfMemoryError(MemoryError):
    """Raised when an allocation exceeds the device's remaining memory."""


def _align(nbytes: int) -> int:
    return (nbytes + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


@dataclass
class DeviceBuffer:
    """One device allocation.

    ``array`` is the backing store for functional simulation; timing-only
    runs allocate a zero-length array but still account ``nbytes``.
    """

    label: str
    nbytes: int
    array: np.ndarray
    freed: bool = False

    def require_live(self) -> None:
        if self.freed:
            raise RuntimeError(f"use-after-free of device buffer {self.label!r}")


@dataclass
class DeviceAllocator:
    """Tracks device-memory usage against a card's capacity.

    Parameters
    ----------
    capacity_bytes:
        Device memory size.  ``None`` disables capacity enforcement
        (useful in unit tests that are not about memory).
    reserved_bytes:
        Memory unavailable to the application: CUDA context, display,
        driver scratch.  ~128 MiB is representative for the 9g nodes.
    execute:
        When ``False`` (timing-only mode), allocations are *accounted* but
        not *backed* — paper-scale lattices then cost no host RAM.
    """

    capacity_bytes: int | None = None
    reserved_bytes: int = 128 * 2**20
    execute: bool = True
    _live: dict[int, DeviceBuffer] = field(default_factory=dict, repr=False)
    _used: int = 0
    _peak: int = 0

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def peak_bytes(self) -> int:
        return self._peak

    @property
    def available_bytes(self) -> int | None:
        if self.capacity_bytes is None:
            return None
        return self.capacity_bytes - self.reserved_bytes - self._used

    def alloc(self, shape: tuple[int, ...] | int, dtype, label: str) -> DeviceBuffer:
        """Allocate a device array; raises :class:`DeviceOutOfMemoryError`.

        The error message includes the current allocation table so the
        memory-footprint experiments can report *why* a configuration does
        not fit.
        """
        if isinstance(shape, int):
            shape = (shape,)
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        return self.alloc_bytes(nbytes, shape, dtype, label)

    def alloc_bytes(
        self, nbytes: int, shape: tuple[int, ...] | int, dtype, label: str
    ) -> DeviceBuffer:
        """Allocate with explicit byte accounting.

        Device fields are stored *logically* as convenient NumPy arrays but
        accounted at their true GPU-layout size (blocked, padded, plus end
        zone) so that memory-footprint experiments are faithful even though
        the backing store differs.
        """
        if isinstance(shape, int):
            shape = (shape,)
        dtype = np.dtype(dtype)
        nbytes = _align(int(nbytes))
        avail = self.available_bytes
        if avail is not None and nbytes > avail:
            raise DeviceOutOfMemoryError(
                f"cannot allocate {nbytes / 2**20:.1f} MiB for {label!r}: "
                f"{self._used / 2**20:.1f} MiB in use of "
                f"{(self.capacity_bytes - self.reserved_bytes) / 2**20:.1f} MiB "
                f"usable.\n{self.report()}"
            )
        array = (
            np.zeros(shape, dtype=dtype) if self.execute else np.zeros(0, dtype=dtype)
        )
        buf = DeviceBuffer(label=label, nbytes=nbytes, array=array)
        self._live[id(buf)] = buf
        self._used += nbytes
        self._peak = max(self._peak, self._used)
        return buf

    def free(self, buf: DeviceBuffer) -> None:
        """Release an allocation (double-free raises)."""
        buf.require_live()
        if id(buf) not in self._live:
            raise RuntimeError(f"buffer {buf.label!r} not owned by this allocator")
        del self._live[id(buf)]
        self._used -= buf.nbytes
        buf.freed = True
        buf.array = np.zeros(0, dtype=buf.array.dtype)

    def free_all(self) -> None:
        for buf in list(self._live.values()):
            self.free(buf)

    def report(self) -> str:
        """Human-readable allocation table (largest first)."""
        rows = sorted(self._live.values(), key=lambda b: -b.nbytes)
        lines = [f"  {b.nbytes / 2**20:10.2f} MiB  {b.label}" for b in rows]
        header = f"device allocations ({self._used / 2**20:.1f} MiB total):"
        return "\n".join([header] + lines) if lines else header + " (none)"
