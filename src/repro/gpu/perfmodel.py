"""Calibrated timing model for kernels and transfers.

The paper's performance results are governed by a handful of measured
hardware characteristics; this module is the single home for all of them,
each with its provenance:

* **Kernel time** — QUDA's kernels are "strongly bandwidth bound"
  (Section V-C); kernel duration is ``bytes / effective_bandwidth`` with a
  per-precision efficiency factor folding in achievable-vs-peak DRAM
  efficiency, texture-cache behaviour, and the register-pressure/occupancy
  differences between precisions.  The factors are calibrated so that a
  single simulated GTX 285 sustains roughly the Wilson-clover solver rates
  reported for that card (~100 Gflops single, ~40 double, ~180 half for
  the matrix-vector product; the full solver lands 10-20% lower per
  Section V-E).

* **PCI-Express** — Fig. 7's microbenchmark: a synchronous ``cudaMemcpy``
  has ~11 us latency while ``cudaMemcpyAsync`` (+ synchronize) costs just
  under 50 us; host-to-device and device-to-host have *different*
  bandwidths (different slopes in Fig. 7), a quirk of the early-revision
  Intel 5520 (Tylersburg) chipset.  These four numbers are the cause of
  the Fig. 5(b) result that overlapping *hurts* at small local volumes.

* **InfiniBand** — QDR IB, whose bandwidth "is half again" less than x16
  PCI-E (Section III): ~3 GB/s effective per direction with rendezvous
  latency of a few microseconds.

* **NUMA** — binding an MPI process to the socket *opposite* its GPU's
  PCIe bus costs PCIe bandwidth and latency (the maroon curve of
  Fig. 5(a)); the penalty factors below reproduce the observed gap.

All times are in **seconds**; bandwidths in **bytes/second** internally.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import fastpath
from .precision import Precision
from .specs import GPUSpec

__all__ = ["PerfModelParams", "DEFAULT_PARAMS", "kernel_time", "pcie_time", "occupancy_factor"]

US = 1e-6
GB = 1e9


@dataclass(frozen=True)
class PerfModelParams:
    """Every calibrated constant of the timing model, in one place."""

    # ---- kernel model ------------------------------------------------- #
    #: Achievable fraction of peak DRAM bandwidth for the fused LQCD
    #: kernels, per storage precision.  Single benefits from float4
    #: coalescing; half pays texture-decode and norm-lookup overheads;
    #: double suffers register pressure (8192 regs/MP, Section III) and
    #: the GT200's low DP issue rate.
    #: Calibration: with the tuned occupancies of the GT200 dslash
    #: (0.25 single/half, 0.0625 double — the 8,192-register DP file) the
    #: products land the known QUDA GTX 285 Wilson-clover rates:
    #: ~122 Gflops single, ~195 half, ~45 double for the bare matvec.
    bw_efficiency: dict[Precision, float] = field(
        default_factory=lambda: {
            Precision.DOUBLE: 0.80,
            Precision.SINGLE: 0.62,
            Precision.HALF: 0.51,
        }
    )
    #: Bandwidth multiplier when a layout partition-camps (Section III):
    #: traffic concentrates on a subset of the 8 partitions.
    camping_penalty: float = 0.55
    #: Fixed device-side cost of one kernel launch (scheduling, constant
    #: cache warmup); GT200-era figure.
    kernel_overhead_s: float = 3.0 * US
    #: Host-side cost of submitting any asynchronous operation.
    submit_overhead_s: float = 4.0 * US

    # ---- PCI-Express (Fig. 7 calibration) ------------------------------ #
    pcie_latency_sync_s: float = 11.0 * US
    pcie_latency_async_s: float = 48.0 * US
    pcie_bw_h2d: float = 5.5 * GB
    pcie_bw_d2h: float = 4.0 * GB
    #: Deliberately-bad NUMA binding (Fig. 5(a) maroon curve): the
    #: transfer crosses the QPI link between sockets.
    numa_bw_penalty: float = 0.55
    numa_latency_extra_s: float = 4.0 * US

    # ---- Network ------------------------------------------------------- #
    #: QDR InfiniBand, host-staged (no GPUDirect in 2010).
    ib_latency_s: float = 6.0 * US
    ib_bw: float = 3.0 * GB
    #: Intra-node MPI (shared-memory copy on a Nehalem node).
    shm_latency_s: float = 1.5 * US
    shm_bw: float = 6.0 * GB
    #: Per-message MPI software overhead (matching, progress, host
    #: staging of the pinned buffers — no GPUDirect in 2010).
    mpi_overhead_s: float = 15.0 * US
    #: Allreduce cost model: latency per tree stage (2010-era OpenMPI
    #: over QDR IB; a 32-rank double sum lands near 100 us round trip).
    allreduce_stage_s: float = 20.0 * US

    def __post_init__(self) -> None:
        # Per-instance memo for effective_bandwidth (the dataclass is
        # frozen, hence the object.__setattr__).  The bandwidth is a
        # pure function of (spec, precision, occupancy, camping) for a
        # given params instance, and the kernel-time roofline evaluates
        # it on every single launch the timeline charges.
        object.__setattr__(self, "_bw_memo", {})
        fastpath.register_cache(self._bw_memo)

    def effective_bandwidth(
        self,
        spec: GPUSpec,
        precision: Precision,
        *,
        occupancy: float = 1.0,
        camping: bool = False,
    ) -> float:
        """Achievable device-memory bandwidth in bytes/second."""
        if fastpath.enabled():
            key = (spec, precision, occupancy, camping)
            hit = self._bw_memo.get(key)
            if hit is not None:
                return hit
            eff = self._bandwidth_uncached(spec, precision, occupancy, camping)
            self._bw_memo[key] = eff
            return eff
        return self._bandwidth_uncached(spec, precision, occupancy, camping)

    def _bandwidth_uncached(
        self,
        spec: GPUSpec,
        precision: Precision,
        occupancy: float,
        camping: bool,
    ) -> float:
        eff = spec.bandwidth_gbs * GB * self.bw_efficiency[precision]
        eff *= occupancy_factor(occupancy)
        if camping:
            eff *= self.camping_penalty
        return eff


#: The default, GTX 285 / 9g-cluster calibration.
DEFAULT_PARAMS = PerfModelParams()


def occupancy_factor(occupancy: float) -> float:
    """Bandwidth fraction achieved at a given multiprocessor occupancy.

    Latency hiding needs "many threads resident at once" (Section III),
    but GT200 saturates its DRAM bandwidth already around a quarter of the
    warp slots (256 resident threads per multiprocessor) — which is why
    the register-fat dslash, capped at 25% occupancy, still streams at
    full efficiency while the double-precision variant (one 64-thread
    block per MP) loses roughly half the bandwidth.  Piecewise-linear
    saturating model calibrated to that behaviour.
    """
    if not 0.0 < occupancy <= 1.0:
        raise ValueError(f"occupancy must be in (0, 1], got {occupancy}")
    return min(1.0, 0.42 + 2.4 * occupancy)


def kernel_time(
    spec: GPUSpec,
    params: PerfModelParams,
    precision: Precision,
    bytes_moved: int,
    flops: int,
    *,
    occupancy: float = 1.0,
    camping: bool = False,
) -> float:
    """Duration of one kernel: roofline of bandwidth and compute.

    ``bytes_moved`` is total device-memory traffic (reads + writes);
    ``flops`` the arithmetic count.  LQCD kernels sit on the bandwidth
    side of the roofline at every precision on GT200, but the compute
    bound matters for double precision (88 Gflops peak on the GTX 285,
    Table I) — it is why "uniform double precision exhibits the best
    strong scaling of all, because this kernel is less bandwidth bound"
    (Section VII-C).
    """
    bw = params.effective_bandwidth(
        spec, precision, occupancy=occupancy, camping=camping
    )
    t_mem = bytes_moved / bw
    peak = spec.peak_flops(precision.real_bytes if precision.real_bytes == 8 else 4)
    t_compute = flops / (peak * GB)
    return max(t_mem, t_compute) + params.kernel_overhead_s


def pcie_time(
    params: PerfModelParams,
    nbytes: int,
    direction: str,
    *,
    asynchronous: bool,
    numa_ok: bool = True,
) -> float:
    """Duration of one PCIe transfer (the Fig. 7 microbenchmark model).

    ``direction`` is ``"h2d"`` or ``"d2h"``.  The asynchronous path has
    ~4x the latency of the synchronous one — the measured driver/chipset
    behaviour that makes overlapping a *loss* for small local volumes
    (Section VII-C / VII-D).
    """
    if direction == "h2d":
        bw = params.pcie_bw_h2d
    elif direction == "d2h":
        bw = params.pcie_bw_d2h
    else:
        raise ValueError(f"direction must be 'h2d' or 'd2h', got {direction!r}")
    latency = params.pcie_latency_async_s if asynchronous else params.pcie_latency_sync_s
    if not numa_ok:
        bw *= params.numa_bw_penalty
        latency += params.numa_latency_extra_s
    return latency + nbytes / bw
