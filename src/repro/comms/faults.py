"""Deterministic fault injection for the SimMPI comms runtime.

The paper's communication runtime assumes a healthy fabric; follow-on
work ("Scaling Lattice QCD beyond 100 GPUs", arXiv:1109.2935) shows that
at scale the comms layer is exactly where latency spikes, stragglers and
stalled ranks bite.  This module makes those conditions *injectable and
reproducible*: a :class:`FaultPlan` bound to a SimMPI world perturbs
traffic at the envelope level —

* **latency jitter** — per-link extra model time on individual messages,
  drawn from an exponential distribution (plus rare large *spikes* that
  reorder arrivals across links; per-link delivery stays FIFO, exactly
  MPI's non-overtaking guarantee);
* **transient send failures** — a send "fails" and is retried with
  exponential model-time backoff, like a rendezvous timeout + resend;
* **rank stalls and crashes** — a rank stops responding mid-exchange
  (stall: silently parks; crash: fails loudly and is registered on the
  world's failure board).

Every decision is a pure function of ``(seed, link, message sequence
number)`` via :class:`numpy.random.SeedSequence`, so the fault schedule
is byte-identical run to run regardless of OS thread scheduling — the
same determinism argument the model-time protocol itself relies on.
Faults perturb *time*, never payload bits: a solver under a jitter-only
plan produces bit-identical results, just later.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

import numpy as np

__all__ = [
    "LinkFaults",
    "StallSpec",
    "FaultPlan",
    "FaultEvent",
    "RankFailedError",
    "format_schedule",
]

# Salts separating the independent random streams of one plan.
_SALT_JITTER = 1
_SALT_SPIKE = 2
_SALT_SEND_FAIL = 3

_LINK_IDS = {"shm": 0, "ib": 1}


class RankFailedError(RuntimeError):
    """A rank died (crash) or stopped responding (stall) mid-operation.

    Structured replacement for the wall-clock deadlock timeout: carries
    *which* rank failed, *what* operation surfaced it, and the model time
    of the observation, so chaos runs can be diagnosed from the error
    alone.  ``rank`` is the failed rank, which is not necessarily the
    rank that raised (peers observing a dead partner raise too).
    """

    def __init__(
        self,
        rank: int,
        op: str,
        model_time: float,
        *,
        mode: str = "failed",
        detail: str = "",
    ) -> None:
        self.rank = rank
        self.op = op
        self.model_time = model_time
        self.mode = mode
        self.detail = detail
        super().__init__(self._message())

    def _message(self) -> str:
        msg = (
            f"rank {self.rank} {self.mode} during {self.op} "
            f"at t={self.model_time * 1e6:.3f}us"
        )
        if self.detail:
            msg += f" ({self.detail})"
        return msg

    def add_context(self, context: str) -> "RankFailedError":
        """Append caller context (e.g. which face exchange) in place."""
        self.detail = f"{self.detail}; {context}" if self.detail else context
        self.args = (self._message(),)
        return self


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, recorded at the injection point."""

    time: float  # model time at injection (the injecting rank's clock)
    rank: int  # the rank whose traffic was perturbed
    kind: str  # 'jitter' | 'spike' | 'send_retry' | 'stall' | 'crash'
    op: str
    peer: int = -1  # destination rank for message faults
    delay_s: float = 0.0  # extra model time injected
    detail: str = ""

    def render(self) -> str:
        peer = f"->{self.peer}" if self.peer >= 0 else "     "
        return (
            f"{self.time * 1e6:12.3f}  r{self.rank}{peer:<5} "
            f"{self.kind:<10} {self.op:<18} +{self.delay_s * 1e6:.3f}us"
            + (f"  {self.detail}" if self.detail else "")
        )


def format_schedule(events: list[FaultEvent]) -> str:
    """Render a fault schedule as a stable, byte-reproducible table."""
    if not events:
        return "(no faults injected)"
    header = f"{'t(us)':>12}  {'rank':<7} {'kind':<10} {'op':<18} delay"
    lines = [header] + [ev.render() for ev in sorted(
        events, key=lambda e: (e.time, e.rank, e.kind, e.op, e.peer)
    )]
    return "\n".join(lines)


@dataclass(frozen=True)
class LinkFaults:
    """Per-link-kind message perturbations (one instance per shm/ib)."""

    jitter_prob: float = 0.0  # fraction of messages receiving jitter
    jitter_s: float = 0.0  # mean of the exponential extra latency
    spike_prob: float = 0.0  # rare large delays (cross-link reordering)
    spike_s: float = 0.0

    def __post_init__(self) -> None:
        for name in ("jitter_prob", "spike_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        for name in ("jitter_s", "spike_s"):
            if getattr(self, name) < 0.0:
                raise ValueError(f"{name} must be >= 0")

    @property
    def active(self) -> bool:
        return (self.jitter_prob > 0 and self.jitter_s > 0) or (
            self.spike_prob > 0 and self.spike_s > 0
        )


@dataclass(frozen=True)
class StallSpec:
    """One planned rank failure: the rank stops at a model time.

    ``mode='stall'`` models a hung process: the rank silently stops
    participating (peers detect it via the op timeout, not a message).
    ``mode='crash'`` models a loud death: the rank raises and registers
    on the failure board immediately.
    """

    rank: int
    after_s: float = 0.0  # model time at which the rank stops
    mode: str = "stall"

    def __post_init__(self) -> None:
        if self.mode not in ("stall", "crash"):
            raise ValueError(f"mode must be 'stall' or 'crash', got {self.mode!r}")
        if self.after_s < 0.0:
            raise ValueError("after_s must be >= 0")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic schedule of comms faults.

    Bind one to a world via ``SimMPI(size, cluster, fault_plan=plan)`` or
    pass ``fault_plan=`` to :func:`repro.core.invert`.  All sampling is
    keyed on ``(seed, link, per-link message sequence number)``, so the
    schedule depends only on the program's communication pattern — never
    on thread timing.
    """

    seed: int = 0
    shm: LinkFaults = field(default_factory=LinkFaults)
    ib: LinkFaults = field(default_factory=LinkFaults)
    send_fail_prob: float = 0.0  # transient failure chance per attempt
    max_send_attempts: int = 5  # attempts before the send goes through
    retry_backoff_s: float = 5e-6  # first backoff; doubles per retry
    stalls: tuple[StallSpec, ...] = ()
    #: Wall-clock budget (seconds) within which an operation waiting on a
    #: stalled peer must surface a RankFailedError.  Much smaller than
    #: the deadlock timeout: a bound fault plan *expects* trouble.
    op_timeout_s: float = 5.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.send_fail_prob < 1.0:
            raise ValueError("send_fail_prob must be in [0, 1)")
        if self.max_send_attempts < 1:
            raise ValueError("max_send_attempts must be >= 1")
        if self.retry_backoff_s < 0 or self.op_timeout_s <= 0:
            raise ValueError("retry_backoff_s >= 0 and op_timeout_s > 0 required")
        seen = set()
        for s in self.stalls:
            if s.rank in seen:
                raise ValueError(f"duplicate stall spec for rank {s.rank}")
            seen.add(s.rank)

    # ------------------------------------------------------------------ #
    # Convenience constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def jittery(
        cls,
        seed: int,
        *,
        prob: float = 0.3,
        jitter_s: float = 20e-6,
        spike_prob: float = 0.0,
        spike_s: float = 200e-6,
        **kwargs,
    ) -> "FaultPlan":
        """Latency jitter on every link (IB gets the full dose, shared
        memory a tenth — intra-node copies do not cross the fabric)."""
        return cls(
            seed=seed,
            ib=LinkFaults(prob, jitter_s, spike_prob, spike_s),
            shm=LinkFaults(prob, jitter_s / 10, spike_prob, spike_s / 10),
            **kwargs,
        )

    @classmethod
    def flaky(cls, seed: int, *, fail_prob: float = 0.05, **kwargs) -> "FaultPlan":
        """Transient send failures with retry/backoff."""
        return cls(seed=seed, send_fail_prob=fail_prob, **kwargs)

    def with_stall(
        self, rank: int, *, after_s: float = 0.0, mode: str = "stall"
    ) -> "FaultPlan":
        """A copy of this plan with one more rank failure scheduled."""
        return replace(
            self, stalls=self.stalls + (StallSpec(rank, after_s, mode),)
        )

    def without_ranks(self, ranks) -> "FaultPlan":
        """A copy with the given ranks' stalls/crashes retired.

        The recovery supervisor uses this between attempts: a fault that
        already fired must not replay in the relaunched world (whose
        model clocks restart at zero), and stalls addressed beyond a
        shrunken world size could not be hosted at all.
        """
        drop = set(ranks)
        return replace(
            self, stalls=tuple(s for s in self.stalls if s.rank not in drop)
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def lethal(self) -> bool:
        """Whether any rank is scheduled to die (tightens op timeouts)."""
        return bool(self.stalls)

    def stall_for(self, rank: int) -> StallSpec | None:
        for s in self.stalls:
            if s.rank == rank:
                return s
        return None

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        for kind in ("ib", "shm"):
            lf: LinkFaults = getattr(self, kind)
            if lf.active:
                parts.append(
                    f"{kind}: jitter p={lf.jitter_prob} mean={lf.jitter_s * 1e6:.1f}us"
                    + (
                        f" spike p={lf.spike_prob} +{lf.spike_s * 1e6:.1f}us"
                        if lf.spike_prob > 0
                        else ""
                    )
                )
        if self.send_fail_prob > 0:
            parts.append(
                f"send-fail p={self.send_fail_prob} "
                f"(<= {self.max_send_attempts} attempts, "
                f"backoff {self.retry_backoff_s * 1e6:.1f}us)"
            )
        for s in self.stalls:
            parts.append(f"{s.mode} rank {s.rank} at t={s.after_s * 1e6:.1f}us")
        return "; ".join(parts)

    # ------------------------------------------------------------------ #
    # Deterministic sampling
    # ------------------------------------------------------------------ #

    def _u(self, salt: int, *key: int) -> float:
        """Uniform in [0, 1) keyed on (seed, salt, key) — thread-safe and
        platform-stable (SeedSequence hashing, no shared RNG state)."""
        state = np.random.SeedSequence([self.seed, salt, *key]).generate_state(1)
        return float(state[0]) / float(2**32)

    def link(self, kind: str) -> LinkFaults:
        return self.shm if kind == "shm" else self.ib

    def extra_latency(
        self, kind: str, src: int, dst: int, tag: int, seq: int
    ) -> tuple[float, str]:
        """Extra model time for message ``seq`` on link ``(src,dst,tag)``.

        Returns ``(delay_s, kind)`` where kind is '' (clean), 'jitter' or
        'spike' (spikes dominate when both fire).
        """
        lf = self.link(kind)
        if not lf.active:
            return 0.0, ""
        lid = _LINK_IDS[kind]
        if lf.spike_prob > 0 and (
            self._u(_SALT_SPIKE, lid, src, dst, tag, seq) < lf.spike_prob
        ):
            return lf.spike_s, "spike"
        if lf.jitter_prob > 0 and (
            self._u(_SALT_JITTER, lid, src, dst, tag, seq) < lf.jitter_prob
        ):
            u = self._u(_SALT_JITTER + 100, lid, src, dst, tag, seq)
            return -math.log(1.0 - u) * lf.jitter_s, "jitter"
        return 0.0, ""

    def send_failures(self, src: int, dst: int, tag: int, seq: int) -> int:
        """Number of transient failures before send ``seq`` goes through
        (0 = clean first attempt; always < max_send_attempts)."""
        if self.send_fail_prob <= 0:
            return 0
        k = 0
        while (
            k < self.max_send_attempts - 1
            and self._u(_SALT_SEND_FAIL, src, dst, tag, seq, k) < self.send_fail_prob
        ):
            k += 1
        return k

    def backoff_s(self, attempt: int) -> float:
        """Model-time backoff before retry ``attempt`` (0-based)."""
        return self.retry_backoff_s * (2.0**attempt)
