"""Deterministic fault injection for the SimMPI comms runtime.

The paper's communication runtime assumes a healthy fabric; follow-on
work ("Scaling Lattice QCD beyond 100 GPUs", arXiv:1109.2935) shows that
at scale the comms layer is exactly where latency spikes, stragglers and
stalled ranks bite.  This module makes those conditions *injectable and
reproducible*: a :class:`FaultPlan` bound to a SimMPI world perturbs
traffic at the envelope level —

* **latency jitter** — per-link extra model time on individual messages,
  drawn from an exponential distribution (plus rare large *spikes* that
  reorder arrivals across links; per-link delivery stays FIFO, exactly
  MPI's non-overtaking guarantee);
* **transient send failures** — a send "fails" and is retried with
  exponential model-time backoff, like a rendezvous timeout + resend;
* **rank stalls and crashes** — a rank stops responding mid-exchange
  (stall: silently parks; crash: fails loudly and is registered on the
  world's failure board);
* **silent data corruption** — single/multi bit flips and value
  scribbles on in-flight message payloads, poisoned collective
  contributions, and resident-field corruption on a rank at a model
  time (the soft-error regime of hundred-GPU runs, arXiv:1109.2935).

Every decision is a pure function of ``(seed, link, message sequence
number)`` via :class:`numpy.random.SeedSequence`, so the fault schedule
is byte-identical run to run regardless of OS thread scheduling — the
same determinism argument the model-time protocol itself relies on.
Latency faults perturb *time*, never payload bits; corruption faults
perturb payload bits, and the matching detection layer
(:class:`IntegrityPolicy` checksummed envelopes in
:mod:`repro.comms.mpi_sim`, invariant monitors in the solvers) turns
them back into structured, recoverable events.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from .. import codec

__all__ = [
    "LinkFaults",
    "StallSpec",
    "ResidentCorruption",
    "WorkerKill",
    "StragglerSpec",
    "WorkerFaultPlan",
    "NodeKill",
    "HcaDegrade",
    "SwitchPartition",
    "DomainFaultPlan",
    "FaultPlan",
    "FaultEvent",
    "IntegrityPolicy",
    "RankFailedError",
    "CorruptionDetected",
    "checksum_bytes",
    "checksum_payload",
    "corrupt_payload",
    "resident_scribble",
    "format_schedule",
]

# Salts separating the independent random streams of one plan.
_SALT_JITTER = 1
_SALT_SPIKE = 2
_SALT_SEND_FAIL = 3
_SALT_CORRUPT = 4  # which sends are corrupted, and for how many resends
_SALT_CORRUPT_MODE = 5  # bitflip vs scribble + the damage pattern itself
_SALT_COLL_CORRUPT = 6  # poisoned collective contributions
_SALT_RESIDENT = 7  # resident-field scribble pattern
_SALT_HEAL = 8  # seeded switch-partition heal intervals
_SALT_ELASTIC = 9  # (domain, seed) straggler pinning for scale-up workers

_LINK_IDS = {"shm": 0, "ib": 1}


# ------------------------------------------------------------------------ #
# Checksums (the detection primitive)
# ------------------------------------------------------------------------ #


def checksum_bytes(data: bytes, running: int = 0) -> int:
    """xxhash-style 32-bit payload digest.

    ``zlib.crc32`` under the hood: C-speed on large buffers, no new
    dependencies, and — like xxhash — *not* cryptographic: the threat
    model is soft errors, not adversaries.  ``running`` chains digests
    across the parts of a multi-array payload.
    """
    return zlib.crc32(data, running) & 0xFFFFFFFF


def checksum_payload(data: Any) -> int:
    """Digest of a message payload (ndarray, tuple of ndarrays, scalar).

    ``None`` parts (timing-only mode carries no field data) hash as
    empty, so the digest is well-defined for every envelope the runtime
    moves.
    """
    c = 0
    parts = data if isinstance(data, tuple) else (data,)
    for part in parts:
        if part is None:
            continue
        if not isinstance(part, np.ndarray):
            part = np.asarray(part)
        if part.dtype == object:
            # Object arrays serialize as pointers — hash a packed binary
            # encoding of the value instead so the digest stays a pure
            # function of the value.  struct-packed bytes beat the old
            # repr() round trip (no giant intermediate string) and are
            # stable against float formatting; repr remains the fallback
            # for payload types the codec does not model.
            value = part.tolist()
            try:
                c = checksum_bytes(codec.pack_value(value), c)
            except TypeError:
                c = checksum_bytes(repr(value).encode(), c)
        else:
            c = checksum_bytes(np.ascontiguousarray(part).tobytes(), c)
    return c


def _corrupt_array(arr: np.ndarray, rng: np.random.Generator, mode: str, bits: int) -> str:
    """Damage ``arr`` in place; returns a human-readable description."""
    raw = arr.view(np.uint8).reshape(-1)
    if mode == "bitflip":
        n = min(max(1, bits), 8 * raw.size)
        positions = rng.choice(raw.size * 8, size=n, replace=False)
        for pos in positions:
            raw[pos // 8] ^= np.uint8(1 << (pos % 8))
        return f"{n} bit(s) flipped"
    # Scribble: overwrite a short burst of bytes with garbage.
    n = min(8, raw.size)
    start = int(rng.integers(0, raw.size - n + 1))
    raw[start:start + n] = rng.integers(0, 256, size=n, dtype=np.uint8)
    return f"{n} bytes scribbled at offset {start}"


def corrupt_payload(
    data: Any, *, seed_key: tuple[int, ...], mode: str, bits: int = 1
) -> tuple[Any, str]:
    """A corrupted deep copy of a message payload (pure function of key).

    The first ndarray found in the payload is damaged; payloads with no
    array data (timing-only mode) come back unchanged — the runtime then
    models detection from the envelope's corruption flag instead of real
    checksums.
    """
    rng = np.random.default_rng(np.random.SeedSequence(list(seed_key)))
    if isinstance(data, np.ndarray):
        bad = data.copy()
        detail = _corrupt_array(bad, rng, mode, bits)
        return bad, detail
    if isinstance(data, tuple):
        parts = list(data)
        for i, part in enumerate(parts):
            if isinstance(part, np.ndarray):
                bad = part.copy()
                detail = _corrupt_array(bad, rng, mode, bits)
                parts[i] = bad
                return tuple(parts), detail
    return data, "no payload data (timing-only)"


def resident_scribble(
    arr: np.ndarray, *, seed: int, rank: int, scale: float
) -> str:
    """Deterministically scribble a resident field in place.

    Models an uncorrected memory error in device RAM: a burst of sites
    is overwritten with values ``scale`` times the field's own magnitude
    — large enough that the solver's refresh-point invariant monitor
    trips, small enough not to masquerade as ordinary divergence.
    """
    rng = np.random.default_rng(
        np.random.SeedSequence([seed, _SALT_RESIDENT, rank])
    )
    flat = arr.reshape(-1)
    n = max(1, flat.size // 64)
    idx = rng.choice(flat.size, size=n, replace=False)
    ref = float(np.max(np.abs(flat))) or 1.0
    flat[idx] = scale * ref
    return f"{n} value(s) scribbled (scale {scale:g})"


class RankFailedError(RuntimeError):
    """A rank died (crash) or stopped responding (stall) mid-operation.

    Structured replacement for the wall-clock deadlock timeout: carries
    *which* rank failed, *what* operation surfaced it, and the model time
    of the observation, so chaos runs can be diagnosed from the error
    alone.  ``rank`` is the failed rank, which is not necessarily the
    rank that raised (peers observing a dead partner raise too).
    """

    def __init__(
        self,
        rank: int,
        op: str,
        model_time: float,
        *,
        mode: str = "failed",
        detail: str = "",
    ) -> None:
        self.rank = rank
        self.op = op
        self.model_time = model_time
        self.mode = mode
        self.detail = detail
        super().__init__(self._message())

    def _message(self) -> str:
        msg = (
            f"rank {self.rank} {self.mode} during {self.op} "
            f"at t={self.model_time * 1e6:.3f}us"
        )
        if self.detail:
            msg += f" ({self.detail})"
        return msg

    def add_context(self, context: str) -> "RankFailedError":
        """Append caller context (e.g. which face exchange) in place."""
        self.detail = f"{self.detail}; {context}" if self.detail else context
        self.args = (self._message(),)
        return self


class CorruptionDetected(RankFailedError):
    """A checksum mismatch that survived every bounded resend.

    Structured corruption report: which link carried the message, which
    operation observed it, the model time, and the (expected, actual)
    checksum pair.  Subclasses :class:`RankFailedError` so the existing
    failure machinery — context annotation, graceful SPMD unwinding,
    chaos reports — handles it; ``mode`` is ``'corrupted'``.  Raised by
    the *detecting* rank (the receiver), never silently swallowed: with
    verification on, a corrupted payload is either corrected by resend
    or surfaces as this error.
    """

    def __init__(
        self,
        rank: int,
        op: str,
        model_time: float,
        *,
        link: str = "",
        expected: int = 0,
        actual: int = 0,
        detail: str = "",
    ) -> None:
        self.link = link
        self.expected = expected
        self.actual = actual
        base = (
            f"checksum {actual:#010x} != expected {expected:#010x}"
            + (f" on {link} link" if link else "")
        )
        super().__init__(
            rank, op, model_time, mode="corrupted",
            detail=f"{base}; {detail}" if detail else base,
        )


@dataclass(frozen=True)
class IntegrityPolicy:
    """End-to-end data-integrity policy for one SimMPI world.

    With ``verify`` on, every envelope carries an xxhash-style checksum
    of its pristine payload, receivers verify it (NACK + bounded resend
    on mismatch), collectives verify per-contribution digests, and the
    ghost-zone scatter re-verifies after storing.  The model-time cost
    of hashing is charged per message: ``checksum_overhead_s`` fixed
    plus ``nbytes`` at ``checksum_gbps`` — the overhead ``bench_chaos``
    measures.

    ``IntegrityPolicy.off()`` disables both the checks and their cost:
    the baseline for overhead measurement, and the regression switch
    proving the layer earns its keep (corruption then flows through
    silently).
    """

    verify: bool = True
    #: Bounded NACK/resend budget before a mismatch escalates to
    #: :class:`CorruptionDetected`.
    max_resend: int = 3
    #: Modelled hashing throughput (xxhash-class, memory-bound).
    checksum_gbps: float = 25.0
    #: Fixed per-message hashing/verification overhead.
    checksum_overhead_s: float = 2e-7

    def __post_init__(self) -> None:
        if self.max_resend < 0:
            raise ValueError("max_resend must be >= 0")
        if self.checksum_gbps <= 0 or self.checksum_overhead_s < 0:
            raise ValueError("checksum_gbps > 0 and checksum_overhead_s >= 0")

    def cost_s(self, nbytes: int) -> float:
        """Model time to checksum (or verify) one ``nbytes`` payload."""
        if not self.verify:
            return 0.0
        return self.checksum_overhead_s + nbytes / (self.checksum_gbps * 1e9)

    @classmethod
    def off(cls) -> "IntegrityPolicy":
        return cls(verify=False, checksum_overhead_s=0.0)


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, recorded at the injection point."""

    time: float  # model time at injection (the injecting rank's clock)
    rank: int  # the rank whose traffic was perturbed
    #: 'jitter' | 'spike' | 'send_retry' | 'stall' | 'crash' |
    #: 'bitflip' | 'scribble' | 'coll_corrupt' | 'resident_corrupt' |
    #: 'corruption_detected' | 'nack_resend'
    kind: str
    op: str
    peer: int = -1  # destination rank for message faults
    delay_s: float = 0.0  # extra model time injected
    detail: str = ""

    def render(self) -> str:
        peer = f"->{self.peer}" if self.peer >= 0 else "     "
        return (
            f"{self.time * 1e6:12.3f}  r{self.rank}{peer:<5} "
            f"{self.kind:<10} {self.op:<18} +{self.delay_s * 1e6:.3f}us"
            + (f"  {self.detail}" if self.detail else "")
        )


def schedule_sort_key(e: FaultEvent) -> tuple:
    """The stable ordering of a fault schedule: model time, then rank,
    then event kind — with every remaining field as a tiebreaker, so
    two events are ever reordered only if they are byte-identical.
    (Without the full key, same-time same-rank events of new kinds could
    land in thread-arrival order and flake schedule goldens.)"""
    return (e.time, e.rank, e.kind, e.op, e.peer, e.delay_s, e.detail)


def format_schedule(events: list[FaultEvent]) -> str:
    """Render a fault schedule as a stable, byte-reproducible table."""
    if not events:
        return "(no faults injected)"
    header = f"{'t(us)':>12}  {'rank':<7} {'kind':<10} {'op':<18} delay"
    lines = [header] + [
        ev.render() for ev in sorted(events, key=schedule_sort_key)
    ]
    return "\n".join(lines)


@dataclass(frozen=True)
class LinkFaults:
    """Per-link-kind message perturbations (one instance per shm/ib)."""

    jitter_prob: float = 0.0  # fraction of messages receiving jitter
    jitter_s: float = 0.0  # mean of the exponential extra latency
    spike_prob: float = 0.0  # rare large delays (cross-link reordering)
    spike_s: float = 0.0
    # --- silent data corruption (in-flight payload damage) -------------- #
    bitflip_prob: float = 0.0  # per-transmission chance of bit flips
    scribble_prob: float = 0.0  # per-transmission chance of a value scribble
    bitflip_bits: int = 1  # bits flipped per corrupted transmission

    def __post_init__(self) -> None:
        for name in ("jitter_prob", "spike_prob", "bitflip_prob", "scribble_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.bitflip_prob + self.scribble_prob > 1.0:
            raise ValueError("bitflip_prob + scribble_prob must be <= 1")
        for name in ("jitter_s", "spike_s"):
            if getattr(self, name) < 0.0:
                raise ValueError(f"{name} must be >= 0")
        if self.bitflip_bits < 1:
            raise ValueError("bitflip_bits must be >= 1")

    @property
    def active(self) -> bool:
        return (self.jitter_prob > 0 and self.jitter_s > 0) or (
            self.spike_prob > 0 and self.spike_s > 0
        )

    @property
    def corrupting(self) -> bool:
        return self.bitflip_prob > 0 or self.scribble_prob > 0


@dataclass(frozen=True)
class StallSpec:
    """One planned rank failure: the rank stops at a model time.

    ``mode='stall'`` models a hung process: the rank silently stops
    participating (peers detect it via the op timeout, not a message).
    ``mode='crash'`` models a loud death: the rank raises and registers
    on the failure board immediately.
    """

    rank: int
    after_s: float = 0.0  # model time at which the rank stops
    mode: str = "stall"

    def __post_init__(self) -> None:
        if self.mode not in ("stall", "crash"):
            raise ValueError(f"mode must be 'stall' or 'crash', got {self.mode!r}")
        if self.after_s < 0.0:
            raise ValueError("after_s must be >= 0")


@dataclass(frozen=True)
class ResidentCorruption:
    """One planned resident-field corruption: a rank's in-memory solver
    state is scribbled once its model clock passes ``after_s`` — a soft
    error in device RAM rather than on the wire.  Invisible to envelope
    checksums by construction; caught by the solvers' refresh-point
    invariant monitors and recovered via checkpoint restore.
    """

    rank: int
    after_s: float = 0.0
    scale: float = 50.0  # scribble magnitude relative to the field's own

    def __post_init__(self) -> None:
        if self.after_s < 0.0:
            raise ValueError("after_s must be >= 0")
        if self.scale == 0.0:
            raise ValueError("scale must be nonzero")


@dataclass(frozen=True)
class WorkerKill:
    """One planned *whole-worker* death: at ``at_s`` of service model
    time every rank of the worker dies at once — a node loss, not a rank
    fault.  The failure is correlated by construction (one power supply,
    one NIC), which is exactly what per-rank :class:`StallSpec` schedules
    cannot express: those perturb one rank of one batch; a kill takes the
    whole failure domain out from under whatever it was running.
    """

    worker_id: int
    at_s: float = 0.0

    def __post_init__(self) -> None:
        if self.worker_id < 0:
            raise ValueError("worker_id must be >= 0")
        if self.at_s < 0.0:
            raise ValueError("at_s must be >= 0")


@dataclass(frozen=True)
class StragglerSpec:
    """One planned straggler: every batch the worker runs takes
    ``factor`` times its modeled duration — a thermally throttled GPU or
    a degraded link that slows the node without failing it.  The batch
    still *succeeds*; only hedging (or the slow-completion health
    signal) can claw the latency back.
    """

    worker_id: int
    factor: float = 2.0

    def __post_init__(self) -> None:
        if self.worker_id < 0:
            raise ValueError("worker_id must be >= 0")
        if self.factor <= 1.0:
            raise ValueError("factor must be > 1")


@dataclass(frozen=True)
class WorkerFaultPlan:
    """Deterministic whole-worker faults for the service simulation:
    correlated kills and stragglers, addressed by worker id (ids past
    the boot pool target elastically spun-up workers)."""

    kills: tuple[WorkerKill, ...] = ()
    stragglers: tuple[StragglerSpec, ...] = ()

    def __post_init__(self) -> None:
        seen: set[int] = set()
        for kill in self.kills:
            if kill.worker_id in seen:
                raise ValueError(
                    f"duplicate kill for worker {kill.worker_id}"
                )
            seen.add(kill.worker_id)

    def with_kill(self, worker_id: int, *, at_s: float) -> "WorkerFaultPlan":
        from dataclasses import replace

        return replace(
            self, kills=self.kills + (WorkerKill(worker_id, at_s),)
        )

    def with_straggler(
        self, worker_id: int, *, factor: float
    ) -> "WorkerFaultPlan":
        from dataclasses import replace

        return replace(
            self,
            stragglers=self.stragglers + (StragglerSpec(worker_id, factor),),
        )

    def straggler_factor(self, worker_id: int) -> float:
        """Duration multiplier for the worker (1.0 = healthy)."""
        for spec in self.stragglers:
            if spec.worker_id == worker_id:
                return spec.factor
        return 1.0

    def reseeded(
        self,
        node: int,
        seed: int,
        *,
        boot_workers: int,
        n_nodes: int,
    ) -> float:
        """Straggler factor for an elastic scale-up worker on ``node``.

        Pool indices are a bad identity for scale-up workers: a resumed
        campaign with a different scale history hands out different ids,
        so an index-addressed straggler would jump between physical
        workers across resumes.  Instead, each straggler spec aimed past
        the boot pool is *pinned to a node* by hashing ``(seed, spec)``,
        and any scale-up worker landing on that node inherits the
        factor.  The (domain, seed) pair is stable per worker identity
        no matter how many scale events preceded the spin-up.
        """
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        factor = 1.0
        for spec in self.stragglers:
            if spec.worker_id < boot_workers:
                continue  # boot-pool specs keep index addressing
            pinned = int(
                np.random.SeedSequence(
                    [seed & 0xFFFFFFFF, _SALT_ELASTIC, spec.worker_id]
                ).generate_state(1)[0]
            ) % n_nodes
            if pinned == node:
                factor = max(factor, spec.factor)
        return factor


@dataclass(frozen=True)
class NodeKill:
    """One planned *node* death: at ``at_s`` the node's power is gone and
    every worker resident on it dies at once — silently.  Unlike
    :class:`WorkerKill` (a loud, scheduler-visible retirement), a node
    loss takes the reporting path with it: the dead workers stay in the
    pool and every batch dispatched to them simply fails after the
    detection delay, so the health stack must *infer* the correlated
    death from the failure pattern.
    """

    node: int
    at_s: float = 0.0

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError("node must be >= 0")
        if self.at_s < 0.0:
            raise ValueError("at_s must be >= 0")


@dataclass(frozen=True)
class HcaDegrade:
    """One planned HCA degradation: at ``at_s`` the node's shared HCA
    renegotiates to a lower rate and *every* worker on the node slows by
    ``factor`` — the correlated version of :class:`StragglerSpec` (one
    HCA serves all the node's GPUs, Section VII-A).
    """

    node: int
    at_s: float = 0.0
    factor: float = 2.0

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError("node must be >= 0")
        if self.at_s < 0.0:
            raise ValueError("at_s must be >= 0")
        if self.factor <= 1.0:
            raise ValueError("factor must be > 1")


@dataclass(frozen=True)
class SwitchPartition:
    """One planned switch partition: at ``at_s`` the rack's uplink dies
    and every node behind it is unreachable for a *seeded* interval
    (``mean_heal_s`` scaled by a deterministic uniform draw), then heals.
    Link-down is loud — the scheduler sees the partition immediately and
    parks the rack — but the interval is part of the fault schedule, not
    the scheduler's choice.
    """

    rack: int
    at_s: float = 0.0
    mean_heal_s: float = 2e-3

    def __post_init__(self) -> None:
        if self.rack < 0:
            raise ValueError("rack must be >= 0")
        if self.at_s < 0.0:
            raise ValueError("at_s must be >= 0")
        if self.mean_heal_s <= 0.0:
            raise ValueError("mean_heal_s must be > 0")


@dataclass(frozen=True)
class DomainFaultPlan:
    """Deterministic *correlated* fault schedule addressed by failure
    domain (node, rack) rather than worker id.  The service maps domains
    to workers through its :class:`~repro.comms.cluster.Topology`; heal
    intervals are pure functions of ``(seed, rack)`` so the schedule is
    byte-identical run to run.
    """

    seed: int = 0
    node_kills: tuple[NodeKill, ...] = ()
    hca_degrades: tuple[HcaDegrade, ...] = ()
    partitions: tuple[SwitchPartition, ...] = ()
    #: Model time between a dead node swallowing a batch and the
    #: scheduler's send timing out — the detection delay that makes a
    #: silent node loss expensive.
    detect_s: float = 5e-4

    def __post_init__(self) -> None:
        if self.detect_s <= 0.0:
            raise ValueError("detect_s must be > 0")
        for name, specs in (
            ("node kill", self.node_kills),
            ("HCA degrade", self.hca_degrades),
        ):
            seen: set[int] = set()
            for spec in specs:
                if spec.node in seen:
                    raise ValueError(f"duplicate {name} for node {spec.node}")
                seen.add(spec.node)
        racks: set[int] = set()
        for spec in self.partitions:
            if spec.rack in racks:
                raise ValueError(f"duplicate partition for rack {spec.rack}")
            racks.add(spec.rack)

    def with_node_kill(self, node: int, *, at_s: float) -> "DomainFaultPlan":
        return replace(self, node_kills=self.node_kills + (NodeKill(node, at_s),))

    def with_hca_degrade(
        self, node: int, *, at_s: float, factor: float
    ) -> "DomainFaultPlan":
        return replace(
            self,
            hca_degrades=self.hca_degrades + (HcaDegrade(node, at_s, factor),),
        )

    def with_partition(
        self, rack: int, *, at_s: float, mean_heal_s: float = 2e-3
    ) -> "DomainFaultPlan":
        return replace(
            self,
            partitions=self.partitions
            + (SwitchPartition(rack, at_s, mean_heal_s),),
        )

    def heal_time(self, spec: SwitchPartition) -> float:
        """Absolute model time at which ``spec``'s rack heals.

        The interval is ``mean_heal_s * (0.5 + u)`` with ``u`` a seeded
        uniform draw — bounded away from zero so the partition is always
        observable, bounded above so campaigns always finish.
        """
        u = np.random.Generator(
            np.random.PCG64(
                np.random.SeedSequence([self.seed, _SALT_HEAL, spec.rack])
            )
        ).random()
        return spec.at_s + spec.mean_heal_s * (0.5 + u)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic schedule of comms faults.

    Bind one to a world via ``SimMPI(size, cluster, fault_plan=plan)`` or
    pass ``fault_plan=`` to :func:`repro.core.invert`.  All sampling is
    keyed on ``(seed, link, per-link message sequence number)``, so the
    schedule depends only on the program's communication pattern — never
    on thread timing.
    """

    seed: int = 0
    shm: LinkFaults = field(default_factory=LinkFaults)
    ib: LinkFaults = field(default_factory=LinkFaults)
    send_fail_prob: float = 0.0  # transient failure chance per attempt
    max_send_attempts: int = 5  # attempts before the send goes through
    retry_backoff_s: float = 5e-6  # first backoff; doubles per retry
    stalls: tuple[StallSpec, ...] = ()
    #: Wall-clock budget (seconds) within which an operation waiting on a
    #: stalled peer must surface a RankFailedError.  Much smaller than
    #: the deadlock timeout: a bound fault plan *expects* trouble.
    op_timeout_s: float = 5.0
    # --- silent data corruption --------------------------------------- #
    #: Planned resident-field corruptions (at most one per rank).
    resident: tuple[ResidentCorruption, ...] = ()
    #: Cap on corrupted *messages per rank* (-1 = unlimited).  With a cap
    #: of 1 and probability 1, exactly each rank's first transmission is
    #: corrupted — the deterministic single-event plans the regression
    #: tests use.  Per-rank (not global) so the cap is independent of
    #: thread interleaving.
    corrupt_budget: int = -1
    #: Per-contribution chance that a rank's collective (global-sum)
    #: contribution is poisoned in flight.
    coll_corrupt_prob: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.send_fail_prob < 1.0:
            raise ValueError("send_fail_prob must be in [0, 1)")
        if self.max_send_attempts < 1:
            raise ValueError("max_send_attempts must be >= 1")
        if self.retry_backoff_s < 0 or self.op_timeout_s <= 0:
            raise ValueError("retry_backoff_s >= 0 and op_timeout_s > 0 required")
        if not 0.0 <= self.coll_corrupt_prob <= 1.0:
            raise ValueError("coll_corrupt_prob must be in [0, 1]")
        if self.corrupt_budget < -1:
            raise ValueError("corrupt_budget must be >= -1")
        seen = set()
        for s in self.stalls:
            if s.rank in seen:
                raise ValueError(f"duplicate stall spec for rank {s.rank}")
            seen.add(s.rank)
        seen = set()
        for rc in self.resident:
            if rc.rank in seen:
                raise ValueError(
                    f"duplicate resident corruption for rank {rc.rank}"
                )
            seen.add(rc.rank)

    # ------------------------------------------------------------------ #
    # Convenience constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def jittery(
        cls,
        seed: int,
        *,
        prob: float = 0.3,
        jitter_s: float = 20e-6,
        spike_prob: float = 0.0,
        spike_s: float = 200e-6,
        **kwargs,
    ) -> "FaultPlan":
        """Latency jitter on every link (IB gets the full dose, shared
        memory a tenth — intra-node copies do not cross the fabric)."""
        return cls(
            seed=seed,
            ib=LinkFaults(prob, jitter_s, spike_prob, spike_s),
            shm=LinkFaults(prob, jitter_s / 10, spike_prob, spike_s / 10),
            **kwargs,
        )

    @classmethod
    def flaky(cls, seed: int, *, fail_prob: float = 0.05, **kwargs) -> "FaultPlan":
        """Transient send failures with retry/backoff."""
        return cls(seed=seed, send_fail_prob=fail_prob, **kwargs)

    @classmethod
    def corrupting(
        cls,
        seed: int,
        *,
        bitflip_prob: float = 0.02,
        scribble_prob: float = 0.0,
        bits: int = 1,
        budget: int = -1,
        coll_prob: float = 0.0,
        **kwargs,
    ) -> "FaultPlan":
        """Silent payload corruption on every link (same rate: soft
        errors do not care whether bytes crossed the fabric)."""
        lf = LinkFaults(
            bitflip_prob=bitflip_prob,
            scribble_prob=scribble_prob,
            bitflip_bits=bits,
        )
        return cls(
            seed=seed, ib=lf, shm=lf, corrupt_budget=budget,
            coll_corrupt_prob=coll_prob, **kwargs,
        )

    def with_stall(
        self, rank: int, *, after_s: float = 0.0, mode: str = "stall"
    ) -> "FaultPlan":
        """A copy of this plan with one more rank failure scheduled."""
        return replace(
            self, stalls=self.stalls + (StallSpec(rank, after_s, mode),)
        )

    def with_resident_corruption(
        self, rank: int, *, after_s: float = 0.0, scale: float = 50.0
    ) -> "FaultPlan":
        """A copy with a resident-field corruption scheduled on ``rank``."""
        return replace(
            self,
            resident=self.resident + (ResidentCorruption(rank, after_s, scale),),
        )

    def reseeded(self, stream: int) -> "FaultPlan":
        """A copy of this plan on an independent random stream.

        A solve *service* binds one plan template to many workers; each
        worker's schedule must be independent (workers run their own
        SimMPI worlds with clocks restarting per batch) yet reproducible
        from the campaign seed alone.  SeedSequence-style mixing keeps
        the derived seeds collision-free and platform-stable.
        """
        mixed = int(
            np.random.SeedSequence([self.seed, 0x5EED, stream]).generate_state(1)[0]
        )
        return replace(self, seed=mixed)

    def without_ranks(self, ranks) -> "FaultPlan":
        """A copy with the given ranks' stalls/crashes retired.

        The recovery supervisor uses this between attempts: a fault that
        already fired must not replay in the relaunched world (whose
        model clocks restart at zero), and stalls addressed beyond a
        shrunken world size could not be hosted at all.
        """
        drop = set(ranks)
        return replace(
            self,
            stalls=tuple(s for s in self.stalls if s.rank not in drop),
            resident=tuple(r for r in self.resident if r.rank not in drop),
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def lethal(self) -> bool:
        """Whether any rank is scheduled to die (tightens op timeouts)."""
        return bool(self.stalls)

    def stall_for(self, rank: int) -> StallSpec | None:
        for s in self.stalls:
            if s.rank == rank:
                return s
        return None

    def resident_for(self, rank: int) -> ResidentCorruption | None:
        for rc in self.resident:
            if rc.rank == rank:
                return rc
        return None

    @property
    def injects_corruption(self) -> bool:
        """Whether any corruption fault (in-flight, collective, or
        resident) is scheduled — arms integrity verification by default."""
        return (
            self.ib.corrupting
            or self.shm.corrupting
            or self.coll_corrupt_prob > 0
            or bool(self.resident)
        )

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        for kind in ("ib", "shm"):
            lf: LinkFaults = getattr(self, kind)
            if lf.active:
                parts.append(
                    f"{kind}: jitter p={lf.jitter_prob} mean={lf.jitter_s * 1e6:.1f}us"
                    + (
                        f" spike p={lf.spike_prob} +{lf.spike_s * 1e6:.1f}us"
                        if lf.spike_prob > 0
                        else ""
                    )
                )
        if self.send_fail_prob > 0:
            parts.append(
                f"send-fail p={self.send_fail_prob} "
                f"(<= {self.max_send_attempts} attempts, "
                f"backoff {self.retry_backoff_s * 1e6:.1f}us)"
            )
        for kind in ("ib", "shm"):
            lf = getattr(self, kind)
            if lf.corrupting:
                parts.append(
                    f"{kind}: corrupt p={lf.bitflip_prob + lf.scribble_prob:g}"
                    + (f" ({lf.bitflip_bits}-bit flips)" if lf.bitflip_prob else "")
                    + (
                        f" (budget {self.corrupt_budget}/rank)"
                        if self.corrupt_budget >= 0
                        else ""
                    )
                )
        if self.coll_corrupt_prob > 0:
            parts.append(f"collective-corrupt p={self.coll_corrupt_prob}")
        for rc in self.resident:
            parts.append(
                f"resident-corrupt rank {rc.rank} at t={rc.after_s * 1e6:.1f}us"
            )
        for s in self.stalls:
            parts.append(f"{s.mode} rank {s.rank} at t={s.after_s * 1e6:.1f}us")
        return "; ".join(parts)

    # ------------------------------------------------------------------ #
    # Deterministic sampling
    # ------------------------------------------------------------------ #

    def _u(self, salt: int, *key: int) -> float:
        """Uniform in [0, 1) keyed on (seed, salt, key) — thread-safe and
        platform-stable (SeedSequence hashing, no shared RNG state)."""
        state = np.random.SeedSequence([self.seed, salt, *key]).generate_state(1)
        return float(state[0]) / float(2**32)

    def link(self, kind: str) -> LinkFaults:
        return self.shm if kind == "shm" else self.ib

    def extra_latency(
        self, kind: str, src: int, dst: int, tag: int, seq: int
    ) -> tuple[float, str]:
        """Extra model time for message ``seq`` on link ``(src,dst,tag)``.

        Returns ``(delay_s, kind)`` where kind is '' (clean), 'jitter' or
        'spike' (spikes dominate when both fire).
        """
        lf = self.link(kind)
        if not lf.active:
            return 0.0, ""
        lid = _LINK_IDS[kind]
        if lf.spike_prob > 0 and (
            self._u(_SALT_SPIKE, lid, src, dst, tag, seq) < lf.spike_prob
        ):
            return lf.spike_s, "spike"
        if lf.jitter_prob > 0 and (
            self._u(_SALT_JITTER, lid, src, dst, tag, seq) < lf.jitter_prob
        ):
            u = self._u(_SALT_JITTER + 100, lid, src, dst, tag, seq)
            return -math.log(1.0 - u) * lf.jitter_s, "jitter"
        return 0.0, ""

    def send_failures(self, src: int, dst: int, tag: int, seq: int) -> int:
        """Number of transient failures before send ``seq`` goes through
        (0 = clean first attempt; always < max_send_attempts)."""
        if self.send_fail_prob <= 0:
            return 0
        k = 0
        while (
            k < self.max_send_attempts - 1
            and self._u(_SALT_SEND_FAIL, src, dst, tag, seq, k) < self.send_fail_prob
        ):
            k += 1
        return k

    def backoff_s(self, attempt: int) -> float:
        """Model-time backoff before retry ``attempt`` (0-based)."""
        return self.retry_backoff_s * (2.0**attempt)

    def corrupt_attempts(
        self, kind: str, src: int, dst: int, tag: int, seq: int, *, limit: int
    ) -> tuple[int, str]:
        """How many consecutive transmissions of message ``seq`` arrive
        corrupted (0 = clean), and the damage mode.

        Each NACK-triggered resend redraws independently, so a bounded
        resend usually succeeds — but a probability-1 plan defeats it and
        forces the loud :class:`CorruptionDetected` path.  ``limit``
        bounds the walk (the receiver gives up after ``max_resend``
        anyway).
        """
        lf = self.link(kind)
        p = lf.bitflip_prob + lf.scribble_prob
        if p <= 0:
            return 0, ""
        lid = _LINK_IDS[kind]
        k = 0
        while k <= limit and (
            self._u(_SALT_CORRUPT, lid, src, dst, tag, seq, k) < p
        ):
            k += 1
        if k == 0:
            return 0, ""
        mode = (
            "bitflip"
            if self._u(_SALT_CORRUPT_MODE, lid, src, dst, tag, seq)
            < lf.bitflip_prob / p
            else "scribble"
        )
        return k, mode

    def corrupt_key(
        self, kind: str, src: int, dst: int, tag: int, seq: int
    ) -> tuple[int, ...]:
        """The deterministic seed key for this message's damage pattern."""
        return (
            self.seed, _SALT_CORRUPT_MODE, _LINK_IDS[kind], src, dst, tag, seq,
        )

    def coll_corrupt_key(self, rank: int, coll_index: int) -> tuple[int, ...]:
        """Seed key for the damage pattern of a poisoned contribution
        (offset so it is independent of the fire/no-fire draw)."""
        return (self.seed, _SALT_COLL_CORRUPT, 7919, rank, coll_index)

    def coll_corrupt(self, rank: int, coll_index: int) -> bool:
        """Whether this rank's contribution to collective ``coll_index``
        is poisoned in flight."""
        if self.coll_corrupt_prob <= 0:
            return False
        return (
            self._u(_SALT_COLL_CORRUPT, rank, coll_index)
            < self.coll_corrupt_prob
        )
