"""Message-passing substrate: SimMPI threads, a QMP layer, and the
cluster (PCIe/NUMA/InfiniBand) model of the JLab "9g" machine.

mpi4py and InfiniBand hardware are unavailable in this reproduction, so
ranks run as threads exchanging real NumPy buffers, while a LogP-style
timestamp protocol carries simulated time across ranks (see
:mod:`repro.comms.mpi_sim` for the details and determinism argument).
"""

from .cluster import ClusterSpec
from .mpi_sim import Comm, MPIDeadlockError, Request, SimMPI, run_spmd
from .qmp import QMPMachine

__all__ = [
    "ClusterSpec",
    "SimMPI",
    "Comm",
    "Request",
    "MPIDeadlockError",
    "run_spmd",
    "QMPMachine",
]
