"""Message-passing substrate: SimMPI threads, a QMP layer, and the
cluster (PCIe/NUMA/InfiniBand) model of the JLab "9g" machine.

mpi4py and InfiniBand hardware are unavailable in this reproduction, so
ranks run as threads exchanging real NumPy buffers, while a LogP-style
timestamp protocol carries simulated time across ranks (see
:mod:`repro.comms.mpi_sim` for the details and determinism argument).
Deterministic fault injection (latency jitter, transient send failures,
rank stalls/crashes, silent payload/resident corruption) and the
checksummed-envelope integrity layer live in :mod:`repro.comms.faults`.
"""

from .cluster import ClusterSpec, Topology
from .faults import (
    CorruptionDetected,
    DomainFaultPlan,
    FaultEvent,
    FaultPlan,
    HcaDegrade,
    IntegrityPolicy,
    LinkFaults,
    NodeKill,
    RankFailedError,
    ResidentCorruption,
    StallSpec,
    StragglerSpec,
    SwitchPartition,
    WorkerFaultPlan,
    WorkerKill,
    checksum_bytes,
    checksum_payload,
    corrupt_payload,
    format_schedule,
    resident_scribble,
    schedule_sort_key,
)
from .mpi_sim import (
    Comm,
    CommStats,
    MPIDeadlockError,
    RankFailure,
    Request,
    SimMPI,
    SpmdOutcome,
    run_spmd,
)
from .qmp import QMPMachine

__all__ = [
    "ClusterSpec",
    "Topology",
    "NodeKill",
    "HcaDegrade",
    "SwitchPartition",
    "DomainFaultPlan",
    "SimMPI",
    "Comm",
    "CommStats",
    "Request",
    "MPIDeadlockError",
    "RankFailure",
    "SpmdOutcome",
    "run_spmd",
    "QMPMachine",
    "FaultPlan",
    "FaultEvent",
    "LinkFaults",
    "StallSpec",
    "ResidentCorruption",
    "WorkerKill",
    "StragglerSpec",
    "WorkerFaultPlan",
    "IntegrityPolicy",
    "RankFailedError",
    "CorruptionDetected",
    "checksum_bytes",
    "checksum_payload",
    "corrupt_payload",
    "resident_scribble",
    "format_schedule",
    "schedule_sort_key",
]
