"""Cluster model: nodes, NUMA placement, and the interconnect.

Models the paper's test bed (Section VII-A): the Jefferson Lab "9g"
cluster — nodes with a Supermicro X8DTG-QF board, two Xeon E5530 sockets,
two GTX 285 GPUs (each on a PCIe bus attached to a *different* socket),
48 GiB of RAM, QDR InfiniBand between nodes, one MPI process bound per
GPU.

What the model must capture:

* **Rank placement** — ranks fill nodes in order, ``gpus_per_node`` per
  node; messages between ranks on the same node go through shared memory,
  messages between nodes over InfiniBand (whose bandwidth is *less* than
  PCIe x16 — Section III).
* **NUMA binding** — "In order to obtain maximum bandwidth on the buses,
  it was necessary to explicitly bind each MPI process to the correct
  socket" (Section VII-D).  ``numa_policy`` selects correct binding,
  deliberately wrong binding (every process on the opposite socket — the
  maroon curve of Fig. 5(a)), or unpinned (in between).
"""

from __future__ import annotations

from dataclasses import dataclass, replace as _replace

from ..gpu.perfmodel import DEFAULT_PARAMS, PerfModelParams

__all__ = ["ClusterSpec", "NUMA_POLICIES", "Topology"]

NUMA_POLICIES = ("correct", "wrong", "unpinned")


@dataclass(frozen=True)
class Topology:
    """Failure-domain hierarchy of the service's worker pool.

    The paper's cluster is hierarchical even at two GPUs: both share one
    node, one HCA, and one IB switch, so faults are *correlated* — a
    node loss takes every co-resident worker with it, a switch partition
    isolates a whole rack.  This maps the flat worker pool onto that
    hierarchy: worker → node → rack.  Racks tile the nodes in order
    (``ceil(n_nodes / n_racks)`` nodes per rack); workers fill nodes in
    order, ``workers_per_node`` per node.  Elastic scale-up workers past
    the boot pool are *assigned* a node by the scheduler (spread across
    the least-loaded healthy domains), so the arithmetic here only
    defines the boot layout.
    """

    n_nodes: int = 1
    workers_per_node: int = 1
    n_racks: int = 1

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.workers_per_node < 1:
            raise ValueError("workers_per_node must be >= 1")
        if not 1 <= self.n_racks <= self.n_nodes:
            raise ValueError("n_racks must be in [1, n_nodes]")

    # ------------------------------------------------------------------ #
    # Layout
    # ------------------------------------------------------------------ #

    @property
    def n_workers(self) -> int:
        return self.n_nodes * self.workers_per_node

    @property
    def nodes_per_rack(self) -> int:
        return -(-self.n_nodes // self.n_racks)

    def node_of_worker(self, worker_id: int) -> int:
        """Boot-pool mapping; elastic workers wrap around the nodes."""
        return (worker_id // self.workers_per_node) % self.n_nodes

    def rack_of_node(self, node: int) -> int:
        return node // self.nodes_per_rack

    def workers_on_node(self, node: int) -> tuple[int, ...]:
        """Boot-pool workers resident on ``node``."""
        base = node * self.workers_per_node
        return tuple(range(base, base + self.workers_per_node))

    def nodes_in_rack(self, rack: int) -> tuple[int, ...]:
        lo = rack * self.nodes_per_rack
        hi = min(lo + self.nodes_per_rack, self.n_nodes)
        return tuple(range(lo, hi))

    # ------------------------------------------------------------------ #
    # Serialization / CLI
    # ------------------------------------------------------------------ #

    @classmethod
    def parse(cls, text: str) -> "Topology":
        """Parse ``NODESxWORKERS[@RACKS]`` (e.g. ``4x2@2``)."""
        spec, _, racks = text.partition("@")
        nodes, sep, per_node = spec.partition("x")
        if not sep:
            raise ValueError(
                f"topology must look like NODESxWORKERS[@RACKS], got {text!r}"
            )
        try:
            return cls(
                n_nodes=int(nodes),
                workers_per_node=int(per_node),
                n_racks=int(racks) if racks else 1,
            )
        except ValueError as exc:
            raise ValueError(f"bad topology {text!r}: {exc}") from None

    def __str__(self) -> str:
        return f"{self.n_nodes}x{self.workers_per_node}@{self.n_racks}"

    def to_json(self) -> dict:
        return {
            "n_nodes": self.n_nodes,
            "workers_per_node": self.workers_per_node,
            "n_racks": self.n_racks,
        }

    @classmethod
    def from_json(cls, data: dict) -> "Topology":
        return cls(
            n_nodes=int(data["n_nodes"]),
            workers_per_node=int(data["workers_per_node"]),
            n_racks=int(data["n_racks"]),
        )


@dataclass(frozen=True)
class ClusterSpec:
    """Topology and network characteristics of a GPU cluster partition."""

    gpus_per_node: int = 2
    numa_policy: str = "correct"
    params: PerfModelParams = DEFAULT_PARAMS

    def __post_init__(self) -> None:
        if self.gpus_per_node < 1:
            raise ValueError("gpus_per_node must be >= 1")
        if self.numa_policy not in NUMA_POLICIES:
            raise ValueError(
                f"numa_policy must be one of {NUMA_POLICIES}, got "
                f"{self.numa_policy!r}"
            )

    # ------------------------------------------------------------------ #
    # Placement
    # ------------------------------------------------------------------ #

    def node_of(self, rank: int) -> int:
        return rank // self.gpus_per_node

    def nodes_for(self, n_ranks: int) -> int:
        return -(-n_ranks // self.gpus_per_node)

    def same_node(self, a: int, b: int) -> bool:
        return self.node_of(a) == self.node_of(b)

    def numa_ok(self, rank: int) -> bool:
        """Whether ``rank``'s process sits on its GPU's socket.

        ``correct``: always.  ``wrong``: never (the deliberately bad
        configuration of Fig. 5(a)).  ``unpinned``: the scheduler lands it
        on the right socket about half the time; we model the *average*
        penalty by treating unpinned as wrong for even ranks.
        """
        if self.numa_policy == "correct":
            return True
        if self.numa_policy == "wrong":
            return False
        return rank % 2 == 1

    def degraded(self, *, ib_factor: float = 2.0, shm_factor: float = 1.0) -> "ClusterSpec":
        """A copy of this cluster with slower links (chaos baseline).

        Unlike a FaultPlan — which perturbs *individual* messages — this
        models a uniformly degraded fabric: InfiniBand (and optionally
        shared-memory) bandwidth divided by the given factors, e.g. a
        congested switch or a link renegotiated to a lower rate.
        """
        if ib_factor < 1.0 or shm_factor < 1.0:
            raise ValueError("degradation factors must be >= 1")
        p = self.params
        return _replace(
            self,
            params=_replace(p, ib_bw=p.ib_bw / ib_factor, shm_bw=p.shm_bw / shm_factor),
        )

    # ------------------------------------------------------------------ #
    # Network timing
    # ------------------------------------------------------------------ #

    def link_kind(self, src: int, dst: int) -> str:
        return "shm" if self.same_node(src, dst) else "ib"

    def message_time(self, src: int, dst: int, nbytes: int) -> float:
        """Host-to-host transfer time for one MPI message.

        Intra-node messages copy through shared memory; inter-node
        messages traverse QDR InfiniBand (host-staged; no GPUDirect in
        2010).  Both include the MPI software overhead.
        """
        p = self.params
        if self.same_node(src, dst):
            latency, bw = p.shm_latency_s, p.shm_bw
        else:
            latency, bw = p.ib_latency_s, p.ib_bw
            # The 9g nodes have ONE InfiniBand HCA shared by both GPUs'
            # processes; in the solver every rank exchanges faces at the
            # same moment, so inter-node bandwidth is divided among the
            # node's ranks.
            bw /= self.gpus_per_node
        return p.mpi_overhead_s + latency + nbytes / bw

    def allreduce_time(self, n_ranks: int, nbytes: int = 8) -> float:
        """Model of a small allreduce: a binary tree of message stages.

        The paper's only collectives are the global sums of the linear
        algebra reductions (Section VI-E) — a few doubles each.
        """
        if n_ranks <= 1:
            return 0.0
        stages = (n_ranks - 1).bit_length()
        per_stage = self.params.allreduce_stage_s + nbytes / self.params.ib_bw
        return 2 * stages * per_stage  # reduce + broadcast
