"""QMP-flavoured communication layer (paper Section VI-A).

The paper communicates through QMP — "QCD Message Passing, an API built
on top of MPI that provides convenient functionality for LQCD
computations": a declared logical machine topology and persistent relay
channels to lattice neighbours, plus global sums.

This module provides that convenience layer over :mod:`repro.comms.mpi_sim`.
The paper's production configuration is a 1-dimensional ring over the
time axis; the multi-dimensional extension (Section VI-A future work)
declares a 2-D ``(Z, T)`` grid instead, with neighbour relays along each
partitioned lattice direction.  Fields carry the antiperiodic sign; the
machine topology itself is periodic in every axis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .faults import RankFailedError
from .mpi_sim import Comm, Request

__all__ = ["QMPMachine"]

#: Base message tags; each (lattice direction, relay orientation) pair
#: gets its own tag, like QMP's declared channels.
_TAG_BASE = 100


def _tag(mu: int, direction: int) -> int:
    return _TAG_BASE + 2 * mu + (0 if direction == -1 else 1)


@dataclass
class QMPMachine:
    """A logical machine grid over the partitioned lattice directions.

    Parameters
    ----------
    comm:
        The rank's communicator.
    grid:
        Ranks per partitioned lattice direction, as a mapping
        ``{lattice_dir: n_ranks}``.  ``None`` declares the paper's 1-D
        time decomposition over the whole communicator: ``{3: size}``.
        Rank order follows :meth:`LatticeGeometry.slice_grid`: lower
        lattice directions run fastest.
    """

    comm: Comm
    grid: dict[int, int] | None = None
    _coords: dict[int, int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.grid is None:
            self.grid = {3: self.comm.size}
        total = int(np.prod(list(self.grid.values())))
        if total != self.comm.size:
            raise ValueError(
                f"grid {self.grid} needs {total} ranks, communicator has "
                f"{self.comm.size}"
            )
        # Logical coordinates: lower lattice directions run fastest.
        self._coords = {}
        rank = self.comm.rank
        for mu in sorted(self.grid):
            n = self.grid[mu]
            self._coords[mu] = rank % n
            rank //= n

    @property
    def rank(self) -> int:
        return self.comm.rank

    @property
    def size(self) -> int:
        return self.comm.size

    @property
    def partitioned_dirs(self) -> tuple[int, ...]:
        """Lattice directions actually split across ranks."""
        return tuple(mu for mu in sorted(self.grid) if self.grid[mu] > 1)

    @property
    def is_partitioned(self) -> bool:
        """Single-rank machines need no communication at all."""
        return bool(self.partitioned_dirs)

    def logical_coords(self, mu: int) -> int:
        return self._coords[mu]

    def neighbor(self, mu: int, step: int) -> int:
        """Rank of the ``+/-mu`` neighbour in the logical grid."""
        if mu not in self.grid:
            raise ValueError(f"direction {mu} is not in the machine grid")
        rank = 0
        stride = 1
        for nu in sorted(self.grid):
            n = self.grid[nu]
            c = self._coords[nu]
            if nu == mu:
                c = (c + step) % n
            rank += c * stride
            stride *= n
        return rank

    # -- legacy 1-D (temporal) accessors ---------------------------------- #

    @property
    def minus_neighbor(self) -> int:
        return self.neighbor(3, -1)

    @property
    def plus_neighbor(self) -> int:
        return self.neighbor(3, +1)

    # ------------------------------------------------------------------ #
    # Neighbour relays
    # ------------------------------------------------------------------ #

    def send_to(
        self, direction: int, data: Any, *, mu: int = 3, nbytes: int | None = None
    ) -> None:
        """Blocking-post send to the ``-mu`` or ``+mu`` neighbour."""
        dest, tag = self._route(mu, direction)
        self.comm.send(data, dest, tag, nbytes=nbytes)

    def recv_from(
        self, direction: int, *, mu: int = 3, with_checksum: bool = False
    ) -> Any:
        """Blocking receive from the ``-mu`` or ``+mu`` neighbour.

        ``with_checksum=True`` returns ``(data, checksum)`` so the
        ghost-zone scatter can re-verify the stored faces end to end."""
        source, tag = self._route_recv(mu, direction)
        try:
            return self.comm.recv(source, tag, with_checksum=with_checksum)
        except RankFailedError as exc:
            raise exc.add_context(
                f"ghost relay mu={mu} dir={direction:+d}"
            ) from None

    def take_resident_corruption(self):
        """One-shot poll of the plan's resident-field corruption for this
        rank: ``(spec, plan_seed)`` once armed and due, else ``None``."""
        return self.comm.take_resident_corruption()

    def start_send(
        self, direction: int, data: Any, *, mu: int = 3, nbytes: int | None = None
    ) -> Request:
        """Non-blocking send (QMP_start_sending analogue)."""
        dest, tag = self._route(mu, direction)
        return self.comm.isend(data, dest, tag, nbytes=nbytes)

    def start_recv(self, direction: int, *, mu: int = 3) -> Request:
        """Non-blocking receive (completes on ``wait``)."""
        source, tag = self._route_recv(mu, direction)
        return self.comm.irecv(source, tag)

    def _route(self, mu: int, direction: int) -> tuple[int, int]:
        if direction not in (-1, +1):
            raise ValueError(f"direction must be -1 or +1, got {direction}")
        return self.neighbor(mu, direction), _tag(mu, direction)

    def _route_recv(self, mu: int, direction: int) -> tuple[int, int]:
        if direction not in (-1, +1):
            raise ValueError(f"direction must be -1 or +1, got {direction}")
        # A message "from direction -1" was sent by that neighbour toward
        # its +mu side, hence tagged with the opposite orientation.
        return self.neighbor(mu, direction), _tag(mu, -direction)

    # ------------------------------------------------------------------ #
    # Collectives
    # ------------------------------------------------------------------ #

    def global_sum(self, value: float | complex | np.ndarray) -> Any:
        """QMP_sum_double / QMP_sum_double_array analogue.

        This is the only collective the parallel solver needs: "the only
        other required addition to the code was the insertion of MPI
        reductions for each of the linear algebra reduction kernels"
        (Section VI-E).
        """
        if self.comm.size == 1:
            return value
        try:
            return self.comm.allreduce(value)
        except RankFailedError as exc:
            raise exc.add_context("global sum") from None

    def barrier(self) -> None:
        if self.comm.size > 1:
            self.comm.barrier()
