"""SimMPI: a thread-based message-passing runtime with model-time carry.

``mpi4py`` (and an InfiniBand fabric) are not available in this
environment, so the multi-GPU code runs on this substitute: each MPI rank
is a Python thread executing the same SPMD function, and messages are
real NumPy buffers moved through rendezvous queues.  Functionally this is
message passing — face data genuinely crosses between ranks, collectives
genuinely combine per-rank values — so the ghost-zone exchange of the
parallel dslash is exercised for real.

**Model time.**  Each rank may bind its :class:`~repro.gpu.streams.Timeline`
(its host clock) and a :class:`~repro.comms.cluster.ClusterSpec` to the
communicator.  Messages then carry the sender's model time; a receive
completes at ``sender_post_time + network_time`` (per the cluster's
shared-memory/InfiniBand model), advancing the receiver's clock — a
LogP-style parallel time simulation.  Because completion times are pure
functions of the carried timestamps, the simulated times are
deterministic regardless of OS thread scheduling.

The API deliberately mirrors the mpi4py subset the paper's communication
patterns need: ``Send/Recv``, ``Isend/Irecv`` + ``wait``, ``Sendrecv``,
``Allreduce``, ``Barrier``.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from dataclasses import dataclass, field
from queue import Empty, Queue
from typing import Any, Callable

import numpy as np

from ..gpu.streams import Timeline
from .cluster import ClusterSpec

__all__ = ["SimMPI", "Comm", "Request", "MPIDeadlockError", "run_spmd"]

#: How long (wall-clock seconds) a blocking receive waits before declaring
#: deadlock.  Generous for slow CI machines, small enough to fail fast.
DEADLOCK_TIMEOUT_S = 120.0


class MPIDeadlockError(RuntimeError):
    """A blocking operation found no matching partner in time."""


@dataclass
class _Envelope:
    """One in-flight message."""

    data: Any
    nbytes: int
    sent_at: float  # sender's model time at post


class _SharedState:
    """State shared by all ranks of one SimMPI world."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.queues: dict[tuple[int, int, int], Queue] = defaultdict(Queue)
        self.queue_lock = threading.Lock()
        self.barrier = threading.Barrier(size)
        self.coll_lock = threading.Lock()
        self.coll_slots: dict[int, dict[int, tuple[Any, float]]] = {}

    def queue(self, src: int, dst: int, tag: int) -> Queue:
        with self.queue_lock:
            return self.queues[(src, dst, tag)]


@dataclass
class Request:
    """Handle for a non-blocking operation (mpi4py ``Request`` analogue)."""

    _wait: Callable[[], Any]
    _done: bool = False
    _result: Any = None

    def wait(self) -> Any:
        if not self._done:
            self._result = self._wait()
            self._done = True
        return self._result


@dataclass
class Comm:
    """One rank's view of the communicator."""

    rank: int
    size: int
    _state: _SharedState
    cluster: ClusterSpec = field(default_factory=ClusterSpec)
    timeline: Timeline | None = None
    _coll_count: int = 0

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #

    def bind_timeline(self, timeline: Timeline) -> None:
        """Attach this rank's model clock (usually its GPU's host clock)."""
        self.timeline = timeline

    def _now(self) -> float:
        return self.timeline.host_time if self.timeline is not None else 0.0

    def _advance(self, t: float, label: str) -> None:
        if self.timeline is not None:
            self.timeline.host_wait_until(t, label)

    def _charge(self, duration: float, label: str) -> None:
        if self.timeline is not None and duration > 0:
            self.timeline.host_busy(label, duration)

    @staticmethod
    def _payload(data: Any) -> tuple[Any, int]:
        if isinstance(data, np.ndarray):
            return data.copy(), data.nbytes
        if isinstance(data, tuple):
            total = sum(
                v.nbytes for v in data if isinstance(v, np.ndarray)
            )
            copied = tuple(
                v.copy() if isinstance(v, np.ndarray) else v for v in data
            )
            return copied, max(total, 64)
        return data, 64  # small python object: header-sized

    def _check_peer(self, peer: int) -> None:
        if not 0 <= peer < self.size:
            raise ValueError(f"peer rank {peer} outside communicator of {self.size}")

    # ------------------------------------------------------------------ #
    # Point to point
    # ------------------------------------------------------------------ #

    def send(self, data: Any, dest: int, tag: int = 0, *, nbytes: int | None = None) -> None:
        """Buffered send: never blocks (envelopes queue at the receiver).

        ``nbytes`` overrides the wire-size accounting — required in
        timing-only mode, where face messages carry no actual arrays but
        must still cost their true size on the network model.
        """
        self._check_peer(dest)
        self._charge(self.cluster.params.mpi_overhead_s, "MPI_Send")
        payload, auto_bytes = self._payload(data)
        env = _Envelope(payload, nbytes if nbytes is not None else auto_bytes, self._now())
        self._state.queue(self.rank, dest, tag).put(env)

    def recv(self, source: int, tag: int = 0) -> Any:
        """Blocking receive; completes at the modelled arrival time."""
        self._check_peer(source)
        q = self._state.queue(source, self.rank, tag)
        try:
            env = q.get(timeout=DEADLOCK_TIMEOUT_S)
        except Empty:
            raise MPIDeadlockError(
                f"rank {self.rank}: no message from rank {source} tag {tag} "
                f"within {DEADLOCK_TIMEOUT_S}s — deadlock?"
            ) from None
        arrival = env.sent_at + self.cluster.message_time(
            source, self.rank, env.nbytes
        )
        self._advance(arrival, f"MPI_Recv(from {source})")
        return env.data

    def isend(self, data: Any, dest: int, tag: int = 0, *, nbytes: int | None = None) -> Request:
        """Non-blocking send (our sends are buffered, so it completes
        immediately; the host still pays the posting overhead)."""
        self.send(data, dest, tag, nbytes=nbytes)
        return Request(_wait=lambda: None, _done=True)

    def irecv(self, source: int, tag: int = 0) -> Request:
        """Non-blocking receive; ``wait()`` performs the blocking part."""
        self._check_peer(source)
        self._charge(self.cluster.params.mpi_overhead_s, "MPI_Irecv")
        return Request(_wait=lambda: self.recv(source, tag))

    def sendrecv(
        self, data: Any, dest: int, source: int, *, sendtag: int = 0, recvtag: int = 0
    ) -> Any:
        """Combined send/receive (safe because sends never block)."""
        self.send(data, dest, sendtag)
        return self.recv(source, recvtag)

    # ------------------------------------------------------------------ #
    # Collectives
    # ------------------------------------------------------------------ #

    def _collective(self, value: Any, combine: Callable[[list[Any]], Any], nbytes: int) -> Any:
        """Generic synchronizing collective with model-time semantics:
        everyone leaves at ``max(entry times) + allreduce_time``."""
        key = self._coll_count
        self._coll_count += 1
        with self._state.coll_lock:
            slot = self._state.coll_slots.setdefault(key, {})
            slot[self.rank] = (value, self._now())
        self._state.barrier.wait()
        entries = self._state.coll_slots[key]
        values = [entries[r][0] for r in range(self.size)]
        latest = max(entries[r][1] for r in range(self.size))
        result = combine(values)
        completion = latest + self.cluster.allreduce_time(self.size, nbytes)
        self._advance(completion, "MPI_Allreduce")
        self._state.barrier.wait()
        if self.rank == 0:
            with self._state.coll_lock:
                del self._state.coll_slots[key]
        return result

    def allreduce(self, value: float | complex | np.ndarray) -> Any:
        """Global sum — the only reduction the solvers need (Section VI-E)."""
        nbytes = value.nbytes if isinstance(value, np.ndarray) else 16
        def _sum(values: list[Any]) -> Any:
            total = values[0]
            for v in values[1:]:
                total = total + v
            return total

        return self._collective(value, _sum, nbytes)

    def allgather(self, value: Any) -> list[Any]:
        nbytes = value.nbytes if isinstance(value, np.ndarray) else 64
        return self._collective(value, lambda vs: list(vs), nbytes)

    def barrier(self) -> None:
        self._collective(None, lambda vs: None, 0)

    def bcast(self, value: Any, root: int = 0) -> Any:
        return self._collective(value, lambda vs: vs[root], 64)


class SimMPI:
    """An MPI "world": create once, then :meth:`run` an SPMD function."""

    def __init__(self, size: int, cluster: ClusterSpec | None = None) -> None:
        if size < 1:
            raise ValueError("world size must be >= 1")
        self.size = size
        self.cluster = cluster or ClusterSpec()
        self._state = _SharedState(size)

    def comm(self, rank: int) -> Comm:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} outside world of size {self.size}")
        return Comm(rank=rank, size=self.size, _state=self._state, cluster=self.cluster)

    def run(self, fn: Callable[[Comm], Any], *, timeout_s: float = 600.0) -> list[Any]:
        """Run ``fn(comm)`` on every rank (threads); return per-rank results.

        Any rank's exception is re-raised in the caller, annotated with
        the rank, after all threads have been joined.
        """
        results: list[Any] = [None] * self.size
        errors: list[tuple[int, BaseException]] = []

        def worker(rank: int) -> None:
            try:
                results[rank] = fn(self.comm(rank))
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                errors.append((rank, exc))
                # Unblock peers stuck in barriers.
                self._state.barrier.abort()

        threads = [
            threading.Thread(target=worker, args=(r,), name=f"simmpi-rank{r}")
            for r in range(self.size)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=timeout_s)
        alive = [t.name for t in threads if t.is_alive()]
        if alive and not errors:
            raise MPIDeadlockError(f"ranks did not finish: {alive}")
        if errors:
            # Prefer the root cause over BrokenBarrierError fallout from
            # the abort that unblocked the other ranks.
            primary = [
                e for e in errors if not isinstance(e[1], threading.BrokenBarrierError)
            ] or errors
            rank, exc = sorted(primary, key=lambda e: e[0])[0]
            raise RuntimeError(f"rank {rank} failed: {exc!r}") from exc
        return results


def run_spmd(
    size: int,
    fn: Callable[[Comm], Any],
    cluster: ClusterSpec | None = None,
    **kwargs,
) -> list[Any]:
    """One-shot convenience: build a world and run ``fn`` on every rank."""
    return SimMPI(size, cluster).run(fn, **kwargs)
