"""SimMPI: a thread-based message-passing runtime with model-time carry.

``mpi4py`` (and an InfiniBand fabric) are not available in this
environment, so the multi-GPU code runs on this substitute: each MPI rank
is a Python thread executing the same SPMD function, and messages are
real NumPy buffers moved through rendezvous queues.  Functionally this is
message passing — face data genuinely crosses between ranks, collectives
genuinely combine per-rank values — so the ghost-zone exchange of the
parallel dslash is exercised for real.

**Model time.**  Each rank may bind its :class:`~repro.gpu.streams.Timeline`
(its host clock) and a :class:`~repro.comms.cluster.ClusterSpec` to the
communicator.  Messages then carry the sender's model time; a receive
completes at ``sender_post_time + network_time`` (per the cluster's
shared-memory/InfiniBand model), advancing the receiver's clock — a
LogP-style parallel time simulation.  Because completion times are pure
functions of the carried timestamps, the simulated times are
deterministic regardless of OS thread scheduling.

**Fault injection.**  A :class:`~repro.comms.faults.FaultPlan` bound to
the world perturbs traffic deterministically (latency jitter, transient
send failures with retry/backoff, rank stalls/crashes).  Failures are
surfaced structurally: a dead peer raises
:class:`~repro.comms.faults.RankFailedError` within the plan's op
timeout via the world's shared failure board, instead of hanging until
the wall-clock deadlock timer.  :meth:`SimMPI.run` can return partial
results (``return_partial=True``) so surviving ranks unwind cleanly with
no leaked threads.

**Data integrity.**  An :class:`~repro.comms.faults.IntegrityPolicy`
(armed automatically when the bound plan injects corruption) makes every
envelope carry an xxhash-style checksum of its pristine payload.
Receivers verify on delivery — a mismatch triggers NACK + bounded
modelled resends, then a structured
:class:`~repro.comms.faults.CorruptionDetected` — and collectives verify
each rank's contribution before combining.  The hashing cost is charged
on the model clock so the protection overhead is measurable.


The API deliberately mirrors the mpi4py subset the paper's communication
patterns need: ``Send/Recv``, ``Isend/Irecv`` + ``wait``, ``Sendrecv``,
``Allreduce``, ``Barrier``.
"""

from __future__ import annotations

import os
import threading
import time as _time
from collections import defaultdict
from dataclasses import dataclass, field
from queue import Empty, Queue
from typing import Any, Callable

import numpy as np

from ..gpu.streams import Timeline
from .cluster import ClusterSpec
from .faults import (
    CorruptionDetected,
    FaultEvent,
    FaultPlan,
    IntegrityPolicy,
    RankFailedError,
    ResidentCorruption,
    checksum_payload,
    corrupt_payload,
    schedule_sort_key,
)

__all__ = [
    "SimMPI",
    "Comm",
    "CommStats",
    "Request",
    "MPIDeadlockError",
    "RankFailure",
    "SpmdOutcome",
    "run_spmd",
]

#: How long (wall-clock seconds) a blocking receive waits before declaring
#: deadlock.  Generous for slow CI machines, small enough to fail fast;
#: override with the ``REPRO_MPI_DEADLOCK_TIMEOUT`` environment variable
#: (CI sets it to ~20 s so genuine hangs fail the job quickly).
DEADLOCK_TIMEOUT_S = float(os.environ.get("REPRO_MPI_DEADLOCK_TIMEOUT", "120"))

#: Wall-clock polling slice while waiting: how often a blocked operation
#: rechecks the failure board.  Queue waits still wake immediately on
#: message arrival; this only bounds failure-detection latency.
_POLL_S = 0.02


class MPIDeadlockError(RuntimeError):
    """A blocking operation found no matching partner in time."""


def _corrupt_contribution(
    value: Any, plan: FaultPlan, rank: int, key: int
) -> tuple[Any, str]:
    """Poison one collective contribution (pure function of the plan seed).

    Scalars get a few bits flipped in their float representation; arrays
    get a value scribble.  Contributions with no stable byte form (object
    dtype) pass through untouched."""
    seed_key = plan.coll_corrupt_key(rank, key)
    if isinstance(value, np.ndarray):
        return corrupt_payload(value, seed_key=seed_key, mode="scribble")
    arr = np.atleast_1d(np.asarray(value))
    if arr.dtype == object:
        return value, "uncorruptible contribution (object dtype)"
    bad, detail = corrupt_payload(
        arr.copy(), seed_key=seed_key, mode="bitflip", bits=3
    )
    return bad.reshape(-1)[0].item() if arr.size == 1 else bad, detail


@dataclass
class _Envelope:
    """One in-flight message."""

    data: Any
    nbytes: int
    sent_at: float  # sender's model time at post
    extra_delay: float = 0.0  # injected fault latency (model seconds)
    # --- integrity --------------------------------------------------- #
    checksum: int | None = None  # digest of the *pristine* payload
    pristine: Any = None  # uncorrupted copy (set only when data was damaged)
    corrupt_count: int = 0  # consecutive corrupted transmissions modelled


@dataclass(frozen=True)
class _FailRecord:
    """Failure-board entry: how one rank died."""

    rank: int
    op: str
    model_time: float
    mode: str  # 'crashed' | 'stalled'


class _SharedState:
    """State shared by all ranks of one SimMPI world."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.queues: dict[tuple[int, int, int], Queue] = defaultdict(Queue)
        self.queue_lock = threading.Lock()
        self.barrier = threading.Barrier(size)
        self.coll_lock = threading.Lock()
        # Per-collective slot: rank -> (sent value, entry time, digest of
        # the intended value, pristine copy).
        self.coll_slots: dict[int, dict[int, tuple[Any, float, Any, Any]]] = {}
        # --- failure board (all guarded by fail_lock) ------------------- #
        self.fail_lock = threading.Lock()
        self.failed: dict[int, _FailRecord] = {}  # loudly dead ranks
        self.stalled: dict[int, _FailRecord] = {}  # silently parked ranks
        self.finished: set[int] = set()  # ranks whose fn returned
        self.shutdown = threading.Event()  # releases parked stalled ranks
        self.fault_events: dict[int, list[FaultEvent]] = defaultdict(list)

    def queue(self, src: int, dst: int, tag: int) -> Queue:
        with self.queue_lock:
            return self.queues[(src, dst, tag)]

    def peer_fate(self, rank: int) -> _FailRecord | None:
        """Failure-board record for ``rank``, if it died."""
        with self.fail_lock:
            return self.failed.get(rank) or self.stalled.get(rank)

    def record_failure(self, rec: _FailRecord) -> None:
        board = self.stalled if rec.mode == "stalled" else self.failed
        with self.fail_lock:
            board.setdefault(rec.rank, rec)

    def any_failure(self, exclude: int) -> _FailRecord | None:
        """Lowest-rank failure other than ``exclude`` (for collectives)."""
        with self.fail_lock:
            records = [
                r
                for r in (*self.failed.values(), *self.stalled.values())
                if r.rank != exclude
            ]
        return min(records, key=lambda r: r.rank) if records else None


@dataclass
class Request:
    """Handle for a non-blocking operation (mpi4py ``Request`` analogue)."""

    _wait: Callable[[], Any]
    _done: bool = False
    _result: Any = None

    def wait(self) -> Any:
        if not self._done:
            self._result = self._wait()
            self._done = True
        return self._result


@dataclass
class CommStats:
    """Per-rank operation counters (chaos observability)."""

    sends: int = 0
    recvs: int = 0
    collectives: int = 0
    retries: int = 0  # transient send failures survived
    fault_delay_s: float = 0.0  # model time injected into this rank's traffic
    corruptions_detected: int = 0  # checksum mismatches observed here
    corruptions_corrected: int = 0  # deliveries repaired by NACK/resend
    resends: int = 0  # integrity-triggered retransmissions
    integrity_overhead_s: float = 0.0  # model time spent hashing/verifying

    def snapshot(self) -> "CommStats":
        return CommStats(
            self.sends, self.recvs, self.collectives, self.retries,
            self.fault_delay_s, self.corruptions_detected,
            self.corruptions_corrected, self.resends,
            self.integrity_overhead_s,
        )


@dataclass
class Comm:
    """One rank's view of the communicator."""

    rank: int
    size: int
    _state: _SharedState
    cluster: ClusterSpec = field(default_factory=ClusterSpec)
    timeline: Timeline | None = None
    plan: FaultPlan | None = None
    integrity: IntegrityPolicy = field(default_factory=IntegrityPolicy.off)
    stats: CommStats = field(default_factory=CommStats)
    _coll_count: int = 0
    _send_seq: dict[tuple[int, int], int] = field(default_factory=dict)
    _stall_armed: bool = True
    _resident_armed: bool = True
    _corrupt_seen: int = 0  # corrupted sends so far (plan.corrupt_budget cap)

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #

    def bind_timeline(self, timeline: Timeline) -> None:
        """Attach this rank's model clock (usually its GPU's host clock)."""
        self.timeline = timeline

    def _now(self) -> float:
        return self.timeline.host_time if self.timeline is not None else 0.0

    def _advance(self, t: float, label: str, *, fault: bool = False) -> None:
        if self.timeline is not None:
            self.timeline.host_wait_until(t, label, fault=fault)

    def _charge(self, duration: float, label: str, *, fault: bool = False) -> None:
        if self.timeline is not None and duration > 0:
            self.timeline.host_busy(label, duration, fault=fault)

    @staticmethod
    def _payload(data: Any) -> tuple[Any, int]:
        if isinstance(data, np.ndarray):
            return data.copy(), data.nbytes
        if isinstance(data, tuple):
            total = sum(
                v.nbytes for v in data if isinstance(v, np.ndarray)
            )
            copied = tuple(
                v.copy() if isinstance(v, np.ndarray) else v for v in data
            )
            return copied, max(total, 64)
        return data, 64  # small python object: header-sized

    def _check_peer(self, peer: int) -> None:
        if not 0 <= peer < self.size:
            raise ValueError(f"peer rank {peer} outside communicator of {self.size}")

    def _record_event(self, ev: FaultEvent) -> None:
        self._state.fault_events[self.rank].append(ev)

    # ------------------------------------------------------------------ #
    # Fault machinery
    # ------------------------------------------------------------------ #

    def _fault_checkpoint(self, op: str) -> None:
        """Trigger this rank's planned stall/crash once its model time
        passes the scheduled point (checked at every comms operation, the
        only places the simulated process is observable)."""
        if self.plan is None or not self._stall_armed:
            return
        spec = self.plan.stall_for(self.rank)
        if spec is None or self._now() < spec.after_s:
            return
        self._stall_armed = False
        now = self._now()
        mode = "crashed" if spec.mode == "crash" else "stalled"
        self._record_event(
            FaultEvent(now, self.rank, spec.mode, op, detail="rank dies here")
        )
        self._state.record_failure(_FailRecord(self.rank, op, now, mode))
        if spec.mode == "crash":
            raise RankFailedError(self.rank, op, now, mode="crashed")
        # Stall: model a hung process — stop responding without a word.
        # The thread parks until the world shuts down, then unwinds so no
        # thread leaks; peers detect the silence via the failure board.
        self._state.shutdown.wait()
        raise RankFailedError(self.rank, op, now, mode="stalled")

    def take_resident_corruption(self) -> tuple[ResidentCorruption, int] | None:
        """One-shot poll: the planned resident-field corruption for this
        rank (with the plan seed for the scribble pattern), once its
        model clock passes the scheduled time.  Solvers poll this each
        iteration and damage their own state — envelope checksums cannot
        see memory errors, so detection falls to the solvers'
        refresh-point invariant monitors."""
        if self.plan is None or not self._resident_armed:
            return None
        spec = self.plan.resident_for(self.rank)
        if spec is None or self._now() < spec.after_s:
            return None
        self._resident_armed = False
        self._record_event(
            FaultEvent(
                self._now(), self.rank, "resident_corrupt", "solver state",
                detail=f"scale {spec.scale:g}",
            )
        )
        return spec, self.plan.seed

    def _peer_failure(self, source: int, op: str) -> RankFailedError | None:
        fate = self._state.peer_fate(source)
        if fate is None:
            return None
        return RankFailedError(
            fate.rank,
            op,
            self._now(),
            mode=fate.mode,
            detail=f"peer died in {fate.op} at t={fate.model_time * 1e6:.3f}us",
        )

    def _wait_envelope(self, q: Queue, source: int, tag: int, op: str) -> _Envelope:
        """Blocking queue wait that converts peer death into a structured
        error instead of riding out the wall-clock deadlock timer."""
        deadline = _time.monotonic() + DEADLOCK_TIMEOUT_S
        while True:
            try:
                return q.get(timeout=_POLL_S)
            except Empty:
                pass
            # Messages drain before fates are consulted: q.get above sees
            # anything the peer posted before it died.
            failure = self._peer_failure(source, op)
            if failure is not None and q.empty():
                raise failure
            with self._state.fail_lock:
                peer_done = source in self._state.finished
            if peer_done and q.empty():
                raise MPIDeadlockError(
                    f"rank {self.rank}: {op}: rank {source} finished without "
                    f"sending (tag {tag}) — deadlock"
                )
            if _time.monotonic() > deadline:
                raise MPIDeadlockError(
                    f"rank {self.rank}: no message from rank {source} tag {tag} "
                    f"within {DEADLOCK_TIMEOUT_S}s — deadlock?"
                )

    # ------------------------------------------------------------------ #
    # Point to point
    # ------------------------------------------------------------------ #

    def send(self, data: Any, dest: int, tag: int = 0, *, nbytes: int | None = None) -> None:
        """Buffered send: never blocks (envelopes queue at the receiver).

        ``nbytes`` overrides the wire-size accounting — required in
        timing-only mode, where face messages carry no actual arrays but
        must still cost their true size on the network model.

        Under a fault plan the send may suffer transient failures (each
        retried after exponential model-time backoff) and the message may
        pick up injected latency, all sampled deterministically from the
        plan's seed and this link's message sequence number.
        """
        self._check_peer(dest)
        self._fault_checkpoint("MPI_Send")
        self.stats.sends += 1
        payload, auto_bytes = self._payload(data)
        wire_bytes = nbytes if nbytes is not None else auto_bytes
        extra_delay = 0.0
        pristine: Any = None
        corrupt_count = 0
        checksum: int | None = None
        if self.plan is not None:
            seq = self._send_seq.get((dest, tag), 0)
            self._send_seq[(dest, tag)] = seq + 1
            failures = self.plan.send_failures(self.rank, dest, tag, seq)
            for attempt in range(failures):
                backoff = self.plan.backoff_s(attempt)
                self._record_event(
                    FaultEvent(
                        self._now(), self.rank, "send_retry", "MPI_Send",
                        peer=dest, delay_s=backoff,
                        detail=f"attempt {attempt + 1} failed",
                    )
                )
                self._charge(backoff, f"fault:retry(->{dest})", fault=True)
                self.stats.retries += 1
                self.stats.fault_delay_s += backoff
            kind = self.cluster.link_kind(self.rank, dest)
            extra_delay, fkind = self.plan.extra_latency(
                kind, self.rank, dest, tag, seq
            )
            if extra_delay > 0.0:
                self._record_event(
                    FaultEvent(
                        self._now(), self.rank, fkind, "MPI_Send",
                        peer=dest, delay_s=extra_delay, detail=f"link {kind}",
                    )
                )
                self.stats.fault_delay_s += extra_delay
            lf = self.plan.link(kind)
            budget = self.plan.corrupt_budget
            remaining = (
                budget - self._corrupt_seen if budget >= 0 else -1
            )
            if lf.corrupting and remaining != 0:
                # The budget caps corrupted *transmissions* (resends
                # included), so a budget-1 probability-1 plan corrupts
                # exactly one delivery and the first resend goes clean —
                # the deterministic detect-and-recover regression plan.
                limit = (
                    self.integrity.max_resend
                    if remaining < 0
                    else min(self.integrity.max_resend, remaining - 1)
                )
                corrupt_count, mode = self.plan.corrupt_attempts(
                    kind, self.rank, dest, tag, seq, limit=limit,
                )
                if corrupt_count:
                    self._corrupt_seen += corrupt_count
                    bad, dmg = corrupt_payload(
                        payload,
                        seed_key=self.plan.corrupt_key(
                            kind, self.rank, dest, tag, seq
                        ),
                        mode=mode,
                        bits=lf.bitflip_bits,
                    )
                    if bad is not payload:  # real data was damaged
                        pristine, payload = payload, bad
                    self._record_event(
                        FaultEvent(
                            self._now(), self.rank, mode, "MPI_Send",
                            peer=dest,
                            detail=f"link {kind}; {dmg}"
                            + (
                                f"; survives {corrupt_count - 1} resend(s)"
                                if corrupt_count > 1
                                else ""
                            ),
                        )
                    )
        self._charge(self.cluster.params.mpi_overhead_s, "MPI_Send")
        if self.integrity.verify:
            checksum = checksum_payload(
                pristine if pristine is not None else payload
            )
            cost = self.integrity.cost_s(wire_bytes)
            self._charge(cost, f"integrity:hash(->{dest})")
            self.stats.integrity_overhead_s += cost
        env = _Envelope(
            payload,
            wire_bytes,
            self._now(),
            extra_delay,
            checksum=checksum,
            pristine=pristine,
            corrupt_count=corrupt_count,
        )
        self._state.queue(self.rank, dest, tag).put(env)

    def recv(
        self, source: int, tag: int = 0, *, with_checksum: bool = False
    ) -> Any:
        """Blocking receive; completes at the modelled arrival time (plus
        any fault latency the message picked up in flight).

        With verification armed, the envelope's checksum is checked on
        delivery: a mismatch triggers NACK + bounded modelled resends and
        finally :class:`CorruptionDetected`.  ``with_checksum=True``
        returns ``(data, checksum)`` so a caller can re-verify after
        further processing (the ghost-zone scatter does)."""
        self._check_peer(source)
        self._fault_checkpoint("MPI_Recv")
        self.stats.recvs += 1
        op = f"MPI_Recv(from {source})"
        q = self._state.queue(source, self.rank, tag)
        env = self._wait_envelope(q, source, tag, op)
        arrival = env.sent_at + self.cluster.message_time(
            source, self.rank, env.nbytes
        )
        self._advance(arrival, op)
        if env.extra_delay > 0.0:
            self._advance(
                arrival + env.extra_delay, f"fault:late(from {source})", fault=True
            )
        data = self._verify_envelope(env, source, op)
        if with_checksum:
            return data, env.checksum
        return data

    def _delivery_corrupt(self, env: _Envelope, delivery: int) -> bool:
        """Whether delivery number ``delivery`` (1-based) of this envelope
        arrives corrupted.  The first delivery of a data-bearing payload
        is judged by the *actual* checksum — detection is real, not
        modelled; resends (and timing-only payloads, which carry no bytes
        to damage) consult the envelope's sampled corruption count."""
        if env.checksum is not None and delivery == 1 and (
            env.pristine is not None or env.corrupt_count == 0
        ):
            return checksum_payload(env.data) != env.checksum
        return delivery <= env.corrupt_count

    def _verify_envelope(self, env: _Envelope, source: int, op: str) -> Any:
        """Checksum verification with NACK + bounded resend.

        Sends are buffered, so the retransmission loop is modelled on the
        receiving side: the envelope carries how many consecutive
        transmissions arrive corrupted (independently redrawn from the
        plan seed), and each NACK costs a full extra message time on the
        model clock.  A mismatch outliving ``max_resend`` raises
        :class:`CorruptionDetected` — never a silent delivery.
        """
        if not self.integrity.verify or env.checksum is None:
            return env.data
        cost = self.integrity.cost_s(env.nbytes)
        self._charge(cost, f"integrity:verify(from {source})")
        self.stats.integrity_overhead_s += cost
        delivery = 1
        while self._delivery_corrupt(env, delivery):
            self.stats.corruptions_detected += 1
            actual = (
                checksum_payload(env.data)
                if env.pristine is not None
                else (env.checksum ^ 0xFFFFFFFF)  # modelled mismatch
            )
            if delivery > self.integrity.max_resend:
                self._record_event(
                    FaultEvent(
                        self._now(), self.rank, "corruption_detected", op,
                        peer=source,
                        detail=f"unrecoverable: {delivery - 1} resend(s) exhausted",
                    )
                )
                raise CorruptionDetected(
                    self.rank, op, self._now(),
                    link=self.cluster.link_kind(source, self.rank),
                    expected=env.checksum, actual=actual,
                    detail=f"{delivery - 1} resend(s) exhausted",
                )
            resend = (
                self.cluster.message_time(source, self.rank, env.nbytes) + cost
            )
            self._charge(resend, f"fault:resend(from {source})", fault=True)
            self.stats.resends += 1
            self.stats.fault_delay_s += resend
            self._record_event(
                FaultEvent(
                    self._now(), self.rank, "nack_resend", op, peer=source,
                    delay_s=resend,
                    detail=(
                        f"delivery {delivery}: checksum {actual:#010x} != "
                        f"{env.checksum:#010x}; NACK"
                    ),
                )
            )
            delivery += 1
        if delivery > 1:
            self.stats.corruptions_corrected += 1
            self._record_event(
                FaultEvent(
                    self._now(), self.rank, "corruption_detected", op,
                    peer=source,
                    detail=f"corrected after {delivery - 1} resend(s)",
                )
            )
            return env.pristine if env.pristine is not None else env.data
        return env.data

    def isend(self, data: Any, dest: int, tag: int = 0, *, nbytes: int | None = None) -> Request:
        """Non-blocking send (our sends are buffered, so it completes
        immediately; the host still pays the posting overhead)."""
        self.send(data, dest, tag, nbytes=nbytes)
        return Request(_wait=lambda: None, _done=True)

    def irecv(self, source: int, tag: int = 0) -> Request:
        """Non-blocking receive; ``wait()`` performs the blocking part."""
        self._check_peer(source)
        self._charge(self.cluster.params.mpi_overhead_s, "MPI_Irecv")
        return Request(_wait=lambda: self.recv(source, tag))

    def sendrecv(
        self, data: Any, dest: int, source: int, *, sendtag: int = 0, recvtag: int = 0
    ) -> Any:
        """Combined send/receive (safe because sends never block)."""
        self.send(data, dest, sendtag)
        return self.recv(source, recvtag)

    # ------------------------------------------------------------------ #
    # Collectives
    # ------------------------------------------------------------------ #

    def _barrier_wait(self, op: str) -> None:
        """Barrier entry that surfaces peer death as RankFailedError."""
        timeout = (
            self.plan.op_timeout_s
            if self.plan is not None and self.plan.lethal
            else DEADLOCK_TIMEOUT_S
        )
        try:
            self._state.barrier.wait(timeout=timeout)
        except threading.BrokenBarrierError:
            failure = self._state.any_failure(exclude=self.rank)
            if failure is not None:
                raise RankFailedError(
                    failure.rank,
                    op,
                    self._now(),
                    mode=failure.mode,
                    detail=(
                        f"peer died in {failure.op} "
                        f"at t={failure.model_time * 1e6:.3f}us"
                    ),
                ) from None
            raise

    def _collective(
        self,
        value: Any,
        combine: Callable[[list[Any]], Any],
        nbytes: int,
        op: str = "MPI_Allreduce",
    ) -> Any:
        """Generic synchronizing collective with model-time semantics:
        everyone leaves at ``max(entry times) + allreduce_time``.

        With verification armed, each contribution carries a digest of
        the value the rank *meant* to contribute; every rank verifies all
        contributions before combining.  A poisoned contribution is
        repaired from the pristine copy and costs one extra reduction
        round (modelled NACK + re-contribution); detections are counted
        on rank 0 only so aggregate stats stay world-size independent.
        With verification off, the poisoned value flows into the combine
        on every rank — deterministically, silently wrong.
        """
        self._fault_checkpoint(op)
        self.stats.collectives += 1
        key = self._coll_count
        self._coll_count += 1
        sent, pristine, chk = value, value, None
        if (
            self.plan is not None
            and value is not None
            and self.plan.coll_corrupt(self.rank, key)
        ):
            sent, dmg = _corrupt_contribution(value, self.plan, self.rank, key)
            self._record_event(
                FaultEvent(
                    self._now(), self.rank, "coll_corrupt", op,
                    detail=f"collective #{key}; {dmg}",
                )
            )
        if self.integrity.verify:
            chk = checksum_payload(pristine)
            cost = self.integrity.cost_s(max(nbytes, 16))
            self._charge(cost, f"integrity:hash({op})")
            self.stats.integrity_overhead_s += cost
        with self._state.coll_lock:
            slot = self._state.coll_slots.setdefault(key, {})
            slot[self.rank] = (sent, self._now(), chk, pristine)
        self._barrier_wait(op)
        entries = self._state.coll_slots[key]
        latest = max(entries[r][1] for r in range(self.size))
        values = []
        n_bad = 0
        for r in range(self.size):
            sv, _, sc, pv = entries[r]
            if (
                self.integrity.verify
                and sc is not None
                and checksum_payload(sv) != sc
            ):
                n_bad += 1
                values.append(pv)
            else:
                values.append(sv)
        result = combine(values)
        completion = latest + self.cluster.allreduce_time(self.size, nbytes)
        if n_bad:
            # Each poisoned contribution costs one extra reduction round
            # (NACK + re-contribution) before anyone can leave.
            penalty = n_bad * self.cluster.allreduce_time(self.size, nbytes)
            self._advance(completion, op)
            self._advance(
                completion + penalty, f"fault:coll_resend({op})", fault=True
            )
            completion += penalty
            if self.rank == 0:
                self.stats.corruptions_detected += n_bad
                self.stats.corruptions_corrected += n_bad
                self.stats.resends += n_bad
                self.stats.fault_delay_s += penalty
                self._record_event(
                    FaultEvent(
                        completion, 0, "corruption_detected", op,
                        delay_s=penalty,
                        detail=(
                            f"{n_bad} poisoned contribution(s) to collective "
                            f"#{key}; re-contributed"
                        ),
                    )
                )
        else:
            self._advance(completion, op)
        self._barrier_wait(op)
        if self.rank == 0:
            with self._state.coll_lock:
                del self._state.coll_slots[key]
        return result

    def allreduce(self, value: float | complex | np.ndarray) -> Any:
        """Global sum — the only reduction the solvers need (Section VI-E)."""
        nbytes = value.nbytes if isinstance(value, np.ndarray) else 16
        def _sum(values: list[Any]) -> Any:
            total = values[0]
            for v in values[1:]:
                total = total + v
            return total

        return self._collective(value, _sum, nbytes)

    def allgather(self, value: Any) -> list[Any]:
        nbytes = value.nbytes if isinstance(value, np.ndarray) else 64
        return self._collective(value, lambda vs: list(vs), nbytes, op="MPI_Allgather")

    def barrier(self) -> None:
        self._collective(None, lambda vs: None, 0, op="MPI_Barrier")

    def bcast(self, value: Any, root: int = 0) -> Any:
        return self._collective(value, lambda vs: vs[root], 64, op="MPI_Bcast")


@dataclass(frozen=True)
class RankFailure:
    """One rank's demise, as reported by :class:`SpmdOutcome`."""

    rank: int
    op: str
    model_time: float
    mode: str  # 'crashed' | 'stalled' | 'collateral'
    error: BaseException


@dataclass
class SpmdOutcome:
    """Result of :meth:`SimMPI.run` with ``return_partial=True``.

    Graceful-degradation report: per-rank results (``None`` for dead
    ranks), structured failures, the injected fault schedule, and the
    per-rank comm statistics.  All threads are joined by the time this
    is returned — partial does not mean leaky.
    """

    results: list[Any]
    failures: dict[int, RankFailure]
    fault_events: list[FaultEvent]
    stats: list[CommStats]

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def survivors(self) -> list[int]:
        return [r for r in range(len(self.results)) if r not in self.failures]

    def root_failure(self) -> RankFailure:
        """The failure that started it: planned deaths outrank collateral
        fallout (peers observing the death, broken barriers), earliest
        model time breaks ties.  Raises ``ValueError`` when nothing
        failed."""
        if not self.failures:
            raise ValueError("outcome has no failures")
        ranked = sorted(
            self.failures.values(),
            key=lambda f: (f.mode == "collateral", f.model_time, f.rank),
        )
        return ranked[0]


class SimMPI:
    """An MPI "world": create once, then :meth:`run` an SPMD function."""

    def __init__(
        self,
        size: int,
        cluster: ClusterSpec | None = None,
        fault_plan: FaultPlan | None = None,
        integrity: IntegrityPolicy | None = None,
    ) -> None:
        if size < 1:
            raise ValueError("world size must be >= 1")
        if fault_plan is not None:
            for spec in fault_plan.stalls:
                if not 0 <= spec.rank < size:
                    raise ValueError(
                        f"fault plan stalls rank {spec.rank}, world has {size}"
                    )
            for rc in fault_plan.resident:
                if not 0 <= rc.rank < size:
                    raise ValueError(
                        f"fault plan corrupts rank {rc.rank}, world has {size}"
                    )
        self.size = size
        self.cluster = cluster or ClusterSpec()
        self.fault_plan = fault_plan
        if integrity is None:
            # Verification arms itself exactly when the plan injects
            # corruption: healthy runs (and latency/crash-only chaos
            # runs) stay byte-identical to the unprotected runtime, so
            # golden timings hold; pass an explicit policy to measure
            # the always-on overhead.
            integrity = (
                IntegrityPolicy()
                if fault_plan is not None and fault_plan.injects_corruption
                else IntegrityPolicy.off()
            )
        self.integrity = integrity
        self._state = _SharedState(size)
        self._comms: list[Comm] | None = None

    def comm(self, rank: int) -> Comm:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} outside world of size {self.size}")
        return Comm(
            rank=rank,
            size=self.size,
            _state=self._state,
            cluster=self.cluster,
            plan=self.fault_plan,
            integrity=self.integrity,
            # A default clock so model time advances (and time-based fault
            # plans fire) even for bare workloads; the solver rebinds this
            # to the rank's GPU host clock via bind_timeline().
            timeline=Timeline(),
        )

    def fault_events(self) -> list[FaultEvent]:
        """All injected faults, merged across ranks in a stable order.

        Per-rank lists are walked in rank order (never dict insertion
        order, which tracks thread timing) and sorted with the full
        schedule key, so the merged schedule is byte-reproducible."""
        merged = [
            ev
            for rank in sorted(self._state.fault_events)
            for ev in self._state.fault_events[rank]
        ]
        return sorted(merged, key=schedule_sort_key)

    def comm_stats(self) -> list[CommStats]:
        """Per-rank comm counters of the last :meth:`run` (snapshots)."""
        if self._comms is None:
            return []
        return [c.stats.snapshot() for c in self._comms]

    # ------------------------------------------------------------------ #
    # SPMD driver
    # ------------------------------------------------------------------ #

    def run(
        self,
        fn: Callable[[Comm], Any],
        *,
        timeout_s: float = 600.0,
        return_partial: bool = False,
    ) -> list[Any] | SpmdOutcome:
        """Run ``fn(comm)`` on every rank (threads); return per-rank results.

        Default mode re-raises any rank's exception in the caller,
        annotated with the rank, after all threads have been joined.
        With ``return_partial=True`` nothing is raised: a
        :class:`SpmdOutcome` reports surviving ranks' results alongside
        structured failures — the graceful-degradation path for chaos
        runs.
        """
        state = self._state
        results: list[Any] = [None] * self.size
        errors: list[tuple[int, BaseException]] = []
        comms = [self.comm(r) for r in range(self.size)]
        self._comms = comms

        def worker(rank: int) -> None:
            try:
                results[rank] = fn(comms[rank])
                with state.fail_lock:
                    state.finished.add(rank)
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                errors.append((rank, exc))
                # Planned stalls/crashes already registered themselves;
                # anything else (user code, collateral) goes on the board
                # so peers blocked on this rank unwind promptly.
                state.record_failure(
                    _FailRecord(rank, "user code", comms[rank]._now(), "crashed")
                )
                # Unblock peers stuck in barriers.
                state.barrier.abort()

        threads = [
            threading.Thread(target=worker, args=(r,), name=f"simmpi-rank{r}")
            for r in range(self.size)
        ]
        for t in threads:
            t.start()
        deadline = _time.monotonic() + timeout_s
        try:
            while any(t.is_alive() for t in threads):
                if _time.monotonic() > deadline:
                    break
                alive_ranks = {
                    r for r, t in enumerate(threads) if t.is_alive()
                }
                with state.fail_lock:
                    parked = set(state.stalled)
                if alive_ranks and alive_ranks <= parked:
                    # Everything still running is a parked stalled rank:
                    # release them so their threads unwind and join.
                    state.shutdown.set()
                next(t for t in threads if t.is_alive()).join(timeout=0.05)
        finally:
            state.shutdown.set()
        for t in threads:
            t.join(timeout=5.0)
        alive = [t.name for t in threads if t.is_alive()]

        if return_partial:
            return self._partial_outcome(results, errors, alive, comms)
        if alive and not errors:
            raise MPIDeadlockError(f"ranks did not finish: {alive}")
        if errors:
            rank, exc = self._primary_error(errors)
            wrapped = RuntimeError(f"rank {rank} failed: {exc!r}")
            wrapped.fault_events = self.fault_events()
            raise wrapped from exc
        return results

    @staticmethod
    def _primary_error(
        errors: list[tuple[int, BaseException]]
    ) -> tuple[int, BaseException]:
        """Prefer the root cause over the fallout it triggered: collateral
        BrokenBarrierErrors and peers' observations of *another* rank's
        death rank below the failure itself."""

        def is_collateral(rank: int, exc: BaseException) -> bool:
            if isinstance(exc, threading.BrokenBarrierError):
                return True
            return isinstance(exc, RankFailedError) and exc.rank != rank
        primary = [e for e in errors if not is_collateral(*e)] or errors
        return sorted(primary, key=lambda e: e[0])[0]

    def _partial_outcome(
        self,
        results: list[Any],
        errors: list[tuple[int, BaseException]],
        alive: list[str],
        comms: list[Comm],
    ) -> SpmdOutcome:
        failures: dict[int, RankFailure] = {}
        for rank, exc in sorted(errors, key=lambda e: e[0]):
            if rank in failures:
                continue
            if isinstance(exc, RankFailedError):
                mode = exc.mode if exc.rank == rank else "collateral"
                failures[rank] = RankFailure(
                    rank, exc.op, exc.model_time, mode, exc
                )
            else:
                failures[rank] = RankFailure(
                    rank, "user code", comms[rank]._now(), "collateral"
                    if isinstance(exc, threading.BrokenBarrierError)
                    else "crashed", exc,
                )
        for name in alive:  # leaked thread: report, never hide
            rank = int(name.removeprefix("simmpi-rank"))
            failures.setdefault(
                rank,
                RankFailure(
                    rank, "unknown", comms[rank]._now(), "stalled",
                    MPIDeadlockError(f"{name} did not finish"),
                ),
            )
        for rank in failures:
            results[rank] = None
        return SpmdOutcome(
            results=results,
            failures=failures,
            fault_events=self.fault_events(),
            stats=[c.stats.snapshot() for c in comms],
        )


def run_spmd(
    size: int,
    fn: Callable[[Comm], Any],
    cluster: ClusterSpec | None = None,
    fault_plan: FaultPlan | None = None,
    integrity: IntegrityPolicy | None = None,
    **kwargs,
) -> list[Any] | SpmdOutcome:
    """One-shot convenience: build a world and run ``fn`` on every rank."""
    return SimMPI(size, cluster, fault_plan, integrity).run(fn, **kwargs)
