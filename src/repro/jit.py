"""Optional numba JIT layer: one import-time decision for the package.

The hot numerical loops (the dslash stencil, the clover site-block
matvec, the fused solver reductions) each exist in two forms:

* a **vectorized NumPy** form — the trusted reference every test pins;
* a **loop form** written in the numba-compatible subset of Python
  (plain indexing, no fancy broadcasting), compiled with ``@njit`` when
  numba is importable.

This module makes the selection *once, at import*: if numba is present
and ``REPRO_NO_JIT`` is unset, :func:`maybe_njit` returns the real
``numba.njit``; otherwise it is an identity decorator and the package
runs on the NumPy paths with zero overhead and zero new dependencies
(the container image does not ship numba; CI's fast lane additionally
pins ``REPRO_NO_JIT=1`` to prove the fallback stays first-class).

The loop forms remain callable *uncompiled* — they are ordinary Python
functions — which is how the test suite proves jit-vs-NumPy agreement
even on hosts without numba: the same source that numba would compile
is executed interpreted on a small lattice and compared bit-for-bit
against the vectorized path.
"""

from __future__ import annotations

import os

__all__ = [
    "HAVE_NUMBA",
    "JIT_ENABLED",
    "backend",
    "maybe_njit",
]

#: ``REPRO_NO_JIT=1`` forces the NumPy paths even when numba is present
#: (the CI fast lane runs the whole suite this way).
_DISABLED = os.environ.get("REPRO_NO_JIT", "").strip() not in ("", "0")

try:  # pragma: no cover - exercised only when numba is installed
    if _DISABLED:
        raise ImportError("REPRO_NO_JIT set")
    from numba import njit as _numba_njit

    HAVE_NUMBA = True
except ImportError:
    _numba_njit = None
    HAVE_NUMBA = False

#: True when the compiled fast paths are live for this process.
JIT_ENABLED = HAVE_NUMBA and not _DISABLED


def backend() -> str:
    """``"numba"`` when the compiled fast paths are live, else ``"numpy"``."""
    return "numba" if JIT_ENABLED else "numpy"


def maybe_njit(*args, **kwargs):
    """``numba.njit`` when live, identity decorator otherwise.

    Usable both bare (``@maybe_njit``) and parametrized
    (``@maybe_njit(cache=True)``), like ``njit`` itself.
    """
    if JIT_ENABLED:  # pragma: no cover - numba not in the test image
        return _numba_njit(*args, **kwargs)
    if len(args) == 1 and callable(args[0]) and not kwargs:
        return args[0]

    def deco(fn):
        return fn

    return deco
