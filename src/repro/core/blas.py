"""Solver linear algebra on device spinor fields (paper Section V-E).

QUDA "provides the additional vector-vector linear algebra (BLAS1-like)
kernels needed to implement the linear solvers", fusing operations
"wherever possible to reduce memory traffic".  This module provides that
kernel set on :class:`~repro.gpu.fields.DeviceSpinorField`:

* every function is *one* device kernel (one traffic pass) and charges
  the timeline with its exact byte/flop counts;
* the fused kernels (``update_p``, ``caxpy_pair``, ``axpy_norm``,
  ``cdot_norm``) each replace 2-3 elementary BLAS1 calls in the BiCGstab
  loop — the reason the full solver runs only 10-20% slower than the
  matrix-vector product in isolation rather than far worse;
* reduction kernels compute the *local* partial sum and complete it with
  a QMP global sum (Section VI-E: "the only other required addition to
  the code was the insertion of MPI reductions for each of the linear
  algebra reduction kernels").  Reductions never see the ghost end zone
  because device fields keep it outside the body array — the design
  choice of Section VI-C ("this end zone can be simply excluded ensuring
  correctness").

In timing-only mode the kernels charge their cost and reductions return
0.0; the solvers run a fixed iteration schedule in that mode.
"""

from __future__ import annotations

import numpy as np

from ..comms.qmp import QMPMachine
from ..gpu.device import VirtualGPU
from ..gpu.fields import DeviceSpinorField
from ..lattice import hotloops

__all__ = [
    "copy",
    "zero",
    "axpy",
    "xpay",
    "axpby",
    "scale",
    "update_p",
    "caxpy_pair",
    "norm2",
    "cdot",
    "redot",
    "cdot_norm",
    "axpy_norm",
]

#: Complex numbers per site of a spinor (4 spins x 3 colors).
_CPLX_PER_SITE = 12


def _n_complex(field: DeviceSpinorField) -> int:
    return field.sites * _CPLX_PER_SITE


def _launch(gpu: VirtualGPU, name: str, fields, n_passes: int, flops: int, occupancy: float) -> None:
    """Charge one streaming kernel: ``n_passes`` full-vector traffics."""
    ref = fields[0]
    gpu.launch(
        name,
        ref.precision,
        bytes_moved=n_passes * ref.body_bytes,
        flops=flops,
        occupancy=occupancy,
    )


def _reduce(gpu: VirtualGPU, qmp: QMPMachine | None, value):
    """Complete a reduction: read the partial sum back, then global-sum.

    The host needs the kernel's result, so every reduction pays a tiny
    synchronous device-to-host copy (which also drains stream 0) before
    the QMP sum — the "occasional small messages needed to complete
    global sums" of Section III, and the reason reductions are a latency
    cost the solver cannot hide.
    """
    gpu.memcpy("reduction_result_d2h", "d2h", 32, asynchronous=False)
    if qmp is not None:
        return qmp.global_sum(value)
    return value


# ------------------------------------------------------------------------ #
# Streaming (non-reduction) kernels
# ------------------------------------------------------------------------ #


def copy(gpu: VirtualGPU, src: DeviceSpinorField, dst: DeviceSpinorField, *, occupancy: float = 1.0) -> None:
    """``dst = src`` — also the precision-conversion kernel of the mixed
    precision solver (traffic is read-at-src-precision,
    write-at-dst-precision)."""
    nbytes = src.body_bytes + dst.body_bytes
    gpu.launch("blas_copy", dst.precision, bytes_moved=nbytes, flops=0, occupancy=occupancy)
    if gpu.execute:
        dst.set(src.get())


def zero(gpu: VirtualGPU, x: DeviceSpinorField, *, occupancy: float = 1.0) -> None:
    """``x = 0`` (write-only pass)."""
    gpu.launch("blas_zero", x.precision, bytes_moved=x.body_bytes, flops=0, occupancy=occupancy)
    x.zero()


def scale(gpu: VirtualGPU, a: complex, x: DeviceSpinorField, *, occupancy: float = 1.0) -> None:
    """``x = a * x``."""
    _launch(gpu, "blas_scal", (x,), 2, 6 * _n_complex(x), occupancy)
    if gpu.execute:
        x.set_working(np.asarray(a, dtype=x.precision.complex_compute_dtype) * x.working())


def axpy(gpu: VirtualGPU, a: complex, x: DeviceSpinorField, y: DeviceSpinorField, *, occupancy: float = 1.0) -> None:
    """``y = a x + y`` (a may be complex: QUDA's caxpy)."""
    _launch(gpu, "blas_axpy", (x, y), 3, 8 * _n_complex(x), occupancy)
    if gpu.execute:
        y.set_working(y.working() + np.asarray(a, dtype=y.precision.complex_compute_dtype) * x.working())


def xpay(gpu: VirtualGPU, x: DeviceSpinorField, a: complex, y: DeviceSpinorField, *, occupancy: float = 1.0) -> None:
    """``y = x + a y``."""
    _launch(gpu, "blas_xpay", (x, y), 3, 8 * _n_complex(x), occupancy)
    if gpu.execute:
        y.set_working(x.working() + np.asarray(a, dtype=y.precision.complex_compute_dtype) * y.working())


def axpby(gpu: VirtualGPU, a: complex, x: DeviceSpinorField, b: complex, y: DeviceSpinorField, *, occupancy: float = 1.0) -> None:
    """``y = a x + b y``."""
    _launch(gpu, "blas_axpby", (x, y), 3, 14 * _n_complex(x), occupancy)
    if gpu.execute:
        cdtype = y.precision.complex_compute_dtype
        y.set_working(
            np.asarray(a, dtype=cdtype) * x.working()
            + np.asarray(b, dtype=cdtype) * y.working()
        )


def update_p(
    gpu: VirtualGPU,
    r: DeviceSpinorField,
    p: DeviceSpinorField,
    v: DeviceSpinorField,
    beta: complex,
    omega: complex,
    *,
    occupancy: float = 1.0,
) -> None:
    """BiCGstab search-direction update, fused:
    ``p = r + beta * (p - omega * v)`` — one pass instead of three."""
    _launch(gpu, "blas_bicgstab_p", (r, p, v), 4, 16 * _n_complex(r), occupancy)
    if gpu.execute:
        cdtype = p.precision.complex_compute_dtype
        beta_c = np.asarray(beta, dtype=cdtype)
        omega_c = np.asarray(omega, dtype=cdtype)
        p.set_working(r.working() + beta_c * (p.working() - omega_c * v.working()))


def caxpy_pair(
    gpu: VirtualGPU,
    a: complex,
    x: DeviceSpinorField,
    b: complex,
    y: DeviceSpinorField,
    z: DeviceSpinorField,
    *,
    occupancy: float = 1.0,
) -> None:
    """Fused double update ``z = z + a x + b y`` (the BiCGstab solution
    update ``x += alpha p + omega s``)."""
    _launch(gpu, "blas_caxpy_pair", (x, y, z), 4, 16 * _n_complex(x), occupancy)
    if gpu.execute:
        cdtype = z.precision.complex_compute_dtype
        z.set_working(
            z.working()
            + np.asarray(a, dtype=cdtype) * x.working()
            + np.asarray(b, dtype=cdtype) * y.working()
        )


# ------------------------------------------------------------------------ #
# Reduction kernels
# ------------------------------------------------------------------------ #


def norm2(
    gpu: VirtualGPU,
    x: DeviceSpinorField,
    qmp: QMPMachine | None = None,
    *,
    occupancy: float = 1.0,
) -> float:
    """Global ``|x|^2``.  The end zone never contributes (Section VI-C)."""
    _launch(gpu, "blas_norm2", (x,), 1, 4 * _n_complex(x), occupancy)
    local = 0.0
    if gpu.execute:
        w = x.working()
        if hotloops.JIT_ENABLED:  # pragma: no cover - numba not in image
            local = float(hotloops.norm2_loops(np.ascontiguousarray(w)))
        else:
            local = float(np.vdot(w, w).real)
    return float(_reduce(gpu, qmp, local))


def cdot(
    gpu: VirtualGPU,
    x: DeviceSpinorField,
    y: DeviceSpinorField,
    qmp: QMPMachine | None = None,
    *,
    occupancy: float = 1.0,
) -> complex:
    """Global ``<x, y>`` (conjugate-linear in ``x``)."""
    _launch(gpu, "blas_cdot", (x, y), 2, 8 * _n_complex(x), occupancy)
    local = 0.0 + 0.0j
    if gpu.execute:
        if hotloops.JIT_ENABLED:  # pragma: no cover - numba not in image
            local = complex(
                hotloops.cdot_loops(
                    np.ascontiguousarray(x.working()),
                    np.ascontiguousarray(y.working()),
                )
            )
        else:
            local = complex(np.vdot(x.working(), y.working()))
    return complex(_reduce(gpu, qmp, local))


def redot(
    gpu: VirtualGPU,
    x: DeviceSpinorField,
    y: DeviceSpinorField,
    qmp: QMPMachine | None = None,
    *,
    occupancy: float = 1.0,
) -> float:
    """Global ``Re <x, y>`` (all CG needs: its operator is Hermitian)."""
    _launch(gpu, "blas_redot", (x, y), 2, 4 * _n_complex(x), occupancy)
    local = 0.0
    if gpu.execute:
        if hotloops.JIT_ENABLED:  # pragma: no cover - numba not in image
            local = float(
                hotloops.cdot_loops(
                    np.ascontiguousarray(x.working()),
                    np.ascontiguousarray(y.working()),
                ).real
            )
        else:
            local = float(np.vdot(x.working(), y.working()).real)
    return float(_reduce(gpu, qmp, local))


def cdot_norm(
    gpu: VirtualGPU,
    x: DeviceSpinorField,
    y: DeviceSpinorField,
    qmp: QMPMachine | None = None,
    *,
    occupancy: float = 1.0,
) -> tuple[complex, float]:
    """Fused ``(<x, y>, |x|^2)`` in one pass — BiCGstab's omega step."""
    _launch(gpu, "blas_cdot_norm", (x, y), 2, 12 * _n_complex(x), occupancy)
    local = np.zeros(3)
    if gpu.execute:
        xw, yw = x.working(), y.working()
        d = np.vdot(xw, yw)
        local = np.array([d.real, d.imag, np.vdot(xw, xw).real])
    total = np.asarray(_reduce(gpu, qmp, local))
    return complex(total[0], total[1]), float(total[2])


def axpy_norm(
    gpu: VirtualGPU,
    a: complex,
    x: DeviceSpinorField,
    y: DeviceSpinorField,
    qmp: QMPMachine | None = None,
    *,
    occupancy: float = 1.0,
) -> float:
    """Fused ``y += a x; return |y|^2`` — the residual-update-and-check
    step, saving a full extra pass per iteration."""
    _launch(gpu, "blas_axpy_norm", (x, y), 3, 12 * _n_complex(x), occupancy)
    local = 0.0
    if gpu.execute:
        cdtype = y.precision.complex_compute_dtype
        if hotloops.JIT_ENABLED:  # pragma: no cover - numba not in image
            out = np.ascontiguousarray(y.working())
            fused = hotloops.axpy_norm_loops(
                complex(np.asarray(a, dtype=cdtype)),
                np.ascontiguousarray(x.working()),
                out,
            )
            y.set_working(out)
            # The reduction must read what was *stored*: half precision
            # quantizes on store, so re-reduce then; the wider dtypes
            # store exactly what the fused pass computed.
            w = y.working()
            local = (
                float(fused)
                if not y.precision.needs_norm
                else float(hotloops.norm2_loops(np.ascontiguousarray(w)))
            )
        else:
            out = y.working() + np.asarray(a, dtype=cdtype) * x.working()
            y.set_working(out)
            # The reduction reads what was *stored* (quantized for half).
            w = y.working()
            local = float(np.vdot(w, w).real)
    return float(_reduce(gpu, qmp, local))
