"""Solve checkpoints at reliable-update refresh points.

The reliable-update scheme (paper Section V-D) recomputes the *true*
full-precision residual ``r = b - A y`` every time the sloppy residual
has dropped by the δ factor.  At that instant the high-precision solution
``y`` is globally consistent and its quality is *known* — which makes the
refresh the natural (and free) place to checkpoint: no extra reductions,
no extra matrix applications, just a device→host download of ``y``.

:class:`SolveCheckpoint` is the serializable snapshot — enough state to
resume the Krylov solve (solution, iteration count, residual history,
solver identity, sloppy precision).  Serialization is a packed binary
record (:mod:`repro.codec`): struct-packed tagged values behind a
versioned, CRC32-protected frame, so the bytes are a pure function of
the state — no zip timestamps, no pickle — and two same-seed runs
produce byte-identical checkpoints.  A torn or corrupted checkpoint is
rejected (``ValueError``) on load, and the store falls back to the
previous verified commit instead of resuming a solve from damaged
state.  Snapshots written by the pre-codec format (``RPCK\\x01`` magic,
JSON header + ``.npy`` stream) still restore: ``from_bytes`` detects
the frame and dispatches.

:class:`CheckpointStore` is the rank-collective side: every rank
contributes its slab at a refresh; when all ranks of the current attempt
have contributed at the same iteration the store commits a *global*
checkpoint.  The store outlives the SPMD world, so a relaunched world —
possibly re-partitioned over fewer ranks — restores from the last commit
regardless of the old rank layout.
"""

from __future__ import annotations

import io
import json
import struct
import threading
from dataclasses import dataclass, field

import numpy as np

from ... import codec
from ...comms.faults import checksum_bytes
from .resilience import RecoveryEvent

__all__ = ["SolveCheckpoint", "CheckpointStore"]

#: Magic of the pre-codec (JSON header + npy stream) format, kept so
#: old on-disk checkpoints keep restoring.
_LEGACY_MAGIC = b"RPCK\x01"


@dataclass
class SolveCheckpoint:
    """One committed recovery point of a Krylov solve.

    ``x_full`` is the *global* full-lattice solution ``(V, 4, 3)`` with
    zeros on the off-solve parity (the preconditioned solver only evolves
    one checkerboard; the other is reconstructed after convergence).
    ``None`` in timing-only mode, where there is no field data — resuming
    then just restores the iteration bookkeeping.
    """

    iteration: int
    rnorm: float
    reliable_updates: int
    history: list[float] = field(default_factory=list)
    solver: str = "bicgstab"
    sloppy_precision: str = "SINGLE"
    x_full: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # Deterministic serialization
    # ------------------------------------------------------------------ #

    def to_bytes(self) -> bytes:
        """Serialize to deterministic bytes (same state → same bytes).

        One packed :mod:`repro.codec` record: the frame CRC covers the
        whole payload (bookkeeping *and* solution data), so a snapshot
        validates itself on load."""
        return codec.encode_record(
            {
                "iteration": self.iteration,
                "rnorm": self.rnorm,
                "reliable_updates": self.reliable_updates,
                "history": [float(h) for h in self.history],
                "solver": self.solver,
                "sloppy_precision": self.sloppy_precision,
                "x": None if self.x_full is None else self.x_full,
            },
            kind=codec.KIND_CHECKPOINT,
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "SolveCheckpoint":
        if codec.is_packed(data):
            _, header = codec.decode_record(
                data, expect_kind=codec.KIND_CHECKPOINT
            )
            x_full = header["x"]
        elif data[: len(_LEGACY_MAGIC)] == _LEGACY_MAGIC:
            header, x_full = cls._decode_legacy(data)
        else:
            raise ValueError("not a SolveCheckpoint stream")
        return cls(
            iteration=header["iteration"],
            rnorm=header["rnorm"],
            reliable_updates=header["reliable_updates"],
            history=list(header["history"]),
            solver=header["solver"],
            sloppy_precision=header["sloppy_precision"],
            x_full=x_full,
        )

    @staticmethod
    def _decode_legacy(data: bytes) -> tuple[dict, np.ndarray | None]:
        """Decode the pre-codec format (JSON header + ``.npy`` stream)."""
        buf = io.BytesIO(data)
        buf.read(len(_LEGACY_MAGIC))
        (hlen,) = struct.unpack("<I", buf.read(4))
        header = json.loads(buf.read(hlen).decode())
        body_bytes = buf.read()
        expected = header.get("checksum")
        if expected is not None:
            actual = checksum_bytes(body_bytes)
            if actual != expected:
                raise ValueError(
                    f"checkpoint checksum mismatch: {actual:#010x} != "
                    f"{expected:#010x} (iteration {header['iteration']})"
                )
        x_full = (
            np.lib.format.read_array(io.BytesIO(body_bytes))
            if header["has_x"]
            else None
        )
        return header, x_full


class CheckpointStore:
    """Rank-collective checkpoint/result store shared across attempts.

    One instance per :func:`~repro.core.invert_multi` call.  The SPMD
    body threads of the *current* attempt contribute slabs; the recovery
    supervisor rebinds the store to each attempt's slicing (clearing any
    half-contributed pieces a dead attempt left behind — a commit
    requires every rank, so a committed checkpoint is always globally
    consistent).  Also the ledger of :class:`RecoveryEvent`\\ s, so the
    full recovery sequence can be asserted byte-for-byte in tests.
    """

    def __init__(self, n_sources: int) -> None:
        self._lock = threading.RLock()
        self.n_sources = n_sources
        self.attempt = 0
        self._n_ranks = 0
        self._gather = None
        # source -> iteration -> rank -> (slab | None)
        self._pending: dict[int, dict[int, dict[int, np.ndarray | None]]] = {}
        self._meta: dict[tuple[int, int], dict] = {}
        # source -> committed snapshots as *serialized, self-validating
        # bytes* (most recent last; the previous commit is retained as
        # the fallback when the latest fails its checksum on load).
        self._latest: dict[int, list[bytes]] = {}
        # Highest iteration any attempt reached per source (for honest
        # wasted-iteration accounting on resume).
        self._progress: dict[int, int] = {}
        # source -> (x_global | None, info) for fully solved sources.
        self._completed: dict[int, tuple[np.ndarray | None, object]] = {}
        self._result_pending: dict[int, dict[int, np.ndarray | None]] = {}
        self._result_info: dict[int, object] = {}
        self._events: list[RecoveryEvent] = []
        self._resumed: set[tuple[int, int]] = set()

    # ------------------------------------------------------------------ #
    # Attempt lifecycle
    # ------------------------------------------------------------------ #

    def rebind(self, slicing, *, attempt: int = 0) -> None:
        """Bind the store to one attempt's decomposition.

        Clears every half-contributed piece (checkpoints *and* results):
        a dead attempt's partial contributions must never mix with a new
        attempt's at the same key.  Committed checkpoints survive.
        """
        with self._lock:
            self.attempt = attempt
            self._n_ranks = slicing.n_ranks
            self._gather = slicing.gather
            self._pending.clear()
            self._meta.clear()
            self._result_pending.clear()
            self._result_info.clear()

    # ------------------------------------------------------------------ #
    # Rank-collective contributions
    # ------------------------------------------------------------------ #

    def contribute(
        self,
        source: int,
        rank: int,
        *,
        iteration: int,
        rnorm: float,
        reliable_updates: int,
        history: list[float],
        solver: str,
        sloppy_precision: str,
        slab: np.ndarray | None,
    ) -> None:
        """One rank's refresh-point contribution; commits when complete."""
        with self._lock:
            pieces = self._pending.setdefault(source, {}).setdefault(iteration, {})
            pieces[rank] = slab
            self._meta[(source, iteration)] = {
                "rnorm": rnorm,
                "reliable_updates": reliable_updates,
                "history": list(history),
                "solver": solver,
                "sloppy_precision": sloppy_precision,
            }
            self._progress[source] = max(self._progress.get(source, 0), iteration)
            if len(pieces) < self._n_ranks:
                return
            meta = self._meta.pop((source, iteration))
            slabs = [pieces[r] for r in range(self._n_ranks)]
            x_full = (
                None
                if any(s is None for s in slabs)
                else self._gather(slabs)
            )
            del self._pending[source][iteration]
            ckpt = SolveCheckpoint(
                iteration=iteration,
                rnorm=meta["rnorm"],
                reliable_updates=meta["reliable_updates"],
                history=meta["history"],
                solver=meta["solver"],
                sloppy_precision=meta["sloppy_precision"],
                x_full=x_full,
            )
            blobs = self._latest.setdefault(source, [])
            blobs.append(ckpt.to_bytes())
            del blobs[:-2]  # latest + one verified fallback

    def record_result(self, source: int, rank: int, *, slab, info) -> None:
        """One rank's final-solution contribution; a completed source is
        skipped outright by any later attempt."""
        with self._lock:
            pieces = self._result_pending.setdefault(source, {})
            pieces[rank] = slab
            if rank == 0:
                self._result_info[source] = info
            if len(pieces) < self._n_ranks or source not in self._result_info:
                return
            slabs = [pieces[r] for r in range(self._n_ranks)]
            x = (
                None
                if any(s is None for s in slabs)
                else self._gather(slabs)
            )
            del self._result_pending[source]
            self._completed[source] = (x, self._result_info.pop(source))

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def latest(self, source: int) -> SolveCheckpoint | None:
        """Most recent checkpoint whose checksum validates.

        A snapshot that fails validation is discarded (once, under the
        lock, with one ``checkpoint_fallback`` ledger entry — every rank
        of the attempt then resumes from the same surviving commit)
        rather than resuming the solve from torn or corrupted state."""
        with self._lock:
            blobs = self._latest.get(source)
            if not blobs:
                return None
            while blobs:
                try:
                    return SolveCheckpoint.from_bytes(blobs[-1])
                except ValueError as exc:
                    blobs.pop()
                    self._events.append(
                        RecoveryEvent(
                            "checkpoint_fallback",
                            attempt=self.attempt,
                            source=source,
                            detail=(
                                f"discarded corrupt snapshot ({exc}); "
                                + (
                                    "falling back to previous commit"
                                    if blobs
                                    else "no verified checkpoint left"
                                )
                            ),
                        )
                    )
            return None

    def completed(self, source: int) -> tuple[np.ndarray | None, object] | None:
        with self._lock:
            return self._completed.get(source)

    def progress(self, source: int) -> int:
        with self._lock:
            return self._progress.get(source, 0)

    # ------------------------------------------------------------------ #
    # Recovery ledger
    # ------------------------------------------------------------------ #

    def log_event(self, ev: RecoveryEvent) -> None:
        with self._lock:
            self._events.append(ev)

    def events(self) -> list[RecoveryEvent]:
        with self._lock:
            return list(self._events)

    def note_resume(self, source: int, resume_iteration: int) -> None:
        """Log one 'resume' event per (source, attempt) — whichever rank
        arrives first wins; the content is rank-independent, so the
        ledger stays deterministic."""
        with self._lock:
            if self.attempt == 0:
                return
            key = (source, self.attempt)
            if key in self._resumed:
                return
            self._resumed.add(key)
            wasted = max(0, self._progress.get(source, 0) - resume_iteration)
            self._events.append(
                RecoveryEvent(
                    "resume",
                    attempt=self.attempt,
                    source=source,
                    iteration=resume_iteration,
                    wasted_iterations=wasted,
                    detail=f"from checkpoint at iteration {resume_iteration}",
                )
            )
