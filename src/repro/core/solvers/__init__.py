"""Device Krylov solvers: reliably-updated BiCGstab and CGNR, plus the
defect-correction baseline the paper compares against (Section V-D)."""

from .bicgstab import bicgstab_solve
from .cg import cg_solve
from .defect import defect_correction_solve
from .reliable import ReliableUpdater
from .stopping import ConvergenceState, LocalSolveInfo

__all__ = [
    "bicgstab_solve",
    "cg_solve",
    "defect_correction_solve",
    "ReliableUpdater",
    "ConvergenceState",
    "LocalSolveInfo",
]
