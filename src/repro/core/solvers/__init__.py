"""Device Krylov solvers: reliably-updated BiCGstab and CGNR, plus the
defect-correction baseline the paper compares against (Section V-D), and
the self-healing layer (refresh-point checkpoints, breakdown escalation,
rank-failure recovery)."""

from .bicgstab import bicgstab_solve
from .cg import cg_solve
from .checkpoint import CheckpointStore, SolveCheckpoint
from .defect import defect_correction_solve
from .reliable import ReliableUpdater
from .resilience import (
    EscalationLadder,
    EscalationStep,
    RecoveryEvent,
    RetryPolicy,
    SolverBreakdown,
    ensure_finite,
    run_with_recovery,
)
from .stopping import ConvergenceState, LocalSolveInfo

__all__ = [
    "bicgstab_solve",
    "cg_solve",
    "defect_correction_solve",
    "ReliableUpdater",
    "ConvergenceState",
    "LocalSolveInfo",
    "SolveCheckpoint",
    "CheckpointStore",
    "SolverBreakdown",
    "RetryPolicy",
    "RecoveryEvent",
    "EscalationLadder",
    "EscalationStep",
    "ensure_finite",
    "run_with_recovery",
]
