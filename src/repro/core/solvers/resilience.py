"""Solver resilience: breakdown detection, escalation, and rank-failure
recovery.

The paper's reliable-update machinery (Section V-D) recomputes the *true*
full-precision residual at every refresh — which makes refresh points
natural, already-consistent recovery points.  This module builds the
self-healing layer on top of them:

* :class:`SolverBreakdown` — a numerical pathology (BiCGstab ρ/ω
  breakdown, NaN/Inf in a reduction, divergence, stagnation), detected
  from *globally reduced* scalars so every rank observes the identical
  event at the identical iteration and acts in lockstep;
* :class:`EscalationLadder` — the deterministic response sequence:
  restart from the last checkpoint → switch BiCGstab→CG → raise the
  sloppy precision one notch (half→single→double, capped at the full
  precision);
* :class:`RetryPolicy` + :func:`run_with_recovery` — the SPMD supervisor:
  when a :class:`~repro.comms.faults.FaultPlan` kills a rank mid-solve,
  the partial :class:`~repro.comms.mpi_sim.SpmdOutcome` is caught, the
  fired faults are retired from the plan, the time dimension is
  re-partitioned over the surviving ranks (or relaunched at the same
  count), and the solve resumes from the last committed checkpoint under
  a bounded, deterministic retry budget.

Every decision here is a pure function of (fault-plan seed, communication
history, reduction values), so a recovered solve is byte-reproducible:
same seed, same recovery sequence, same answer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable

from ...comms.cluster import ClusterSpec
from ...comms.faults import FaultEvent, FaultPlan, IntegrityPolicy, RankFailedError
from ...comms.mpi_sim import CommStats, SimMPI
from ...gpu.precision import Precision

__all__ = [
    "SolverBreakdown",
    "RetryPolicy",
    "RecoveryEvent",
    "EscalationStep",
    "EscalationLadder",
    "RecoveryOutcome",
    "ensure_finite",
    "feasible_rank_count",
    "run_with_recovery",
]


class SolverBreakdown(RuntimeError):
    """A structured numerical pathology inside a Krylov solve.

    Raised *before* the offending scalar can be folded into the solution
    vector, so ``x`` is never poisoned by NaN/Inf.  Because every scalar
    tested is the output of a QMP global reduction, all ranks raise the
    identical breakdown at the identical iteration — the escalation
    ladder can therefore act without any extra communication.

    ``kind`` is one of ``'rho_breakdown'`` (BiCGstab shadow-residual
    orthogonality lost), ``'pivot_breakdown'`` (``<r0, v>`` or ``<p, q>``
    vanished), ``'omega_breakdown'`` (``|t|^2`` vanished or ω = 0),
    ``'non_finite'`` (NaN/Inf in a reduction), ``'divergence'``,
    ``'stagnation'``, or ``'corruption'`` (a refresh-point invariant
    monitor caught resident-state damage — handled by its own ladder
    rung, a restore from the last verified checkpoint).
    """

    def __init__(
        self,
        kind: str,
        *,
        iteration: int,
        rnorm: float = float("nan"),
        detail: str = "",
    ) -> None:
        self.kind = kind
        self.iteration = iteration
        self.rnorm = rnorm
        self.detail = detail
        msg = f"{kind} at iteration {iteration} (|r| = {rnorm:.6e})"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)


def ensure_finite(name: str, value: complex | float, *, iteration: int, rnorm: float = 0.0):
    """Raise :class:`SolverBreakdown` if a reduction result is NaN/Inf.

    Returns ``value`` unchanged so guards can be inserted inline.
    """
    v = complex(value)
    if not (math.isfinite(v.real) and math.isfinite(v.imag)):
        raise SolverBreakdown(
            "non_finite", iteration=iteration, rnorm=rnorm,
            detail=f"{name} = {value!r}",
        )
    return value


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded recovery budget for rank failures mid-solve.

    ``max_attempts = 0`` (the default) preserves the fail-fast behaviour:
    a dying rank raises the structured
    :class:`~repro.comms.faults.RankFailedError` exactly as before.  With
    ``max_attempts = k``, up to ``k`` relaunches are attempted, each
    resuming from the last committed checkpoint, each charging
    ``backoff_s`` of deterministic *model* time on top of the failed
    attempt's wasted wall.  ``shrink`` re-partitions the time dimension
    over the largest feasible surviving rank count; with it off, the
    relaunch reuses the original rank count (a "replacement rank" model).
    """

    max_attempts: int = 0
    backoff_s: float = 1e-3
    shrink: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 0:
            raise ValueError("max_attempts must be >= 0")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")

    @property
    def enabled(self) -> bool:
        return self.max_attempts > 0


@dataclass(frozen=True)
class RecoveryEvent:
    """One recovery decision, on the record for traces and benchmarks.

    ``kind`` is ``'rank_failure'`` (a planned fault killed a rank),
    ``'relaunch'`` (the supervisor rebuilt the world), ``'resume'`` (a
    source restarted from its checkpoint after a relaunch),
    ``'restart'`` / ``'solver_switch'`` / ``'precision_escalation'``
    (breakdown-ladder rungs), ``'checkpoint_restore'`` (corruption
    detected by an invariant monitor; solve rewound to the last verified
    checkpoint), or ``'checkpoint_fallback'`` (a stored snapshot failed
    its checksum on load and was discarded).  The full sequence is
    deterministic for a given fault-plan seed — tests compare it byte
    for byte.
    """

    kind: str
    attempt: int
    rank: int = -1
    source: int = -1
    iteration: int = -1
    model_time: float = 0.0
    wasted_iterations: int = 0
    detail: str = ""

    def render(self) -> str:
        where = f"r{self.rank}" if self.rank >= 0 else "  "
        src = f"s{self.source}" if self.source >= 0 else "  "
        it = f"it {self.iteration:>5d}" if self.iteration >= 0 else " " * 8
        wasted = (
            f"  wasted {self.wasted_iterations}"
            if self.wasted_iterations > 0
            else ""
        )
        return (
            f"attempt {self.attempt}  {where} {src} {it} "
            f"{self.kind:<21}{wasted}"
            + (f"  {self.detail}" if self.detail else "")
        )


# ------------------------------------------------------------------------ #
# Breakdown escalation
# ------------------------------------------------------------------------ #

#: One notch up the precision ladder (half -> single -> double).
_PRECISION_UP: dict[Precision, Precision] = {
    Precision.HALF: Precision.SINGLE,
    Precision.SINGLE: Precision.DOUBLE,
}


@dataclass(frozen=True)
class EscalationStep:
    """One rung of the ladder: the configuration to retry with."""

    kind: str  # 'restart' | 'solver_switch' | 'precision_escalation'
    solver: str
    sloppy: Precision


class EscalationLadder:
    """The deterministic breakdown-response sequence for one solve.

    Rungs, in order: (1) restart from the last checkpoint with the same
    configuration — transient breakdowns (an unlucky shadow residual, a
    half-precision overflow near a reliable update) usually clear; (2)
    switch BiCGstab→CG, trading iterations for the guaranteed descent of
    the normal equations; (3+) raise the sloppy precision one notch at a
    time until it reaches the full precision.  ``max_steps`` bounds the
    total rungs taken; all ranks walk the ladder identically because
    breakdowns derive from globally reduced scalars.
    """

    def __init__(
        self,
        *,
        solver: str,
        sloppy: Precision,
        full: Precision,
        max_steps: int = 3,
        max_corruption_restores: int = 2,
    ) -> None:
        rungs: list[EscalationStep] = [EscalationStep("restart", solver, sloppy)]
        if solver == "bicgstab":
            solver = "cg"
            rungs.append(EscalationStep("solver_switch", solver, sloppy))
        up = _PRECISION_UP.get(sloppy)
        while up is not None and up.real_bytes <= full.real_bytes:
            sloppy = up
            rungs.append(EscalationStep("precision_escalation", solver, sloppy))
            up = _PRECISION_UP.get(sloppy)
        self._rungs = rungs[: max(0, max_steps)]
        self._taken = 0
        self._restores = 0
        self._max_restores = max(0, max_corruption_restores)

    @property
    def taken(self) -> int:
        return self._taken

    @property
    def restores_taken(self) -> int:
        return self._restores

    def next_step(self) -> EscalationStep | None:
        """The next rung, or ``None`` when the ladder is exhausted."""
        if self._taken >= len(self._rungs):
            return None
        step = self._rungs[self._taken]
        self._taken += 1
        return step

    def corruption_step(
        self, solver: str, sloppy: Precision
    ) -> EscalationStep | None:
        """The corruption rung: restore from the last *verified*
        checkpoint with the current configuration unchanged.

        Kept on its own bounded counter rather than consuming the
        numerical rungs — detected corruption says nothing about the
        solver or precision being wrong, so switching either would waste
        the ladder.  ``None`` once ``max_corruption_restores`` restores
        have been spent (a plan corrupting state faster than the solve
        progresses must fail loudly, not loop forever)."""
        if self._restores >= self._max_restores:
            return None
        self._restores += 1
        return EscalationStep("checkpoint_restore", solver, sloppy)


# ------------------------------------------------------------------------ #
# Rank-failure recovery supervisor
# ------------------------------------------------------------------------ #


@dataclass
class RecoveryOutcome:
    """What :func:`run_with_recovery` hands back to the solve driver."""

    results: list[Any]
    slicing: Any
    qmp_grid: dict[int, int] | None
    fault_events: list[FaultEvent]
    comm_stats: list[CommStats]
    attempts: int = 0
    #: Model time burned by failed attempts plus retry backoff — added to
    #: the recovered solve's reported model time so benchmarks see the
    #: honest cost of recovery.
    lost_time_s: float = 0.0


def feasible_rank_count(geometry, max_ranks: int) -> int | None:
    """Largest time-slicing rank count ``<= max_ranks`` the lattice admits
    (T divisible, even local extent), or ``None`` if there is none."""
    for n in range(max(max_ranks, 0), 0, -1):
        try:
            geometry.slice_time(n)
        except ValueError:
            continue
        return n
    return None


def _slice(geometry, n_gpus: int, grid: tuple[int, int] | None):
    if grid is not None:
        ranks_z, ranks_t = grid
        return geometry.slice_grid(ranks_z, ranks_t), {2: ranks_z, 3: ranks_t}
    return geometry.slice_time(n_gpus), None


def run_with_recovery(
    *,
    geometry,
    n_gpus: int,
    grid: tuple[int, int] | None,
    cluster: ClusterSpec,
    fault_plan: FaultPlan | None,
    policy: RetryPolicy,
    store,
    make_body: Callable[[Any, dict[int, int] | None], Callable],
    integrity: IntegrityPolicy | None = None,
) -> RecoveryOutcome:
    """Run an SPMD solve body, surviving planned rank failures.

    ``make_body(slicing, qmp_grid)`` builds the per-rank function for one
    attempt; ``store`` is the shared
    :class:`~repro.core.solvers.checkpoint.CheckpointStore` the body
    checkpoints into (it is rebound to each attempt's slicing, so
    committed checkpoints survive re-partitioning).

    With the policy disabled (or no lethal fault plan bound), this is
    exactly the old single-shot path: failures raise the same structured
    ``RuntimeError`` (with ``fault_events`` attached) as before.
    """
    plan = fault_plan
    current = n_gpus
    attempt = 0
    lost = 0.0
    all_events: list[FaultEvent] = []

    while True:
        slicing, qmp_grid = _slice(geometry, current, grid)
        store.rebind(slicing, attempt=attempt)
        world = SimMPI(slicing.n_ranks, cluster, plan, integrity)
        body = make_body(slicing, qmp_grid)
        recovery_active = (
            policy.enabled and plan is not None and plan.lethal
        )
        if not recovery_active:
            try:
                results = world.run(body)
            except RuntimeError as exc:
                exc.fault_events = all_events + list(
                    getattr(exc, "fault_events", [])
                )
                raise
            return RecoveryOutcome(
                results=results,
                slicing=slicing,
                qmp_grid=qmp_grid,
                fault_events=all_events + world.fault_events(),
                comm_stats=world.comm_stats(),
                attempts=attempt,
                lost_time_s=lost,
            )

        outcome = world.run(body, return_partial=True)
        all_events.extend(outcome.fault_events)
        if outcome.ok:
            return RecoveryOutcome(
                results=outcome.results,
                slicing=slicing,
                qmp_grid=qmp_grid,
                fault_events=all_events,
                comm_stats=outcome.stats,
                attempts=attempt,
                lost_time_s=lost,
            )

        root = outcome.root_failure()
        fired = sorted(
            {e.rank for e in outcome.fault_events if e.kind in ("stall", "crash")}
        )
        recoverable = (
            bool(fired)
            and isinstance(root.error, RankFailedError)
            and attempt < policy.max_attempts
        )
        if not recoverable:
            err = RuntimeError(f"rank {root.rank} failed: {root.error!r}")
            err.fault_events = all_events
            raise err from root.error

        attempt += 1
        t_fail = max(
            (e.time for e in outcome.fault_events if e.kind in ("stall", "crash")),
            default=root.model_time,
        )
        lost += t_fail + policy.backoff_s
        store.log_event(
            RecoveryEvent(
                "rank_failure",
                attempt=attempt,
                rank=root.rank,
                model_time=t_fail,
                detail=f"{root.mode} in {root.op}",
            )
        )
        # Retire the fired faults: the relaunched sub-run must not replay
        # them (their model-time triggers restart from zero with the new
        # world's clocks).
        plan = plan.without_ranks(fired)
        survivors = slicing.n_ranks - len(fired)
        if grid is None and policy.shrink:
            nxt = feasible_rank_count(geometry, max(survivors, 1))
            if nxt is not None:
                current = nxt
        if grid is None:
            # Stalls scheduled beyond the new world size cannot be hosted.
            plan = plan.without_ranks(
                [s.rank for s in plan.stalls if s.rank >= current]
            )
        store.log_event(
            RecoveryEvent(
                "relaunch",
                attempt=attempt,
                detail=(
                    f"{current if grid is None else slicing.n_ranks} ranks, "
                    f"backoff {policy.backoff_s * 1e6:.1f}us"
                ),
            )
        )

