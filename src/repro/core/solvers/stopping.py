"""Convergence bookkeeping shared by the device solvers."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ConvergenceState", "LocalSolveInfo"]


@dataclass
class ConvergenceState:
    """Target tracking for one solve (relative residual convention)."""

    b_norm: float
    tol: float

    @property
    def target(self) -> float:
        return self.tol * self.b_norm if self.b_norm > 0 else self.tol

    def converged(self, rnorm: float) -> bool:
        return rnorm <= self.target


@dataclass
class LocalSolveInfo:
    """What one rank knows about a finished solve.

    All ranks hold identical scalar values (every decision flows through
    global reductions), so any rank's copy is authoritative; the harness
    still cross-checks them in tests.
    """

    iterations: int
    residual_norm: float
    converged: bool
    reliable_updates: int = 0
    history: list[float] = field(default_factory=list)
    #: Timeline bracketing for flop/time attribution.
    t_start: float = 0.0
    t_end: float = 0.0
    flops: float = 0.0

    @property
    def seconds(self) -> float:
        return self.t_end - self.t_start
