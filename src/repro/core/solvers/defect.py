"""Defect-correction mixed precision: the baseline QUDA moved away from.

"Such an approach ... explicitly restarts the Krylov space with every
correction, increasing the total number of solver iterations [compared to
reliable updates]" (Section V-D).  We implement it as the comparison
baseline for the ablation bench:

    repeat:
        r = b - A y                (full precision)
        solve A dx = r to eta      (sloppy precision, *fresh* Krylov space)
        y = y + dx

The inner solver is a plain uniform-sloppy BiCGstab with no reliable
updates (each outer cycle pays the Krylov restart the paper criticizes).
"""

from __future__ import annotations

from ...gpu.fields import DeviceSpinorField
from .. import blas
from ..dslash import DeviceSchurOperator
from .stopping import ConvergenceState, LocalSolveInfo

__all__ = ["defect_correction_solve"]


def _plain_bicgstab(
    op: DeviceSchurOperator,
    b: DeviceSpinorField,
    x: DeviceSpinorField,
    work: dict[str, DeviceSpinorField],
    *,
    tol: float,
    maxiter: int,
) -> int:
    """Uniform-precision BiCGstab with a fresh Krylov space; returns the
    iteration count (the restart cost the ablation measures)."""
    gpu = op.gpu
    qmp = op.qmp
    r, r0, p, v, t, tmp = (work[k] for k in ("r", "r0", "p", "v", "t", "tmp"))
    blas.zero(gpu, x)
    blas.copy(gpu, b, r)
    blas.copy(gpu, r, r0)
    blas.zero(gpu, p)
    blas.zero(gpu, v)
    b2 = blas.norm2(gpu, r, qmp)
    target = tol * b2**0.5
    rho = alpha = omega = 1.0 + 0.0j
    for it in range(1, maxiter + 1):
        rho_new = blas.cdot(gpu, r0, r, qmp)
        if rho_new == 0:
            blas.copy(gpu, r, r0)
            rho_new = blas.cdot(gpu, r0, r, qmp)
        beta = (rho_new / rho) * (alpha / omega)
        blas.update_p(gpu, r, p, v, beta, omega)
        op.apply(p, tmp, v)
        alpha = rho_new / blas.cdot(gpu, r0, v, qmp)
        s2 = blas.axpy_norm(gpu, -alpha, v, r, qmp)
        if s2**0.5 <= target:
            blas.axpy(gpu, alpha, p, x)
            return it
        op.apply(r, tmp, t)
        ts, t2 = blas.cdot_norm(gpu, t, r, qmp)
        omega = ts / t2
        blas.caxpy_pair(gpu, alpha, p, omega, r, x)
        r2 = blas.axpy_norm(gpu, -omega, t, r, qmp)
        rho = rho_new
        if r2**0.5 <= target:
            return it
    return maxiter


def defect_correction_solve(
    op_full: DeviceSchurOperator,
    op_sloppy: DeviceSchurOperator,
    b: DeviceSpinorField,
    x_out: DeviceSpinorField,
    *,
    tol: float,
    inner_tol: float = 1e-2,
    maxiter: int = 10_000,
    max_outer: int = 50,
) -> LocalSolveInfo:
    """Solve ``Mhat x = b`` by defect-correction restarts.

    ``iterations`` in the returned info counts *sloppy inner iterations*
    (the apples-to-apples cost against the reliable-update solver);
    ``reliable_updates`` counts outer corrections.
    """
    gpu = op_full.gpu
    qmp = op_full.qmp
    if not gpu.execute:
        raise RuntimeError(
            "defect correction is a numerics ablation; run it in functional mode"
        )
    timeline = gpu.timeline
    op_index = timeline.op_count
    t_start = timeline.host_time

    r_full = op_full.make_spinor("dc_r")
    ax = op_full.make_spinor("dc_Ax")
    tmp_full = op_full.make_spinor("dc_tmp")
    r_sloppy = op_sloppy.make_spinor("dc_rs")
    dx = op_sloppy.make_spinor("dc_dx")
    dx_high = op_full.make_spinor("dc_dx_high")
    inner_work = {
        k: op_sloppy.make_spinor(f"dc_{k}") for k in ("r", "r0", "p", "v", "t", "tmp")
    }

    blas.zero(gpu, x_out)
    b2 = blas.norm2(gpu, b, qmp)
    conv = ConvergenceState(b_norm=b2**0.5, tol=tol)
    total_inner = 0
    outer = 0
    rnorm = conv.b_norm
    history = [rnorm]

    while outer < max_outer and total_inner < maxiter:
        # True residual in full precision.
        op_full.apply(x_out, tmp_full, ax)
        blas.copy(gpu, b, r_full)
        blas.axpy(gpu, -1.0, ax, r_full)
        rnorm = blas.norm2(gpu, r_full, qmp) ** 0.5
        history.append(rnorm)
        if conv.converged(rnorm):
            break
        outer += 1
        # Fresh sloppy Krylov space on the defect (the restart penalty).
        blas.copy(gpu, r_full, r_sloppy)
        total_inner += _plain_bicgstab(
            op_sloppy, r_sloppy, dx, inner_work, tol=inner_tol,
            maxiter=maxiter - total_inner,
        )
        blas.copy(gpu, dx, dx_high)
        blas.axpy(gpu, 1.0, dx_high, x_out)

    gpu.device_synchronize()
    return LocalSolveInfo(
        iterations=total_inner,
        residual_norm=rnorm,
        converged=conv.converged(rnorm),
        reliable_updates=outer,
        history=history,
        t_start=t_start,
        t_end=timeline.host_time,
        flops=float(timeline.flops_since(op_index)),
    )
